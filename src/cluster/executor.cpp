#include "cluster/executor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::cluster {

const char* sched_policy_name(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::kEdf:
      return "edf";
    case SchedPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

Executor::Executor(sim::Engine& engine, std::vector<ServerSpec> specs,
                   SchedPolicy policy)
    : engine_(engine), policy_(policy) {
  PRAN_REQUIRE(!specs.empty(), "executor needs at least one server");
  servers_.reserve(specs.size());
  for (auto& spec : specs) {
    PRAN_REQUIRE(spec.cores >= 1, "server needs at least one core");
    PRAN_REQUIRE(spec.gops_per_core > 0.0, "core capacity must be positive");
    servers_.push_back(Server{std::move(spec), false, 1.0, {}, {}});
  }
}

Executor::Server& Executor::server(int server_id) {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  return servers_[static_cast<std::size_t>(server_id)];
}

const Executor::Server& Executor::server(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  return servers_[static_cast<std::size_t>(server_id)];
}

const ServerSpec& Executor::spec(int server_id) const {
  return server(server_id).spec;
}

bool Executor::is_failed(int server_id) const {
  return server(server_id).failed;
}

sim::Time Executor::exec_time(const Server& s, const lte::SubframeJob& job,
                              int width) const {
  // Code blocks decode independently, so fan-out is near-linear; the
  // residual serial part (FFT, MAC) is folded into the same scaling as a
  // deliberate simplification (documented in DESIGN.md).
  const double seconds =
      job.total_gops() /
      (s.spec.gops_per_core * s.speed_factor * static_cast<double>(width));
  return static_cast<sim::Time>(std::llround(seconds * 1e9));
}

int Executor::free_cores(const Server& s) const {
  int used = 0;
  for (const auto& r : s.running) used += r.width;
  return s.spec.cores - used;
}

void Executor::submit(int server_id, const lte::SubframeJob& job) {
  (void)server(server_id);  // validate id now, not at arrival
  const std::uint64_t seq = submit_seq_++;
  const sim::Time arrival = std::max(job.release, engine_.now());
  engine_.schedule_at(arrival, [this, server_id, job, seq] {
    Server& s = servers_[static_cast<std::size_t>(server_id)];
    if (s.failed) {
      JobOutcome outcome;
      outcome.job = job;
      outcome.server_id = server_id;
      outcome.dropped = true;
      outcomes_.push_back(outcome);
      if (on_drop_) on_drop_(job, server_id);
      if (on_complete_) on_complete_(outcomes_.back());
      return;
    }
    s.pending.emplace_back(seq, job);
    dispatch(server_id);
  });
}

void Executor::dispatch(int server_id) {
  Server& s = servers_[static_cast<std::size_t>(server_id)];
  while (!s.failed && !s.pending.empty() && free_cores(s) >= 1) {
    auto pick = s.pending.begin();
    if (policy_ == SchedPolicy::kEdf) {
      for (auto it = s.pending.begin(); it != s.pending.end(); ++it) {
        if (it->second.deadline < pick->second.deadline ||
            (it->second.deadline == pick->second.deadline &&
             it->first < pick->first))
          pick = it;
      }
    }  // FIFO: submission order == queue order, so front() is correct.
    const lte::SubframeJob job = pick->second;
    s.pending.erase(pick);
    start_job(server_id, job);
  }
}

void Executor::start_job(int server_id, const lte::SubframeJob& job) {
  Server& s = servers_[static_cast<std::size_t>(server_id)];
  const int width = std::max(
      1, std::min({job.parallelism, s.spec.max_job_parallelism,
                   free_cores(s)}));
  const sim::Time start = engine_.now();
  const sim::Time duration = exec_time(s, job, width);
  const std::uint64_t token = next_token_++;
  const sim::EventId ev = engine_.schedule_in(
      duration, [this, server_id, token] { on_job_done(server_id, token); });
  s.running.push_back(Running{job, start, ev, token, width});
}

void Executor::on_job_done(int server_id, std::uint64_t token) {
  Server& s = servers_[static_cast<std::size_t>(server_id)];
  std::size_t slot = s.running.size();
  for (std::size_t i = 0; i < s.running.size(); ++i) {
    if (s.running[i].token == token) {
      slot = i;
      break;
    }
  }
  PRAN_CHECK(slot < s.running.size(), "completion with no running job");

  JobOutcome outcome;
  outcome.job = s.running[slot].job;
  outcome.server_id = server_id;
  outcome.start = s.running[slot].start;
  outcome.finish = engine_.now();
  outcome.cores_used = s.running[slot].width;
  s.running.erase(s.running.begin() + static_cast<std::ptrdiff_t>(slot));
  outcomes_.push_back(outcome);
  if (on_complete_) on_complete_(outcomes_.back());
  dispatch(server_id);
}

void Executor::fail_server(int server_id) {
  Server& s = server(server_id);
  PRAN_REQUIRE(!s.failed, "server is already failed");
  s.failed = true;

  // Drop the waiting queue.
  for (auto& [seq, job] : s.pending) {
    (void)seq;
    JobOutcome outcome;
    outcome.job = job;
    outcome.server_id = server_id;
    outcome.dropped = true;
    outcomes_.push_back(outcome);
    if (on_drop_) on_drop_(job, server_id);
    if (on_complete_) on_complete_(outcomes_.back());
  }
  s.pending.clear();

  // Abort in-flight jobs.
  for (auto& r : s.running) {
    engine_.cancel(r.completion_event);
    JobOutcome outcome;
    outcome.job = r.job;
    outcome.server_id = server_id;
    outcome.start = r.start;
    outcome.dropped = true;
    outcomes_.push_back(outcome);
    if (on_drop_) on_drop_(r.job, server_id);
    if (on_complete_) on_complete_(outcomes_.back());
  }
  s.running.clear();
}

void Executor::restore_server(int server_id) {
  Server& s = server(server_id);
  PRAN_REQUIRE(s.failed, "server is not failed");
  s.failed = false;
}

void Executor::degrade_server(int server_id, double factor) {
  PRAN_REQUIRE(factor > 0.0 && factor <= 1.0,
               "degrade factor outside (0, 1]");
  Server& s = server(server_id);
  PRAN_REQUIRE(!s.failed, "cannot degrade a failed server");
  s.speed_factor = factor;
  // Queued jobs will start at the degraded speed via dispatch(); jobs
  // already running keep their scheduled completion (deliberate: the slow
  // clock only bites work started under it).
}

void Executor::restore_speed(int server_id) {
  server(server_id).speed_factor = 1.0;
}

bool Executor::is_degraded(int server_id) const {
  return server(server_id).speed_factor < 1.0;
}

double Executor::speed_factor(int server_id) const {
  return server(server_id).speed_factor;
}

double Executor::pending_gops(int server_id) const {
  const Server& s = server(server_id);
  double gops = 0.0;
  for (const auto& [token, job] : s.pending) gops += job.total_gops();
  return gops;
}

double Executor::backlog_ttis(int server_id) const {
  const Server& s = server(server_id);
  return pending_gops(server_id) / (s.spec.gops_per_tti() * s.speed_factor);
}

void Executor::record_compute_outage(int server_id,
                                     const lte::SubframeJob& job) {
  (void)server(server_id);  // validate the id
  JobOutcome outcome;
  outcome.job = job;
  outcome.server_id = server_id;
  outcome.compute_outage = true;
  outcomes_.push_back(outcome);
  if (on_complete_) on_complete_(outcomes_.back());
}

Executor::Stats Executor::stats() const {
  Stats st;
  for (const auto& o : outcomes_) {
    if (o.dropped) {
      ++st.dropped;
      continue;
    }
    if (o.compute_outage) {
      ++st.compute_outages;
      continue;
    }
    ++st.completed;
    if (o.missed_deadline()) ++st.missed;
    st.total_busy_seconds +=
        sim::to_seconds(o.finish - o.start) * o.cores_used;
  }
  return st;
}

Executor::Stats Executor::stats_for_server(int server_id) const {
  (void)server(server_id);
  Stats st;
  for (const auto& o : outcomes_) {
    if (o.server_id != server_id) continue;
    if (o.dropped) {
      ++st.dropped;
      continue;
    }
    if (o.compute_outage) {
      ++st.compute_outages;
      continue;
    }
    ++st.completed;
    if (o.missed_deadline()) ++st.missed;
    st.total_busy_seconds +=
        sim::to_seconds(o.finish - o.start) * o.cores_used;
  }
  return st;
}

double Executor::utilization(int server_id, sim::Time window) const {
  PRAN_REQUIRE(window > 0, "window must be positive");
  const Server& s = server(server_id);
  double busy = 0.0;
  for (const auto& o : outcomes_) {
    if (o.server_id != server_id || o.dropped || o.compute_outage) continue;
    busy += sim::to_seconds(std::min(o.finish, window) -
                            std::min(o.start, window)) *
            o.cores_used;
  }
  // In-flight jobs also count up to the window edge.
  for (const auto& r : s.running)
    busy += sim::to_seconds(std::max<sim::Time>(
               0, std::min(engine_.now(), window) - std::min(r.start, window))) *
           r.width;
  return busy /
         (sim::to_seconds(window) * static_cast<double>(s.spec.cores));
}

}  // namespace pran::cluster
