#pragma once

/// \file executor.hpp
/// The compute-cluster substrate: a pool of multi-core servers executing
/// SubframeJobs under a non-preemptive scheduling policy, simulated on the
/// discrete-event engine.
///
/// Each server has `cores` identical cores; a submitted job waits in the
/// server's pending queue until a core frees, then runs to completion in
/// ops / core_gops seconds. EDF picks the pending job with the earliest
/// deadline (the policy PRAN's data plane uses); FIFO is the baseline.
/// Server failures drop the jobs on that server and notify the controller,
/// which re-places the affected cells.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "lte/subframe.hpp"
#include "sim/engine.hpp"

namespace pran::cluster {

struct ServerSpec {
  std::string name;
  int cores = 8;
  /// Sustained giga-operations per second per core. 150 GOPS matches a
  /// vectorised base-band kernel on one modern server core and keeps a
  /// worst-case subframe (~0.32 Gop) inside the 3 ms HARQ budget.
  double gops_per_core = 150.0;
  /// Power draw of a powered-on but idle server (the consolidation prize:
  /// idle servers can be switched off entirely).
  double idle_watts = 90.0;
  /// Power draw with every core busy; between idle and busy, draw scales
  /// linearly with the busy-core fraction.
  double busy_watts = 250.0;
  /// Maximum cores one job may fan out over (code-block parallelism).
  /// 1 disables intra-job parallelism; the realistic setting is "many",
  /// since a loaded subframe carries tens of independent code blocks.
  int max_job_parallelism = 1;

  /// Whole-server ops budget per 1 ms TTI, in giga-operations.
  double gops_per_tti() const noexcept {
    return static_cast<double>(cores) * gops_per_core * 1e-3;
  }
  /// Extra watts one busy core adds on top of idle.
  double watts_per_busy_core() const noexcept {
    return (busy_watts - idle_watts) / static_cast<double>(cores);
  }
};

enum class SchedPolicy { kEdf, kFifo };

const char* sched_policy_name(SchedPolicy p) noexcept;

/// Final record of one job's execution.
struct JobOutcome {
  lte::SubframeJob job;
  int server_id = -1;
  sim::Time start = -1;   ///< -1 if never started.
  sim::Time finish = -1;  ///< -1 if dropped.
  bool dropped = false;   ///< Lost to a server failure.
  /// Abandoned by the overload controller because the pool had no compute
  /// for it before its deadline — a *computational outage*, the third
  /// outcome of the taxonomy (distinct from a fault drop and from a
  /// deadline miss, where the work did run but finished late).
  bool compute_outage = false;
  int cores_used = 1;     ///< Parallel width the job ran at.

  bool missed_deadline() const noexcept {
    return !dropped && !compute_outage && finish > job.deadline;
  }
  /// Completion latency relative to release; only valid when not dropped.
  sim::Time latency() const noexcept { return finish - job.release; }
};

class Executor {
 public:
  using CompletionCallback = std::function<void(const JobOutcome&)>;
  /// Called for every job lost to a failure (queued or running), so the
  /// controller can re-dispatch it.
  using DropCallback = std::function<void(const lte::SubframeJob&, int)>;

  Executor(sim::Engine& engine, std::vector<ServerSpec> specs,
           SchedPolicy policy);

  int num_servers() const noexcept { return static_cast<int>(servers_.size()); }
  const ServerSpec& spec(int server_id) const;
  SchedPolicy policy() const noexcept { return policy_; }

  /// Queues `job` on `server_id`. The job becomes runnable at
  /// max(job.release, now). Submitting to a failed server drops the job
  /// immediately (and fires the drop callback).
  void submit(int server_id, const lte::SubframeJob& job);

  /// Fails a server: all queued and in-flight jobs are dropped.
  /// Deliver faults through faults::FaultInjector, not directly.
  void fail_server(int server_id);

  /// Brings a failed server back empty.
  void restore_server(int server_id);

  bool is_failed(int server_id) const;

  /// Degrades a server: jobs *started* from now on run at `factor` of the
  /// nominal per-core speed (the straggler case — the server still answers
  /// heartbeats). In-flight jobs keep their original completion time.
  void degrade_server(int server_id, double factor);

  /// Returns a degraded server to nominal speed.
  void restore_speed(int server_id);

  bool is_degraded(int server_id) const;
  double speed_factor(int server_id) const;

  /// Total work (gops) sitting in a server's pending queue — not yet
  /// started. A load-shedding controller uses this as the lower bound on
  /// how long a new submission would wait.
  double pending_gops(int server_id) const;

  /// Compute-pressure signal: the pending backlog expressed in TTIs of the
  /// server's (speed-adjusted) whole-server throughput. 0 = idle queue;
  /// 1.0 = a full subframe period of queued work — the natural unit for an
  /// overload controller, since sustained backlog > ~1 TTI means deadlines
  /// are about to slip.
  double backlog_ttis(int server_id) const;

  /// Records a computational outage for `job` without ever queueing it:
  /// the overload controller decided the server cannot finish it before
  /// its deadline and abandons the work to protect jobs that can still
  /// make theirs. Fires the completion callback (with compute_outage set)
  /// so HARQ accounting sees the loss; does NOT fire the drop callback —
  /// drops mean fault-induced loss eligible for resubmission.
  void record_compute_outage(int server_id, const lte::SubframeJob& job);

  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }
  void set_drop_callback(DropCallback cb) { on_drop_ = std::move(cb); }

  /// All finished/dropped jobs in completion order.
  const std::vector<JobOutcome>& outcomes() const noexcept {
    return outcomes_;
  }

  /// Aggregate statistics derived from the outcome log.
  struct Stats {
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;
    std::uint64_t dropped = 0;
    /// Jobs abandoned for lack of compute (never ran; see JobOutcome).
    std::uint64_t compute_outages = 0;
    double total_busy_seconds = 0.0;

    double miss_ratio() const noexcept {
      const auto denom = completed + dropped;
      return denom ? static_cast<double>(missed + dropped) /
                         static_cast<double>(denom)
                   : 0.0;
    }
    /// Fraction of offered jobs abandoned for lack of compute.
    double compute_outage_ratio() const noexcept {
      const auto denom = completed + dropped + compute_outages;
      return denom ? static_cast<double>(compute_outages) /
                         static_cast<double>(denom)
                   : 0.0;
    }
  };
  Stats stats() const;
  Stats stats_for_server(int server_id) const;

  /// Busy fraction of a server's cores over [0, window].
  double utilization(int server_id, sim::Time window) const;

 private:
  struct Running {
    lte::SubframeJob job;
    sim::Time start;
    sim::EventId completion_event;
    std::uint64_t token;  ///< Unique per started job; keys completions.
    int width = 1;        ///< Cores this job occupies.
  };
  struct Server {
    ServerSpec spec;
    bool failed = false;
    /// Effective per-core speed multiplier (< 1 while degraded).
    double speed_factor = 1.0;
    std::deque<std::pair<std::uint64_t, lte::SubframeJob>> pending;
    std::vector<Running> running;  ///< size <= spec.cores
  };

  int free_cores(const Server& s) const;
  void start_job(int server_id, const lte::SubframeJob& job);
  void on_job_done(int server_id, std::uint64_t token);
  void dispatch(int server_id);
  Server& server(int server_id);
  const Server& server(int server_id) const;
  sim::Time exec_time(const Server& s, const lte::SubframeJob& job,
                      int width) const;

  sim::Engine& engine_;
  std::vector<Server> servers_;
  SchedPolicy policy_;
  std::uint64_t submit_seq_ = 0;
  std::uint64_t next_token_ = 0;
  std::vector<JobOutcome> outcomes_;
  CompletionCallback on_complete_;
  DropCallback on_drop_;
};

}  // namespace pran::cluster
