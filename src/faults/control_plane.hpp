#pragma once

/// \file control_plane.hpp
/// Control-plane impairments: the controller <-> server command channel is
/// not a function call. PREPARE/COMMIT-style protocol messages ride a real
/// management network that loses, delays and reorders datagrams, and the
/// migration protocol (core/migration.hpp) must survive all three.
///
/// Three impairment processes, mirroring what an out-of-band management
/// LAN actually suffers:
///
///   * message loss    — i.i.d. per-message drop with probability
///                       `loss_probability` (management traffic is not
///                       bursty enough to justify a Gilbert–Elliott chain;
///                       burstiness comes from retry storms instead);
///   * delivery delay  — `base_delay` propagation plus uniform jitter in
///                       [0, max_jitter];
///   * reordering      — with `reorder_probability`, a message is held an
///                       extra `reorder_delay`, so a later message can
///                       overtake it (stale deliveries must be fenced by
///                       the receiver, never trusted).
///
/// Determinism contract (same as faults::FronthaulImpairments): all draws
/// come from fixed `Rng::stream()` substreams of one seed — stream 0
/// drives loss, stream 1 jitter, stream 2 reordering — and every
/// per-message draw happens unconditionally in fixed order. The fate of
/// message n therefore depends only on (seed, n): re-tuning jitter cannot
/// change which messages are lost, and a sweep is thread-count invariant
/// because each deployment owns its own channel.
///
/// `scripted_drops` additionally kills exact message sequence numbers
/// regardless of the stochastic draws — the deterministic hook the
/// protocol-edge tests use to lose precisely the first PREPARE or the
/// COMMIT of one chosen migration.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace pran::faults {

struct ControlPlaneImpairmentConfig {
  /// Per-message i.i.d. drop probability.
  double loss_probability = 0.0;
  /// Fixed one-way delivery delay for every message.
  sim::Time base_delay = 50 * sim::kMicrosecond;
  /// Uniform extra delay in [0, max_jitter]; 0 disables the jitter draw's
  /// *effect* (the draw itself still happens — see the determinism note).
  sim::Time max_jitter = 0;
  /// Probability a message is additionally held `reorder_delay`.
  double reorder_probability = 0.0;
  sim::Time reorder_delay = 0;
  /// Message sequence numbers dropped deterministically on top of the
  /// stochastic loss (tests scripting exact protocol edges).
  std::vector<std::uint64_t> scripted_drops;

  bool impaired() const noexcept {
    return loss_probability > 0.0 || max_jitter > 0 ||
           reorder_probability > 0.0 || !scripted_drops.empty();
  }
};

/// Outcome of one control-plane send, decided at send time (the channel
/// is a model, not a transport: the caller schedules the delivery event).
struct ControlDelivery {
  std::uint64_t seq = 0;     ///< Channel-wide message sequence number.
  bool lost = false;         ///< True: the message never arrives.
  bool reordered = false;    ///< True: reorder_delay was added.
  sim::Time deliver_at = 0;  ///< Valid when !lost.
};

/// Deterministic impairment source for one controller <-> servers command
/// channel. Stateful (the sequence counter advances with every send), so
/// one instance serves exactly one deployment's control plane.
class ControlPlaneChannel {
 public:
  ControlPlaneChannel(const ControlPlaneImpairmentConfig& config,
                      std::uint64_t seed);

  /// Decides the fate of the next message sent at `now`. Draws loss,
  /// jitter and reorder unconditionally, in that order, so the outcome
  /// sequence is a pure function of (seed, message index).
  ControlDelivery send(sim::Time now);

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_lost() const noexcept { return lost_; }
  std::uint64_t messages_reordered() const noexcept { return reordered_; }

  /// Every send outcome so far, in send order (tests assert retry/backoff
  /// schedules from the send times embedded in deliver_at - delays).
  const std::vector<ControlDelivery>& log() const noexcept { return log_; }

 private:
  ControlPlaneImpairmentConfig config_;
  Rng loss_rng_;
  Rng jitter_rng_;
  Rng reorder_rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t reordered_ = 0;
  std::vector<ControlDelivery> log_;
};

}  // namespace pran::faults
