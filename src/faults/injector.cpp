#include "faults/injector.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace pran::faults {

const char* fault_kind_name(FaultKind kind) noexcept {
  // Exhaustive on purpose — no default: -Werror=switch turns a new
  // FaultKind into a compile error here instead of a silent "?".
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kCorrelated:
      return "correlated";
    case FaultKind::kFronthaulLoss:
      return "fronthaul-loss";
    case FaultKind::kFronthaulJitter:
      return "fronthaul-jitter";
    case FaultKind::kFronthaulBrownout:
      return "fronthaul-brownout";
  }
  return "?";  // Unreachable; keeps -Wreturn-type quiet.
}

FaultInjector::FaultInjector(sim::Engine& engine, cluster::Executor& executor,
                             sim::Trace* trace, std::uint64_t seed)
    : engine_(engine), executor_(executor), trace_(trace), rng_root_(seed) {
  const std::size_t n = static_cast<std::size_t>(executor_.num_servers());
  states_.assign(n, State::kHealthy);
  open_record_.assign(n, -1);
  streams_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) streams_.push_back(rng_root_.stream(s));
}

FaultInjector::State& FaultInjector::state(int server_id) {
  PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
               "fault injector: unknown server id");
  return states_[static_cast<std::size_t>(server_id)];
}

bool FaultInjector::is_down(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
               "fault injector: unknown server id");
  return states_[static_cast<std::size_t>(server_id)] == State::kDown;
}

bool FaultInjector::is_degraded(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
               "fault injector: unknown server id");
  return states_[static_cast<std::size_t>(server_id)] == State::kDegraded;
}

void FaultInjector::emit(const std::string& message) {
  if (trace_) trace_->emit(engine_.now(), "fault", message);
}

void FaultInjector::schedule(const FaultEvent& event) {
  PRAN_REQUIRE(!event.servers.empty(), "fault event names no servers");
  PRAN_REQUIRE(event.at >= engine_.now(), "fault event time is in the past");
  PRAN_REQUIRE(event.duration >= 0, "fault duration must be non-negative");
  if (event.kind == FaultKind::kDegrade)
    PRAN_REQUIRE(event.degrade_factor > 0.0 && event.degrade_factor <= 1.0,
                 "degrade factor outside (0, 1]");
  PRAN_REQUIRE(event.kind == FaultKind::kCrash ||
                   event.kind == FaultKind::kDegrade ||
                   event.kind == FaultKind::kCorrelated,
               "injector schedules server faults only; fronthaul impairments "
               "go through faults::FronthaulImpairments");
  for (int server_id : event.servers) {
    PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
                 "fault event names an unknown server");
    const FaultKind kind = event.kind;
    const double factor = event.degrade_factor;
    engine_.schedule_at(event.at, [this, server_id, kind, factor] {
      deliver_fault(server_id, kind, factor);
    });
    if (event.duration > 0) schedule_restore(event.at + event.duration, server_id);
  }
}

void FaultInjector::schedule_restore(sim::Time at, int server_id) {
  PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
               "restore names an unknown server");
  PRAN_REQUIRE(at >= engine_.now(), "restore time is in the past");
  engine_.schedule_at(at, [this, server_id] { deliver_restore(server_id); });
}

void FaultInjector::deliver_fault(int server_id, FaultKind kind,
                                  double degrade_factor) {
  State& st = state(server_id);
  if (st == State::kDown) {
    emit("server " + std::to_string(server_id) + " already down; " +
         fault_kind_name(kind) + " fault ignored");
    return;
  }
  switch (kind) {
    case FaultKind::kDegrade:
      if (st == State::kDegraded) {
        emit("server " + std::to_string(server_id) +
             " already degraded; degrade fault ignored");
        return;
      }
      if (on_fault_) on_fault_(server_id, kind);
      executor_.degrade_server(server_id, degrade_factor);
      st = State::kDegraded;
      ++degrade_faults_;
      break;
    case FaultKind::kCrash:
    case FaultKind::kCorrelated:
      // A crash supersedes any degradation in effect: close that record.
      if (st == State::kDegraded) {
        executor_.restore_speed(server_id);
        log_[static_cast<std::size_t>(
                 open_record_[static_cast<std::size_t>(server_id)])]
            .recovered_at = engine_.now();
      }
      // Listener first (oracle-mode re-placement), then the actual loss, so
      // the executor's drop callback sees the post-failover placement.
      if (on_fault_) on_fault_(server_id, kind);
      executor_.fail_server(server_id);
      st = State::kDown;
      ++crash_faults_;
      if (kind == FaultKind::kCorrelated) ++correlated_faults_;
      break;
    case FaultKind::kFronthaulLoss:
    case FaultKind::kFronthaulJitter:
    case FaultKind::kFronthaulBrownout:
      PRAN_CHECK(false,
                 "fronthaul impairments are delivered by "
                 "faults::FronthaulImpairments, not the server injector");
  }
  ++faults_delivered_;
  open_record_[static_cast<std::size_t>(server_id)] =
      static_cast<int>(log_.size());
  log_.push_back(FaultRecord{kind, server_id, engine_.now(), -1});
  emit("server " + std::to_string(server_id) + " " + fault_kind_name(kind) +
       (kind == FaultKind::kDegrade
            ? " (x" + std::to_string(degrade_factor) + " speed)"
            : ""));
}

void FaultInjector::deliver_restore(int server_id) {
  State& st = state(server_id);
  if (st == State::kHealthy) {
    emit("server " + std::to_string(server_id) +
         " already healthy; restore ignored");
    return;
  }
  const int rec = open_record_[static_cast<std::size_t>(server_id)];
  PRAN_CHECK(rec >= 0 && rec < static_cast<int>(log_.size()),
             "faulted server has no open fault record");
  const FaultKind kind = log_[static_cast<std::size_t>(rec)].kind;
  switch (st) {
    case State::kHealthy:
      return;  // Handled above; case kept so the switch stays exhaustive.
    case State::kDown:
      executor_.restore_server(server_id);
      break;
    case State::kDegraded:
      executor_.restore_speed(server_id);
      break;
  }
  log_[static_cast<std::size_t>(rec)].recovered_at = engine_.now();
  open_record_[static_cast<std::size_t>(server_id)] = -1;
  st = State::kHealthy;
  emit("server " + std::to_string(server_id) + " restored (" +
       fault_kind_name(kind) + " over)");
  if (on_recovery_) on_recovery_(server_id, kind);
}

void FaultInjector::arm_stochastic(const StochasticFaultConfig& config) {
  PRAN_REQUIRE(config.enabled(), "stochastic config has mtbf_seconds == 0");
  PRAN_REQUIRE(config.mttr_seconds > 0.0, "mttr must be positive");
  PRAN_REQUIRE(
      config.degrade_probability >= 0.0 && config.degrade_probability <= 1.0,
      "degrade probability outside [0, 1]");
  PRAN_REQUIRE(config.degrade_factor > 0.0 && config.degrade_factor <= 1.0,
               "degrade factor outside (0, 1]");
  PRAN_REQUIRE(config.correlated_probability >= 0.0 &&
                   config.correlated_probability <= 1.0,
               "correlated probability outside [0, 1]");
  PRAN_REQUIRE(config.group_size >= 0, "group size must be non-negative");
  PRAN_REQUIRE(!stochastic_armed_, "stochastic faults already armed");
  stochastic_ = config;
  stochastic_armed_ = true;
  for (int s = 0; s < executor_.num_servers(); ++s)
    schedule_next_stochastic_fault(s);
}

void FaultInjector::schedule_next_stochastic_fault(int server_id) {
  Rng& rng = streams_[static_cast<std::size_t>(server_id)];
  const sim::Time dt =
      sim::from_seconds(rng.exponential(1.0 / stochastic_.mtbf_seconds));
  engine_.schedule_in(std::max<sim::Time>(dt, 1),
                      [this, server_id] { stochastic_fault(server_id); });
}

void FaultInjector::stochastic_fault(int server_id) {
  // Every draw happens unconditionally and in a fixed order on the
  // server's own substream, so the fault timeline depends only on
  // (seed, server id) — never on cross-server event interleaving.
  Rng& rng = streams_[static_cast<std::size_t>(server_id)];
  const double kind_draw = rng.uniform();
  const double repair_s =
      rng.exponential(1.0 / stochastic_.mttr_seconds);
  const double corr_draw = rng.uniform();
  const sim::Time next_dt =
      sim::from_seconds(rng.exponential(1.0 / stochastic_.mtbf_seconds));
  const sim::Time repair = std::max<sim::Time>(sim::from_seconds(repair_s), 1);

  if (kind_draw < stochastic_.degrade_probability) {
    deliver_fault(server_id, FaultKind::kDegrade, stochastic_.degrade_factor);
    schedule_restore(engine_.now() + repair, server_id);
  } else if (stochastic_.group_size > 1 &&
             corr_draw < stochastic_.correlated_probability) {
    // Power-domain loss: the whole group crashes and repairs together.
    const int group = server_id / stochastic_.group_size;
    const int first = group * stochastic_.group_size;
    const int last =
        std::min(first + stochastic_.group_size, executor_.num_servers());
    for (int m = first; m < last; ++m) {
      deliver_fault(m, FaultKind::kCorrelated, stochastic_.degrade_factor);
      schedule_restore(engine_.now() + repair, m);
    }
  } else {
    deliver_fault(server_id, FaultKind::kCrash, stochastic_.degrade_factor);
    schedule_restore(engine_.now() + repair, server_id);
  }
  engine_.schedule_in(repair + std::max<sim::Time>(next_dt, 1),
                      [this, server_id] { stochastic_fault(server_id); });
}

}  // namespace pran::faults
