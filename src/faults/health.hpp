#pragma once

/// \file health.hpp
/// HealthMonitor: heartbeat-based failure detection.
///
/// In the real system the controller cannot observe a server's death — it
/// can only notice missing heartbeats. The monitor polls every server each
/// `heartbeat_period`; after `miss_threshold` consecutive missed beats it
/// *declares* the server down and fires the down callback. Until that
/// declaration the controller keeps the stale placement and the deployment
/// keeps submitting subframes to the corpse — the "blind window" whose
/// drops bench E18 measures. Recovery is symmetric: `recovery_threshold`
/// consecutive healthy beats before the server is declared back.
///
/// The worst-case detection latency is therefore
///     heartbeat_period * miss_threshold
/// (a fault landing just after a beat waits almost a full extra period).
/// A deployment with heartbeat_period == 0 skips the monitor entirely and
/// degenerates to the oracle of bench E8: detection at the fault instant.

#include <functional>
#include <vector>

#include "cluster/executor.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pran::faults {

struct HealthMonitorConfig {
  sim::Time heartbeat_period = 10 * sim::kMillisecond;
  /// Consecutive missed beats before a server is declared down.
  int miss_threshold = 3;
  /// Consecutive healthy beats before a recovered server is declared up.
  int recovery_threshold = 2;
};

class HealthMonitor {
 public:
  /// (server, declared_at). Fired once per down/up transition.
  using TransitionCallback = std::function<void(int, sim::Time)>;

  /// `trace` may be null. Polling starts at the first heartbeat after
  /// construction (t = now + heartbeat_period).
  HealthMonitor(sim::Engine& engine, const cluster::Executor& executor,
                HealthMonitorConfig config, sim::Trace* trace);

  void set_down_callback(TransitionCallback cb) { on_down_ = std::move(cb); }
  void set_up_callback(TransitionCallback cb) { on_up_ = std::move(cb); }

  /// The monitor's current belief (lags reality by the detection delay).
  bool believes_down(int server_id) const;

  int detections() const noexcept { return detections_; }
  int recoveries_observed() const noexcept { return recoveries_; }
  const HealthMonitorConfig& config() const noexcept { return config_; }

 private:
  void heartbeat();

  sim::Engine& engine_;
  const cluster::Executor& executor_;
  HealthMonitorConfig config_;
  sim::Trace* trace_;
  std::vector<int> missed_;        ///< Consecutive missed beats per server.
  std::vector<int> healthy_;       ///< Consecutive good beats while believed down.
  std::vector<bool> believed_down_;
  int detections_ = 0;
  int recoveries_ = 0;
  TransitionCallback on_down_;
  TransitionCallback on_up_;
};

}  // namespace pran::faults
