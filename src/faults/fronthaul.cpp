#include "faults/fronthaul.hpp"

#include "common/check.hpp"

namespace pran::faults {

FronthaulImpairments::FronthaulImpairments(
    const FronthaulImpairmentConfig& config, std::uint64_t seed)
    : config_(config) {
  const auto& ge = config_.loss;
  PRAN_REQUIRE(ge.p_good_to_bad >= 0.0 && ge.p_good_to_bad <= 1.0,
               "Gilbert-Elliott p_good_to_bad outside [0, 1]");
  PRAN_REQUIRE(ge.p_bad_to_good >= 0.0 && ge.p_bad_to_good <= 1.0,
               "Gilbert-Elliott p_bad_to_good outside [0, 1]");
  PRAN_REQUIRE(ge.loss_good >= 0.0 && ge.loss_good <= 1.0,
               "Gilbert-Elliott loss_good outside [0, 1]");
  PRAN_REQUIRE(ge.loss_bad >= 0.0 && ge.loss_bad <= 1.0,
               "Gilbert-Elliott loss_bad outside [0, 1]");
  PRAN_REQUIRE(config_.jitter.max_jitter >= 0,
               "jitter bound must be non-negative");
  if (config_.brownout.enabled()) {
    PRAN_REQUIRE(config_.brownout.mean_duration_seconds > 0.0,
                 "brownout duration must be positive");
    PRAN_REQUIRE(config_.brownout.capacity_factor > 0.0 &&
                     config_.brownout.capacity_factor <= 1.0,
                 "brownout capacity factor outside (0, 1]");
  }
  // Fixed substream assignment: the loss sequence depends only on
  // (seed, burst index), never on whether jitter or brownouts are on.
  const Rng root(seed);
  loss_rng_ = root.stream(0);
  jitter_rng_ = root.stream(1);
  brownout_rng_ = root.stream(2);
  if (config_.brownout.enabled()) {
    brownout_edge_ = sim::from_seconds(
        brownout_rng_.exponential(1.0 / config_.brownout.mtbb_seconds));
  }
}

void FronthaulImpairments::advance_brownout_timeline(sim::Time now) {
  if (!config_.brownout.enabled()) return;
  while (now >= brownout_edge_) {
    if (in_brownout_) {
      // Brownout ends at the edge; close its record.
      log_.push_back(FaultRecord{FaultKind::kFronthaulBrownout, -1,
                                 brownout_start_, brownout_edge_});
      in_brownout_ = false;
      brownout_edge_ += std::max<sim::Time>(
          sim::from_seconds(
              brownout_rng_.exponential(1.0 / config_.brownout.mtbb_seconds)),
          1);
    } else {
      in_brownout_ = true;
      ++brownouts_;
      brownout_start_ = brownout_edge_;
      brownout_edge_ += std::max<sim::Time>(
          sim::from_seconds(brownout_rng_.exponential(
              1.0 / config_.brownout.mean_duration_seconds)),
          1);
    }
  }
}

fronthaul::BurstImpairment FronthaulImpairments::apply(sim::Time ready,
                                                       units::Bits bits) {
  PRAN_REQUIRE(bits >= units::Bits{0}, "burst size must be non-negative");
  ++bursts_seen_;

  fronthaul::BurstImpairment out;

  // Loss chain: both draws happen unconditionally and in fixed order, so
  // the sequence is a pure function of (seed, burst index).
  if (config_.loss.enabled()) {
    const double transition_draw = loss_rng_.uniform();
    const double loss_draw = loss_rng_.uniform();
    const bool was_bad = bad_state_;
    if (bad_state_) {
      if (transition_draw < config_.loss.p_bad_to_good) bad_state_ = false;
    } else {
      if (transition_draw < config_.loss.p_good_to_bad) bad_state_ = true;
    }
    if (was_bad && !bad_state_ && open_loss_episode_) {
      log_.back().recovered_at = ready;
      open_loss_episode_ = false;
    }
    const double p_loss =
        bad_state_ ? config_.loss.loss_bad : config_.loss.loss_good;
    if (loss_draw < p_loss) {
      out.lost = true;
      ++bursts_lost_;
      if (bad_state_ && !open_loss_episode_) {
        log_.push_back(FaultRecord{FaultKind::kFronthaulLoss, -1, ready, -1});
        open_loss_episode_ = true;
      }
    }
  }

  if (config_.jitter.enabled()) {
    const double draw = jitter_rng_.uniform();
    out.extra_delay = static_cast<sim::Time>(
        draw * static_cast<double>(config_.jitter.max_jitter));
  }

  advance_brownout_timeline(ready);
  if (in_brownout_) out.capacity_factor = config_.brownout.capacity_factor;

  return out;
}

}  // namespace pran::faults
