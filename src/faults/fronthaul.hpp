#pragma once

/// \file fronthaul.hpp
/// Fronthaul transport impairments: the fault domain PR 3 left out.
///
/// Real CPRI/eCPRI transports are not lossless FIFOs. Three impairment
/// processes reproduce what they actually suffer:
///
///   * Gilbert–Elliott burst loss — a two-state Markov chain (Good/Bad)
///     advanced once per burst; each state has its own per-burst loss
///     probability, so losses cluster the way switch-buffer overruns and
///     microwave fades do instead of arriving i.i.d.;
///   * bounded jitter — per-burst forwarding delay, uniform in
///     [0, max_jitter], added to the arrival time (delivery is late, the
///     wire schedule is untouched);
///   * link-rate brownouts — an on/off process (exponential time-to-
///     brownout, exponential duration) during which the effective link
///     capacity is multiplied by `capacity_factor` (an LAG member down, a
///     shared-fabric co-tenant, an optics step-down).
///
/// Determinism contract (same as the server-fault injector): all draws
/// come from fixed `Rng::stream()` substreams of one seed — stream 0
/// drives the loss chain, stream 1 the jitter, stream 2 the brownout
/// timeline — and every per-burst draw happens unconditionally in fixed
/// order. The loss sequence therefore depends only on (seed, burst
/// index): enabling or re-tuning jitter or brownouts cannot perturb which
/// bursts are lost, and a surrounding sweep is invariant in --threads
/// because each deployment owns its own impairment instance.
///
/// The model plugs into FronthaulLink::set_impairment_hook via apply();
/// bursts must be presented in nondecreasing ready order (the link
/// enforces the same FIFO ingress contract).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "fronthaul/link.hpp"
#include "sim/time.hpp"

namespace pran::faults {

/// Two-state Markov burst-loss process, advanced once per burst.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  ///< Per-burst Good -> Bad probability.
  double p_bad_to_good = 0.3;  ///< Per-burst Bad -> Good probability.
  double loss_good = 0.0;      ///< Per-burst loss probability in Good.
  double loss_bad = 0.5;      ///< Per-burst loss probability in Bad.

  bool enabled() const noexcept {
    return (p_good_to_bad > 0.0 && loss_bad > 0.0) || loss_good > 0.0;
  }
  /// Stationary expected loss rate of the chain.
  double mean_loss_rate() const noexcept {
    const double denom = p_good_to_bad + p_bad_to_good;
    if (denom <= 0.0) return loss_good;
    const double p_bad = p_good_to_bad / denom;
    return (1.0 - p_bad) * loss_good + p_bad * loss_bad;
  }
};

/// Per-burst forwarding jitter, uniform in [0, max_jitter].
struct JitterConfig {
  sim::Time max_jitter = 0;  ///< 0 disables.

  bool enabled() const noexcept { return max_jitter > 0; }
};

/// On/off link-capacity brownouts.
struct BrownoutConfig {
  double mtbb_seconds = 0.0;          ///< Mean time between brownouts; 0 disables.
  double mean_duration_seconds = 0.05;  ///< Mean brownout length.
  double capacity_factor = 0.7;       ///< Rate multiplier while browned out.

  bool enabled() const noexcept { return mtbb_seconds > 0.0; }
};

struct FronthaulImpairmentConfig {
  GilbertElliottConfig loss;
  JitterConfig jitter;
  BrownoutConfig brownout;

  bool enabled() const noexcept {
    return loss.enabled() || jitter.enabled() || brownout.enabled();
  }
};

/// Deterministic impairment source for one fronthaul link. Stateful: the
/// loss chain and the brownout timeline advance with the bursts, so one
/// instance serves exactly one link.
class FronthaulImpairments {
 public:
  FronthaulImpairments(const FronthaulImpairmentConfig& config,
                       std::uint64_t seed);

  /// Impairment decision for the next burst. `ready` must be
  /// nondecreasing across calls (the link's FIFO ingress order).
  fronthaul::BurstImpairment apply(sim::Time ready, units::Bits bits);

  std::uint64_t bursts_seen() const noexcept { return bursts_seen_; }
  std::uint64_t bursts_lost() const noexcept { return bursts_lost_; }
  /// Completed + in-progress brownout episodes so far.
  std::uint64_t brownouts() const noexcept { return brownouts_; }
  /// True when the loss chain currently sits in the Bad state.
  bool in_bad_state() const noexcept { return bad_state_; }
  /// True when `last applied` burst fell inside a brownout.
  bool in_brownout() const noexcept { return in_brownout_; }

  /// Every impairment episode delivered so far: one kFronthaulLoss record
  /// per Bad-state excursion (at == first lost burst's ready time) and one
  /// kFronthaulBrownout record per brownout (recovered_at == its end).
  const std::vector<FaultRecord>& log() const noexcept { return log_; }

 private:
  void advance_brownout_timeline(sim::Time now);

  FronthaulImpairmentConfig config_;
  Rng loss_rng_;
  Rng jitter_rng_;
  Rng brownout_rng_;
  bool bad_state_ = false;
  bool open_loss_episode_ = false;
  bool in_brownout_ = false;
  sim::Time brownout_edge_ = 0;   ///< Next on/off transition time.
  sim::Time brownout_start_ = 0;  ///< Start of the current brownout.
  std::uint64_t bursts_seen_ = 0;
  std::uint64_t bursts_lost_ = 0;
  std::uint64_t brownouts_ = 0;
  std::vector<FaultRecord> log_;
};

}  // namespace pran::faults
