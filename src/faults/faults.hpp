#pragma once

/// \file faults.hpp
/// Fault model vocabulary shared by the injector, the health monitor and
/// the deployment layer.
///
/// Two fault domains share this vocabulary. Server faults reproduce the
/// failure classes a pooled RAN cluster actually sees:
///   kCrash      — whole-server loss (process/kernel/hardware death);
///   kDegrade    — a straggler: the server keeps answering heartbeats but
///                 its cores run at a fraction of nominal speed (thermal
///                 throttling, a noisy co-tenant, a dying DIMM);
///   kCorrelated — rack/power-domain loss: several servers crash at the
///                 same instant, defeating placements that spread a cell's
///                 backup capacity inside one domain.
/// Fronthaul faults reproduce what CPRI/eCPRI transports suffer
/// (delivered by faults::FronthaulImpairments, never by the injector):
///   kFronthaulLoss     — Gilbert–Elliott burst loss of I/Q bursts;
///   kFronthaulJitter   — bounded per-burst forwarding jitter;
///   kFronthaulBrownout — temporary link-capacity reduction.
///
/// Server faults are either scripted (FaultEvent) or drawn from
/// per-server exponential MTBF/MTTR processes (StochasticFaultConfig).
/// Stochastic draws come from `Rng::stream(server_id)` substreams, so a
/// run's fault timeline depends only on (seed, server id) — deterministic
/// and invariant to how many worker threads a surrounding sweep uses.
/// Fronthaul impairments follow the same discipline on their own
/// substreams (see fronthaul.hpp).

#include <vector>

#include "sim/time.hpp"

namespace pran::faults {

enum class FaultKind {
  kCrash,
  kDegrade,
  kCorrelated,
  kFronthaulLoss,
  kFronthaulJitter,
  kFronthaulBrownout,
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One scripted fault. At `at`, every server in `servers` crashes
/// (kCrash/kCorrelated) or starts running at `degrade_factor` of nominal
/// speed (kDegrade). A positive `duration` schedules recovery that much
/// later; 0 means the fault holds until an explicit restore.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  sim::Time at = 0;
  sim::Time duration = 0;
  std::vector<int> servers;
  double degrade_factor = 0.5;  ///< kDegrade only; in (0, 1].
};

/// Per-server stochastic fault process: exponential time-to-failure with
/// mean `mtbf_seconds`, exponential repair with mean `mttr_seconds`.
struct StochasticFaultConfig {
  double mtbf_seconds = 0.0;  ///< Mean time between failures; 0 disables.
  double mttr_seconds = 0.25;  ///< Mean time to repair.
  /// Fraction of faults that degrade the server instead of crashing it.
  double degrade_probability = 0.0;
  double degrade_factor = 0.5;  ///< Speed multiplier while degraded.
  /// Power-domain model: servers [k*group_size, (k+1)*group_size) share a
  /// domain; a crash escalates to the whole domain with this probability.
  int group_size = 0;
  double correlated_probability = 0.0;

  bool enabled() const noexcept { return mtbf_seconds > 0.0; }
};

/// One delivered fault, for KPI extraction and tests. Fronthaul records
/// (emitted by FronthaulImpairments) carry server_id == -1: the transport
/// is a shared resource, not a server.
struct FaultRecord {
  FaultKind kind = FaultKind::kCrash;
  int server_id = -1;
  sim::Time at = 0;
  sim::Time recovered_at = -1;  ///< -1 while the fault is still in effect.
};

}  // namespace pran::faults
