#pragma once

/// \file injector.hpp
/// FaultInjector: the single authority for delivering faults to the
/// compute cluster. Scripted plans and stochastic MTBF/MTTR processes both
/// funnel through it, so every crash/degrade/restore is idempotent, traced
/// and counted in one place. Nothing else in the tree may call
/// `Executor::fail_server` / `restore_server` / `degrade_server` directly
/// (enforced by the pran-lint `fault-bypass` rule).
///
/// Delivery contract: the fault callback fires *before* the executor state
/// changes, so a listener running in oracle mode can re-place the victim's
/// cells first and the executor's drop callback then forwards in-flight
/// jobs to their new homes (the ordering bench E8 depends on). The
/// recovery callback fires *after* the executor is healthy again.

#include <functional>
#include <vector>

#include "cluster/executor.hpp"
#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pran::faults {

class FaultInjector {
 public:
  /// (server, kind) just before the fault takes effect on the executor.
  using FaultCallback = std::function<void(int, FaultKind)>;
  /// (server, kind of the fault that ended) after the executor is healthy.
  using RecoveryCallback = std::function<void(int, FaultKind)>;

  /// `trace` may be null. All stochastic draws derive from `seed`.
  FaultInjector(sim::Engine& engine, cluster::Executor& executor,
                sim::Trace* trace, std::uint64_t seed);

  /// Schedules a scripted fault (and its recovery when duration > 0).
  void schedule(const FaultEvent& event);

  /// Schedules recovery of a crashed or degraded server at time `at`.
  /// Restoring a healthy server is an idempotent no-op (traced).
  void schedule_restore(sim::Time at, int server_id);

  /// Arms the per-server exponential fault processes. Call at most once.
  void arm_stochastic(const StochasticFaultConfig& config);

  void set_fault_callback(FaultCallback cb) { on_fault_ = std::move(cb); }
  void set_recovery_callback(RecoveryCallback cb) {
    on_recovery_ = std::move(cb);
  }

  bool is_down(int server_id) const;
  bool is_degraded(int server_id) const;

  /// Faults actually delivered (idempotent skips excluded).
  int faults_delivered() const noexcept { return faults_delivered_; }
  int crash_faults() const noexcept { return crash_faults_; }
  int degrade_faults() const noexcept { return degrade_faults_; }
  /// Servers lost to correlated-group escalation (subset of crash_faults).
  int correlated_faults() const noexcept { return correlated_faults_; }

  /// Every delivered fault in delivery order.
  const std::vector<FaultRecord>& log() const noexcept { return log_; }

 private:
  enum class State { kHealthy, kDown, kDegraded };

  void deliver_fault(int server_id, FaultKind kind, double degrade_factor);
  void deliver_restore(int server_id);
  void schedule_next_stochastic_fault(int server_id);
  void stochastic_fault(int server_id);
  void emit(const std::string& message);
  State& state(int server_id);

  sim::Engine& engine_;
  cluster::Executor& executor_;
  sim::Trace* trace_;
  Rng rng_root_;
  std::vector<Rng> streams_;  ///< One substream per server (stochastic).
  std::vector<State> states_;
  /// log_ index of the fault currently holding each server down/degraded.
  std::vector<int> open_record_;
  StochasticFaultConfig stochastic_;
  bool stochastic_armed_ = false;
  int faults_delivered_ = 0;
  int crash_faults_ = 0;
  int degrade_faults_ = 0;
  int correlated_faults_ = 0;
  std::vector<FaultRecord> log_;
  FaultCallback on_fault_;
  RecoveryCallback on_recovery_;
};

}  // namespace pran::faults
