#include "faults/control_plane.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::faults {

ControlPlaneChannel::ControlPlaneChannel(
    const ControlPlaneImpairmentConfig& config, std::uint64_t seed)
    : config_(config) {
  PRAN_REQUIRE(config_.loss_probability >= 0.0 &&
                   config_.loss_probability <= 1.0,
               "control-plane loss probability outside [0, 1]");
  PRAN_REQUIRE(config_.base_delay >= 0,
               "control-plane base delay must be non-negative");
  PRAN_REQUIRE(config_.max_jitter >= 0,
               "control-plane jitter bound must be non-negative");
  PRAN_REQUIRE(config_.reorder_probability >= 0.0 &&
                   config_.reorder_probability <= 1.0,
               "control-plane reorder probability outside [0, 1]");
  PRAN_REQUIRE(config_.reorder_probability == 0.0 ||
                   config_.reorder_delay > 0,
               "reordering needs a positive reorder delay");
  // Fixed substream assignment: the loss sequence depends only on
  // (seed, message index), never on whether jitter or reordering is on.
  const Rng root(seed);
  loss_rng_ = root.stream(0);
  jitter_rng_ = root.stream(1);
  reorder_rng_ = root.stream(2);
}

ControlDelivery ControlPlaneChannel::send(sim::Time now) {
  ControlDelivery out;
  out.seq = sent_++;

  // All three draws happen unconditionally and in fixed order so the
  // outcome of message n is a pure function of (seed, n).
  const double loss_draw = loss_rng_.uniform();
  const double jitter_draw = jitter_rng_.uniform();
  const double reorder_draw = reorder_rng_.uniform();

  const bool scripted =
      std::find(config_.scripted_drops.begin(), config_.scripted_drops.end(),
                out.seq) != config_.scripted_drops.end();
  if (scripted || loss_draw < config_.loss_probability) {
    out.lost = true;
    ++lost_;
    log_.push_back(out);
    return out;
  }

  sim::Time delay = config_.base_delay;
  if (config_.max_jitter > 0)
    delay += static_cast<sim::Time>(
        jitter_draw * static_cast<double>(config_.max_jitter));
  if (config_.reorder_probability > 0.0 &&
      reorder_draw < config_.reorder_probability) {
    out.reordered = true;
    ++reordered_;
    delay += config_.reorder_delay;
  }
  out.deliver_at = now + delay;
  log_.push_back(out);
  return out;
}

}  // namespace pran::faults
