#include "faults/health.hpp"

#include <string>

#include "common/check.hpp"

namespace pran::faults {

HealthMonitor::HealthMonitor(sim::Engine& engine,
                             const cluster::Executor& executor,
                             HealthMonitorConfig config, sim::Trace* trace)
    : engine_(engine), executor_(executor), config_(config), trace_(trace) {
  PRAN_REQUIRE(config_.heartbeat_period > 0,
               "health monitor needs a positive heartbeat period");
  PRAN_REQUIRE(config_.miss_threshold >= 1,
               "miss threshold must be at least 1");
  PRAN_REQUIRE(config_.recovery_threshold >= 1,
               "recovery threshold must be at least 1");
  const std::size_t n = static_cast<std::size_t>(executor_.num_servers());
  missed_.assign(n, 0);
  healthy_.assign(n, 0);
  believed_down_.assign(n, false);
  engine_.schedule_in(config_.heartbeat_period, [this] { heartbeat(); });
}

bool HealthMonitor::believes_down(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < executor_.num_servers(),
               "health monitor: unknown server id");
  return believed_down_[static_cast<std::size_t>(server_id)];
}

void HealthMonitor::heartbeat() {
  for (int s = 0; s < executor_.num_servers(); ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    const bool answered = !executor_.is_failed(s);
    if (!believed_down_[i]) {
      if (answered) {
        missed_[i] = 0;
        continue;
      }
      if (++missed_[i] < config_.miss_threshold) continue;
      believed_down_[i] = true;
      missed_[i] = 0;
      healthy_[i] = 0;
      ++detections_;
      if (trace_)
        trace_->emit(engine_.now(), "health",
                     "server " + std::to_string(s) + " declared down after " +
                         std::to_string(config_.miss_threshold) +
                         " missed heartbeats");
      if (on_down_) on_down_(s, engine_.now());
    } else {
      if (!answered) {
        healthy_[i] = 0;
        continue;
      }
      if (++healthy_[i] < config_.recovery_threshold) continue;
      believed_down_[i] = false;
      healthy_[i] = 0;
      missed_[i] = 0;
      ++recoveries_;
      if (trace_)
        trace_->emit(engine_.now(), "health",
                     "server " + std::to_string(s) + " declared up after " +
                         std::to_string(config_.recovery_threshold) +
                         " healthy heartbeats");
      if (on_up_) on_up_(s, engine_.now());
    }
  }
  engine_.schedule_in(config_.heartbeat_period, [this] { heartbeat(); });
}

}  // namespace pran::faults
