#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "telemetry/clock.hpp"

namespace pran::core {
namespace {

void validate(const PlacementProblem& p) {
  PRAN_REQUIRE(!p.cells.empty(), "placement problem has no cells");
  PRAN_REQUIRE(!p.servers.empty(), "placement problem has no servers");
  PRAN_REQUIRE(p.headroom > 0.0 && p.headroom <= 1.0,
               "headroom outside (0, 1]");
  for (const auto& c : p.cells)
    PRAN_REQUIRE(c.gops_per_tti >= 0.0, "cell demand must be non-negative");
  if (p.previous)
    PRAN_REQUIRE(p.previous->size() == p.cells.size(),
                 "previous placement has a different cell count");
  PRAN_REQUIRE(p.migration_weight >= 0.0,
               "migration weight must be non-negative");
}

double budget(const PlacementProblem& p, std::size_t s) {
  return p.headroom * p.servers[s].gops_per_tti();
}

}  // namespace

int PlacementResult::active_servers() const {
  std::vector<int> seen;
  for (int s : server_of_cell) {
    if (s < 0) continue;  // cells in outage occupy no server
    if (std::find(seen.begin(), seen.end(), s) == seen.end())
      seen.push_back(s);
  }
  return static_cast<int>(seen.size());
}

int PlacementResult::migrations_from(const std::vector<int>& previous) const {
  PRAN_REQUIRE(previous.size() == server_of_cell.size(),
               "placement size mismatch");
  int moves = 0;
  for (std::size_t i = 0; i < previous.size(); ++i)
    if (previous[i] != server_of_cell[i] && previous[i] >= 0) ++moves;
  return moves;
}

std::vector<double> server_loads(const PlacementProblem& problem,
                                 const std::vector<int>& assignment) {
  PRAN_REQUIRE(assignment.size() == problem.cells.size(),
               "assignment size mismatch");
  std::vector<double> load(problem.servers.size(), 0.0);
  for (std::size_t c = 0; c < assignment.size(); ++c) {
    const int s = assignment[c];
    PRAN_REQUIRE(s >= 0 && static_cast<std::size_t>(s) < problem.servers.size(),
                 "assignment references an unknown server");
    load[static_cast<std::size_t>(s)] += problem.cells[c].gops_per_tti;
  }
  return load;
}

bool placement_fits(const PlacementProblem& problem,
                    const std::vector<int>& assignment) {
  const auto loads = server_loads(problem, assignment);
  for (std::size_t s = 0; s < loads.size(); ++s)
    if (loads[s] > budget(problem, s) + 1e-9) return false;
  return true;
}

bool placement_survives_any_single_failure(
    const PlacementProblem& problem, const std::vector<int>& assignment) {
  const auto loads = server_loads(problem, assignment);
  const std::size_t S = problem.servers.size();
  if (S < 2) return false;
  for (std::size_t victim = 0; victim < S; ++victim) {
    if (loads[victim] <= 0.0) continue;
    // The victim's cells, largest first — the order Controller's failover
    // rescue uses — into the survivors' residual headroom.
    std::vector<std::size_t> cells;
    for (std::size_t c = 0; c < assignment.size(); ++c)
      if (static_cast<std::size_t>(assignment[c]) == victim) cells.push_back(c);
    std::sort(cells.begin(), cells.end(), [&](std::size_t a, std::size_t b) {
      if (problem.cells[a].gops_per_tti != problem.cells[b].gops_per_tti)
        return problem.cells[a].gops_per_tti > problem.cells[b].gops_per_tti;
      return a < b;
    });
    // Rescue targets are the servers the plan actually uses: idle servers
    // are powered down / returned to the cloud in PRAN, so the guarantee
    // must hold among the hot survivors alone.
    std::vector<double> residual(S, 0.0);
    for (std::size_t s = 0; s < S; ++s)
      if (s != victim && loads[s] > 0.0)
        residual[s] = budget(problem, s) - loads[s];
    for (std::size_t c : cells) {
      const double d = problem.cells[c].gops_per_tti;
      bool placed = false;
      for (std::size_t s = 0; s < S && !placed; ++s) {
        if (s == victim || loads[s] <= 0.0 || residual[s] + 1e-12 < d)
          continue;
        residual[s] -= d;
        placed = true;
      }
      if (!placed) return false;
    }
  }
  return true;
}

lp::Model build_placement_model(const PlacementProblem& problem) {
  validate(problem);
  const std::size_t C = problem.cells.size();
  const std::size_t S = problem.servers.size();

  lp::Model model;
  // x_{c,s}: cell c on server s (row-major), then y_s: server s active.
  std::vector<std::vector<lp::Variable>> x(C);
  for (std::size_t c = 0; c < C; ++c) {
    x[c].reserve(S);
    for (std::size_t s = 0; s < S; ++s)
      x[c].push_back(model.add_binary(
          "x_c" + std::to_string(problem.cells[c].cell_id) + "_s" +
          std::to_string(s)));
  }
  std::vector<lp::Variable> y;
  y.reserve(S);
  for (std::size_t s = 0; s < S; ++s)
    y.push_back(model.add_binary("y_s" + std::to_string(s)));

  // Every cell on exactly one server.
  for (std::size_t c = 0; c < C; ++c) {
    lp::LinearExpr sum;
    for (std::size_t s = 0; s < S; ++s) sum += lp::LinearExpr(x[c][s]);
    model.add_constraint("assign_c" + std::to_string(c), sum == 1.0);
  }

  // Capacity with activation coupling.
  for (std::size_t s = 0; s < S; ++s) {
    lp::LinearExpr load;
    for (std::size_t c = 0; c < C; ++c)
      load += problem.cells[c].gops_per_tti * lp::LinearExpr(x[c][s]);
    load -= budget(problem, s) * lp::LinearExpr(y[s]);
    model.add_constraint("cap_s" + std::to_string(s), load <= 0.0);
  }

  // Survivable mode (aggregate N+1 redundancy): for every server s, the
  // headroom capacity of the *other* active servers must cover the whole
  // demand — since all cells are placed, load excluding s plus load on s
  // is the constant total D, so "spare excluding s >= load on s" is
  //   sum_{s' != s} h B_{s'} y_{s'} >= D.
  // The redundancy is priced by the active-server objective: survivability
  // costs exactly the extra y_s it forces on.
  if (problem.survivable && S >= 2) {
    double total_demand = 0.0;
    for (const auto& c : problem.cells) total_demand += c.gops_per_tti;
    for (std::size_t s = 0; s < S; ++s) {
      lp::LinearExpr spare;
      for (std::size_t o = 0; o < S; ++o)
        if (o != s) spare += budget(problem, o) * lp::LinearExpr(y[o]);
      model.add_constraint("survive_s" + std::to_string(s),
                           spare >= total_demand);
    }
  }

  // Symmetry breaking for runs of identical servers: y_s >= y_{s+1}.
  for (std::size_t s = 0; s + 1 < S; ++s) {
    const auto& a = problem.servers[s];
    const auto& b = problem.servers[s + 1];
    if (a.cores == b.cores && a.gops_per_core == b.gops_per_core) {
      model.add_constraint(
          "sym_s" + std::to_string(s),
          lp::LinearExpr(y[s]) - lp::LinearExpr(y[s + 1]) >= 0.0);
    }
  }

  // Objective: active servers, plus migration penalties when a previous
  // placement exists. move_c = 1 - x_{c, prev_c} (linear, no extra vars).
  lp::LinearExpr objective;
  for (std::size_t s = 0; s < S; ++s) objective += lp::LinearExpr(y[s]);
  if (problem.previous && problem.migration_weight > 0.0) {
    for (std::size_t c = 0; c < C; ++c) {
      const int prev = (*problem.previous)[c];
      if (prev < 0 || static_cast<std::size_t>(prev) >= S) continue;
      objective += problem.migration_weight *
                   (lp::LinearExpr(1.0) -
                    lp::LinearExpr(x[c][static_cast<std::size_t>(prev)]));
    }
  }
  model.set_objective(lp::Sense::kMinimize, objective);
  return model;
}

// ------------------------------------------------------------- MilpPlacer

MilpPlacer::MilpPlacer(lp::MilpOptions options) : options_(options) {}

PlacementResult MilpPlacer::place(const PlacementProblem& problem) {
  validate(problem);
  const std::size_t C = problem.cells.size();
  const std::size_t S = problem.servers.size();
  if (problem.survivable && S < 2) return {};  // nothing can survive a loss

  const lp::Model model = build_placement_model(problem);
  const auto milp = lp::MilpSolver{options_}.solve(model);

  PlacementResult result;
  result.solve_seconds = milp.solve_seconds;
  result.milp_nodes = milp.nodes;
  if (!milp.has_solution()) return result;

  result.feasible = true;
  result.proven_optimal = milp.status == lp::MilpStatus::kOptimal;
  result.server_of_cell.assign(C, -1);
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t s = 0; s < S; ++s) {
      if (milp.x[c * S + s] > 0.5) {
        result.server_of_cell[c] = static_cast<int>(s);
        break;
      }
    }
    PRAN_CHECK(result.server_of_cell[c] >= 0,
               "MILP solution leaves a cell unassigned");
  }
  PRAN_CHECK(placement_fits(problem, result.server_of_cell),
             "MILP solution violates capacity");

  if (problem.survivable &&
      !placement_survives_any_single_failure(problem, result.server_of_cell)) {
    // The survive_s constraints reserve aggregate spare across the powered
    // set y, but the solver may still concentrate the cells on a subset of
    // it. Re-pack across the whole powered set (first-fit with cap
    // tightening) so the redundancy is realised by the hosting servers
    // themselves; the powered-set size — the objective — is unchanged.
    std::vector<int> powered;
    for (std::size_t s = 0; s < S; ++s)
      if (milp.x[C * S + s] > 0.5) powered.push_back(static_cast<int>(s));
    PlacementProblem sub = problem;
    sub.previous.reset();
    sub.servers.clear();
    for (int s : powered)
      sub.servers.push_back(problem.servers[static_cast<std::size_t>(s)]);
    const PlacementResult packed = FirstFitPlacer(/*sticky=*/false).place(sub);
    if (!packed.feasible) {
      // Aggregate spare exists but no per-victim re-pack does
      // (bin-packing granularity): report honestly as infeasible.
      result.feasible = false;
      result.server_of_cell.clear();
      return result;
    }
    for (std::size_t c = 0; c < C; ++c)
      result.server_of_cell[c] =
          powered[static_cast<std::size_t>(packed.server_of_cell[c])];
    PRAN_CHECK(placement_fits(problem, result.server_of_cell),
               "survivable re-pack violates capacity");
    PRAN_CHECK(placement_survives_any_single_failure(problem,
                                                     result.server_of_cell),
               "survivable re-pack lost the redundancy guarantee");
  }
  return result;
}

// --------------------------------------------------------- FirstFitPlacer

PlacementResult FirstFitPlacer::place(const PlacementProblem& problem) {
  validate(problem);
  const std::size_t C = problem.cells.size();
  const std::size_t S = problem.servers.size();

  std::vector<std::size_t> order(C);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (problem.cells[a].gops_per_tti != problem.cells[b].gops_per_tti)
      return problem.cells[a].gops_per_tti > problem.cells[b].gops_per_tti;
    return a < b;
  });

  // One first-fit-decreasing pass with per-server caps scaled by
  // `cap_scale`. Returns the assignment, or nullopt when some cell has no
  // room under the scaled caps.
  auto pack = [&](double cap_scale) -> std::optional<std::vector<int>> {
    std::vector<double> load(S, 0.0);
    std::vector<bool> active(S, false);
    std::vector<int> assignment(C, -1);
    auto fits = [&](std::size_t s, double d) {
      return load[s] + d <= cap_scale * budget(problem, s) + 1e-12;
    };

    for (std::size_t idx : order) {
      const double d = problem.cells[idx].gops_per_tti;
      int chosen = -1;

      // Affinity: stay where the cell was last epoch if it still fits.
      if (sticky_ && problem.previous) {
        const int prev = (*problem.previous)[idx];
        if (prev >= 0 && static_cast<std::size_t>(prev) < S &&
            fits(static_cast<std::size_t>(prev), d))
          chosen = prev;
      }
      // First active server with room.
      if (chosen < 0) {
        for (std::size_t s = 0; s < S; ++s) {
          if (active[s] && fits(s, d)) {
            chosen = static_cast<int>(s);
            break;
          }
        }
      }
      // Open the smallest inactive server that fits.
      if (chosen < 0) {
        double best_budget = 0.0;
        for (std::size_t s = 0; s < S; ++s) {
          if (active[s] || !fits(s, d)) continue;
          const double b = budget(problem, s);
          if (chosen < 0 || b < best_budget) {
            chosen = static_cast<int>(s);
            best_budget = b;
          }
        }
      }
      if (chosen < 0) return std::nullopt;
      assignment[idx] = chosen;
      load[static_cast<std::size_t>(chosen)] += d;
      active[static_cast<std::size_t>(chosen)] = true;
    }
    return assignment;
  };

  const telemetry::Stopwatch stopwatch;
  auto finish = [&](std::optional<std::vector<int>> assignment) {
    PlacementResult result;
    result.solve_seconds = stopwatch.elapsed_seconds();
    if (!assignment) return result;  // infeasible under this heuristic
    result.server_of_cell = std::move(*assignment);
    result.feasible = true;
    PRAN_CHECK(placement_fits(problem, result.server_of_cell),
               "first-fit produced an overloaded server");
    return result;
  };

  if (!problem.survivable) return finish(pack(1.0));

  // Survivable mode: tighten the per-server cap until every victim's cells
  // re-pack into the survivors (tighter caps spread load over more
  // servers, leaving more residual headroom everywhere). A pack failure is
  // final — even tighter caps only get harder to satisfy.
  if (S < 2) return finish(std::nullopt);
  for (double cap_scale = 1.0; cap_scale > 0.05; cap_scale *= 0.85) {
    auto assignment = pack(cap_scale);
    if (!assignment) break;
    if (placement_survives_any_single_failure(problem, *assignment))
      return finish(std::move(assignment));
  }
  return finish(std::nullopt);
}

// -------------------------------------------------------- StaticPeakPlacer

PlacementResult StaticPeakPlacer::place(const PlacementProblem& problem) {
  validate(problem);
  // Budget every cell at its peak subframe cost: the demand a dedicated
  // appliance would be sized for.
  PlacementProblem peak = problem;
  for (auto& c : peak.cells) {
    PRAN_REQUIRE(c.peak_subframe_gops >= c.gops_per_tti,
                 "peak demand below sustained demand");
    c.gops_per_tti = c.peak_subframe_gops;
  }
  peak.previous.reset();
  FirstFitPlacer inner(/*sticky=*/false);
  PlacementResult result = inner.place(peak);
  if (result.feasible) {
    // The real loads are the sustained ones; peak sizing implies they fit.
    PRAN_CHECK(placement_fits(problem, result.server_of_cell),
               "peak-provisioned placement violates sustained capacity");
  }
  return result;
}

}  // namespace pran::core
