#include "core/pooling.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::core {

double PoolingSummary::savings() const noexcept {
  if (peak_provisioned_servers == 0) return 0.0;
  return 1.0 - static_cast<double>(pooled_peak_servers) /
                   static_cast<double>(peak_provisioned_servers);
}

double PoolingSummary::savings_vs_dedicated() const noexcept {
  if (dedicated_bbus == 0) return 0.0;
  return 1.0 - static_cast<double>(pooled_peak_servers) /
                   static_cast<double>(dedicated_bbus);
}

int ffd_bin_count(std::vector<units::Gops> demands, units::Gops capacity) {
  PRAN_REQUIRE(capacity > units::Gops{0.0}, "bin capacity must be positive");
  std::sort(demands.begin(), demands.end(), std::greater<>());
  std::vector<units::Gops> bins;
  const units::Gops slack{1e-12};
  for (units::Gops d : demands) {
    PRAN_REQUIRE(d >= units::Gops{0.0}, "demand must be non-negative");
    PRAN_REQUIRE(d <= capacity + slack,
                 "a single demand exceeds server capacity");
    bool placed = false;
    for (units::Gops& b : bins) {
      if (b + d <= capacity + slack) {
        b += d;
        placed = true;
        break;
      }
    }
    if (!placed) bins.push_back(d);
  }
  return static_cast<int>(bins.size());
}

PoolingSummary analyze_pooling(const workload::DayTrace& trace,
                               const cluster::ServerSpec& server,
                               double headroom, double safety) {
  PRAN_REQUIRE(headroom > 0.0 && headroom <= 1.0, "headroom outside (0, 1]");
  PRAN_REQUIRE(safety >= 1.0, "safety factor below 1");
  const units::Gops capacity{headroom * server.gops_per_tti()};

  PoolingSummary summary;
  const int slots = trace.slots_per_day();
  summary.series.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    PoolingPoint pt;
    pt.slot = s;
    pt.hour = trace.hour_of_slot(s);
    std::vector<units::Gops> demands;
    demands.reserve(trace.cells().size());
    for (const auto& cell : trace.cells()) {
      const units::Gops d{safety * cell.gops[static_cast<std::size_t>(s)]};
      demands.push_back(d);
      pt.total_gops += d;
    }
    pt.pooled_servers = ffd_bin_count(std::move(demands), capacity);
    summary.pooled_peak_servers =
        std::max(summary.pooled_peak_servers, pt.pooled_servers);
    summary.series.push_back(pt);
  }

  // Peak provisioning: each cell sized for its own busiest slot.
  std::vector<units::Gops> peaks;
  peaks.reserve(trace.cells().size());
  for (const auto& cell : trace.cells()) {
    double peak = 0.0;
    for (double g : cell.gops) peak = std::max(peak, g);
    peaks.push_back(units::Gops{safety * peak});
  }
  summary.peak_provisioned_servers = ffd_bin_count(std::move(peaks), capacity);
  summary.dedicated_bbus = static_cast<int>(trace.cells().size());
  return summary;
}

}  // namespace pran::core
