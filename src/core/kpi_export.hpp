#pragma once

/// \file kpi_export.hpp
/// Publishes end-of-run deployment state into a telemetry registry, so
/// one `--metrics-out` snapshot carries the deployment KPIs, fault and
/// quarantine statistics, solver stats and executor utilisation next to
/// the hot-path counters and span histograms.

#include <string_view>

#include "core/deployment.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::core {

/// Sets one gauge per DeploymentKpis field, named "<prefix><field>".
void export_kpis(const DeploymentKpis& kpis,
                 telemetry::MetricsRegistry& registry,
                 std::string_view prefix = "kpi.");

/// export_kpis() plus executor totals ("executor.*", including per-server
/// whole-run utilisation) and controller solver stats ("solver.*").
void export_deployment(const Deployment& deployment,
                       telemetry::MetricsRegistry& registry);

}  // namespace pran::core
