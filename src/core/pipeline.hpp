#pragma once

/// \file pipeline.hpp
/// The "programmable" in Programmable RAN.
///
/// PRAN's data plane is not a fixed modem: each cell's per-subframe
/// processing is described by a pipeline of named stages that operators can
/// rearrange and extend at run time (the paper's examples: interference
/// cancellation, CoMP combining, new scheduling hooks). In this simulation
/// library a stage contributes processing cost as a function of the cell
/// configuration and the subframe's allocations; the controller plans
/// capacity against the *programmed* pipeline, not a hard-coded one, so
/// adding a stage immediately shows up in placement and deadline behaviour.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lte/cost_model.hpp"

namespace pran::core {

/// One stage of a programmable pipeline.
struct StageSpec {
  std::string name;
  /// Giga-operations this stage adds to one subframe.
  std::function<double(const lte::CellConfig&,
                       std::span<const lte::Allocation>)>
      cost_fn;
};

/// An ordered stage list with edit operations. Value type; copies are
/// independent (cells can run different programs).
class Pipeline {
 public:
  /// The standard uplink receive pipeline, with per-stage costs taken from
  /// `model`. Stage names match lte::stage_name: fft, chest, equalize,
  /// demod, decode, mac.
  static Pipeline standard_uplink(lte::CostModel model = lte::CostModel{});

  /// Appends a stage at the end.
  Pipeline& append(StageSpec stage);

  /// Inserts after the named stage; throws if absent.
  Pipeline& insert_after(const std::string& existing, StageSpec stage);

  /// Removes the named stage; throws if absent.
  Pipeline& remove(const std::string& name);

  bool contains(const std::string& name) const;
  std::vector<std::string> stage_names() const;
  std::size_t size() const noexcept { return stages_.size(); }

  /// Total giga-operations of one subframe under this pipeline.
  double subframe_gops(const lte::CellConfig& cell,
                       std::span<const lte::Allocation> allocs) const;

  /// Extra cost relative to the standard pipeline cost `base_gops`
  /// (convenience for wiring custom stages into SubframeJob::extra_gops).
  double extra_gops(const lte::CellConfig& cell,
                    std::span<const lte::Allocation> allocs,
                    double base_gops) const;

 private:
  std::vector<StageSpec> stages_;
};

/// Library of optional stages an operator can program in.
namespace stages {

/// Successive interference cancellation: a second equalisation-and-demod
/// pass over the allocated PRBs (cost ~ antennas^2 * PRBs).
StageSpec interference_cancellation(double intensity = 1.0);

/// Coordinated multipoint combining across `cooperating_cells` neighbour
/// cells: extra per-PRB combining work proportional to the cluster size.
StageSpec comp_combining(int cooperating_cells);

/// Fine-grained uplink channel sounding for massive-MIMO-style CSI (cost ~
/// antennas * full band, independent of load).
StageSpec wideband_sounding();

}  // namespace stages

}  // namespace pran::core
