#pragma once

/// \file degradation.hpp
/// Graceful-degradation ladder for fronthaul impairments.
///
/// When the shared fronthaul degrades (burst loss, a brownout, queueing
/// creep), a PRAN deployment has cheaper currencies than deadline misses:
/// it can spend signal quality, then low-priority capacity, before it
/// spends coverage. The ladder encodes that order as rungs:
///
///   rung 0              — normal operation;
///   rungs 1..N          — step up the I/Q compression ratio by the
///                         configured ladder factors: the same traffic
///                         needs fewer wire bits, at an EVM -> BLER cost
///                         (see compression_penalty_bler);
///   rung N+1 (shed)     — additionally shed *doomed* subframes of the
///                         lowest-priority cells at ingress: a subframe
///                         that cannot make its deadline is dropped
///                         before it wastes wire and CPU, and its HARQ
///                         debt is settled honestly (retransmission or a
///                         lost transport block) instead of triggering a
///                         retransmission storm;
///   rung N+2 (quarant.) — additionally quarantine the lowest-priority
///                         cells outright, freeing their wire and compute
///                         for the cells that remain.
///
/// Anti-flap discipline: walking the ladder is cheap but oscillating on
/// it is not (each compression change re-tunes the whole fronthaul), so
/// transitions are hysteretic and rate-limited:
///   * at most ONE rung move per update() call (one per epoch) — the
///     per-epoch transition count is bounded by construction;
///   * stepping up requires `up_epochs` consecutive stressed epochs,
///     stepping down `down_epochs` consecutive calm ones, with separate
///     enter/exit thresholds per signal (classic Schmitt trigger);
///   * each time the controller re-escalates after a step-down, the calm
///     period required for the next step-down doubles (exponential
///     backoff, `backoff_multiplier`), so a marginal link settles on the
///     safe rung instead of flapping across the boundary.
///
/// The controller is pure decision logic: it holds no references into the
/// deployment and is driven entirely through update(), which keeps it
/// deterministic and trivially testable.

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace pran::core {

/// Per-epoch health signals the ladder watches (telemetry-fed).
struct DegradationSignals {
  double queue_delay_us = 0.0;  ///< Worst fronthaul queueing delay seen.
  double loss_rate = 0.0;       ///< Fronthaul burst-loss rate.
  double miss_rate = 0.0;       ///< Deadline-miss rate at the executor.
};

struct DegradationConfig {
  bool enabled = false;

  /// Extra compression multipliers for rungs 1..N, strictly increasing,
  /// each > 1. Applied on top of the deployment's base compression.
  std::vector<double> compression_ladder = {1.5, 2.0};
  /// Fraction of cells (lowest priority first) eligible for shedding on
  /// the shed rung. Cell priority is by index: cell 0 is most important.
  double shed_fraction = 0.25;
  /// Fraction of cells quarantined outright on the quarantine rung.
  double quarantine_fraction = 0.125;

  /// Schmitt-trigger thresholds: stressed when ANY signal exceeds its
  /// `*_up`, calm only when ALL signals are below their `*_down`.
  double queue_delay_up_us = 300.0;
  double queue_delay_down_us = 100.0;
  double loss_up = 0.005;
  double loss_down = 0.001;
  double miss_up = 0.005;
  double miss_down = 0.0005;

  /// Consecutive stressed epochs required to step up one rung.
  int up_epochs = 2;
  /// Consecutive calm epochs required to step down one rung (initial
  /// value; grows by backoff_multiplier on each re-escalation).
  int down_epochs = 4;
  double backoff_multiplier = 2.0;
};

/// Walks the rungs described above. One instance per deployment.
class DegradationController {
 public:
  DegradationController(const DegradationConfig& config, int num_cells);

  /// Feeds one epoch's signals; returns true when the rung changed.
  /// Moves at most one rung per call.
  bool update(sim::Time now, const DegradationSignals& signals);

  int rung() const noexcept { return rung_; }
  /// Highest rung: compression steps + shed + quarantine.
  int max_rung() const noexcept {
    return static_cast<int>(config_.compression_ladder.size()) + 2;
  }
  const char* rung_name() const noexcept;

  /// Extra compression factor the current rung asks for (1.0 on rung 0;
  /// the deepest ladder factor on the shed/quarantine rungs).
  double compression_multiplier() const noexcept;

  /// True on the shed rung or above.
  bool shedding() const noexcept { return rung_ >= shed_rung(); }
  /// True on the quarantine rung.
  bool quarantining() const noexcept { return rung_ >= quarantine_rung(); }

  /// True when `cell` may have doomed subframes shed while shedding() —
  /// the lowest-priority (highest-index) shed_fraction of cells.
  bool cell_shed_eligible(int cell) const;
  /// True when `cell` is quarantined by the current rung.
  bool cell_quarantined(int cell) const;

  /// Total rung transitions so far (up + down).
  std::uint64_t transitions() const noexcept { return transitions_; }
  /// Current calm-epoch requirement for the next step-down (grows with
  /// the exponential backoff; exposed for tests and KPIs).
  int current_down_hold() const noexcept { return down_hold_; }
  /// Time of the last transition (for traces).
  sim::Time last_transition() const noexcept { return last_transition_; }

 private:
  int shed_rung() const noexcept {
    return static_cast<int>(config_.compression_ladder.size()) + 1;
  }
  int quarantine_rung() const noexcept { return shed_rung() + 1; }

  DegradationConfig config_;
  int num_cells_;
  int rung_ = 0;
  int stressed_epochs_ = 0;
  int calm_epochs_ = 0;
  int down_hold_;           ///< Calm epochs needed for the next step-down.
  bool recovering_ = false; ///< A step-down happened since the last step-up.
  std::uint64_t transitions_ = 0;
  sim::Time last_transition_ = 0;
};

/// Transport-block failure probability added by compressing the fronthaul
/// at `total_ratio` (vs. 15-bit CPRI words): measures the EVM of a
/// BlockFloatCodec round-trip at the mantissa width that achieves the
/// ratio, on a deterministic Gaussian reference block, and maps EVM to
/// BLER with a power-law waterfall calibrated for 16-QAM-class traffic.
/// Returns 0 for ratio <= 1. Deterministic: same ratio, same penalty.
double compression_penalty_bler(double total_ratio);

}  // namespace pran::core
