#pragma once

/// \file degradation.hpp
/// Graceful-degradation ladder for fronthaul impairments.
///
/// When the shared fronthaul degrades (burst loss, a brownout, queueing
/// creep), a PRAN deployment has cheaper currencies than deadline misses:
/// it can spend signal quality, then low-priority capacity, before it
/// spends coverage. The ladder encodes that order as rungs:
///
///   rung 0              — normal operation;
///   rungs 1..N          — step up the I/Q compression ratio by the
///                         configured ladder factors: the same traffic
///                         needs fewer wire bits, at an EVM -> BLER cost
///                         (see compression_penalty_bler);
///   rung N+1 (shed)     — additionally shed *doomed* subframes of the
///                         lowest-priority cells at ingress: a subframe
///                         that cannot make its deadline is dropped
///                         before it wastes wire and CPU, and its HARQ
///                         debt is settled honestly (retransmission or a
///                         lost transport block) instead of triggering a
///                         retransmission storm;
///   rung N+2 (quarant.) — additionally quarantine the lowest-priority
///                         cells outright, freeing their wire and compute
///                         for the cells that remain.
///
/// Anti-flap discipline: walking the ladder is cheap but oscillating on
/// it is not (each compression change re-tunes the whole fronthaul), so
/// transitions are hysteretic and rate-limited:
///   * at most ONE rung move per update() call (one per epoch) — the
///     per-epoch transition count is bounded by construction;
///   * stepping up requires `up_epochs` consecutive stressed epochs,
///     stepping down `down_epochs` consecutive calm ones, with separate
///     enter/exit thresholds per signal (classic Schmitt trigger);
///   * each time the controller re-escalates after a step-down, the calm
///     period required for the next step-down doubles (exponential
///     backoff, `backoff_multiplier`), so a marginal link settles on the
///     safe rung instead of flapping across the boundary.
///
/// The controller is pure decision logic: it holds no references into the
/// deployment and is driven entirely through update(), which keeps it
/// deterministic and trivially testable.

#include <cstdint>
#include <vector>

#include "lte/cost_model.hpp"
#include "sim/time.hpp"

namespace pran::core {

/// Per-epoch health signals the ladder watches (telemetry-fed).
struct DegradationSignals {
  double queue_delay_us = 0.0;  ///< Worst fronthaul queueing delay seen.
  double loss_rate = 0.0;       ///< Fronthaul burst-loss rate.
  double miss_rate = 0.0;       ///< Deadline-miss rate at the executor.
  /// Worst per-server compute backlog, in TTIs of whole-server throughput
  /// (Executor::backlog_ttis). > 1 means a server is queueing more than a
  /// subframe period of undone work — compute, not the wire, is the
  /// bottleneck.
  double compute_pressure = 0.0;
};

/// What a ladder rung spends: each kind is a different currency, ordered
/// from cheapest (signal quality) to dearest (coverage).
enum class RungKind {
  kNormal,      ///< Rung 0 — no degradation.
  kCompress,    ///< Fronthaul I/Q compression step-up (EVM -> BLER cost).
  kEffort,      ///< Turbo decode-effort cap step-down (compute for BLER).
  kMcsCap,      ///< MCS ceiling — smaller transport blocks, less decode.
  kShed,        ///< Deadline-doomed subframes shed at ingress.
  kQuarantine,  ///< Lowest-priority cells taken off the air.
};

const char* rung_kind_name(RungKind kind) noexcept;

struct DegradationConfig {
  bool enabled = false;

  /// Extra compression multipliers for rungs 1..N, strictly increasing,
  /// each > 1. Applied on top of the deployment's base compression.
  std::vector<double> compression_ladder = {1.5, 2.0};
  /// Fraction of cells (lowest priority first) eligible for shedding on
  /// the shed rung. Cell priority is by index: cell 0 is most important.
  double shed_fraction = 0.25;
  /// Fraction of cells quarantined outright on the quarantine rung.
  double quarantine_fraction = 0.125;

  /// Turbo-iteration caps for the decode-effort rungs, strictly
  /// decreasing, each in [1, lte::kMaxTurboIterations). The rungs sit
  /// between the compression steps and the shed rung: spending BLER on
  /// cheaper decodes is preferred to shedding whole subframes. Empty
  /// (the default) adds no effort rungs, leaving the legacy rung layout
  /// untouched.
  std::vector<int> effort_ladder = {};
  /// MCS ceiling applied on the MCS-cap rung (between the effort rungs
  /// and shed): allocations above it are re-graded down, trading peak
  /// rate for smaller transport blocks. 0 disables the rung.
  int mcs_cap = 0;

  /// Schmitt-trigger thresholds: stressed when ANY signal exceeds its
  /// `*_up`, calm only when ALL signals are below their `*_down`.
  double queue_delay_up_us = 300.0;
  double queue_delay_down_us = 100.0;
  double loss_up = 0.005;
  double loss_down = 0.001;
  double miss_up = 0.005;
  double miss_down = 0.0005;
  /// Compute-pressure thresholds, in backlog TTIs (see
  /// DegradationSignals::compute_pressure).
  double compute_up_ttis = 2.0;
  double compute_down_ttis = 0.5;

  /// Consecutive stressed epochs required to step up one rung.
  int up_epochs = 2;
  /// Consecutive calm epochs required to step down one rung (initial
  /// value; grows by backoff_multiplier on each re-escalation).
  int down_epochs = 4;
  double backoff_multiplier = 2.0;
};

/// Walks the rungs described above. One instance per deployment.
class DegradationController {
 public:
  DegradationController(const DegradationConfig& config, int num_cells);

  /// Feeds one epoch's signals; returns true when the rung changed.
  /// Moves at most one rung per call.
  bool update(sim::Time now, const DegradationSignals& signals);

  int rung() const noexcept { return rung_; }
  /// Highest rung: compression steps + effort steps + optional MCS cap +
  /// shed + quarantine.
  int max_rung() const noexcept {
    return static_cast<int>(config_.compression_ladder.size()) +
           static_cast<int>(config_.effort_ladder.size()) +
           (config_.mcs_cap > 0 ? 1 : 0) + 2;
  }
  /// What the given rung spends (kNormal for rung 0).
  RungKind rung_kind(int rung) const noexcept;
  const char* rung_name() const noexcept;

  /// Extra compression factor the current rung asks for (1.0 on rung 0;
  /// the deepest ladder factor on every rung past the compression steps).
  double compression_multiplier() const noexcept;

  /// Turbo-iteration cap the current rung asks for:
  /// lte::kMaxTurboIterations (no cap) below the first effort rung, the
  /// matching ladder entry on an effort rung, and the deepest cap on
  /// every rung above them.
  int effort_cap() const noexcept;

  /// True when the current rung applies the MCS ceiling.
  bool mcs_capping() const noexcept {
    return config_.mcs_cap > 0 && rung_ >= mcs_rung();
  }
  int mcs_cap() const noexcept { return config_.mcs_cap; }

  /// True on the shed rung or above.
  bool shedding() const noexcept { return rung_ >= shed_rung(); }
  /// True on the quarantine rung.
  bool quarantining() const noexcept { return rung_ >= quarantine_rung(); }

  /// True when `cell` may have doomed subframes shed while shedding() —
  /// the lowest-priority (highest-index) shed_fraction of cells.
  bool cell_shed_eligible(int cell) const;
  /// True when `cell` is quarantined by the current rung.
  bool cell_quarantined(int cell) const;

  /// Total rung transitions so far (up + down).
  std::uint64_t transitions() const noexcept { return transitions_; }
  /// Current calm-epoch requirement for the next step-down (grows with
  /// the exponential backoff; exposed for tests and KPIs).
  int current_down_hold() const noexcept { return down_hold_; }
  /// Time of the last transition (for traces).
  sim::Time last_transition() const noexcept { return last_transition_; }

  /// Simulated time spent on `rung`, accumulated at each update() call
  /// (the dwell of the current rung since the last update is not yet
  /// included). Drives the per-rung dwell report in `pran-report
  /// --compute`.
  sim::Time dwell(int rung) const;

 private:
  int first_effort_rung() const noexcept {
    return static_cast<int>(config_.compression_ladder.size()) + 1;
  }
  int mcs_rung() const noexcept {
    // One past the last effort rung; only meaningful when mcs_cap > 0.
    return first_effort_rung() +
           static_cast<int>(config_.effort_ladder.size());
  }
  int shed_rung() const noexcept {
    return mcs_rung() + (config_.mcs_cap > 0 ? 1 : 0);
  }
  int quarantine_rung() const noexcept { return shed_rung() + 1; }

  DegradationConfig config_;
  int num_cells_;
  int rung_ = 0;
  int stressed_epochs_ = 0;
  int calm_epochs_ = 0;
  int down_hold_;           ///< Calm epochs needed for the next step-down.
  bool recovering_ = false; ///< A step-down happened since the last step-up.
  std::uint64_t transitions_ = 0;
  sim::Time last_transition_ = 0;
  std::vector<sim::Time> dwell_;  ///< Per-rung time, size max_rung() + 1.
  sim::Time dwell_mark_ = 0;      ///< update() timestamp last accounted.
};

/// Transport-block failure probability added by compressing the fronthaul
/// at `total_ratio` (vs. 15-bit CPRI words): measures the EVM of a
/// BlockFloatCodec round-trip at the mantissa width that achieves the
/// ratio, on a deterministic Gaussian reference block, and maps EVM to
/// BLER with a power-law waterfall calibrated for 16-QAM-class traffic.
/// Returns 0 for ratio <= 1. Deterministic: same ratio, same penalty.
double compression_penalty_bler(double total_ratio);

}  // namespace pran::core
