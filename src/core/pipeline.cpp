#include "core/pipeline.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::core {

Pipeline Pipeline::standard_uplink(lte::CostModel model) {
  Pipeline p;
  for (std::size_t i = 0; i < lte::kStageCount; ++i) {
    const auto stage = static_cast<lte::Stage>(i);
    p.append(StageSpec{
        lte::stage_name(stage),
        [model, stage](const lte::CellConfig& cell,
                       std::span<const lte::Allocation> allocs) {
          return model.subframe_cost(cell, allocs,
                                     lte::Direction::kUplink)[stage];
        }});
  }
  return p;
}

Pipeline& Pipeline::append(StageSpec stage) {
  PRAN_REQUIRE(!stage.name.empty(), "stage needs a name");
  PRAN_REQUIRE(stage.cost_fn != nullptr, "stage needs a cost function");
  PRAN_REQUIRE(!contains(stage.name), "duplicate stage name");
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::insert_after(const std::string& existing,
                                 StageSpec stage) {
  PRAN_REQUIRE(!stage.name.empty(), "stage needs a name");
  PRAN_REQUIRE(stage.cost_fn != nullptr, "stage needs a cost function");
  PRAN_REQUIRE(!contains(stage.name), "duplicate stage name");
  const auto it =
      std::find_if(stages_.begin(), stages_.end(),
                   [&](const StageSpec& s) { return s.name == existing; });
  PRAN_REQUIRE(it != stages_.end(), "insert_after: no such stage");
  stages_.insert(it + 1, std::move(stage));
  return *this;
}

Pipeline& Pipeline::remove(const std::string& name) {
  const auto it =
      std::find_if(stages_.begin(), stages_.end(),
                   [&](const StageSpec& s) { return s.name == name; });
  PRAN_REQUIRE(it != stages_.end(), "remove: no such stage");
  stages_.erase(it);
  return *this;
}

bool Pipeline::contains(const std::string& name) const {
  return std::any_of(stages_.begin(), stages_.end(),
                     [&](const StageSpec& s) { return s.name == name; });
}

std::vector<std::string> Pipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.push_back(s.name);
  return names;
}

double Pipeline::subframe_gops(
    const lte::CellConfig& cell,
    std::span<const lte::Allocation> allocs) const {
  double total = 0.0;
  for (const auto& s : stages_) total += s.cost_fn(cell, allocs);
  return total;
}

double Pipeline::extra_gops(const lte::CellConfig& cell,
                            std::span<const lte::Allocation> allocs,
                            double base_gops) const {
  return std::max(0.0, subframe_gops(cell, allocs) - base_gops);
}

namespace stages {

StageSpec interference_cancellation(double intensity) {
  PRAN_REQUIRE(intensity > 0.0, "intensity must be positive");
  return StageSpec{
      "interference-cancellation",
      [intensity](const lte::CellConfig& cell,
                  std::span<const lte::Allocation> allocs) {
        int prbs = 0;
        for (const auto& a : allocs) prbs += a.n_prb;
        const double ants = static_cast<double>(cell.antennas);
        // A second MMSE pass over the allocated band.
        return intensity * 14.0e3 * ants * ants *
               static_cast<double>(cell.mimo_layers) *
               static_cast<double>(prbs) / 1e9;
      }};
}

StageSpec comp_combining(int cooperating_cells) {
  PRAN_REQUIRE(cooperating_cells >= 2,
               "CoMP needs at least two cooperating cells");
  return StageSpec{
      "comp-combining",
      [cooperating_cells](const lte::CellConfig& cell,
                          std::span<const lte::Allocation> allocs) {
        int prbs = 0;
        for (const auto& a : allocs) prbs += a.n_prb;
        return 20.0e3 * static_cast<double>(cooperating_cells) *
               static_cast<double>(cell.antennas) *
               static_cast<double>(prbs) / 1e9;
      }};
}

StageSpec wideband_sounding() {
  return StageSpec{
      "wideband-sounding",
      [](const lte::CellConfig& cell, std::span<const lte::Allocation>) {
        return 30.0e3 * static_cast<double>(cell.antennas) *
               static_cast<double>(cell.n_prb) / 1e9;
      }};
}

}  // namespace stages
}  // namespace pran::core
