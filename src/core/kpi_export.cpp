#include "core/kpi_export.hpp"

#include <algorithm>
#include <string>

namespace pran::core {

namespace {

void set_gauge(telemetry::MetricsRegistry& registry, std::string_view prefix,
               std::string_view name, double value) {
  registry.set(registry.gauge(std::string(prefix) + std::string(name)), value);
}

}  // namespace

void export_kpis(const DeploymentKpis& kpis,
                 telemetry::MetricsRegistry& registry,
                 std::string_view prefix) {
  const auto set = [&](std::string_view name, double value) {
    set_gauge(registry, prefix, name, value);
  };
  set("subframes_processed", static_cast<double>(kpis.subframes_processed));
  set("deadline_misses", static_cast<double>(kpis.deadline_misses));
  set("dropped", static_cast<double>(kpis.dropped));
  set("miss_ratio", kpis.miss_ratio);
  set("migrations", kpis.migrations);
  set("mean_active_servers", kpis.mean_active_servers);
  set("mean_plan_seconds", kpis.mean_plan_seconds);
  set("failover_outage_cells", kpis.failover_outage_cells);
  set("infeasible_epochs", kpis.infeasible_epochs);
  set("shed_cell_epochs", kpis.shed_cell_epochs);
  set("outage_cell_ttis", static_cast<double>(kpis.outage_cell_ttis));
  set("harq_retransmissions",
      static_cast<double>(kpis.harq_retransmissions));
  set("lost_transport_blocks",
      static_cast<double>(kpis.lost_transport_blocks));
  set("energy_joules", kpis.energy_joules);
  set("faults_injected", kpis.faults_injected);
  set("degrade_events", kpis.degrade_events);
  set("fault_detections", kpis.fault_detections);
  set("mean_detection_latency_ms", kpis.mean_detection_latency_ms);
  set("blind_window_drops", static_cast<double>(kpis.blind_window_drops));
  set("quarantine_events", kpis.quarantine_events);
  set("fronthaul_lost_bursts",
      static_cast<double>(kpis.fronthaul_lost_bursts));
  set("fronthaul_late_bursts",
      static_cast<double>(kpis.fronthaul_late_bursts));
  set("fronthaul_brownouts", static_cast<double>(kpis.fronthaul_brownouts));
  set("shed_subframes", static_cast<double>(kpis.shed_subframes));
  set("compression_tb_failures",
      static_cast<double>(kpis.compression_tb_failures));
  set("quarantined_cell_ttis",
      static_cast<double>(kpis.quarantined_cell_ttis));
  set("ladder_rung", kpis.ladder_rung);
  set("ladder_transitions", static_cast<double>(kpis.ladder_transitions));
  set("compute_outage_jobs", static_cast<double>(kpis.compute_outage_jobs));
  set("compute_outage_tbs", static_cast<double>(kpis.compute_outage_tbs));
  set("compute_outage_ratio", kpis.compute_outage_ratio);
  set("effort_capped_tbs", static_cast<double>(kpis.effort_capped_tbs));
  set("decode_iterations_needed",
      static_cast<double>(kpis.decode_iterations_needed));
  set("decode_iterations_realized",
      static_cast<double>(kpis.decode_iterations_realized));
  set("offered_tb_bits", kpis.offered_tb_bits);
  set("delivered_tb_bits", kpis.delivered_tb_bits);
  set("peak_compute_pressure", kpis.peak_compute_pressure);
  set("migrations_started", static_cast<double>(kpis.migrations_started));
  set("migrations_committed",
      static_cast<double>(kpis.migrations_committed));
  set("migrations_aborted", static_cast<double>(kpis.migrations_aborted));
  set("migrations_rolled_back",
      static_cast<double>(kpis.migrations_rolled_back));
  set("migrations_taken_over",
      static_cast<double>(kpis.migrations_taken_over));
  set("migration_retries", static_cast<double>(kpis.migration_retries));
  set("migrations_deferred", static_cast<double>(kpis.migrations_deferred));
  set("migration_deadline_expired",
      static_cast<double>(kpis.migration_deadline_expired));
  set("migration_stale_messages",
      static_cast<double>(kpis.migration_stale_messages));
  set("migration_blackout_ttis",
      static_cast<double>(kpis.migration_blackout_ttis));
  set("migration_dual_executions",
      static_cast<double>(kpis.migration_dual_executions));
  set("mean_handoff_latency_ms", kpis.mean_handoff_latency_ms);
}

void export_deployment(const Deployment& deployment,
                       telemetry::MetricsRegistry& registry) {
  export_kpis(deployment.kpis(), registry);

  const auto& executor = deployment.executor();
  const auto stats = executor.stats();
  set_gauge(registry, "executor.", "completed",
            static_cast<double>(stats.completed));
  set_gauge(registry, "executor.", "missed",
            static_cast<double>(stats.missed));
  set_gauge(registry, "executor.", "dropped",
            static_cast<double>(stats.dropped));
  set_gauge(registry, "executor.", "busy_seconds", stats.total_busy_seconds);
  const sim::Time window = deployment.now();
  if (window > 0) {
    for (int s = 0; s < executor.num_servers(); ++s)
      set_gauge(registry, "executor.",
                "utilization.server-" + std::to_string(s),
                executor.utilization(s, window));
  }

  const auto& reports = deployment.controller().reports();
  set_gauge(registry, "solver.", "epochs",
            static_cast<double>(reports.size()));
  if (!reports.empty()) {
    double total = 0.0, worst = 0.0;
    for (const auto& r : reports) {
      total += r.solve_seconds;
      worst = std::max(worst, r.solve_seconds);
    }
    set_gauge(registry, "solver.", "mean_solve_seconds",
              total / static_cast<double>(reports.size()));
    set_gauge(registry, "solver.", "max_solve_seconds", worst);
  }
  set_gauge(registry, "solver.", "total_migrations",
            deployment.controller().total_migrations());

  set_gauge(registry, "executor.", "compute_outages",
            static_cast<double>(stats.compute_outages));

  if (const DegradationController* ladder = deployment.degradation()) {
    // Per-rung dwell: how long the ladder sat on each rung (as of the
    // last epoch update) — the `pran-report --compute` dwell table.
    for (int r = 0; r <= ladder->max_rung(); ++r)
      set_gauge(registry, "compute.",
                "ladder_dwell_seconds.rung-" + std::to_string(r),
                sim::to_seconds(ladder->dwell(r)));
  }

  set_gauge(registry, "trace.", "dropped_records",
            static_cast<double>(deployment.trace().dropped()));
}

}  // namespace pran::core
