#include "core/migration.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::core {

const char* migration_state_name(MigrationState state) noexcept {
  switch (state) {
    case MigrationState::kPreparing:
      return "preparing";
    case MigrationState::kTransferring:
      return "transferring";
    case MigrationState::kCommitting:
      return "committing";
    case MigrationState::kCommitted:
      return "committed";
    case MigrationState::kAborted:
      return "aborted";
    case MigrationState::kRolledBack:
      return "rolled_back";
    case MigrationState::kTakenOver:
      return "taken_over";
  }
  return "unknown";
}

void validate(const MigrationConfig& config) {
  PRAN_REQUIRE(config.lease_ttl > 0, "lease TTL must be positive");
  PRAN_REQUIRE(config.transfer_ttis >= 1,
               "transfer budget must be at least one TTI");
  PRAN_REQUIRE(config.transfer_bits >= 0.0,
               "transfer bits must be non-negative");
  PRAN_REQUIRE(config.deadline > 0, "migration deadline must be positive");
  PRAN_REQUIRE(config.max_retries >= 0, "retry budget must be non-negative");
  PRAN_REQUIRE(config.retry_backoff > 0, "retry backoff must be positive");
}

MigrationManager::MigrationManager(const MigrationConfig& config,
                                   sim::Engine& engine, int num_cells,
                                   int num_servers, std::uint64_t seed)
    : config_(config),
      engine_(engine),
      channel_(config.control_plane, seed),
      failed_(static_cast<std::size_t>(num_servers), false),
      last_exec_tti_(static_cast<std::size_t>(num_cells), -1),
      last_exec_server_(static_cast<std::size_t>(num_cells), -1) {
  validate(config_);
  PRAN_REQUIRE(num_cells >= 1, "migration manager needs cells");
  PRAN_REQUIRE(num_servers >= 1, "migration manager needs servers");
}

MigrationManager::Migration* MigrationManager::find(int cell,
                                                    std::uint64_t id) {
  auto it = active_.find(cell);
  if (it == active_.end() || it->second.id != id) return nullptr;
  return &it->second;
}

sim::Time MigrationManager::backoff_delay(int attempts_done) const {
  // Exponential: backoff, 2*backoff, 4*backoff ... (shift capped so a
  // misconfigured retry budget cannot overflow the 64-bit time base).
  const int shift = std::min(std::max(attempts_done - 1, 0), 16);
  return config_.retry_backoff * (sim::Time{1} << shift);
}

void MigrationManager::count_stale() {
  ++counters_.stale_messages;
  PRAN_COUNTER_INC("migration.stale_messages");
}

MigrationManager::BeginResult MigrationManager::begin(int cell, int from,
                                                      int to) {
  PRAN_REQUIRE(cell >= 0 &&
                   cell < static_cast<int>(last_exec_tti_.size()),
               "unknown cell");
  PRAN_REQUIRE(from >= 0 && from < static_cast<int>(failed_.size()),
               "unknown source server");
  PRAN_REQUIRE(to >= 0 && to < static_cast<int>(failed_.size()),
               "unknown target server");
  PRAN_REQUIRE(from != to, "migration must change servers");
  PRAN_REQUIRE(config_.enabled, "migration manager is disabled");

  if (active_.count(cell) != 0) return BeginResult::kInFlight;
  {
    // A committed handoff may still be settling (target lease not yet
    // active): the cell stays busy until the blackout window closes.
    const auto it = leases_.find(cell);
    if (it != leases_.end() && it->second.target >= 0 &&
        engine_.now() < it->second.target_from)
      return BeginResult::kInFlight;
  }
  if (deferral_ || failed_[static_cast<std::size_t>(to)] ||
      failed_[static_cast<std::size_t>(from)]) {
    // Migration storms wait out shed/quarantine rungs; moves touching a
    // crashed server are left to failover / the next replan.
    ++counters_.deferred;
    PRAN_COUNTER_INC("migration.deferred");
    return BeginResult::kDeferred;
  }

  Migration m;
  m.id = next_id_++;
  m.cell = cell;
  m.from = from;
  m.to = to;
  m.started_at = engine_.now();
  m.record_index = history_.size();
  {
    MigrationRecord rec;
    rec.id = m.id;
    rec.cell = cell;
    rec.from = from;
    rec.to = to;
    rec.started_at = m.started_at;
    history_.push_back(rec);
  }
  ++counters_.started;
  PRAN_COUNTER_INC("migration.started");

  // The source holds the cell's lease (unbounded until a commit decision
  // fences it). The fencing token survives across migrations of the cell.
  Lease& lease = leases_[cell];
  lease.source = from;
  lease.source_until = kNever;
  lease.target = -1;
  lease.target_from = kNever;
  lease.resolved = false;

  auto [it, inserted] = active_.emplace(cell, m);
  PRAN_CHECK(inserted, "duplicate active migration");
  if (config_.make_before_break)
    start_two_phase(it->second);
  else
    start_instant(it->second);
  return BeginResult::kStarted;
}

void MigrationManager::start_two_phase(Migration& m) {
  const int cell = m.cell;
  const std::uint64_t id = m.id;
  m.deadline_event =
      engine_.schedule_at(m.started_at + config_.deadline,
                          [this, cell, id] { on_deadline(cell, id); });
  attempt_prepare(cell, id);
}

void MigrationManager::start_instant(Migration& m) {
  // Naive baseline: ownership flips immediately and the soft-buffer state
  // streams *after* the switch (break-before-make) — the target is dark
  // for the whole transfer budget, and every dark TTI costs HARQ debt.
  m.state = MigrationState::kCommitting;
  m.token = ++token_counter_;
  record_of(m).token = m.token;
  leases_[m.cell].source_until = engine_.now();
  Transfer t;
  t.ttis_left = config_.transfer_ttis;
  t.bits_per_tti =
      config_.transfer_bits / static_cast<double>(config_.transfer_ttis);
  transfers_[m.cell] = t;
  const sim::Time dark =
      static_cast<sim::Time>(config_.transfer_ttis) * sim::kTti;
  grant_target(m, MigrationState::kCommitted, engine_.now() + dark);
}

void MigrationManager::attempt_prepare(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kPreparing) return;
  if (m->attempts > config_.max_retries) {
    ++counters_.retry_exhaustions;
    PRAN_COUNTER_INC("migration.retry_exhausted");
    resolve(*m, MigrationState::kAborted, "prepare retries exhausted",
            "retry_exhausted");
    return;
  }
  if (m->attempts > 0) {
    ++counters_.retries;
    PRAN_COUNTER_INC("migration.retried");
    ++record_of(*m).retries;
  }
  const faults::ControlDelivery d = channel_.send(engine_.now());
  ++m->attempts;
  if (!d.lost)
    engine_.schedule_at(d.deliver_at,
                        [this, cell, id] { on_prepare_delivered(cell, id); });
  engine_.schedule_in(backoff_delay(m->attempts),
                      [this, cell, id] { attempt_prepare(cell, id); });
}

void MigrationManager::on_prepare_delivered(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kPreparing) {
    count_stale();  // duplicate or reordered PREPARE: idempotently ignored
    return;
  }
  if (failed_[static_cast<std::size_t>(m->to)]) return;  // corpse: no ack
  const faults::ControlDelivery d = channel_.send(engine_.now());
  if (!d.lost)
    engine_.schedule_at(d.deliver_at,
                        [this, cell, id] { on_prepare_ack(cell, id); });
}

void MigrationManager::on_prepare_ack(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kPreparing) {
    count_stale();  // duplicate ack after the transfer already started
    return;
  }
  m->state = MigrationState::kTransferring;
  record_of(*m).state = MigrationState::kTransferring;
  m->attempts = 0;
  // Meter the soft-buffer transfer over the fronthaul: transfer_bits
  // spread evenly across the transfer budget while the source keeps
  // executing (make-before-break).
  Transfer t;
  t.ttis_left = config_.transfer_ttis;
  t.bits_per_tti =
      config_.transfer_bits / static_cast<double>(config_.transfer_ttis);
  transfers_[cell] = t;
  const sim::Time duration =
      static_cast<sim::Time>(config_.transfer_ttis) * sim::kTti;
  engine_.schedule_in(duration,
                      [this, cell, id] { on_transfer_complete(cell, id); });
}

void MigrationManager::on_transfer_complete(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kTransferring) return;
  m->state = MigrationState::kCommitting;
  record_of(*m).state = MigrationState::kCommitting;
  m->attempts = 0;
  // Commit decision: the controller stops renewing the source lease. The
  // source self-fences at the TTL with no message required — this is what
  // lets a lost COMMIT resolve by lease expiry instead of dual ownership.
  m->fence_at = engine_.now() + config_.lease_ttl;
  m->token = ++token_counter_;
  record_of(*m).token = m->token;
  leases_[cell].source_until = m->fence_at;
  attempt_commit(cell, id);
}

void MigrationManager::attempt_commit(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kCommitting) return;
  if (m->attempts > config_.max_retries) {
    ++counters_.retry_exhaustions;
    PRAN_COUNTER_INC("migration.retry_exhausted");
    if (m->source_dead) {
      // Lease-expiry takeover: the target holds the complete state and
      // the source can never come back inside its lease — ownership
      // passes once the lease has provably expired.
      grant_target(*m, MigrationState::kTakenOver,
                   std::max(m->fence_at, engine_.now()));
    } else {
      // Source alive: re-grant it under a fresh fencing token so any
      // still-in-flight stale COMMIT bounces off the lease.
      Lease& l = leases_[cell];
      l.token = ++token_counter_;
      l.source_until = kNever;
      resolve(*m, MigrationState::kRolledBack, "commit retries exhausted",
              "retry_exhausted");
    }
    return;
  }
  if (m->attempts > 0) {
    ++counters_.retries;
    PRAN_COUNTER_INC("migration.retried");
    ++record_of(*m).retries;
  }
  const std::uint64_t token = m->token;
  const faults::ControlDelivery d = channel_.send(engine_.now());
  ++m->attempts;
  if (!d.lost)
    engine_.schedule_at(d.deliver_at, [this, cell, id, token] {
      on_commit_delivered(cell, id, token);
    });
  engine_.schedule_in(backoff_delay(m->attempts),
                      [this, cell, id] { attempt_commit(cell, id); });
}

void MigrationManager::on_commit_delivered(int cell, std::uint64_t id,
                                           std::uint64_t token) {
  Migration* m = find(cell, id);
  if (m == nullptr || m->state != MigrationState::kCommitting) {
    // A reordered COMMIT outliving its migration (e.g. delivered after a
    // rollback re-granted the source). The fencing token is the defence:
    // the rollback bumped the lease past this message's token, so the
    // grant below would be stale — reject it, never double-own.
    const auto it = leases_.find(cell);
    PRAN_CHECK(it == leases_.end() || token <= it->second.token,
               "stale COMMIT carries a token newer than the lease");
    count_stale();
    return;
  }
  // The target may receive the COMMIT before the source lease expired; it
  // must still wait out the fence before executing.
  grant_target(*m, MigrationState::kCommitted,
               std::max(m->fence_at, engine_.now()));
}

void MigrationManager::on_deadline(int cell, std::uint64_t id) {
  Migration* m = find(cell, id);
  if (m == nullptr) return;
  m->deadline_event = 0;  // fired; nothing left to cancel
  switch (m->state) {
    case MigrationState::kPreparing:
      ++counters_.deadline_expired;
      PRAN_COUNTER_INC("migration.deadline_expired");
      resolve(*m, MigrationState::kAborted, "deadline expired before transfer",
              "aborted");
      return;
    case MigrationState::kTransferring:
      // Deadline-expiry rollback: discard the partial transfer. The
      // source was never fenced during the transfer, so it simply keeps
      // the cell — zero blackout.
      ++counters_.deadline_expired;
      PRAN_COUNTER_INC("migration.deadline_expired");
      resolve(*m, MigrationState::kRolledBack,
              "deadline expired during transfer", "rolled_back");
      return;
    case MigrationState::kCommitting:
      // The commit decision is made and the fence is ticking: interrupting
      // now could orphan the cell. Commit delivery, retry exhaustion or
      // takeover resolves it shortly.
      return;
    case MigrationState::kCommitted:
    case MigrationState::kAborted:
    case MigrationState::kRolledBack:
    case MigrationState::kTakenOver:
      break;
  }
  PRAN_CHECK(false, "deadline fired on a resolved migration");
}

void MigrationManager::grant_target(Migration& m, MigrationState final_state,
                                    sim::Time target_from) {
  Lease& l = leases_[m.cell];
  PRAN_CHECK(m.token > l.token, "fencing tokens must increase");
  l.token = m.token;
  l.target = m.to;
  l.target_from = target_from;
  l.resolved = true;
  // The placement flip is deferred one event: a grant decided inside
  // Controller::replan() (the naive instant path runs synchronously from
  // the migration sink) must not race the replan's own placement install.
  if (complete_cb_)
    engine_.schedule_in(0, [this, cell = m.cell, to = m.to] {
      complete_cb_(cell, to);
    });
  const double ms = sim::to_seconds(target_from - m.started_at) * 1e3;
  counters_.handoff_latency_ms_sum += ms;
  ++counters_.handoffs;
  PRAN_HIST_OBSERVE("migration.handoff_latency_ms", 0.0, 500.0, 50, ms);
  if (final_state == MigrationState::kCommitted)
    resolve(m, MigrationState::kCommitted, "", "committed");
  else
    resolve(m, MigrationState::kTakenOver, "source crashed after transfer",
            "taken_over");
}

void MigrationManager::resolve(Migration& m, MigrationState final_state,
                               std::string_view detail,
                               std::string_view event) {
  switch (final_state) {
    case MigrationState::kCommitted:
      ++counters_.committed;
      PRAN_COUNTER_INC("migration.committed");
      break;
    case MigrationState::kAborted:
      ++counters_.aborted;
      PRAN_COUNTER_INC("migration.aborted");
      // An abort with a crashed source has no live claim to fall back to:
      // drop the lease authority so failover/replan placement governs.
      if (m.source_dead) leases_[m.cell].source = -1;
      break;
    case MigrationState::kRolledBack:
      ++counters_.rolled_back;
      PRAN_COUNTER_INC("migration.rolled_back");
      break;
    case MigrationState::kTakenOver:
      ++counters_.taken_over;
      PRAN_COUNTER_INC("migration.taken_over");
      break;
    case MigrationState::kPreparing:
    case MigrationState::kTransferring:
    case MigrationState::kCommitting:
      PRAN_CHECK(false, "resolve() needs a terminal migration state");
      break;
  }
  MigrationRecord& rec = record_of(m);
  rec.state = final_state;
  rec.resolved_at = engine_.now();
  rec.detail = std::string(detail);
  if (m.deadline_event != 0) engine_.cancel(m.deadline_event);
  // A failed migration stops charging transfer bits; whatever was already
  // streamed stays spent (the fibre carried it either way).
  if (final_state == MigrationState::kAborted ||
      final_state == MigrationState::kRolledBack)
    transfers_.erase(m.cell);
  const MigrationRecord snapshot = rec;
  active_.erase(m.cell);  // invalidates m
  if (event_cb_) event_cb_(snapshot, event);
}

MigrationManager::TickDecision MigrationManager::on_tick(
    int cell, std::int64_t tti, int placement_server) {
  PRAN_REQUIRE(cell >= 0 && cell < static_cast<int>(last_exec_tti_.size()),
               "unknown cell");
  TickDecision out;
  const auto tit = transfers_.find(cell);
  if (tit != transfers_.end()) {
    out.transfer_bits = tit->second.bits_per_tti;
    if (--tit->second.ttis_left <= 0) transfers_.erase(tit);
  }
  const auto it = leases_.find(cell);
  if (it != leases_.end()) {
    Lease& l = it->second;
    if (l.target >= 0 && l.resolved && engine_.now() >= l.target_from) {
      // Handoff settled: the target becomes the cell's plain owner.
      l.source = l.target;
      l.source_until = kNever;
      l.target = -1;
      l.target_from = kNever;
      l.resolved = false;
    }
  }
  out.server = routed_server(cell, engine_.now(), placement_server);
  if (out.server < 0 && it != leases_.end() &&
      (active_.count(cell) != 0 || it->second.target >= 0)) {
    // Unowned because of a migration window (fence gap, takeover wait or
    // the naive baseline's dark transfer) — not a placement outage.
    out.blackout = true;
    ++counters_.blackout_ttis;
    PRAN_COUNTER_INC("migration.blackout_ttis");
  }
  (void)tti;
  return out;
}

int MigrationManager::routed_server(int cell, sim::Time now,
                                    int placement_server) const {
  const auto it = leases_.find(cell);
  if (it == leases_.end()) return placement_server;
  const Lease& l = it->second;
  if (l.target >= 0) {
    if (now >= l.target_from) return l.target;
    if (l.source >= 0 && now < l.source_until &&
        !failed_[static_cast<std::size_t>(l.source)])
      return l.source;
    return -1;  // blackout: fenced source, target lease not yet active
  }
  if (l.source >= 0 && now < l.source_until &&
      !failed_[static_cast<std::size_t>(l.source)])
    return l.source;
  // Mid-protocol gap (fenced or crashed source, no target granted yet):
  // nobody may execute. Without an active migration the lease is just a
  // settled relic and the controller's placement governs.
  return active_.count(cell) != 0 ? -1 : placement_server;
}

void MigrationManager::record_execution(int cell, std::int64_t tti,
                                        int server) {
  PRAN_REQUIRE(cell >= 0 && cell < static_cast<int>(last_exec_tti_.size()),
               "unknown cell");
  PRAN_REQUIRE(server >= 0, "execution grant needs a server");
  const auto c = static_cast<std::size_t>(cell);
  if (last_exec_tti_[c] == tti && last_exec_server_[c] != server) {
    ++counters_.dual_executions;
    PRAN_COUNTER_INC("migration.dual_execution");
    PRAN_CHECK(false, "dual execution: one cell-TTI granted to two servers");
  }
  last_exec_tti_[c] = tti;
  last_exec_server_[c] = server;
}

void MigrationManager::on_server_failed(int server) {
  PRAN_REQUIRE(server >= 0 && server < static_cast<int>(failed_.size()),
               "unknown server");
  failed_[static_cast<std::size_t>(server)] = true;
  // Deterministic fan-out: active_ iterates in cell order, never hash
  // order, so the channel's send sequence stays a pure seed function.
  std::vector<int> touched;
  for (const auto& [cell, m] : active_)
    if (m.from == server || m.to == server) touched.push_back(cell);
  for (const int cell : touched) {
    const auto it = active_.find(cell);
    if (it == active_.end()) continue;
    Migration& m = it->second;
    if (m.to == server) {
      switch (m.state) {
        case MigrationState::kPreparing:
        case MigrationState::kTransferring:
          resolve(m, MigrationState::kAborted, "target crashed", "aborted");
          break;
        case MigrationState::kCommitting:
          if (m.source_dead) {
            resolve(m, MigrationState::kAborted,
                    "source and target both crashed", "aborted");
          } else {
            // The target died before its lease began: re-grant the source
            // under a fresh token (fences any in-flight COMMIT).
            Lease& l = leases_[cell];
            l.token = ++token_counter_;
            l.source_until = kNever;
            resolve(m, MigrationState::kRolledBack,
                    "target crashed before takeover", "rolled_back");
          }
          break;
        case MigrationState::kCommitted:
        case MigrationState::kAborted:
        case MigrationState::kRolledBack:
        case MigrationState::kTakenOver:
          PRAN_CHECK(false, "resolved migration still active");
          break;
      }
      continue;
    }
    // Source crashed mid-migration.
    m.source_dead = true;
    switch (m.state) {
      case MigrationState::kPreparing:
        // No state at the target yet: abort; failover rescues the cell.
        resolve(m, MigrationState::kAborted, "source crashed before transfer",
                "aborted");
        break;
      case MigrationState::kTransferring:
        // A partial soft-buffer image is useless: abort; failover rescues.
        resolve(m, MigrationState::kAborted, "source crashed during transfer",
                "aborted");
        break;
      case MigrationState::kCommitting:
        // Transfer complete: leave the commit machinery running. Delivery
        // grants the target at max(fence, delivery); exhausted retries
        // become a lease-expiry takeover (source_dead is set). Either way
        // the cell stays with the manager — the failover filter skips it.
        break;
      case MigrationState::kCommitted:
      case MigrationState::kAborted:
      case MigrationState::kRolledBack:
      case MigrationState::kTakenOver:
        PRAN_CHECK(false, "resolved migration still active");
        break;
    }
  }
}

void MigrationManager::on_server_recovered(int server) {
  PRAN_REQUIRE(server >= 0 && server < static_cast<int>(failed_.size()),
               "unknown server");
  failed_[static_cast<std::size_t>(server)] = false;
}

bool MigrationManager::holds_failover(int cell) const {
  const auto it = active_.find(cell);
  return it != active_.end() &&
         it->second.state == MigrationState::kCommitting &&
         it->second.source_dead;
}

int MigrationManager::unresolved_cells() const noexcept {
  int n = static_cast<int>(active_.size());
  for (const auto& [cell, l] : leases_)
    if (l.target >= 0 && engine_.now() < l.target_from) ++n;
  return n;
}

std::uint64_t MigrationManager::lease_token(int cell) const {
  const auto it = leases_.find(cell);
  return it == leases_.end() ? 0 : it->second.token;
}

}  // namespace pran::core
