#pragma once

/// \file pooling.hpp
/// Trace-level pooling analysis: PRAN's headline resource argument.
///
/// Given a day of per-cell demand (workload::DayTrace) and a server spec,
/// compare how many servers a *pooled* deployment needs (re-packing cells
/// every slot, statistical multiplexing across non-coincident peaks)
/// against traditional *peak provisioning* (each cell budgeted for its own
/// busiest slot, forever).

#include <vector>

#include "cluster/executor.hpp"
#include "common/units.hpp"
#include "workload/trace.hpp"

namespace pran::core {

struct PoolingPoint {
  int slot = 0;
  double hour = 0.0;
  units::Gops total_gops{0.0};  ///< Fleet-wide demand this slot.
  int pooled_servers = 0;       ///< Bins needed when re-packing this slot.
};

struct PoolingSummary {
  std::vector<PoolingPoint> series;
  int pooled_peak_servers = 0;  ///< Max over slots of pooled_servers.
  int peak_provisioned_servers = 0;  ///< Bins for per-cell peak demands.
  /// The traditional deployment: one dedicated BBU per cell (no sharing at
  /// all). Equal to the cell count.
  int dedicated_bbus = 0;
  /// 1 - pooled/peak-provisioned: saving vs a shared cluster that still
  /// budgets every cell at its own peak.
  double savings() const noexcept;
  /// 1 - pooled/dedicated: saving vs classic per-cell appliances.
  double savings_vs_dedicated() const noexcept;
};

/// First-fit-decreasing bin count for packing `demands` into bins of size
/// `capacity` (> max demand required for feasibility; throws otherwise).
int ffd_bin_count(std::vector<units::Gops> demands, units::Gops capacity);

/// Runs the pooled-vs-peak analysis. `headroom` derates server capacity,
/// `safety` inflates every demand (the controller's planning margins).
PoolingSummary analyze_pooling(const workload::DayTrace& trace,
                               const cluster::ServerSpec& server,
                               double headroom = 0.8, double safety = 1.25);

}  // namespace pran::core
