#pragma once

/// \file overload.hpp
/// Compute-aware overload control: the complexity-rate tradeoff as a
/// control knob.
///
/// The pooled-compute story (and the complexity-rate analysis of
/// centralized RANs it leans on) only holds if the data plane has an
/// answer for the moments when offered PHY work exceeds the pool's GOPS
/// budget. Queueing until deadlines blow is the worst answer: every
/// queued-too-long subframe bursts into a HARQ retransmission and the
/// overload feeds itself. This module gives the deployment two better
/// currencies, spent in order:
///
///   1. *Decode effort.* Turbo iterations are the dominant PHY cost and
///      most blocks converge early, so capping the per-TB iteration
///      budget converts compute into a small BLER risk. The backpressure
///      loop reads each server's backlog (Executor::backlog_ttis) every
///      TTI and clamps the effort cap between `max_effort` (no pressure)
///      and `min_effort` (saturated) — a proportional controller that
///      reacts within one TTI, orders of magnitude faster than the epoch
///      ladder.
///   2. *The work itself.* When even the cheapest decode cannot meet the
///      deadline, the subframe is abandoned *before* it wastes a queue
///      slot — a **computational outage**, recorded as its own outcome
///      (JobOutcome::compute_outage) distinct from a fault drop and from
///      a deadline miss. Its HARQ debt is settled honestly, like a shed.
///
/// The epoch-scale DegradationController owns the slow, hysteretic
/// version of the same decisions (effort rungs, MCS cap); this module is
/// the fast loop under it. Both clamp the same per-TB budget, and the
/// tighter cap wins.

#include <algorithm>

#include "lte/cost_model.hpp"

namespace pran::core {

struct OverloadConfig {
  bool enabled = false;

  /// Effort cap with an idle queue. Defaults to "no cap".
  int max_effort = lte::kMaxTurboIterations;
  /// Effort floor at full pressure: even a saturated server grants this
  /// many iterations (1 = decode once, take the BLER).
  int min_effort = lte::kMinTurboIterations;

  /// Backlog (in TTIs of server throughput, Executor::backlog_ttis) at
  /// which the cap starts stepping down from max_effort...
  double pressure_onset_ttis = 0.5;
  /// ...and at which it bottoms out at min_effort. Between the two the
  /// cap interpolates linearly — a proportional controller, no state to
  /// oscillate.
  double pressure_full_ttis = 2.0;
};

void validate(const OverloadConfig& config);

/// Effort cap for one submission given the target server's backlog:
/// max_effort at or below the onset, min_effort at or above full
/// pressure, linear in between. Pure function — trivially testable and
/// thread-count invariant.
int effort_cap_for_pressure(const OverloadConfig& config,
                            double backlog_ttis);

}  // namespace pran::core
