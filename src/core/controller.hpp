#pragma once

/// \file controller.hpp
/// The PRAN controller: the control plane that keeps the cells -> servers
/// mapping healthy as load moves.
///
/// Responsibilities:
///  * demand estimation — an EMA over observed per-subframe costs per cell,
///    inflated by a safety factor so bursts stay inside server headroom;
///  * epoch re-planning — every epoch the configured Placer solves the
///    assignment problem (ILP or heuristic) against current demand, and the
///    controller applies the migrations;
///  * failover — when a server dies the affected cells are immediately
///    re-packed into the survivors' spare capacity (first-fit), without
///    waiting for the next epoch.

#include <functional>
#include <memory>
#include <vector>

#include "core/placement.hpp"

namespace pran::core {

struct ControllerConfig {
  /// Server-utilisation ceiling targeted by placement.
  double headroom = 0.8;
  /// Demand estimate = safety * EMA(observed gops per TTI).
  double demand_safety = 1.25;
  /// EMA smoothing factor per observation.
  double ema_alpha = 0.05;
  /// Objective weight of one migration (in "servers"); see PlacementProblem.
  double migration_weight = 0.01;
  /// Admission control: when a replan is infeasible, shed the
  /// largest-demand cells (into outage) until the rest fit, instead of
  /// keeping a stale overloaded placement.
  bool shed_on_infeasible = false;

  /// Survivable placement: the placer must reserve enough spare headroom
  /// that any single server's cells re-pack into the survivors (see
  /// PlacementProblem::survivable). Costs extra active servers.
  bool survivable = false;

  /// Flap quarantine: a server that failed `flap_threshold` times within
  /// `flap_window` of its recovery is NOT returned to the placement pool;
  /// it is held out for an exponentially growing backoff
  /// (quarantine_base, then x quarantine_multiplier per consecutive
  /// quarantine) before release_quarantines() readmits it.
  bool quarantine = false;
  int flap_threshold = 3;
  sim::Time flap_window = 10 * sim::kSecond;
  sim::Time quarantine_base = 2 * sim::kSecond;
  double quarantine_multiplier = 2.0;
};

/// Outcome of Controller::handle_recovery.
struct RecoveryDecision {
  bool accepted = true;            ///< False: the server was quarantined.
  sim::Time quarantined_until = 0; ///< Valid when !accepted.
};

/// One epoch's planning outcome, for KPI reporting.
struct EpochReport {
  std::int64_t epoch = 0;
  bool feasible = false;
  int active_servers = 0;
  int migrations = 0;
  /// Cells shed by admission control this epoch (0 unless enabled).
  int shed_cells = 0;
  double solve_seconds = 0.0;
  double total_demand_gops = 0.0;
};

class Controller {
 public:
  /// `initial_demand[c]` seeds the per-cell EMA (e.g. the traffic model's
  /// expected gops at start time) so the first plan is informed.
  Controller(ControllerConfig config, std::unique_ptr<Placer> placer,
             std::vector<cluster::ServerSpec> servers,
             std::vector<CellDemand> initial_demand);

  /// Feeds one observed subframe cost for a cell into the estimator.
  void observe(int cell_index, double gops);

  /// Current demand estimate (safety factor and forecast scale applied).
  double estimated_demand(int cell_index) const;

  /// Installs per-cell multiplicative forecast scales used by the next
  /// replan (e.g. expected load growth over the planning horizon). An
  /// empty vector clears forecasting. Values must be positive.
  void set_demand_scale(std::vector<double> scale);

  /// Marks cells administratively quarantined (the degradation ladder's
  /// top rung): the next replan excludes them from placement, freeing
  /// their capacity for the cells that remain. An empty vector clears all
  /// quarantines; otherwise the size must match the cell count.
  void set_cell_quarantine(std::vector<bool> quarantined);
  bool cell_quarantined(int cell_index) const;

  /// Re-solves the placement for current estimates. Returns the report;
  /// on infeasibility the previous placement is kept.
  EpochReport replan();

  /// Migration sink: when installed, replan() hands every changed-cell
  /// reassignment (old >= 0, new >= 0, new != old) to the sink instead of
  /// teleporting the cell. A sink returning true owns the move — the cell
  /// keeps its old placement until complete_migration() flips it; false
  /// falls back to the legacy instant flip.
  void set_migration_sink(std::function<bool(int cell, int from, int to)> sink) {
    migration_sink_ = std::move(sink);
  }

  /// Finishes a sink-owned migration: points the placement at the new
  /// server (called at commit/takeover time by the MigrationManager).
  void complete_migration(int cell_index, int server_id);

  /// Failover filter: handle_failure() skips cells for which this returns
  /// true (another subsystem owns their fate — e.g. a migration in its
  /// commit phase resolves by lease-expiry takeover, not re-packing).
  void set_failover_filter(std::function<bool(int cell)> filter) {
    failover_filter_ = std::move(filter);
  }

  /// Server currently hosting a cell (-1 if the cell is in outage).
  int server_of(int cell_index) const;
  const std::vector<int>& placement() const noexcept { return placement_; }

  /// Marks a server failed and re-places its cells into spare capacity.
  /// Returns the number of cells that could NOT be rescued (outage).
  /// `now` timestamps the failure for the flap-quarantine window.
  int handle_failure(int server_id, sim::Time now = 0);

  /// Returns a failed server to the available pool (cells migrate back only
  /// at the next replan) — unless it flapped `flap_threshold` times within
  /// `flap_window`, in which case it is quarantined until the returned
  /// backoff expiry (quarantine must be enabled in the config).
  RecoveryDecision handle_recovery(int server_id, sim::Time now = 0);

  /// Readmits quarantined servers whose backoff has expired; returns how
  /// many were released. Call before replan() each epoch.
  int release_quarantines(sim::Time now);

  bool server_available(int server_id) const;
  bool server_quarantined(int server_id) const;
  int quarantine_events() const noexcept { return quarantine_events_; }
  int num_cells() const noexcept { return static_cast<int>(demand_.size()); }
  int num_servers() const noexcept {
    return static_cast<int>(servers_.size());
  }

  const std::vector<EpochReport>& reports() const noexcept { return reports_; }
  int total_migrations() const noexcept { return total_migrations_; }

 private:
  PlacementProblem make_problem() const;

  ControllerConfig config_;
  std::unique_ptr<Placer> placer_;
  std::vector<cluster::ServerSpec> servers_;
  std::vector<bool> available_;
  /// Flap-quarantine state (all index-aligned with servers_).
  std::vector<bool> quarantined_;
  std::vector<sim::Time> quarantined_until_;
  std::vector<sim::Time> backoff_;
  std::vector<std::vector<sim::Time>> failure_times_;
  int quarantine_events_ = 0;
  std::vector<CellDemand> demand_;      ///< EMA state (un-inflated).
  std::vector<double> demand_scale_;    ///< Forecast multipliers (optional).
  std::vector<bool> cell_quarantined_;  ///< Ladder quarantine (optional).
  std::vector<int> placement_;          ///< Current cell -> server (-1 outage).
  std::vector<EpochReport> reports_;
  std::function<bool(int, int, int)> migration_sink_;
  std::function<bool(int)> failover_filter_;
  std::int64_t epoch_counter_ = 0;
  int total_migrations_ = 0;  ///< Planned moves (sink-owned ones included).
};

}  // namespace pran::core
