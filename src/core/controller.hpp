#pragma once

/// \file controller.hpp
/// The PRAN controller: the control plane that keeps the cells -> servers
/// mapping healthy as load moves.
///
/// Responsibilities:
///  * demand estimation — an EMA over observed per-subframe costs per cell,
///    inflated by a safety factor so bursts stay inside server headroom;
///  * epoch re-planning — every epoch the configured Placer solves the
///    assignment problem (ILP or heuristic) against current demand, and the
///    controller applies the migrations;
///  * failover — when a server dies the affected cells are immediately
///    re-packed into the survivors' spare capacity (first-fit), without
///    waiting for the next epoch.

#include <memory>
#include <vector>

#include "core/placement.hpp"

namespace pran::core {

struct ControllerConfig {
  /// Server-utilisation ceiling targeted by placement.
  double headroom = 0.8;
  /// Demand estimate = safety * EMA(observed gops per TTI).
  double demand_safety = 1.25;
  /// EMA smoothing factor per observation.
  double ema_alpha = 0.05;
  /// Objective weight of one migration (in "servers"); see PlacementProblem.
  double migration_weight = 0.01;
  /// Admission control: when a replan is infeasible, shed the
  /// largest-demand cells (into outage) until the rest fit, instead of
  /// keeping a stale overloaded placement.
  bool shed_on_infeasible = false;
};

/// One epoch's planning outcome, for KPI reporting.
struct EpochReport {
  std::int64_t epoch = 0;
  bool feasible = false;
  int active_servers = 0;
  int migrations = 0;
  /// Cells shed by admission control this epoch (0 unless enabled).
  int shed_cells = 0;
  double solve_seconds = 0.0;
  double total_demand_gops = 0.0;
};

class Controller {
 public:
  /// `initial_demand[c]` seeds the per-cell EMA (e.g. the traffic model's
  /// expected gops at start time) so the first plan is informed.
  Controller(ControllerConfig config, std::unique_ptr<Placer> placer,
             std::vector<cluster::ServerSpec> servers,
             std::vector<CellDemand> initial_demand);

  /// Feeds one observed subframe cost for a cell into the estimator.
  void observe(int cell_index, double gops);

  /// Current demand estimate (safety factor and forecast scale applied).
  double estimated_demand(int cell_index) const;

  /// Installs per-cell multiplicative forecast scales used by the next
  /// replan (e.g. expected load growth over the planning horizon). An
  /// empty vector clears forecasting. Values must be positive.
  void set_demand_scale(std::vector<double> scale);

  /// Re-solves the placement for current estimates. Returns the report;
  /// on infeasibility the previous placement is kept.
  EpochReport replan();

  /// Server currently hosting a cell (-1 if the cell is in outage).
  int server_of(int cell_index) const;
  const std::vector<int>& placement() const noexcept { return placement_; }

  /// Marks a server failed and re-places its cells into spare capacity.
  /// Returns the number of cells that could NOT be rescued (outage).
  int handle_failure(int server_id);

  /// Returns a failed server to the available pool (cells migrate back only
  /// at the next replan).
  void handle_recovery(int server_id);

  bool server_available(int server_id) const;
  int num_cells() const noexcept { return static_cast<int>(demand_.size()); }
  int num_servers() const noexcept {
    return static_cast<int>(servers_.size());
  }

  const std::vector<EpochReport>& reports() const noexcept { return reports_; }
  int total_migrations() const noexcept { return total_migrations_; }

 private:
  PlacementProblem make_problem() const;

  ControllerConfig config_;
  std::unique_ptr<Placer> placer_;
  std::vector<cluster::ServerSpec> servers_;
  std::vector<bool> available_;
  std::vector<CellDemand> demand_;      ///< EMA state (un-inflated).
  std::vector<double> demand_scale_;    ///< Forecast multipliers (optional).
  std::vector<int> placement_;          ///< Current cell -> server (-1 outage).
  std::vector<EpochReport> reports_;
  std::int64_t epoch_counter_ = 0;
  int total_migrations_ = 0;
};

}  // namespace pran::core
