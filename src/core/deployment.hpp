#pragma once

/// \file deployment.hpp
/// End-to-end PRAN deployment façade: radio fleet + fronthaul + compute
/// cluster + controller on one discrete-event timeline. This is the main
/// public entry point of the library — examples and benches build a
/// Deployment, run simulated time, and read KPIs.
///
/// Time handling: real diurnal cycles span 24 h, far too long to simulate
/// at TTI resolution, so the deployment maps simulated seconds to
/// wall-clock hours through `day_compression` (e.g. 3600 means one
/// simulated second covers one hour of diurnal drift). TTIs still tick at
/// the real 1 ms, so all deadline behaviour is authentic.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/executor.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/degradation.hpp"
#include "core/migration.hpp"
#include "core/overload.hpp"
#include "core/pipeline.hpp"
#include "faults/fronthaul.hpp"
#include "faults/health.hpp"
#include "faults/injector.hpp"
#include "fronthaul/link.hpp"
#include "mac/cell_mac.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/slo.hpp"
#include "workload/traffic.hpp"

namespace pran::telemetry {
class SimTraceBridge;
class CounterFamily;
class FlightRecorder;
}

namespace pran::core {

/// KPI time-series sampling on a sim-time cadence (DESIGN §14). Only
/// valid for runs that own the process-global telemetry registry — sweeps
/// that run many deployments in parallel against the shared registry must
/// keep this off (their aggregate counters would alias across replicas).
struct TimelineConfig {
  bool enabled = false;
  /// Window length in simulated time (each window closes with a registry
  /// snapshot diff).
  sim::Time window = 100 * sim::kMillisecond;
  /// Closed windows kept resident (the flight recorder's black box depth
  /// draws from this ring).
  std::size_t history = 128;
  /// JSONL stream of closed windows ("" = in-memory only).
  std::string timeline_out;
  /// Directory for flight-recorder post-mortems ("" = no dumps). Dumps
  /// fire on SLO burn-rate trips, ladder quarantines, and explicit
  /// trigger_postmortem() calls (run aborts).
  std::string postmortem_dir;
  /// Windows included in each post-mortem.
  std::size_t flight_windows = 32;
  /// Post-mortem dump budget for the run.
  std::size_t max_postmortems = 4;
  /// Evaluate default_deployment_slos() when `slos` is empty.
  bool include_default_slos = true;
  /// Explicit objectives (overrides the defaults when non-empty).
  std::vector<telemetry::SloSpec> slos;
};

struct DeploymentConfig {
  int num_cells = 8;
  int num_servers = 4;

  /// How each cell's per-TTI allocations are produced.
  enum class TrafficSource {
    kStatistical,   ///< workload::TrafficModel sampling (default).
    kMacScheduled,  ///< mac::CellMac: real UEs + a MAC scheduler, with the
                    ///< diurnal profile modulating the offered load.
  };
  TrafficSource traffic_source = TrafficSource::kStatistical;
  /// MAC mode: scheduler name and UE population per cell.
  std::string mac_scheduler = "proportional-fair";
  int mac_ues_per_cell = 12;
  /// MAC mode: per-UE offered rate at profile peak (Poisson bursts).
  double mac_ue_peak_bps = 3e6;
  cluster::ServerSpec server;  ///< Spec replicated num_servers times.
  cluster::SchedPolicy policy = cluster::SchedPolicy::kEdf;
  ControllerConfig controller;

  /// Controller re-planning period in simulated time.
  sim::Time epoch = 500 * sim::kMillisecond;
  /// Crash-safe cell migration (see migration.hpp): when enabled, epoch
  /// repartitions emit two-phase migration plans instead of teleporting
  /// cells, with lease fencing and a lossy control plane. Off by default:
  /// the legacy instant reassignment stays bit-identical.
  MigrationConfig migration;
  /// One-way fronthaul latency (25 µs ~ 5 km of fibre).
  sim::Time fronthaul_latency = 25 * sim::kMicrosecond;

  /// When set, every cell's samples share one fronthaul fibre: per-TTI
  /// bursts are serialised FIFO and queueing eats into the HARQ budget.
  /// When unset, each cell has a dedicated ideal link with
  /// `fronthaul_latency` one-way delay.
  std::optional<fronthaul::LinkParams> shared_fronthaul;
  /// I/Q compression ratio applied on the shared fronthaul (1 = raw CPRI).
  double fronthaul_compression = 1.0;

  /// Fronthaul transport impairments (burst loss / jitter / brownouts) on
  /// the shared fibre. Requires shared_fronthaul. Deterministic per seed.
  faults::FronthaulImpairmentConfig fronthaul_impairments;
  /// A burst counts as late when queueing + jitter exceeds this.
  sim::Time fronthaul_late_threshold = 500 * sim::kMicrosecond;
  /// Graceful-degradation ladder reacting to fronthaul stress (see
  /// degradation.hpp). Requires shared_fronthaul when enabled.
  DegradationConfig degradation;
  /// Compute-aware overload control (see overload.hpp): the per-TTI
  /// backpressure loop that clamps decode-effort caps from server backlog
  /// and abandons deadline-infeasible subframes as computational outages.
  /// Works with or without the epoch ladder; when both are on, the
  /// tighter effort cap wins.
  OverloadConfig overload;

  double start_hour = 8.0;       ///< Diurnal hour at t = 0.
  double day_compression = 3600; ///< Diurnal hours advance this x real time.
  /// Demand forecasting horizon in diurnal hours: each replan scales every
  /// cell's estimate by its profile's expected growth over the horizon, so
  /// capacity is provisioned *ahead* of ramps. 0 = purely reactive.
  double forecast_horizon_hours = 0.0;

  /// Model LTE's synchronous uplink HARQ: a subframe whose decode misses
  /// its deadline is NACK-less, so the UE retransmits it 8 TTIs later
  /// (adding real load); after `max_harq_retx` failed attempts the
  /// transport block is lost.
  bool harq_retransmissions = false;
  int max_harq_retx = 3;
  double peak_prb_utilization = 0.85;
  std::uint64_t seed = 42;

  /// Stochastic per-server fault processes (disabled unless mtbf_seconds
  /// is set); scripted faults via fail_server_at/restore_server_at work
  /// either way. All faults are delivered by a faults::FaultInjector.
  faults::StochasticFaultConfig stochastic_faults;
  /// Failure detection. 0 = oracle: the controller learns of a crash at
  /// the fault instant (the idealisation benches E8/E9 use). > 0 = a
  /// faults::HealthMonitor polls at this period and the controller only
  /// reacts after `heartbeat_miss_threshold` consecutive missed beats —
  /// subframes submitted to the corpse meanwhile are blind-window drops.
  sim::Time heartbeat_period = 0;
  int heartbeat_miss_threshold = 3;

  /// Pipeline run by every cell; defaults to the standard uplink pipeline.
  std::optional<Pipeline> pipeline;

  /// Which placement policy the controller uses.
  enum class PlacerKind { kFirstFit, kFirstFitNoSticky, kMilp, kStaticPeak };
  PlacerKind placer = PlacerKind::kFirstFit;

  /// Windowed KPI time series + SLO burn-rate monitoring + anomaly flight
  /// recorder (no-op unless enabled and the build has telemetry).
  TimelineConfig timeline;
};

/// Aggregate KPIs over a run.
struct DeploymentKpis {
  std::uint64_t subframes_processed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t dropped = 0;
  double miss_ratio = 0.0;
  int migrations = 0;
  double mean_active_servers = 0.0;
  double mean_plan_seconds = 0.0;
  int failover_outage_cells = 0;
  /// Epochs whose replan came back infeasible (stale placement kept).
  int infeasible_epochs = 0;
  /// Sum over epochs of cells shed by admission control.
  int shed_cell_epochs = 0;
  /// Cell-TTIs skipped because the cell had no server (outage).
  std::uint64_t outage_cell_ttis = 0;
  /// HARQ retransmissions triggered by missed decode deadlines.
  std::uint64_t harq_retransmissions = 0;
  /// Transport blocks lost after exhausting HARQ retransmissions.
  std::uint64_t lost_transport_blocks = 0;
  /// Cluster energy consumed (idle draw of active servers + busy-core
  /// increments), in joules.
  double energy_joules = 0.0;
  /// Faults delivered by the injector (scripted + stochastic).
  int faults_injected = 0;
  /// Degrade (straggler) faults among those.
  int degrade_events = 0;
  /// Crashes the health monitor declared (equals crashes in oracle mode).
  int fault_detections = 0;
  /// Mean fault-to-declaration latency (0 in oracle mode).
  double mean_detection_latency_ms = 0.0;
  /// Jobs dropped on a dead server before the monitor declared it down.
  std::uint64_t blind_window_drops = 0;
  /// Recoveries the controller refused because the server was flapping.
  int quarantine_events = 0;
  /// I/Q bursts dropped on the fronthaul by the impairment model.
  std::uint64_t fronthaul_lost_bursts = 0;
  /// Bursts whose queueing + jitter exceeded the late threshold.
  std::uint64_t fronthaul_late_bursts = 0;
  /// Link-capacity brownout episodes delivered.
  std::uint64_t fronthaul_brownouts = 0;
  /// Doomed subframes shed at ingress by the degradation ladder.
  std::uint64_t shed_subframes = 0;
  /// Transport blocks failed by the ladder's compression EVM penalty.
  std::uint64_t compression_tb_failures = 0;
  /// Cell-TTIs skipped because the ladder quarantined the cell.
  std::uint64_t quarantined_cell_ttis = 0;
  /// Degradation rung at the end of the run (0 = normal).
  int ladder_rung = 0;
  /// Total ladder transitions (up + down) over the run.
  std::uint64_t ladder_transitions = 0;
  /// Subframe jobs abandoned for lack of compute before their deadline —
  /// the computational-outage outcome (never queued; distinct from
  /// `dropped`, which is fault-induced, and from `deadline_misses`, where
  /// the decode ran but finished late).
  std::uint64_t compute_outage_jobs = 0;
  /// Transport blocks inside those jobs.
  std::uint64_t compute_outage_tbs = 0;
  /// Fraction of offered jobs abandoned for lack of compute.
  double compute_outage_ratio = 0.0;
  /// Transport blocks whose turbo-iteration budget was clamped below the
  /// sampled demand (by the backpressure loop or an effort rung).
  std::uint64_t effort_capped_tbs = 0;
  /// Turbo iterations the channel demanded across submitted + abandoned
  /// jobs, and the iterations actually granted (the honest spend).
  std::uint64_t decode_iterations_needed = 0;
  std::uint64_t decode_iterations_realized = 0;
  /// Goodput accounting: transport-block bits offered to the pool, and
  /// bits of jobs that completed inside their deadline.
  double offered_tb_bits = 0.0;
  double delivered_tb_bits = 0.0;
  /// Worst per-server compute backlog seen over the run, in TTIs.
  double peak_compute_pressure = 0.0;
  /// Cell-migration protocol outcomes (all zero unless migration.enabled;
  /// `migrations` above still counts *planned* moves).
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_committed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t migrations_rolled_back = 0;
  /// Lease-expiry takeovers (source crashed after the state transfer).
  std::uint64_t migrations_taken_over = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t migrations_deferred = 0;
  std::uint64_t migration_deadline_expired = 0;
  /// Fenced duplicates / reordered strays rejected by token checks.
  std::uint64_t migration_stale_messages = 0;
  /// Cell-TTIs unowned because of a migration window (fence gap, takeover
  /// wait, or the naive baseline's dark transfer).
  std::uint64_t migration_blackout_ttis = 0;
  /// Cell-TTIs granted to two servers. Zero by construction — a nonzero
  /// value is a ContractViolation before it is a KPI.
  std::uint64_t migration_dual_executions = 0;
  double mean_handoff_latency_ms = 0.0;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);
  ~Deployment();  ///< Out-of-line: trace_bridge_ is incomplete here.

  /// Runs until `t` (absolute simulated time, monotone across calls).
  void run_until(sim::Time t);

  /// Convenience: advance by `d`.
  void run_for(sim::Time d) { run_until(engine_.now() + d); }

  sim::Time now() const noexcept { return engine_.now(); }
  double hour_at(sim::Time t) const;

  /// Injects a server crash at absolute time `t` (>= now). Delivered via
  /// the fault injector: crashing an already-down server is a traced no-op.
  void fail_server_at(sim::Time t, int server_id);
  /// Restores a failed server at absolute time `t` (>= now). Restoring a
  /// healthy server is a traced no-op.
  void restore_server_at(sim::Time t, int server_id);

  DeploymentKpis kpis() const;
  /// The shared fronthaul link, if configured.
  const fronthaul::FronthaulLink* fronthaul_link() const noexcept {
    return fronthaul_link_ ? &*fronthaul_link_ : nullptr;
  }
  /// The MAC instance of a cell (nullptr unless kMacScheduled).
  const mac::CellMac* cell_mac(int cell_index) const {
    if (macs_.empty()) return nullptr;
    return &macs_.at(static_cast<std::size_t>(cell_index));
  }
  const cluster::Executor& executor() const noexcept { return *executor_; }
  const Controller& controller() const noexcept { return *controller_; }
  /// Fault delivery authority; benches use it for degrade/correlated plans.
  faults::FaultInjector& injector() noexcept { return *injector_; }
  const faults::FaultInjector& injector() const noexcept { return *injector_; }
  /// Health monitor (nullptr in oracle mode, heartbeat_period == 0).
  const faults::HealthMonitor* monitor() const noexcept {
    return monitor_ ? &*monitor_ : nullptr;
  }
  /// Fronthaul impairment model (nullptr unless configured).
  const faults::FronthaulImpairments* impairments() const noexcept {
    return impairments_ ? &*impairments_ : nullptr;
  }
  /// Degradation ladder (nullptr unless enabled).
  const DegradationController* degradation() const noexcept {
    return degradation_.get();
  }
  /// Migration manager (nullptr unless config().migration.enabled).
  const MigrationManager* migration() const noexcept {
    return migration_.get();
  }
  const sim::Trace& trace() const noexcept { return trace_; }
  const DeploymentConfig& config() const noexcept { return config_; }

  /// Per-cell outcome filter: count of deadline misses for one cell.
  std::uint64_t misses_for_cell(int cell_id) const;

  /// Timeline machinery (nullptr unless config().timeline.enabled and the
  /// build has telemetry).
  const telemetry::TimeSeriesRecorder* timeline_recorder() const noexcept {
    return recorder_.get();
  }
  const telemetry::SloEngine* slo_engine() const noexcept {
    return slo_engine_.get();
  }
  const telemetry::FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }
  /// Dumps a flight-recorder post-mortem now (run aborts, operator
  /// request). Returns the file path, or "" when the timeline is off,
  /// record-only, or the dump budget is spent.
  std::string trigger_postmortem(std::string_view reason,
                                 std::string_view detail = "");

 private:
  void tick();          ///< One TTI: sample, build jobs, submit.
  void epoch_replan();  ///< Controller epoch.
  void timeline_sample();  ///< Closes one KPI window (timeline cadence).
  /// Applies the ladder's current rung: recomputes the wire bits per
  /// subframe, the compression BLER penalty and the cell quarantines.
  void apply_ladder_rung();
  std::unique_ptr<Placer> make_placer() const;
  /// HARQ consequence of an unrecoverable subframe (drop or missed
  /// deadline): retransmission 8 TTIs later, or a lost transport block.
  void handle_harq_loss(const lte::SubframeJob& job);
  /// Overload-admission completion estimate for submitting `job_gops` to
  /// `server` now: max of the backlog-drain bound (whole-server
  /// throughput) and the solo-execution bound (the job's own fan-out
  /// limit). Used by the computational-outage test in tick() and the
  /// HARQ storm-breaker.
  sim::Time admission_exec_estimate(int server, double job_gops) const;
  void close_energy_interval();
  void on_server_fault(int server_id, faults::FaultKind kind);
  void on_server_recovery(int server_id, faults::FaultKind kind);
  void record_recovery_decision(int server_id, sim::Time now);

  DeploymentConfig config_;
  sim::Engine engine_;
  sim::Trace trace_;
  /// Mirrors trace records into global telemetry (null when disabled).
  std::unique_ptr<telemetry::SimTraceBridge> trace_bridge_;
  /// Per-cell outcome families (`deployment.cell_*{cell=N}` series; null
  /// when the build has telemetry off).
  std::unique_ptr<telemetry::CounterFamily> cell_subframes_;
  std::unique_ptr<telemetry::CounterFamily> cell_misses_;
  std::unique_ptr<telemetry::CounterFamily> cell_outages_;
  /// Timeline machinery (null unless timeline.enabled).
  std::unique_ptr<telemetry::TimeSeriesRecorder> recorder_;
  std::unique_ptr<telemetry::SloEngine> slo_engine_;
  std::unique_ptr<telemetry::FlightRecorder> flight_;
  std::vector<workload::TrafficModel> cells_;
  /// Populated only in kMacScheduled mode (index-aligned with cells_).
  std::vector<mac::CellMac> macs_;
  std::vector<lte::SubframeFactory> factories_;
  std::unique_ptr<cluster::Executor> executor_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<MigrationManager> migration_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::optional<faults::HealthMonitor> monitor_;
  std::optional<fronthaul::FronthaulLink> fronthaul_link_;
  units::Bits fronthaul_bits_per_subframe_{0};
  std::optional<faults::FronthaulImpairments> impairments_;
  std::unique_ptr<DegradationController> degradation_;
  /// Per-(cell, TTI) transport-block quality draws for the compression
  /// EVM penalty; drawn unconditionally whenever the ladder is enabled so
  /// the sequence is a pure function of the seed.
  Rng quality_rng_;
  double compression_penalty_ = 0.0;
  /// Compute-aware overload accounting (see overload.hpp).
  std::uint64_t compute_outage_tbs_ = 0;
  std::uint64_t effort_capped_tbs_ = 0;
  std::uint64_t decode_iterations_needed_ = 0;
  std::uint64_t decode_iterations_realized_ = 0;
  double offered_tb_bits_ = 0.0;
  double delivered_tb_bits_ = 0.0;
  /// Worst backlog_ttis over the current epoch (feeds the ladder's
  /// compute-pressure signal) and over the whole run.
  double epoch_peak_pressure_ = 0.0;
  double peak_compute_pressure_ = 0.0;
  std::uint64_t shed_subframes_ = 0;
  std::uint64_t compression_tb_failures_ = 0;
  std::uint64_t quarantined_cell_ttis_ = 0;
  /// Executor-stat marks for per-epoch deadline-miss-rate deltas.
  std::uint64_t epoch_completed_mark_ = 0;
  std::uint64_t epoch_missed_mark_ = 0;
  Pipeline pipeline_;
  double standard_gops_cache_ = 0.0;  // scratch, see tick()
  std::int64_t tti_counter_ = 0;
  int failover_outages_ = 0;
  std::uint64_t outage_cell_ttis_ = 0;
  /// Fault bookkeeping: when each server last crashed (for detection
  /// latency), accumulated latency, and drops inside the blind window.
  std::vector<sim::Time> fault_time_;
  sim::Time detection_latency_total_ = 0;
  std::uint64_t blind_window_drops_ = 0;
  std::uint64_t harq_retx_count_ = 0;
  std::uint64_t lost_tbs_ = 0;
  /// Energy accounting: powered-server-seconds accrued so far plus the
  /// currently active count since the last accrual mark.
  double active_server_seconds_ = 0.0;
  int current_active_servers_ = 0;
  sim::Time energy_mark_ = 0;
};

}  // namespace pran::core
