#include "core/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fronthaul/codec.hpp"

namespace pran::core {

DegradationController::DegradationController(const DegradationConfig& config,
                                             int num_cells)
    : config_(config), num_cells_(num_cells), down_hold_(config.down_epochs) {
  PRAN_REQUIRE(num_cells_ >= 1, "ladder needs cells");
  PRAN_REQUIRE(config_.shed_fraction >= 0.0 && config_.shed_fraction <= 1.0,
               "shed fraction outside [0, 1]");
  PRAN_REQUIRE(
      config_.quarantine_fraction >= 0.0 && config_.quarantine_fraction <= 1.0,
      "quarantine fraction outside [0, 1]");
  PRAN_REQUIRE(config_.up_epochs >= 1, "up hysteresis below 1 epoch");
  PRAN_REQUIRE(config_.down_epochs >= 1, "down hysteresis below 1 epoch");
  PRAN_REQUIRE(config_.backoff_multiplier >= 1.0, "backoff multiplier below 1");
  PRAN_REQUIRE(config_.queue_delay_up_us > config_.queue_delay_down_us,
               "queue-delay thresholds must leave a hysteresis band");
  PRAN_REQUIRE(config_.loss_up > config_.loss_down,
               "loss thresholds must leave a hysteresis band");
  PRAN_REQUIRE(config_.miss_up > config_.miss_down,
               "miss thresholds must leave a hysteresis band");
  double prev = 1.0;
  for (double factor : config_.compression_ladder) {
    PRAN_REQUIRE(factor > prev,
                 "compression ladder must be strictly increasing, each > 1");
    prev = factor;
  }
}

bool DegradationController::update(sim::Time now,
                                   const DegradationSignals& signals) {
  if (!config_.enabled) return false;
  const bool stressed = signals.queue_delay_us > config_.queue_delay_up_us ||
                        signals.loss_rate > config_.loss_up ||
                        signals.miss_rate > config_.miss_up;
  const bool calm = signals.queue_delay_us < config_.queue_delay_down_us &&
                    signals.loss_rate < config_.loss_down &&
                    signals.miss_rate < config_.miss_down;
  if (stressed) {
    ++stressed_epochs_;
    calm_epochs_ = 0;
  } else if (calm) {
    ++calm_epochs_;
    stressed_epochs_ = 0;
  } else {
    // Dead band between the thresholds: hold the rung, restart both
    // consecutive-epoch counts.
    stressed_epochs_ = 0;
    calm_epochs_ = 0;
  }

  if (stressed_epochs_ >= config_.up_epochs && rung_ < max_rung()) {
    ++rung_;
    ++transitions_;
    stressed_epochs_ = 0;
    last_transition_ = now;
    if (recovering_) {
      // Re-escalation after a step-down: the link is marginal at this
      // boundary, so the next step-down must earn a longer calm streak.
      down_hold_ = static_cast<int>(std::ceil(
          static_cast<double>(down_hold_) * config_.backoff_multiplier));
      recovering_ = false;
    }
    return true;
  }
  if (calm_epochs_ >= down_hold_ && rung_ > 0) {
    --rung_;
    ++transitions_;
    calm_epochs_ = 0;
    last_transition_ = now;
    recovering_ = true;
    return true;
  }
  return false;
}

const char* DegradationController::rung_name() const noexcept {
  if (rung_ == 0) return "normal";
  if (rung_ < shed_rung()) return "compress";
  if (rung_ < quarantine_rung()) return "shed";
  return "quarantine";
}

double DegradationController::compression_multiplier() const noexcept {
  if (rung_ == 0 || config_.compression_ladder.empty()) return 1.0;
  const auto step = static_cast<std::size_t>(
      std::min(rung_, static_cast<int>(config_.compression_ladder.size())));
  return config_.compression_ladder[step - 1];
}

bool DegradationController::cell_shed_eligible(int cell) const {
  PRAN_REQUIRE(cell >= 0 && cell < num_cells_, "unknown cell index");
  const int count = std::min(
      num_cells_,
      static_cast<int>(std::ceil(
          config_.shed_fraction * static_cast<double>(num_cells_) - 1e-9)));
  return cell >= num_cells_ - count;
}

bool DegradationController::cell_quarantined(int cell) const {
  PRAN_REQUIRE(cell >= 0 && cell < num_cells_, "unknown cell index");
  if (!quarantining()) return false;
  const int count =
      std::min(num_cells_, static_cast<int>(std::ceil(
                               config_.quarantine_fraction *
                                   static_cast<double>(num_cells_) -
                               1e-9)));
  return cell >= num_cells_ - count;
}

double compression_penalty_bler(double total_ratio) {
  PRAN_REQUIRE(total_ratio > 0.0, "compression ratio must be positive");
  if (total_ratio <= 1.0) return 0.0;

  // Mantissa width that reaches the ratio with a shared-exponent block
  // float (the per-block 6-bit exponent is amortised over 32 samples).
  const int mantissa = std::clamp(
      static_cast<int>(std::llround(
          static_cast<double>(fronthaul::kCpriSampleBits) / total_ratio)),
      2, fronthaul::kCpriSampleBits);

  // Deterministic Gaussian reference block: OFDM time-domain I/Q is
  // Gaussian to a good approximation, and a fixed seed keeps the penalty
  // a pure function of the ratio.
  Rng rng(0x5EEDu);
  std::vector<fronthaul::Cplx> block(2048);
  for (auto& sample : block) sample = {rng.normal(), rng.normal()};

  const fronthaul::BlockFloatCodec codec(mantissa);
  const auto result = codec.roundtrip(block);
  double signal = 0.0, error = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    signal += std::norm(block[i]);
    error += std::norm(result.decoded[i] - block[i]);
  }
  const double evm = std::sqrt(error / signal);

  // Power-law waterfall anchored at the 16-QAM EVM budget (12.5%): BLER
  // falls three decades per decade of EVM margin and saturates at 0.5.
  constexpr double kEvmBudget = 0.125;
  return std::min(0.5, 0.5 * std::pow(evm / kEvmBudget, 3.0));
}

}  // namespace pran::core
