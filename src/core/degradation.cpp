#include "core/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fronthaul/codec.hpp"

namespace pran::core {

const char* rung_kind_name(RungKind kind) noexcept {
  switch (kind) {
    case RungKind::kNormal:
      return "normal";
    case RungKind::kCompress:
      return "compress";
    case RungKind::kEffort:
      return "effort";
    case RungKind::kMcsCap:
      return "mcs-cap";
    case RungKind::kShed:
      return "shed";
    case RungKind::kQuarantine:
      return "quarantine";
  }
  return "?";
}

DegradationController::DegradationController(const DegradationConfig& config,
                                             int num_cells)
    : config_(config), num_cells_(num_cells), down_hold_(config.down_epochs) {
  PRAN_REQUIRE(num_cells_ >= 1, "ladder needs cells");
  PRAN_REQUIRE(config_.shed_fraction >= 0.0 && config_.shed_fraction <= 1.0,
               "shed fraction outside [0, 1]");
  PRAN_REQUIRE(
      config_.quarantine_fraction >= 0.0 && config_.quarantine_fraction <= 1.0,
      "quarantine fraction outside [0, 1]");
  PRAN_REQUIRE(config_.up_epochs >= 1, "up hysteresis below 1 epoch");
  PRAN_REQUIRE(config_.down_epochs >= 1, "down hysteresis below 1 epoch");
  PRAN_REQUIRE(config_.backoff_multiplier >= 1.0, "backoff multiplier below 1");
  PRAN_REQUIRE(config_.queue_delay_up_us > config_.queue_delay_down_us,
               "queue-delay thresholds must leave a hysteresis band");
  PRAN_REQUIRE(config_.loss_up > config_.loss_down,
               "loss thresholds must leave a hysteresis band");
  PRAN_REQUIRE(config_.miss_up > config_.miss_down,
               "miss thresholds must leave a hysteresis band");
  double prev = 1.0;
  for (double factor : config_.compression_ladder) {
    PRAN_REQUIRE(factor > prev,
                 "compression ladder must be strictly increasing, each > 1");
    prev = factor;
  }
  PRAN_REQUIRE(config_.compute_up_ttis > config_.compute_down_ttis,
               "compute-pressure thresholds must leave a hysteresis band");
  int prev_cap = lte::kMaxTurboIterations;
  for (int cap : config_.effort_ladder) {
    PRAN_REQUIRE(cap >= 1 && cap < prev_cap,
                 "effort ladder must be strictly decreasing caps below the "
                 "full iteration budget");
    prev_cap = cap;
  }
  PRAN_REQUIRE(config_.mcs_cap >= 0 && config_.mcs_cap <= 28,
               "MCS cap outside the MCS table");
  dwell_.assign(static_cast<std::size_t>(max_rung()) + 1, 0);
}

bool DegradationController::update(sim::Time now,
                                   const DegradationSignals& signals) {
  if (!config_.enabled) return false;
  // Settle the dwell of the rung we have been sitting on since the last
  // update before any transition moves us off it.
  if (now > dwell_mark_) {
    dwell_[static_cast<std::size_t>(rung_)] += now - dwell_mark_;
    dwell_mark_ = now;
  }
  const bool stressed = signals.queue_delay_us > config_.queue_delay_up_us ||
                        signals.loss_rate > config_.loss_up ||
                        signals.miss_rate > config_.miss_up ||
                        signals.compute_pressure > config_.compute_up_ttis;
  const bool calm = signals.queue_delay_us < config_.queue_delay_down_us &&
                    signals.loss_rate < config_.loss_down &&
                    signals.miss_rate < config_.miss_down &&
                    signals.compute_pressure < config_.compute_down_ttis;
  if (stressed) {
    ++stressed_epochs_;
    calm_epochs_ = 0;
  } else if (calm) {
    ++calm_epochs_;
    stressed_epochs_ = 0;
  } else {
    // Dead band between the thresholds: hold the rung, restart both
    // consecutive-epoch counts.
    stressed_epochs_ = 0;
    calm_epochs_ = 0;
  }

  if (stressed_epochs_ >= config_.up_epochs && rung_ < max_rung()) {
    ++rung_;
    ++transitions_;
    stressed_epochs_ = 0;
    last_transition_ = now;
    if (recovering_) {
      // Re-escalation after a step-down: the link is marginal at this
      // boundary, so the next step-down must earn a longer calm streak.
      down_hold_ = static_cast<int>(std::ceil(
          static_cast<double>(down_hold_) * config_.backoff_multiplier));
      recovering_ = false;
    }
    return true;
  }
  if (calm_epochs_ >= down_hold_ && rung_ > 0) {
    --rung_;
    ++transitions_;
    calm_epochs_ = 0;
    last_transition_ = now;
    recovering_ = true;
    return true;
  }
  return false;
}

RungKind DegradationController::rung_kind(int rung) const noexcept {
  if (rung <= 0) return RungKind::kNormal;
  if (rung < first_effort_rung()) return RungKind::kCompress;
  if (rung < mcs_rung()) return RungKind::kEffort;
  if (rung < shed_rung()) return RungKind::kMcsCap;
  if (rung < quarantine_rung()) return RungKind::kShed;
  return RungKind::kQuarantine;
}

const char* DegradationController::rung_name() const noexcept {
  return rung_kind_name(rung_kind(rung_));
}

int DegradationController::effort_cap() const noexcept {
  if (config_.effort_ladder.empty() || rung_ < first_effort_rung())
    return lte::kMaxTurboIterations;
  const auto step = static_cast<std::size_t>(
      std::min(rung_ - first_effort_rung() + 1,
               static_cast<int>(config_.effort_ladder.size())));
  return config_.effort_ladder[step - 1];
}

sim::Time DegradationController::dwell(int rung) const {
  PRAN_REQUIRE(rung >= 0 && rung <= max_rung(), "unknown rung index");
  return dwell_[static_cast<std::size_t>(rung)];
}

double DegradationController::compression_multiplier() const noexcept {
  if (rung_ == 0 || config_.compression_ladder.empty()) return 1.0;
  const auto step = static_cast<std::size_t>(
      std::min(rung_, static_cast<int>(config_.compression_ladder.size())));
  return config_.compression_ladder[step - 1];
}

bool DegradationController::cell_shed_eligible(int cell) const {
  PRAN_REQUIRE(cell >= 0 && cell < num_cells_, "unknown cell index");
  const int count = std::min(
      num_cells_,
      static_cast<int>(std::ceil(
          config_.shed_fraction * static_cast<double>(num_cells_) - 1e-9)));
  return cell >= num_cells_ - count;
}

bool DegradationController::cell_quarantined(int cell) const {
  PRAN_REQUIRE(cell >= 0 && cell < num_cells_, "unknown cell index");
  if (!quarantining()) return false;
  const int count =
      std::min(num_cells_, static_cast<int>(std::ceil(
                               config_.quarantine_fraction *
                                   static_cast<double>(num_cells_) -
                               1e-9)));
  return cell >= num_cells_ - count;
}

double compression_penalty_bler(double total_ratio) {
  PRAN_REQUIRE(total_ratio > 0.0, "compression ratio must be positive");
  if (total_ratio <= 1.0) return 0.0;

  // Mantissa width that reaches the ratio with a shared-exponent block
  // float (the per-block 6-bit exponent is amortised over 32 samples).
  const int mantissa = std::clamp(
      static_cast<int>(std::llround(
          static_cast<double>(fronthaul::kCpriSampleBits) / total_ratio)),
      2, fronthaul::kCpriSampleBits);

  // Deterministic Gaussian reference block: OFDM time-domain I/Q is
  // Gaussian to a good approximation, and a fixed seed keeps the penalty
  // a pure function of the ratio.
  Rng rng(0x5EEDu);
  std::vector<fronthaul::Cplx> block(2048);
  for (auto& sample : block) sample = {rng.normal(), rng.normal()};

  const fronthaul::BlockFloatCodec codec(mantissa);
  const auto result = codec.roundtrip(block);
  double signal = 0.0, error = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    signal += std::norm(block[i]);
    error += std::norm(result.decoded[i] - block[i]);
  }
  const double evm = std::sqrt(error / signal);

  // Power-law waterfall anchored at the 16-QAM EVM budget (12.5%): BLER
  // falls three decades per decade of EVM margin and saturates at 0.5.
  constexpr double kEvmBudget = 0.125;
  return std::min(0.5, 0.5 * std::pow(evm / kEvmBudget, 3.0));
}

}  // namespace pran::core
