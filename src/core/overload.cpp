#include "core/overload.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::core {

void validate(const OverloadConfig& config) {
  PRAN_REQUIRE(config.min_effort >= 1, "effort floor must allow one pass");
  PRAN_REQUIRE(config.max_effort >= config.min_effort,
               "effort cap range is inverted");
  PRAN_REQUIRE(config.max_effort <= lte::kMaxTurboIterations,
               "effort cap exceeds the decoder's iteration budget");
  PRAN_REQUIRE(config.pressure_onset_ttis >= 0.0,
               "pressure onset must be non-negative");
  PRAN_REQUIRE(config.pressure_full_ttis > config.pressure_onset_ttis,
               "pressure thresholds must leave a proportional band");
}

int effort_cap_for_pressure(const OverloadConfig& config,
                            double backlog_ttis) {
  if (!config.enabled) return lte::kMaxTurboIterations;
  if (backlog_ttis <= config.pressure_onset_ttis) return config.max_effort;
  if (backlog_ttis >= config.pressure_full_ttis) return config.min_effort;
  const double frac =
      (backlog_ttis - config.pressure_onset_ttis) /
      (config.pressure_full_ttis - config.pressure_onset_ttis);
  const double cap =
      static_cast<double>(config.max_effort) -
      frac * static_cast<double>(config.max_effort - config.min_effort);
  // Round down: under pressure, grant the conservative budget.
  return std::max(config.min_effort, static_cast<int>(std::floor(cap)));
}

}  // namespace pran::core
