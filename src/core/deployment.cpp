#include "core/deployment.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "core/kpi_export.hpp"
#include "fronthaul/codec.hpp"
#include "telemetry/bridge.hpp"
#include "telemetry/family.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::core {

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)),
      pipeline_(config_.pipeline ? *config_.pipeline
                                 : Pipeline::standard_uplink()) {
  // Mirror controller/fault/quarantine trace events into the global
  // telemetry state (per-category counters + simulated-time markers).
  if (telemetry::enabled()) {
    trace_bridge_ = std::make_unique<telemetry::SimTraceBridge>(
        telemetry::registry(), telemetry::spans());
    trace_.set_sink(trace_bridge_.get());
    // Per-cell outcome series (`deployment.cell_*{cell=N}`): one relaxed
    // fetch_add per completion on top of the scalar counters, giving the
    // timeline its dimensional deadline-miss trajectories.
    cell_subframes_ = std::make_unique<telemetry::CounterFamily>(
        telemetry::registry(), "deployment.cell_subframes", "cell");
    cell_misses_ = std::make_unique<telemetry::CounterFamily>(
        telemetry::registry(), "deployment.cell_misses", "cell");
    cell_outages_ = std::make_unique<telemetry::CounterFamily>(
        telemetry::registry(), "deployment.cell_outages", "cell");
  }
  PRAN_REQUIRE(config_.num_cells >= 1, "deployment needs cells");
  PRAN_REQUIRE(config_.num_servers >= 1, "deployment needs servers");
  PRAN_REQUIRE(config_.epoch >= sim::kTti, "epoch must be at least one TTI");
  PRAN_REQUIRE(config_.day_compression > 0.0,
               "day compression must be positive");

  // Radio fleet with heterogeneous diurnal profiles.
  auto fleet = workload::make_fleet(config_.num_cells, config_.seed,
                                    lte::CellConfig{},
                                    config_.peak_prb_utilization);
  cells_ = std::move(fleet.cells);

  // With a shared fronthaul the HARQ deadline is set by the propagation
  // delay only (the ACK path); serialisation/queueing delays the *release*
  // instead, via the link model in tick().
  const sim::Time fh_latency = config_.shared_fronthaul
                                   ? config_.shared_fronthaul->propagation
                                   : config_.fronthaul_latency;
  factories_.reserve(cells_.size());
  for (const auto& cell : cells_)
    factories_.emplace_back(cell.site().cell_id, cell.site().config,
                            lte::CostModel{}, fh_latency);

  if (config_.shared_fronthaul) {
    fronthaul_link_.emplace(*config_.shared_fronthaul);
    fronthaul_link_->set_late_threshold(config_.fronthaul_late_threshold);
    fronthaul_bits_per_subframe_ = fronthaul::subframe_bits(
        units::Hertz{30.72e6}, fronthaul::kCpriSampleBits,
        lte::CellConfig{}.antennas, config_.fronthaul_compression);
    if (config_.fronthaul_impairments.enabled()) {
      impairments_.emplace(config_.fronthaul_impairments,
                           config_.seed * 0x9E3779B9u + 0xF0);
      fronthaul_link_->set_impairment_hook(
          [this](sim::Time ready, units::Bits bits) {
            return impairments_->apply(ready, bits);
          });
    }
  } else {
    PRAN_REQUIRE(!config_.fronthaul_impairments.enabled(),
                 "fronthaul impairments require a shared fronthaul link");
  }
  if (config_.degradation.enabled) {
    PRAN_REQUIRE(config_.shared_fronthaul.has_value(),
                 "the degradation ladder watches the shared fronthaul");
    degradation_ = std::make_unique<DegradationController>(
        config_.degradation, config_.num_cells);
    quality_rng_ = Rng(config_.seed).stream(0xDEu);
  }
  if (config_.overload.enabled) validate(config_.overload);

  // Compute cluster.
  std::vector<cluster::ServerSpec> specs;
  specs.reserve(static_cast<std::size_t>(config_.num_servers));
  for (int s = 0; s < config_.num_servers; ++s) {
    cluster::ServerSpec spec = config_.server;
    spec.name = "server-" + std::to_string(s);
    specs.push_back(spec);
  }
  executor_ =
      std::make_unique<cluster::Executor>(engine_, specs, config_.policy);

  // MAC mode: one scheduled UE population per cell, with the statistical
  // fleet retained for its diurnal profiles and site geometry.
  auto make_mac_config = [this](const workload::TrafficModel& cell) {
    mac::CellMacConfig mc;
    mc.cell = cell.site().config;
    mc.num_ues = config_.mac_ues_per_cell;
    mc.scheduler = config_.mac_scheduler;
    mc.traffic = mac::TrafficKind::kPoisson;
    mc.mean_arrival_bps = config_.mac_ue_peak_bps;
    mc.radius_m = cell.site().radius_m;
    mc.min_distance_m = cell.site().min_distance_m;
    mc.seed = config_.seed * 7919 +
              static_cast<std::uint64_t>(cell.site().cell_id);
    return mc;
  };
  if (config_.traffic_source ==
      DeploymentConfig::TrafficSource::kMacScheduled) {
    macs_.reserve(cells_.size());
    for (const auto& cell : cells_) macs_.emplace_back(make_mac_config(cell));
  }

  // Controller seeded with the traffic source's expectation at start time.
  const lte::CostModel cost_model;
  std::vector<CellDemand> initial;
  initial.reserve(cells_.size());
  for (const auto& cell : cells_) {
    CellDemand d;
    d.cell_id = cell.site().cell_id;
    if (macs_.empty()) {
      d.gops_per_tti = cell.expected_subframe_gops(config_.start_hour);
    } else {
      // Warm-up estimate: run a throwaway MAC replica at the start-hour
      // load and average the subframe cost.
      mac::CellMac warmup(make_mac_config(cell));
      warmup.set_load_scale(cell.profile().at(config_.start_hour));
      double total = 0.0;
      constexpr int kWarmupTtis = 100;
      for (int t = 0; t < kWarmupTtis; ++t) {
        const auto allocs = warmup.run_tti();
        total += cost_model
                     .subframe_cost(cell.site().config, allocs,
                                    lte::Direction::kUplink)
                     .total();
      }
      d.gops_per_tti = total / kWarmupTtis;
    }
    d.peak_subframe_gops = cell.peak_subframe_gops();
    initial.push_back(d);
  }
  controller_ = std::make_unique<Controller>(config_.controller, make_placer(),
                                             specs, std::move(initial));

  // Crash-safe migration: epoch repartitions become two-phase handoff
  // plans (the sink), placement flips only at commit (the completion
  // callback), and commit-phase cells with a dead source resolve by lease
  // takeover instead of failover re-packing (the filter).
  if (config_.migration.enabled) {
    migration_ = std::make_unique<MigrationManager>(
        config_.migration, engine_, config_.num_cells, config_.num_servers,
        config_.seed * 0x9E3779B9u + 0xCE);
    migration_->set_complete_callback([this](int cell, int server) {
      controller_->complete_migration(cell, server);
    });
    migration_->set_event_callback(
        [this](const MigrationRecord& rec, std::string_view event) {
          std::ostringstream os;
          os << "cell " << rec.cell << " " << rec.from << "->" << rec.to
             << " " << event;
          if (!rec.detail.empty()) os << " (" << rec.detail << ")";
          trace_.emit(engine_.now(), "migration", os.str());
          if (!flight_) return;
          if (event != "committed")
            flight_->record_event(engine_.now(), "migration",
                                  "cell " + std::to_string(rec.cell) + " " +
                                      std::string(event) +
                                      (rec.detail.empty() ? ""
                                                          : ": " + rec.detail));
          // Burning a whole retry budget means the control plane is in
          // serious trouble: worth a black-box dump (rate-limited by the
          // recorder's dump budget).
          if (event == "retry_exhausted")
            flight_->trigger(engine_.now(), "migration_retry_exhausted",
                             "cell " + std::to_string(rec.cell) + ": " +
                                 rec.detail);
        });
    controller_->set_migration_sink([this](int cell, int from, int to) {
      migration_->begin(cell, from, to);
      // Handled regardless of outcome: with the manager on, placement
      // never teleports — deferred/in-flight cells stay on their source.
      return true;
    });
    controller_->set_failover_filter(
        [this](int cell) { return migration_->holds_failover(cell); });
  }

  // Dropped jobs are failovers in flight: resubmit to the cell's (already
  // re-planned) new server if one exists; otherwise the subframe is gone
  // over the air and owes its HARQ consequence like any missed decode.
  executor_->set_drop_callback(
      [this](const lte::SubframeJob& job, int server_id) {
        if (monitor_ && executor_->is_failed(server_id) &&
            !monitor_->believes_down(server_id))
          ++blind_window_drops_;
        const int placed = controller_->server_of(job.cell_id);
        const int target =
            migration_
                ? migration_->routed_server(job.cell_id, engine_.now(), placed)
                : placed;
        if (target >= 0 && !executor_->is_failed(target) &&
            engine_.now() < job.deadline) {
          executor_->submit(target, job);
          return;
        }
        handle_harq_loss(job);
      });

  // HARQ feedback: a missed uplink decode means no ACK reached the UE, so
  // the same transport block arrives again 8 TTIs later — real extra load.
  // Dropped jobs already settled their HARQ debt in the drop callback.
  executor_->set_completion_callback([this](const cluster::JobOutcome& o) {
    PRAN_SIM_SPAN("subframe_job", o.server_id, o.start, o.finish - o.start,
                  o.job.cell_id, o.job.tti);
    // Every terminal outcome counts one subframe (the SLO denominators).
    PRAN_COUNTER_INC("deployment.subframes");
    const auto cell = static_cast<std::size_t>(o.job.cell_id);
    if (cell_subframes_) cell_subframes_->inc(cell);
    if (o.compute_outage) {
      // Abandoned for lack of compute: the decode never ran, so the UE
      // hears no ACK and the HARQ debt comes due exactly as for a miss.
      compute_outage_tbs_ +=
          static_cast<std::uint64_t>(o.job.compute_outage_tbs);
      PRAN_COUNTER_INC("compute.outage_jobs");
      PRAN_COUNTER_ADD("compute.outage_tbs",
                       static_cast<std::uint64_t>(o.job.compute_outage_tbs));
      if (cell_outages_) cell_outages_->inc(cell);
      handle_harq_loss(o.job);
      return;
    }
    if (o.missed_deadline()) {
      PRAN_COUNTER_INC("deployment.deadline_misses");
      if (cell_misses_) cell_misses_->inc(cell);
    } else if (!o.dropped) {
      delivered_tb_bits_ += o.job.tb_bits;  // on-time: goodput numerator
    }
    if (o.dropped || !o.missed_deadline()) return;
    handle_harq_loss(o.job);
  });

  // Fault delivery: scripted plans and stochastic MTBF/MTTR processes both
  // funnel through the injector; the controller hears about crashes either
  // at the fault instant (oracle) or from the health monitor.
  fault_time_.assign(static_cast<std::size_t>(config_.num_servers), 0);
  injector_ = std::make_unique<faults::FaultInjector>(
      engine_, *executor_, &trace_, config_.seed * 0x9E3779B9u + 0xFA);
  injector_->set_fault_callback([this](int server_id, faults::FaultKind kind) {
    on_server_fault(server_id, kind);
  });
  injector_->set_recovery_callback(
      [this](int server_id, faults::FaultKind kind) {
        on_server_recovery(server_id, kind);
      });
  if (config_.stochastic_faults.enabled())
    injector_->arm_stochastic(config_.stochastic_faults);

  PRAN_REQUIRE(config_.heartbeat_period >= 0,
               "heartbeat period must be non-negative");
  if (config_.heartbeat_period > 0) {
    faults::HealthMonitorConfig mc;
    mc.heartbeat_period = config_.heartbeat_period;
    mc.miss_threshold = config_.heartbeat_miss_threshold;
    monitor_.emplace(engine_, *executor_, mc, &trace_);
    monitor_->set_down_callback([this](int server_id, sim::Time at) {
      const sim::Time latency =
          at - fault_time_[static_cast<std::size_t>(server_id)];
      detection_latency_total_ += latency;
      PRAN_HIST_OBSERVE("monitor.detection_latency_ms", 0.0, 1000.0, 50,
                        sim::to_seconds(latency) * 1e3);
      close_energy_interval();
      // Detection order matters: the migration manager first (it decides
      // which cells resolve by lease takeover), then the failover.
      if (migration_) migration_->on_server_failed(server_id);
      failover_outages_ += controller_->handle_failure(server_id, at);
      current_active_servers_ =
          PlacementResult{controller_->placement()}.active_servers();
    });
    monitor_->set_up_callback([this](int server_id, sim::Time at) {
      record_recovery_decision(server_id, at);
    });
  }

  const auto first_plan = controller_->replan();
  PRAN_REQUIRE(first_plan.feasible,
               "initial placement infeasible: add servers or reduce load");
  current_active_servers_ = first_plan.active_servers;

  engine_.schedule_at(0, [this] { tick(); });
  engine_.schedule_at(config_.epoch, [this] { epoch_replan(); });

  // KPI timeline: windowed snapshot diffs -> SLO burn-rate evaluation ->
  // flight-recorder post-mortems. Rides the process-global registry, so
  // it is only meaningful for runs that own it (see TimelineConfig).
  if (config_.timeline.enabled && telemetry::enabled()) {
    PRAN_REQUIRE(config_.timeline.window >= sim::kTti,
                 "timeline window must be at least one TTI");
    telemetry::TimeSeriesRecorder::Config rc;
    rc.window = config_.timeline.window;
    rc.history = config_.timeline.history;
    recorder_ = std::make_unique<telemetry::TimeSeriesRecorder>(
        telemetry::registry(), rc);
    if (!config_.timeline.timeline_out.empty())
      recorder_->open_jsonl(config_.timeline.timeline_out);
    std::vector<telemetry::SloSpec> slos = config_.timeline.slos;
    if (slos.empty() && config_.timeline.include_default_slos)
      slos = telemetry::default_deployment_slos();
    if (!slos.empty())
      slo_engine_ = std::make_unique<telemetry::SloEngine>(
          telemetry::registry(), std::move(slos));
    telemetry::FlightRecorder::Config fc;
    fc.out_dir = config_.timeline.postmortem_dir;
    fc.max_windows = config_.timeline.flight_windows;
    fc.max_dumps = config_.timeline.max_postmortems;
    flight_ = std::make_unique<telemetry::FlightRecorder>(
        *recorder_, &telemetry::spans(), fc);
    engine_.schedule_at(config_.timeline.window, [this] {
      timeline_sample();
    });
  }
}

Deployment::~Deployment() = default;

std::unique_ptr<Placer> Deployment::make_placer() const {
  switch (config_.placer) {
    case DeploymentConfig::PlacerKind::kFirstFit:
      return std::make_unique<FirstFitPlacer>(true);
    case DeploymentConfig::PlacerKind::kFirstFitNoSticky:
      return std::make_unique<FirstFitPlacer>(false);
    case DeploymentConfig::PlacerKind::kMilp:
      return std::make_unique<MilpPlacer>();
    case DeploymentConfig::PlacerKind::kStaticPeak:
      return std::make_unique<StaticPeakPlacer>();
  }
  PRAN_CHECK(false, "unknown placer kind");
  return nullptr;
}

double Deployment::hour_at(sim::Time t) const {
  return config_.start_hour +
         sim::to_seconds(t) * config_.day_compression / 3600.0;
}

void Deployment::tick() {
  PRAN_SPAN("deployment_tick", tti_counter_);
  const double hour = hour_at(engine_.now());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    std::vector<lte::Allocation> allocs;
    if (macs_.empty()) {
      allocs = cells_[c].sample_subframe(hour);
    } else {
      macs_[c].set_load_scale(cells_[c].profile().at(hour));
      allocs = macs_[c].run_tti();
    }
    if (degradation_ && degradation_->mcs_capping()) {
      // MCS-cap rung: re-grade allocations above the ceiling. The PRBs
      // stay assigned but the transport block shrinks, cutting both the
      // wire's payload and (super-linearly) the decode bill.
      for (auto& a : allocs) {
        if (a.mcs > degradation_->mcs_cap()) {
          a.mcs = degradation_->mcs_cap();
          PRAN_COUNTER_INC("compute.mcs_capped_allocs");
        }
      }
    }
    lte::SubframeJob job = factories_[c].uplink_job(tti_counter_, allocs);
    // Custom pipeline stages add work beyond the standard six.
    job.extra_gops =
        pipeline_.extra_gops(cells_[c].site().config, allocs,
                             job.cost.total());
    // Drawn unconditionally per (cell, TTI) so the transport-block
    // quality sequence never shifts when the ladder moves.
    const double quality_draw = degradation_ ? quality_rng_.uniform() : 1.0;

    // Migration routing decision — exactly one call per (cell, TTI): it
    // counts blackout TTIs and meters out the state-transfer bits that
    // ride the fronthaul alongside this cell's I/Q burst.
    MigrationManager::TickDecision mig;
    mig.server = controller_->server_of(static_cast<int>(c));
    if (migration_)
      mig = migration_->on_tick(static_cast<int>(c), tti_counter_, mig.server);

    if (degradation_ && degradation_->cell_quarantined(static_cast<int>(c))) {
      // Ladder took the cell out of service: radio off, so no I/Q hits
      // the wire — quarantine is the one rung that relieves the fibre
      // itself. Demand estimation stays warm for readmission.
      ++quarantined_cell_ttis_;
      controller_->observe(static_cast<int>(c), job.total_gops());
      continue;
    }

    bool burst_lost = false;
    if (fronthaul_link_) {
      // Burst ready when the subframe ends over the air; arrival replaces
      // the factory's idealised release.
      const sim::Time ready = (tti_counter_ + 1) * sim::kTti;
      // Denominator for the fronthaul_late_rate SLO: every burst offered
      // to the fibre, lost or not.
      PRAN_COUNTER_INC("fronthaul.bursts");
      units::Bits burst_bits = fronthaul_bits_per_subframe_;
      if (mig.transfer_bits > 0.0)
        burst_bits += units::Bits{
            static_cast<std::int64_t>(mig.transfer_bits)};
      const fronthaul::BurstOutcome outcome =
          fronthaul_link_->enqueue_burst(ready, burst_bits);
      burst_lost = outcome.lost;
      if (!outcome.lost) job.release = std::max(job.release, outcome.arrival);
    }
    // Demand estimation sees the radio load regardless of transport fate:
    // a lossy fibre must not starve the placement of capacity.
    controller_->observe(static_cast<int>(c), job.total_gops());

    if (burst_lost) {
      // The samples never reached the pool: no decode, no ACK, and the
      // UE's synchronous HARQ debt comes due like any missed deadline.
      PRAN_COUNTER_INC("fronthaul.lost_bursts");
      handle_harq_loss(job);
      continue;
    }
    const int server = mig.server;
    if (server < 0) {
      if (mig.blackout) {
        // Migration blackout (fence gap, takeover wait, or the naive
        // baseline's dark transfer): the decode never runs, so the UE
        // hears no ACK and the HARQ debt comes due — the real handoff
        // cost E22 measures.
        handle_harq_loss(job);
      } else {
        ++outage_cell_ttis_;  // cell in outage: traffic lost this TTI
      }
      continue;
    }
    if (degradation_ && degradation_->shedding() &&
        degradation_->cell_shed_eligible(static_cast<int>(c))) {
      // Deadline-aware shedding: drop a subframe at ingress when the
      // server's queued backlog plus this decode cannot finish inside
      // the deadline, and settle its HARQ debt honestly instead of
      // letting it rot in a queue and spawn a retransmission storm.
      const auto estimated_exec = static_cast<sim::Time>(
          (executor_->pending_gops(server) + job.total_gops()) /
          (config_.server.gops_per_tti() * executor_->speed_factor(server)) *
          static_cast<double>(sim::kTti));
      if (job.release + estimated_exec > job.deadline) {
        ++shed_subframes_;
        PRAN_COUNTER_INC("fronthaul.shed_subframes");
        handle_harq_loss(job);
        continue;
      }
    }
    // Compute-aware overload control: clamp the per-TB decode-effort
    // budget to the tighter of the ladder's effort rung and the
    // backpressure cap derived from the target server's backlog, then
    // charge the *realized* iterations — a capped job costs what it will
    // actually run, not what the channel asked for.
    int effort_cap = lte::kMaxTurboIterations;
    if (degradation_)
      effort_cap = std::min(effort_cap, degradation_->effort_cap());
    if (config_.overload.enabled)
      effort_cap = std::min(
          effort_cap, effort_cap_for_pressure(config_.overload,
                                              executor_->backlog_ttis(server)));
    if (effort_cap < lte::kMaxTurboIterations) {
      const lte::EffortCapOutcome capped =
          lte::apply_effort_cap(allocs, effort_cap);
      if (capped.capped_tbs > 0) {
        job.cost = factories_[c].model().subframe_cost(
            factories_[c].config(), allocs, lte::Direction::kUplink);
        job.extra_gops = pipeline_.extra_gops(cells_[c].site().config,
                                              allocs, job.cost.total());
        job.decode_iterations_realized = capped.realized_iterations;
        effort_capped_tbs_ += static_cast<std::uint64_t>(capped.capped_tbs);
        PRAN_COUNTER_ADD("compute.capped_tbs",
                         static_cast<std::uint64_t>(capped.capped_tbs));
      }
    }
    offered_tb_bits_ += job.tb_bits;
    decode_iterations_needed_ +=
        static_cast<std::uint64_t>(job.decode_iterations_needed);
    if (config_.overload.enabled) {
      // Admission: if even the capped decode cannot finish inside the
      // deadline, abandon the subframe now — a computational outage —
      // rather than let it waste a queue slot and finish late anyway.
      if (job.release + admission_exec_estimate(server, job.total_gops()) >
          job.deadline) {
        job.compute_outage_tbs = job.tb_count;
        job.decode_iterations_realized = 0;  // the decode never runs
        executor_->record_compute_outage(server, job);
        continue;
      }
    }
    decode_iterations_realized_ +=
        static_cast<std::uint64_t>(job.decode_iterations_realized);
    if ((degradation_ || config_.overload.enabled) && job.tb_count > 0) {
      const double tbs = static_cast<double>(job.tb_count);
      PRAN_HIST_OBSERVE("compute.iterations_needed", 0.0,
                        static_cast<double>(lte::kMaxTurboIterations),
                        lte::kMaxTurboIterations,
                        static_cast<double>(job.decode_iterations_needed) /
                            tbs);
      PRAN_HIST_OBSERVE("compute.iterations_realized", 0.0,
                        static_cast<double>(lte::kMaxTurboIterations),
                        lte::kMaxTurboIterations,
                        static_cast<double>(job.decode_iterations_realized) /
                            tbs);
    }
    if (migration_)
      migration_->record_execution(static_cast<int>(c), tti_counter_, server);
    executor_->submit(server, job);
    if (quality_draw < compression_penalty_) {
      // The decode will run, but the harder compression cost this
      // transport block its CRC: same HARQ consequence as a late decode.
      ++compression_tb_failures_;
      PRAN_COUNTER_INC("fronthaul.compression_tb_failures");
      handle_harq_loss(job);
    }
  }
  if (degradation_ || config_.overload.enabled) {
    // Sample the worst per-server backlog every TTI so the epoch ladder
    // sees the peak pressure, not whatever happens to be queued at the
    // epoch boundary.
    for (int s = 0; s < executor_->num_servers(); ++s)
      epoch_peak_pressure_ =
          std::max(epoch_peak_pressure_, executor_->backlog_ttis(s));
    peak_compute_pressure_ =
        std::max(peak_compute_pressure_, epoch_peak_pressure_);
  }
  ++tti_counter_;
  engine_.schedule_in(sim::kTti, [this] { tick(); });
}

void Deployment::epoch_replan() {
  if (fronthaul_link_) {
    const fronthaul::FronthaulLink::Window window =
        fronthaul_link_->take_window();
    PRAN_COUNTER_ADD("fronthaul.late_bursts", window.late);
    if (degradation_) {
      // Telemetry-fed ladder signals: this epoch's fronthaul window plus
      // the executor's deadline-miss delta since the previous epoch.
      const auto stats = executor_->stats();
      DegradationSignals signals;
      signals.queue_delay_us = sim::to_microseconds(window.max_queue_delay);
      signals.loss_rate = window.loss_rate();
      const std::uint64_t done = stats.completed - epoch_completed_mark_;
      const std::uint64_t missed = stats.missed - epoch_missed_mark_;
      epoch_completed_mark_ = stats.completed;
      epoch_missed_mark_ = stats.missed;
      signals.miss_rate =
          done ? static_cast<double>(missed) / static_cast<double>(done) : 0.0;
      signals.compute_pressure = epoch_peak_pressure_;
      const int rung_before = degradation_->rung();
      if (degradation_->update(engine_.now(), signals)) {
        PRAN_COUNTER_INC("fronthaul.ladder_transitions");
        apply_ladder_rung();
        trace_.emit(engine_.now(), "degradation",
                    std::string("rung ") +
                        std::to_string(degradation_->rung()) + " (" +
                        degradation_->rung_name() + ")");
        if (flight_) {
          flight_->record_transition(engine_.now(), rung_before,
                                     degradation_->rung(),
                                     degradation_->rung_name());
          // Stepping INTO the quarantine rung is the ladder's last resort
          // (cells off the air): always worth a black-box dump.
          const bool now_quarantine =
              degradation_->rung_kind(degradation_->rung()) ==
              RungKind::kQuarantine;
          const bool was_quarantine =
              degradation_->rung_kind(rung_before) == RungKind::kQuarantine;
          if (now_quarantine && !was_quarantine) {
            flight_->record_event(engine_.now(), "quarantine",
                                  degradation_->rung_name());
            flight_->trigger(engine_.now(), "ladder_quarantine",
                             degradation_->rung_name());
          }
        }
      }
      PRAN_GAUGE_SET("fronthaul.ladder_rung",
                     static_cast<double>(degradation_->rung()));
      PRAN_GAUGE_SET("compute.ladder_effort_cap",
                     static_cast<double>(degradation_->effort_cap()));
    }
  }
  if (degradation_ || config_.overload.enabled) {
    PRAN_GAUGE_SET("compute.pressure", epoch_peak_pressure_);
    epoch_peak_pressure_ = 0.0;
  }
  if (config_.forecast_horizon_hours > 0.0) {
    // Scale each cell's estimate by the expected profile growth over the
    // horizon, so the plan covers the load at the *end* of the epoch.
    const double now_hour = hour_at(engine_.now());
    std::vector<double> scale;
    scale.reserve(cells_.size());
    for (const auto& cell : cells_) {
      const double current = std::max(cell.profile().at(now_hour), 0.02);
      const double ahead = std::max(
          cell.profile().at(now_hour + config_.forecast_horizon_hours), 0.02);
      scale.push_back(std::clamp(ahead / current, 0.5, 4.0));
    }
    controller_->set_demand_scale(std::move(scale));
  }
  // Close the energy-accounting interval under the outgoing placement.
  close_energy_interval();

  const int released = controller_->release_quarantines(engine_.now());
  if (released > 0)
    trace_.emit(engine_.now(), "quarantine",
                std::to_string(released) + " server(s) released");

  // Degradation gate: while the ladder sheds or quarantines, the system
  // has no headroom for handoff blackouts and transfer traffic — new
  // migrations are deferred until the ladder recovers.
  if (migration_)
    migration_->set_deferral(degradation_ != nullptr &&
                             (degradation_->shedding() ||
                              degradation_->quarantining()));

  const auto report = [this] {
    PRAN_SPAN("controller_replan");
    return controller_->replan();
  }();
  if (report.feasible) current_active_servers_ = report.active_servers;
  PRAN_COUNTER_INC("controller.epochs");
  if (!report.feasible) PRAN_COUNTER_INC("controller.infeasible_epochs");
  PRAN_COUNTER_ADD("controller.migrations",
                   static_cast<std::uint64_t>(report.migrations));
  PRAN_HIST_OBSERVE("controller.solve_ms", 0.0, 50.0, 50,
                    report.solve_seconds * 1e3);
  std::ostringstream os;
  os << "epoch " << report.epoch << " feasible=" << report.feasible
     << " active=" << report.active_servers
     << " migrations=" << report.migrations;
  trace_.emit(engine_.now(), "controller", os.str());
  engine_.schedule_in(config_.epoch, [this] { epoch_replan(); });
}

void Deployment::run_until(sim::Time t) { engine_.run_until(t); }

void Deployment::timeline_sample() {
  // Refresh the kpi.* gauges first so the closing window (and any
  // post-mortem it triggers) carries live KPI values, not end-of-run ones
  // — this is kpi_export's timeline mode.
  export_kpis(kpis(), telemetry::registry());
  const telemetry::WindowSample& window = recorder_->sample(engine_.now());
  if (slo_engine_) {
    for (const std::string& name : slo_engine_->on_window(window)) {
      trace_.emit(engine_.now(), "slo",
                  "burn-rate trip: " + name);
      if (flight_)
        flight_->trigger(engine_.now(), "slo_" + name,
                         "multi-window burn-rate trip on " + name);
    }
  }
  engine_.schedule_in(config_.timeline.window, [this] { timeline_sample(); });
}

std::string Deployment::trigger_postmortem(std::string_view reason,
                                           std::string_view detail) {
  if (!flight_) return std::string();
  return flight_->trigger(engine_.now(), reason, detail);
}

void Deployment::apply_ladder_rung() {
  const double multiplier = degradation_->compression_multiplier();
  const double total_ratio = config_.fronthaul_compression * multiplier;
  fronthaul_bits_per_subframe_ = fronthaul::subframe_bits(
      units::Hertz{30.72e6}, fronthaul::kCpriSampleBits,
      lte::CellConfig{}.antennas, total_ratio);
  compression_penalty_ =
      multiplier > 1.0 ? compression_penalty_bler(total_ratio) : 0.0;
  std::vector<bool> quarantined(cells_.size(), false);
  for (std::size_t c = 0; c < cells_.size(); ++c)
    quarantined[c] = degradation_->cell_quarantined(static_cast<int>(c));
  controller_->set_cell_quarantine(std::move(quarantined));
}

void Deployment::close_energy_interval() {
  active_server_seconds_ += sim::to_seconds(engine_.now() - energy_mark_) *
                            static_cast<double>(current_active_servers_);
  energy_mark_ = engine_.now();
}

void Deployment::on_server_fault(int server_id, faults::FaultKind kind) {
  if (kind == faults::FaultKind::kDegrade) return;  // capacity stays mapped
  fault_time_[static_cast<std::size_t>(server_id)] = engine_.now();
  if (monitor_) return;  // the controller stays blind until detection
  // Oracle mode: re-place cells *before* the injector fails the executor,
  // so the drop callback forwards in-flight jobs to their new homes. The
  // migration manager hears first — commit-phase cells with a dead source
  // resolve by lease takeover and must be filtered out of the failover.
  close_energy_interval();
  if (migration_) migration_->on_server_failed(server_id);
  failover_outages_ +=
      controller_->handle_failure(server_id, engine_.now());
  current_active_servers_ =
      PlacementResult{controller_->placement()}.active_servers();
}

void Deployment::on_server_recovery(int server_id, faults::FaultKind kind) {
  if (kind == faults::FaultKind::kDegrade) return;
  if (monitor_) return;  // recovery is observed through heartbeats
  record_recovery_decision(server_id, engine_.now());
}

void Deployment::record_recovery_decision(int server_id, sim::Time now) {
  // The server is physically up again (even if the controller quarantines
  // it): leases may route to it once re-granted.
  if (migration_) migration_->on_server_recovered(server_id);
  const auto decision = controller_->handle_recovery(server_id, now);
  if (!decision.accepted) PRAN_COUNTER_INC("controller.quarantine_events");
  if (!decision.accepted)
    trace_.emit(now, "quarantine",
                "server " + std::to_string(server_id) +
                    " quarantined until t=" +
                    std::to_string(sim::to_seconds(
                        decision.quarantined_until)) +
                    "s");
}

sim::Time Deployment::admission_exec_estimate(int server,
                                              double job_gops) const {
  // Two lower bounds on when the job could complete: draining the queued
  // backlog at whole-server throughput, and running this job alone at the
  // widest parallelism the executor can grant it (a job is not infinitely
  // divisible — max_job_parallelism caps its fan-out, so a single heavy
  // decode can be infeasible even on an idle server).
  const double speed = executor_->speed_factor(server);
  const double drain =
      (executor_->pending_gops(server) + job_gops) /
      (config_.server.gops_per_tti() * speed);
  const auto width = static_cast<double>(std::min(
      config_.server.cores, std::max(1, config_.server.max_job_parallelism)));
  // gops_per_core is Gop/s; * 1e-3 converts to Gop per 1 ms TTI.
  const double solo =
      job_gops / (config_.server.gops_per_core * 1e-3 * width * speed);
  return static_cast<sim::Time>(std::max(drain, solo) *
                                static_cast<double>(sim::kTti));
}

void Deployment::handle_harq_loss(const lte::SubframeJob& job) {
  if (!config_.harq_retransmissions ||
      job.direction != lte::Direction::kUplink)
    return;
  if (job.harq_retx >= config_.max_harq_retx) {
    ++lost_tbs_;
    return;
  }
  lte::SubframeJob retx = job;
  ++retx.harq_retx;
  retx.release += lte::kHarqProcesses * sim::kTti;
  retx.deadline += lte::kHarqProcesses * sim::kTti;
  const int placed = controller_->server_of(retx.cell_id);
  const int target =
      migration_ ? migration_->routed_server(retx.cell_id, engine_.now(), placed)
                 : placed;
  if (target < 0 || executor_->is_failed(target)) {
    ++lost_tbs_;
    return;
  }
  if (degradation_ && degradation_->shedding()) {
    // A retransmission that provably cannot meet its deadline is pure
    // waste: executing it delays live traffic and ends in this same
    // function. Shed it and settle the next round of debt immediately —
    // the chain still terminates honestly at max_harq_retx. This is what
    // breaks a retransmission storm: without it every miss re-enters the
    // saturated queue and the overload sustains itself.
    const auto estimated_exec = static_cast<sim::Time>(
        (executor_->pending_gops(target) + retx.total_gops()) /
        (config_.server.gops_per_tti() * executor_->speed_factor(target)) *
        static_cast<double>(sim::kTti));
    if (retx.release + estimated_exec > retx.deadline) {
      ++shed_subframes_;
      PRAN_COUNTER_INC("fronthaul.shed_subframes");
      handle_harq_loss(retx);
      return;
    }
  } else if (config_.overload.enabled) {
    // Same storm-breaker through the compute lens: a retransmission the
    // server provably cannot decode in time is abandoned as a
    // computational outage (the callback settles the next round of HARQ
    // debt, so the chain still terminates at max_harq_retx).
    if (retx.release + admission_exec_estimate(target, retx.total_gops()) >
        retx.deadline) {
      retx.compute_outage_tbs = retx.tb_count;
      retx.decode_iterations_realized = 0;
      executor_->record_compute_outage(target, retx);
      return;
    }
  }
  ++harq_retx_count_;
  executor_->submit(target, retx);
}

void Deployment::fail_server_at(sim::Time t, int server_id) {
  PRAN_REQUIRE(server_id >= 0 && server_id < config_.num_servers,
               "unknown server id");
  PRAN_REQUIRE(t >= engine_.now(), "fault time is in the past");
  faults::FaultEvent event;
  event.kind = faults::FaultKind::kCrash;
  event.at = t;
  event.servers = {server_id};
  injector_->schedule(event);
}

void Deployment::restore_server_at(sim::Time t, int server_id) {
  PRAN_REQUIRE(server_id >= 0 && server_id < config_.num_servers,
               "unknown server id");
  PRAN_REQUIRE(t >= engine_.now(), "restore time is in the past");
  injector_->schedule_restore(t, server_id);
}

DeploymentKpis Deployment::kpis() const {
  DeploymentKpis k;
  const auto stats = executor_->stats();
  k.subframes_processed = stats.completed;
  k.deadline_misses = stats.missed;
  k.dropped = stats.dropped;
  k.miss_ratio = stats.miss_ratio();
  k.migrations = controller_->total_migrations();
  k.failover_outage_cells = failover_outages_;

  k.outage_cell_ttis = outage_cell_ttis_;
  k.harq_retransmissions = harq_retx_count_;
  k.lost_transport_blocks = lost_tbs_;

  if (fronthaul_link_) {
    k.fronthaul_lost_bursts = fronthaul_link_->bursts_lost();
    k.fronthaul_late_bursts = fronthaul_link_->late_bursts();
  }
  if (impairments_) k.fronthaul_brownouts = impairments_->brownouts();
  k.shed_subframes = shed_subframes_;
  k.compression_tb_failures = compression_tb_failures_;
  k.quarantined_cell_ttis = quarantined_cell_ttis_;
  if (degradation_) {
    k.ladder_rung = degradation_->rung();
    k.ladder_transitions = degradation_->transitions();
  }
  k.compute_outage_jobs = stats.compute_outages;
  k.compute_outage_tbs = compute_outage_tbs_;
  k.compute_outage_ratio = stats.compute_outage_ratio();
  k.effort_capped_tbs = effort_capped_tbs_;
  k.decode_iterations_needed = decode_iterations_needed_;
  k.decode_iterations_realized = decode_iterations_realized_;
  k.offered_tb_bits = offered_tb_bits_;
  k.delivered_tb_bits = delivered_tb_bits_;
  k.peak_compute_pressure = peak_compute_pressure_;

  if (migration_) {
    const MigrationCounters& mc = migration_->counters();
    k.migrations_started = mc.started;
    k.migrations_committed = mc.committed;
    k.migrations_aborted = mc.aborted;
    k.migrations_rolled_back = mc.rolled_back;
    k.migrations_taken_over = mc.taken_over;
    k.migration_retries = mc.retries;
    k.migrations_deferred = mc.deferred;
    k.migration_deadline_expired = mc.deadline_expired;
    k.migration_stale_messages = mc.stale_messages;
    k.migration_blackout_ttis = mc.blackout_ttis;
    k.migration_dual_executions = mc.dual_executions;
    k.mean_handoff_latency_ms = mc.mean_handoff_latency_ms();
  }

  k.faults_injected = injector_->faults_delivered();
  k.degrade_events = injector_->degrade_faults();
  k.quarantine_events = controller_->quarantine_events();
  k.blind_window_drops = blind_window_drops_;
  if (monitor_) {
    k.fault_detections = monitor_->detections();
    if (k.fault_detections > 0)
      k.mean_detection_latency_ms = sim::to_seconds(detection_latency_total_) *
                                    1e3 / k.fault_detections;
  } else {
    k.fault_detections = injector_->crash_faults();
  }

  // Energy: idle draw for every powered-server-second plus the busy-core
  // increment for every core-second of actual processing.
  const double powered_seconds =
      active_server_seconds_ +
      sim::to_seconds(engine_.now() - energy_mark_) *
          static_cast<double>(current_active_servers_);
  k.energy_joules = config_.server.idle_watts * powered_seconds +
                    config_.server.watts_per_busy_core() *
                        stats.total_busy_seconds;
  const auto& reports = controller_->reports();
  if (!reports.empty()) {
    double active = 0.0, plan = 0.0;
    int counted = 0;
    for (const auto& r : reports) {
      k.shed_cell_epochs += r.shed_cells;
      if (!r.feasible) {
        ++k.infeasible_epochs;
        continue;
      }
      active += r.active_servers;
      plan += r.solve_seconds;
      ++counted;
    }
    if (counted) {
      k.mean_active_servers = active / counted;
      k.mean_plan_seconds = plan / counted;
    }
  }
  return k;
}

std::uint64_t Deployment::misses_for_cell(int cell_id) const {
  std::uint64_t n = 0;
  for (const auto& o : executor_->outcomes())
    if (o.job.cell_id == cell_id && o.missed_deadline()) ++n;
  return n;
}

}  // namespace pran::core
