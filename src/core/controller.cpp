#include "core/controller.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::core {

Controller::Controller(ControllerConfig config, std::unique_ptr<Placer> placer,
                       std::vector<cluster::ServerSpec> servers,
                       std::vector<CellDemand> initial_demand)
    : config_(config),
      placer_(std::move(placer)),
      servers_(std::move(servers)),
      available_(servers_.size(), true),
      quarantined_(servers_.size(), false),
      quarantined_until_(servers_.size(), 0),
      backoff_(servers_.size(), config.quarantine_base),
      failure_times_(servers_.size()),
      demand_(std::move(initial_demand)),
      placement_(demand_.size(), -1) {
  PRAN_REQUIRE(placer_ != nullptr, "controller needs a placer");
  PRAN_REQUIRE(!servers_.empty(), "controller needs servers");
  PRAN_REQUIRE(!demand_.empty(), "controller needs cells");
  PRAN_REQUIRE(config_.headroom > 0.0 && config_.headroom <= 1.0,
               "headroom outside (0, 1]");
  PRAN_REQUIRE(config_.ema_alpha > 0.0 && config_.ema_alpha <= 1.0,
               "EMA alpha outside (0, 1]");
  PRAN_REQUIRE(config_.demand_safety >= 1.0, "safety factor below 1");
  if (config_.quarantine) {
    PRAN_REQUIRE(config_.flap_threshold >= 1, "flap threshold below 1");
    PRAN_REQUIRE(config_.flap_window > 0, "flap window must be positive");
    PRAN_REQUIRE(config_.quarantine_base > 0,
                 "quarantine backoff must be positive");
    PRAN_REQUIRE(config_.quarantine_multiplier >= 1.0,
                 "quarantine multiplier below 1");
  }
}

void Controller::observe(int cell_index, double gops) {
  PRAN_REQUIRE(cell_index >= 0 && cell_index < num_cells(),
               "unknown cell index");
  PRAN_REQUIRE(gops >= 0.0, "observed cost must be non-negative");
  auto& d = demand_[static_cast<std::size_t>(cell_index)];
  d.gops_per_tti =
      (1.0 - config_.ema_alpha) * d.gops_per_tti + config_.ema_alpha * gops;
}

double Controller::estimated_demand(int cell_index) const {
  PRAN_REQUIRE(cell_index >= 0 && cell_index < num_cells(),
               "unknown cell index");
  const double scale =
      demand_scale_.empty()
          ? 1.0
          : demand_scale_[static_cast<std::size_t>(cell_index)];
  return config_.demand_safety * scale *
         demand_[static_cast<std::size_t>(cell_index)].gops_per_tti;
}

void Controller::set_demand_scale(std::vector<double> scale) {
  if (!scale.empty()) {
    PRAN_REQUIRE(static_cast<int>(scale.size()) == num_cells(),
                 "forecast scale size must match the cell count");
    for (double s : scale)
      PRAN_REQUIRE(s > 0.0, "forecast scale must be positive");
  }
  demand_scale_ = std::move(scale);
}

void Controller::set_cell_quarantine(std::vector<bool> quarantined) {
  if (!quarantined.empty())
    PRAN_REQUIRE(static_cast<int>(quarantined.size()) == num_cells(),
                 "cell quarantine size must match the cell count");
  cell_quarantined_ = std::move(quarantined);
}

bool Controller::cell_quarantined(int cell_index) const {
  PRAN_REQUIRE(cell_index >= 0 && cell_index < num_cells(),
               "unknown cell index");
  return !cell_quarantined_.empty() &&
         cell_quarantined_[static_cast<std::size_t>(cell_index)];
}

PlacementProblem Controller::make_problem() const {
  PlacementProblem problem;
  problem.headroom = config_.headroom;
  problem.migration_weight = config_.migration_weight;
  problem.survivable = config_.survivable;
  problem.cells = demand_;
  for (std::size_t c = 0; c < problem.cells.size(); ++c)
    problem.cells[c].gops_per_tti = estimated_demand(static_cast<int>(c));
  for (std::size_t s = 0; s < servers_.size(); ++s)
    if (available_[s]) problem.servers.push_back(servers_[s]);
  return problem;
}

EpochReport Controller::replan() {
  // Map global server ids <-> compact available-only ids.
  std::vector<int> compact_to_global;
  for (std::size_t s = 0; s < servers_.size(); ++s)
    if (available_[s]) compact_to_global.push_back(static_cast<int>(s));
  std::vector<int> global_to_compact(servers_.size(), -1);
  for (std::size_t i = 0; i < compact_to_global.size(); ++i)
    global_to_compact[static_cast<std::size_t>(compact_to_global[i])] =
        static_cast<int>(i);

  EpochReport report;
  report.epoch = epoch_counter_++;
  for (int c = 0; c < num_cells(); ++c)
    report.total_demand_gops += estimated_demand(c);

  if (compact_to_global.empty()) {
    reports_.push_back(report);
    return report;
  }

  // Included cells; quarantined cells (degradation ladder) are excluded
  // up front, and admission control drops the largest-demand cells from
  // this set until a feasible plan exists.
  std::vector<std::size_t> included;
  included.reserve(demand_.size());
  for (std::size_t c = 0; c < demand_.size(); ++c)
    if (!cell_quarantined(static_cast<int>(c))) included.push_back(c);

  PlacementResult result;
  for (;;) {
    if (included.empty()) break;
    PlacementProblem problem;
    problem.headroom = config_.headroom;
    problem.migration_weight = config_.migration_weight;
    problem.survivable = config_.survivable;
    for (std::size_t s = 0; s < servers_.size(); ++s)
      if (available_[s]) problem.servers.push_back(servers_[s]);

    bool have_previous = false;
    std::vector<int> previous_compact(included.size(), -1);
    for (std::size_t i = 0; i < included.size(); ++i) {
      const std::size_t c = included[i];
      CellDemand d = demand_[c];
      d.gops_per_tti = estimated_demand(static_cast<int>(c));
      problem.cells.push_back(d);
      if (placement_[c] >= 0) {
        previous_compact[i] =
            global_to_compact[static_cast<std::size_t>(placement_[c])];
        if (previous_compact[i] >= 0) have_previous = true;
      }
    }
    if (have_previous) problem.previous = previous_compact;

    result = placer_->place(problem);
    report.solve_seconds += result.solve_seconds;
    if (result.feasible || !config_.shed_on_infeasible) break;

    // Shed the largest-demand cell and retry.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < included.size(); ++i)
      if (estimated_demand(static_cast<int>(included[i])) >
          estimated_demand(static_cast<int>(included[worst])))
        worst = i;
    included.erase(included.begin() + static_cast<std::ptrdiff_t>(worst));
    ++report.shed_cells;
  }

  report.feasible = result.feasible;
  if (result.feasible) {
    std::vector<int> next(placement_.size(), -1);
    for (std::size_t i = 0; i < included.size(); ++i)
      next[included[i]] = compact_to_global[static_cast<std::size_t>(
          result.server_of_cell[i])];
    for (std::size_t c = 0; c < next.size(); ++c) {
      if (placement_[c] >= 0 && next[c] >= 0 && next[c] != placement_[c]) {
        ++report.migrations;
        // A sink-owned move is a migration *plan*, not a teleport: the
        // cell keeps running on its current server until the protocol
        // commits and complete_migration() flips it.
        if (migration_sink_ &&
            migration_sink_(static_cast<int>(c), placement_[c], next[c]))
          next[c] = placement_[c];
      }
    }
    placement_ = std::move(next);
    total_migrations_ += report.migrations;
    report.active_servers = PlacementResult{placement_}.active_servers();
  }
  reports_.push_back(report);
  return report;
}

void Controller::complete_migration(int cell_index, int server_id) {
  PRAN_REQUIRE(cell_index >= 0 && cell_index < num_cells(),
               "unknown cell index");
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  placement_[static_cast<std::size_t>(cell_index)] = server_id;
}

int Controller::server_of(int cell_index) const {
  PRAN_REQUIRE(cell_index >= 0 && cell_index < num_cells(),
               "unknown cell index");
  return placement_[static_cast<std::size_t>(cell_index)];
}

bool Controller::server_available(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  return available_[static_cast<std::size_t>(server_id)];
}

int Controller::handle_failure(int server_id, sim::Time now) {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  const auto idx = static_cast<std::size_t>(server_id);
  failure_times_[idx].push_back(now);
  if (quarantined_[idx]) {
    // A quarantined server failed again before release: it hosts no cells,
    // so there is nothing to rescue. It stays out of the pool; the failure
    // timestamp above extends its flap history.
    quarantined_[idx] = false;
    return 0;
  }
  PRAN_REQUIRE(available_[idx], "server already marked failed");
  available_[idx] = false;

  // Current spare capacity per surviving server, against estimated demand.
  std::vector<double> load(servers_.size(), 0.0);
  for (std::size_t c = 0; c < placement_.size(); ++c)
    if (placement_[c] >= 0 && placement_[c] != server_id)
      load[static_cast<std::size_t>(placement_[c])] +=
          estimated_demand(static_cast<int>(c));

  // Rescue the failed server's cells, largest first (best packing odds).
  std::vector<std::size_t> victims;
  for (std::size_t c = 0; c < placement_.size(); ++c) {
    if (placement_[c] != server_id) continue;
    // Cells whose fate another subsystem owns (commit-phase migrations
    // resolving by lease takeover) are not failover victims.
    if (failover_filter_ && failover_filter_(static_cast<int>(c))) continue;
    victims.push_back(c);
  }
  std::sort(victims.begin(), victims.end(), [&](std::size_t a, std::size_t b) {
    return estimated_demand(static_cast<int>(a)) >
           estimated_demand(static_cast<int>(b));
  });

  int outages = 0;
  for (std::size_t c : victims) {
    const double d = estimated_demand(static_cast<int>(c));
    int chosen = -1;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (!available_[s]) continue;
      const double cap = config_.headroom * servers_[s].gops_per_tti();
      if (load[s] + d <= cap + 1e-12) {
        chosen = static_cast<int>(s);
        break;
      }
    }
    if (chosen < 0) {
      placement_[c] = -1;
      ++outages;
    } else {
      placement_[c] = chosen;
      load[static_cast<std::size_t>(chosen)] += d;
      ++total_migrations_;
    }
  }
  return outages;
}

RecoveryDecision Controller::handle_recovery(int server_id, sim::Time now) {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  const auto idx = static_cast<std::size_t>(server_id);
  PRAN_REQUIRE(!available_[idx], "server is not failed");
  if (config_.quarantine) {
    auto& times = failure_times_[idx];
    const sim::Time cutoff = now - config_.flap_window;
    times.erase(std::remove_if(times.begin(), times.end(),
                               [&](sim::Time t) { return t < cutoff; }),
                times.end());
    if (static_cast<int>(times.size()) >= config_.flap_threshold) {
      quarantined_[idx] = true;
      quarantined_until_[idx] = now + backoff_[idx];
      backoff_[idx] = static_cast<sim::Time>(
          static_cast<double>(backoff_[idx]) * config_.quarantine_multiplier);
      ++quarantine_events_;
      return {false, quarantined_until_[idx]};
    }
    backoff_[idx] = config_.quarantine_base;
  }
  available_[idx] = true;
  return {true, 0};
}

int Controller::release_quarantines(sim::Time now) {
  int released = 0;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (!quarantined_[s] || quarantined_until_[s] > now) continue;
    quarantined_[s] = false;
    available_[s] = true;
    ++released;
  }
  return released;
}

bool Controller::server_quarantined(int server_id) const {
  PRAN_REQUIRE(server_id >= 0 && server_id < num_servers(),
               "unknown server id");
  return quarantined_[static_cast<std::size_t>(server_id)];
}

}  // namespace pran::core
