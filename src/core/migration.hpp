#pragma once

/// \file migration.hpp
/// Crash-safe cell migration: the two-phase prepare -> transfer -> commit
/// handoff protocol that replaces the controller's free teleport when a
/// repartition moves a cell between servers (DESIGN §15).
///
/// Why a protocol at all: the paper's pooling gain assumes reconfigurations
/// are cheap, but a real handoff must move HARQ soft-buffer state over the
/// fronthaul, survive a lossy control plane, and guarantee that a cell is
/// never executed on two servers in the same TTI. The MigrationManager
/// makes all three explicit:
///
///   * two-phase handoff — PREPARE/PREPARE_ACK arm the target, a
///     `transfer_ttis`-long state transfer streams the soft buffers
///     (charged against the shared fronthaul), then COMMIT flips
///     ownership. The source keeps executing until its lease is fenced,
///     so the happy path has zero blackout (make-before-break);
///   * lease fencing — ownership is a (server, token) lease with
///     monotonically increasing tokens. At commit decision the controller
///     stops renewing the source lease: the source self-fences at
///     `commit decision + lease_ttl` with no message required, which is
///     how a lost COMMIT resolves (lease expiry), never by dual ownership.
///     A reordered stale COMMIT carries an old token and is rejected;
///   * bounded failure handling — per-migration deadline, bounded
///     exponential-backoff retries per message, abort (pre-transfer:
///     source simply keeps the cell), rollback (post-transfer: source is
///     re-granted under a fresh fencing token), and lease-expiry takeover
///     (source crashed after the transfer completed: the target waits out
///     the source lease, then assumes ownership).
///
/// The naive baseline (`make_before_break = false`) models today's
/// instant reassignment honestly: ownership flips immediately and the
/// target spends `transfer_ttis` dark while the state streams *after* the
/// switch — break-before-make. Every dark TTI is a real blackout that
/// costs HARQ debt, which is exactly the cost bench_e22 measures the
/// protocol against.
///
/// Dual execution (two servers granted the same cell-TTI) is a hard
/// `ContractViolation`; `migration.dual_execution` stays zero by
/// construction and the E22 bench asserts it.
///
/// Determinism: all message fates come from the ControlPlaneChannel's
/// fixed RNG substreams, internal containers iterate in cell order, and
/// every timer is derived from simulated time — a sweep over deployments
/// is invariant to worker-thread count.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "faults/control_plane.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace pran::core {

/// Protocol state of one migration. Terminal states from kCommitted on.
enum class MigrationState {
  kPreparing,     ///< PREPARE sent, awaiting the target's ack.
  kTransferring,  ///< Soft-buffer state streaming to the target.
  kCommitting,    ///< COMMIT sent; source lease fences at its TTL.
  kCommitted,     ///< Target owns the cell.
  kAborted,       ///< Failed before transfer completed; source keeps it.
  kRolledBack,    ///< Failed after transfer; source re-granted (new token).
  kTakenOver,     ///< Source crashed post-transfer; target took over at
                  ///< source-lease expiry.
};

const char* migration_state_name(MigrationState state) noexcept;

struct MigrationConfig {
  /// Master switch: off keeps the legacy instant-teleport behaviour with
  /// no migration cost (existing benches and tests are unaffected).
  bool enabled = false;
  /// True: two-phase make-before-break protocol. False: naive instant
  /// reassignment baseline (flip first, stream state after, eat the
  /// blackout) — what bench_e22 compares against.
  bool make_before_break = true;
  /// Source-lease TTL: how long after the commit decision the source may
  /// still execute. A lost COMMIT resolves this much later at worst.
  sim::Time lease_ttl = 20 * sim::kMillisecond;
  /// State-transfer budget: the handoff streams the soft buffers over
  /// this many TTIs, charging `transfer_bits` spread across them against
  /// the shared fronthaul.
  int transfer_ttis = 8;
  double transfer_bits = 8.0e6;
  /// A migration not committed this long after begin() is rolled back
  /// (or aborted when the transfer never started).
  sim::Time deadline = 200 * sim::kMillisecond;
  /// Retries per protocol message beyond the first send.
  int max_retries = 3;
  /// Backoff before the first retry; doubles per attempt.
  sim::Time retry_backoff = 4 * sim::kMillisecond;
  /// Controller <-> server command-channel impairments.
  faults::ControlPlaneImpairmentConfig control_plane;
};

void validate(const MigrationConfig& config);

/// Monotone counters for KPI export (`migration.*` telemetry mirrors).
struct MigrationCounters {
  std::uint64_t started = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t taken_over = 0;
  std::uint64_t retries = 0;
  std::uint64_t deferred = 0;       ///< begin() refused: shed/quarantine rung.
  std::uint64_t deadline_expired = 0;
  std::uint64_t stale_messages = 0;  ///< Fenced duplicates / reordered strays.
  std::uint64_t retry_exhaustions = 0;
  std::uint64_t blackout_ttis = 0;   ///< Cell-TTIs with no owning server.
  std::uint64_t dual_executions = 0; ///< Must stay zero.
  double handoff_latency_ms_sum = 0.0;  ///< Over committed + taken-over.
  std::uint64_t handoffs = 0;

  double mean_handoff_latency_ms() const noexcept {
    return handoffs ? handoff_latency_ms_sum / static_cast<double>(handoffs)
                    : 0.0;
  }
};

/// One migration's lifecycle, kept for tests and post-mortems.
struct MigrationRecord {
  std::uint64_t id = 0;
  int cell = -1;
  int from = -1;
  int to = -1;
  std::uint64_t token = 0;  ///< Fencing token granted to the target.
  MigrationState state = MigrationState::kPreparing;
  sim::Time started_at = 0;
  sim::Time resolved_at = -1;  ///< -1 while in flight.
  int retries = 0;
  std::string detail;  ///< Failure reason for terminal failure states.
};

class MigrationManager {
 public:
  enum class BeginResult {
    kStarted,   ///< Migration admitted and under way.
    kInFlight,  ///< Cell already migrating; the plan retries next epoch.
    kDeferred,  ///< Refused (deferral window or dead target).
  };

  /// Per-TTI routing decision for one cell (see on_tick).
  struct TickDecision {
    int server = -1;        ///< Executing server; -1 = no owner this TTI.
    bool blackout = false;  ///< True: unowned because of a migration window.
    double transfer_bits = 0.0;  ///< State-transfer bits to charge the
                                 ///< fronthaul with this TTI.
  };

  MigrationManager(const MigrationConfig& config, sim::Engine& engine,
                   int num_cells, int num_servers, std::uint64_t seed);

  /// Called when a migration resolves with a new owner (commit, takeover,
  /// or instant flip): the deployment points the controller's placement
  /// at the new server.
  void set_complete_callback(std::function<void(int cell, int server)> cb) {
    complete_cb_ = std::move(cb);
  }
  /// Observer for terminal protocol events ("committed", "aborted",
  /// "rolled_back", "taken_over", "retry_exhausted") — the flight
  /// recorder's hook.
  void set_event_callback(
      std::function<void(const MigrationRecord&, std::string_view event)> cb) {
    event_cb_ = std::move(cb);
  }

  /// Starts (or refuses) a handoff of `cell` from `from` to `to`.
  BeginResult begin(int cell, int from, int to);

  /// Degradation-ladder gate: while set, begin() defers every new
  /// migration (storms wait out shed/quarantine rungs).
  void set_deferral(bool deferred) noexcept { deferral_ = deferred; }
  bool deferral() const noexcept { return deferral_; }

  /// The routing decision for `cell` at TTI `tti`; `placement_server` is
  /// the controller's mapping, used when no lease is active. Counts
  /// blackout TTIs and meters out state-transfer bits — call exactly once
  /// per (cell, TTI).
  TickDecision on_tick(int cell, std::int64_t tti, int placement_server);

  /// Side-effect-free routing (HARQ retransmissions and the failover drop
  /// path): where `cell` executes at `now`, -1 when unowned.
  int routed_server(int cell, sim::Time now, int placement_server) const;

  /// Registers an actual execution grant. Granting one cell-TTI to two
  /// servers is the protocol's hard invariant: ContractViolation.
  void record_execution(int cell, std::int64_t tti, int server);

  /// Fault-plane notifications (crash handling: abort, rollback or
  /// lease-expiry takeover). Call *before* Controller::handle_failure so
  /// the failover filter sees up-to-date migration state.
  void on_server_failed(int server);
  void on_server_recovered(int server);

  /// True when the manager (not epoch failover) resolves this cell's fate
  /// after its source crashed — Controller::handle_failure must skip it.
  bool holds_failover(int cell) const;

  int in_flight() const noexcept { return static_cast<int>(active_.size()); }
  /// Cells still carrying an unresolved lease entry or an active
  /// migration: must be zero once the system has drained (no orphans).
  int unresolved_cells() const noexcept;

  const MigrationCounters& counters() const noexcept { return counters_; }
  const std::vector<MigrationRecord>& history() const noexcept {
    return history_;
  }
  const faults::ControlPlaneChannel& channel() const noexcept {
    return channel_;
  }
  const MigrationConfig& config() const noexcept { return config_; }
  /// Highest fencing token granted so far for `cell` (0 = never leased).
  std::uint64_t lease_token(int cell) const;

 private:
  static constexpr sim::Time kNever = sim::Time(0x7FFFFFFFFFFFFFFFLL);

  /// Ownership lease for one cell. The source may execute while
  /// now < source_until (and it is alive); the target from target_from.
  /// Grants only move forward in token order — stale COMMITs bounce.
  struct Lease {
    std::uint64_t token = 0;
    int source = -1;
    sim::Time source_until = kNever;
    int target = -1;
    sim::Time target_from = kNever;
    bool resolved = false;  ///< Terminal: GC once the target is active.
  };

  struct Migration {
    std::uint64_t id = 0;
    int cell = -1;
    int from = -1;
    int to = -1;
    MigrationState state = MigrationState::kPreparing;
    sim::Time started_at = 0;
    sim::Time fence_at = kNever;  ///< commit decision + lease_ttl.
    std::uint64_t token = 0;      ///< Target's fencing token (commit phase).
    int attempts = 0;             ///< Sends of the current phase's message.
    bool source_dead = false;
    std::size_t record_index = 0;
    sim::EventId deadline_event = 0;
  };

  Migration* find(int cell, std::uint64_t id);
  MigrationRecord& record_of(const Migration& m) {
    return history_[m.record_index];
  }
  sim::Time backoff_delay(int attempts_done) const;
  void start_two_phase(Migration& m);
  void start_instant(Migration& m);
  void attempt_prepare(int cell, std::uint64_t id);
  void on_prepare_delivered(int cell, std::uint64_t id);
  void on_prepare_ack(int cell, std::uint64_t id);
  void on_transfer_complete(int cell, std::uint64_t id);
  void attempt_commit(int cell, std::uint64_t id);
  void on_commit_delivered(int cell, std::uint64_t id, std::uint64_t token);
  void on_deadline(int cell, std::uint64_t id);
  void grant_target(Migration& m, MigrationState final_state,
                    sim::Time target_from);
  void resolve(Migration& m, MigrationState final_state,
               std::string_view detail, std::string_view event);
  void count_stale();

  MigrationConfig config_;
  sim::Engine& engine_;
  faults::ControlPlaneChannel channel_;
  std::function<void(int, int)> complete_cb_;
  std::function<void(const MigrationRecord&, std::string_view)> event_cb_;
  bool deferral_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t token_counter_ = 0;
  /// std::map (not unordered) so crash fan-out iterates in cell order —
  /// the channel's send sequence must not depend on hash order.
  std::map<int, Migration> active_;
  std::map<int, Lease> leases_;
  /// Pending state-transfer metering: bits per TTI, TTIs left.
  struct Transfer {
    double bits_per_tti = 0.0;
    int ttis_left = 0;
  };
  std::map<int, Transfer> transfers_;
  std::vector<bool> failed_;  ///< Per-server crash state (index = server).
  /// Last execution grant per cell, for the dual-execution invariant.
  std::vector<std::int64_t> last_exec_tti_;
  std::vector<int> last_exec_server_;
  MigrationCounters counters_;
  std::vector<MigrationRecord> history_;
};

}  // namespace pran::core
