#pragma once

/// \file placement.hpp
/// The PRAN resource-assignment problem and its solvers.
///
/// Every control epoch the controller must map each cell's base-band
/// processing onto servers so that no server is loaded past its headroom
/// and as few servers as possible are active (idle servers are powered
/// down or returned to the cloud). Optionally, moving a cell between
/// servers carries a cost — a migration interrupts that cell's processing
/// pipeline for a subframe — so the objective trades servers against
/// stability.
///
/// Formally, with cells c of sustained demand d_c (giga-operations per
/// TTI), servers s of per-TTI budget B_s and headroom factor h:
///
///     minimise   sum_s y_s + w * sum_c move_c
///     subject to sum_s x_{c,s} = 1                      (every cell placed)
///                sum_c d_c x_{c,s} <= h B_s y_s         (capacity)
///                x, y binary; move_c >= x changed vs. the previous epoch
///
/// This is variable-cost bin packing — NP-hard (the calibration's
/// "workshop-grade ILP"). MilpPlacer solves it exactly with the in-repo
/// branch-and-bound; FirstFitPlacer is the online heuristic PRAN actually
/// runs (first-fit decreasing with placement affinity); StaticPeakPlacer
/// reproduces today's practice of provisioning every cell for its peak.

#include <optional>
#include <string>
#include <vector>

#include "cluster/executor.hpp"
#include "lp/branch_and_bound.hpp"

namespace pran::core {

/// One cell's demand estimate for the coming epoch.
struct CellDemand {
  int cell_id = 0;
  /// Sustained processing demand in giga-operations per TTI.
  double gops_per_tti = 0.0;
  /// Worst single subframe this cell may produce (admission check).
  double peak_subframe_gops = 0.0;
};

/// Problem instance for one epoch.
struct PlacementProblem {
  std::vector<CellDemand> cells;
  std::vector<cluster::ServerSpec> servers;
  /// Target utilisation ceiling per server (slack absorbs burstiness so
  /// EDF can meet deadlines).
  double headroom = 0.8;
  /// Placement from the previous epoch (same cell order), if any.
  std::optional<std::vector<int>> previous;
  /// Objective weight of one migration, in units of "servers". Must be
  /// < 1/|cells| to keep server count lexicographically dominant.
  double migration_weight = 0.0;
  /// Survivable mode: reserve enough spare headroom that any single
  /// server's cells can be re-packed into the surviving *hosting* servers
  /// (idle servers are powered down / returned to the cloud, so they do
  /// not count as rescue capacity). The MILP prices the redundancy in its
  /// active-server objective via aggregate spare constraints, then
  /// re-packs across the powered set so the guarantee holds per victim;
  /// the first-fit heuristic tightens per-server caps (spreading load)
  /// until a per-victim first-fit re-pack succeeds.
  bool survivable = false;
};

/// Result of a placement decision.
struct PlacementResult {
  /// server_of_cell[i] is the server index for problem.cells[i].
  std::vector<int> server_of_cell;
  bool feasible = false;
  bool proven_optimal = false;
  double solve_seconds = 0.0;
  long milp_nodes = 0;

  int active_servers() const;
  int migrations_from(const std::vector<int>& previous) const;
};

/// Validates that `assignment` respects the capacity constraints.
bool placement_fits(const PlacementProblem& problem,
                    const std::vector<int>& assignment);

/// Total demand landing on each server under `assignment`.
std::vector<double> server_loads(const PlacementProblem& problem,
                                 const std::vector<int>& assignment);

/// True if, for every server, its cells re-pack (first-fit, largest first)
/// into the residual headroom of the *other cell-hosting* servers — i.e.
/// the placement survives any single-server loss without outage, without
/// counting on powered-down spares.
bool placement_survives_any_single_failure(const PlacementProblem& problem,
                                           const std::vector<int>& assignment);

/// Builds the MILP formulation (exposed for tests and the solver-scaling
/// bench). Variables are ordered x_{c,s} row-major, then y_s.
lp::Model build_placement_model(const PlacementProblem& problem);

class Placer {
 public:
  virtual ~Placer() = default;
  virtual std::string name() const = 0;
  virtual PlacementResult place(const PlacementProblem& problem) = 0;
};

/// Exact solver via branch and bound.
class MilpPlacer : public Placer {
 public:
  explicit MilpPlacer(lp::MilpOptions options = {});
  std::string name() const override { return "milp"; }
  PlacementResult place(const PlacementProblem& problem) override;

 private:
  lp::MilpOptions options_;
};

/// Online heuristic: cells sorted by demand (decreasing); each cell first
/// tries its previous server (affinity/hysteresis), then the first active
/// server with room, then opens the smallest inactive server that fits.
class FirstFitPlacer : public Placer {
 public:
  /// When `sticky` is false the affinity step is skipped (ablation E9).
  explicit FirstFitPlacer(bool sticky = true) : sticky_(sticky) {}
  std::string name() const override {
    return sticky_ ? "ffd-sticky" : "ffd";
  }
  PlacementResult place(const PlacementProblem& problem) override;

 private:
  bool sticky_;
};

/// Baseline: every cell is budgeted at its *peak* demand, as in a
/// traditional per-cell appliance deployment, and the assignment never
/// changes afterwards (callers reuse the first epoch's placement).
class StaticPeakPlacer : public Placer {
 public:
  std::string name() const override { return "static-peak"; }
  PlacementResult place(const PlacementProblem& problem) override;
};

}  // namespace pran::core
