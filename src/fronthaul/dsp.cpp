#include "fronthaul/dsp.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace pran::fronthaul {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void fft_core(std::vector<Cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  PRAN_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

}  // namespace

void fft(std::vector<Cplx>& x) { fft_core(x, false); }
void ifft(std::vector<Cplx>& x) { fft_core(x, true); }

double rms(const std::vector<Cplx>& x) noexcept {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& v : x) acc += std::norm(v);
  return std::sqrt(acc / static_cast<double>(x.size()));
}

units::Db papr_db(const std::vector<Cplx>& x) {
  const double r = rms(x);
  PRAN_REQUIRE(r > 0.0, "PAPR of an all-zero block");
  double peak = 0.0;
  for (const auto& v : x) peak = std::max(peak, std::norm(v));
  return units::to_db(units::LinearPower{peak / (r * r)});
}

double evm(const std::vector<Cplx>& reference, const std::vector<Cplx>& test) {
  PRAN_REQUIRE(reference.size() == test.size(),
               "EVM needs equally sized blocks");
  const double ref_rms = rms(reference);
  PRAN_REQUIRE(ref_rms > 0.0, "EVM against an all-zero reference");
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    acc += std::norm(test[i] - reference[i]);
  return std::sqrt(acc / static_cast<double>(reference.size())) / ref_rms;
}

units::Db sqnr_db(const std::vector<Cplx>& reference,
                  const std::vector<Cplx>& test) {
  const double e = evm(reference, test);
  if (e <= 0.0) return units::Db{200.0};  // effectively lossless
  return units::Db{-20.0 * std::log10(e)};
}

}  // namespace pran::fronthaul
