#pragma once

/// \file dsp.hpp
/// Minimal signal-processing kernels for the fronthaul experiments: an
/// in-place radix-2 FFT (enough to synthesise OFDM sample blocks and to
/// implement subcarrier-pruning compression) and related helpers.

#include <complex>
#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace pran::fronthaul {

using Cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n) noexcept;

/// In-place iterative radix-2 DIT FFT. Requires power-of-two size.
void fft(std::vector<Cplx>& x);

/// In-place inverse FFT (normalised by 1/N). Requires power-of-two size.
void ifft(std::vector<Cplx>& x);

/// Root-mean-square magnitude of a block; 0 for an empty block.
double rms(const std::vector<Cplx>& x) noexcept;

/// Peak-to-average power ratio; requires non-zero RMS.
units::Db papr_db(const std::vector<Cplx>& x);

/// Error vector magnitude of `test` against `reference` (same size,
/// non-zero reference RMS): rms(test - reference) / rms(reference).
double evm(const std::vector<Cplx>& reference, const std::vector<Cplx>& test);

/// Signal-to-quantisation-noise ratio: 20*log10(1/EVM).
units::Db sqnr_db(const std::vector<Cplx>& reference,
                  const std::vector<Cplx>& test);

}  // namespace pran::fronthaul
