#include "fronthaul/cpri.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::fronthaul {

double payload_rate_bps(const CpriParams& params) {
  PRAN_REQUIRE(params.sample_rate_hz > 0.0, "sample rate must be positive");
  PRAN_REQUIRE(params.bits_per_component > 0, "sample width must be positive");
  PRAN_REQUIRE(params.antennas > 0, "cell needs at least one antenna");
  return params.sample_rate_hz * 2.0 *
         static_cast<double>(params.bits_per_component) *
         static_cast<double>(params.antennas);
}

double line_rate_bps(const CpriParams& params) {
  return payload_rate_bps(params) * params.control_overhead *
         params.line_coding;
}

double compressed_line_rate_bps(const CpriParams& params,
                                double compression_ratio) {
  PRAN_REQUIRE(compression_ratio > 0.0, "compression ratio must be positive");
  return payload_rate_bps(params) / compression_ratio *
         params.control_overhead * params.line_coding;
}

std::size_t cells_per_link(double link_capacity_bps,
                           double per_cell_rate_bps) {
  PRAN_REQUIRE(link_capacity_bps >= 0.0, "link capacity must be non-negative");
  PRAN_REQUIRE(per_cell_rate_bps > 0.0, "per-cell rate must be positive");
  return static_cast<std::size_t>(
      std::floor(link_capacity_bps / per_cell_rate_bps));
}

}  // namespace pran::fronthaul
