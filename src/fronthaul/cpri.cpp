#include "fronthaul/cpri.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::fronthaul {

using units::BitRate;
using units::Hertz;

BitRate payload_rate_bps(const CpriParams& params) {
  PRAN_REQUIRE(params.sample_rate_hz > Hertz{0.0},
               "sample rate must be positive");
  PRAN_REQUIRE(params.bits_per_component > 0, "sample width must be positive");
  PRAN_REQUIRE(params.antennas > 0, "cell needs at least one antenna");
  return BitRate{params.sample_rate_hz.value() * 2.0 *
                 static_cast<double>(params.bits_per_component) *
                 static_cast<double>(params.antennas)};
}

BitRate line_rate_bps(const CpriParams& params) {
  return payload_rate_bps(params) * params.control_overhead *
         params.line_coding;
}

BitRate compressed_line_rate_bps(const CpriParams& params,
                                 double compression_ratio) {
  PRAN_REQUIRE(compression_ratio > 0.0, "compression ratio must be positive");
  return payload_rate_bps(params) / compression_ratio *
         params.control_overhead * params.line_coding;
}

std::size_t cells_per_link(BitRate link_capacity, BitRate per_cell_rate) {
  PRAN_REQUIRE(link_capacity >= BitRate{0.0},
               "link capacity must be non-negative");
  PRAN_REQUIRE(per_cell_rate > BitRate{0.0},
               "per-cell rate must be positive");
  // Ratio of two like rates is dimensionless.
  return static_cast<std::size_t>(std::floor(link_capacity / per_cell_rate));
}

}  // namespace pran::fronthaul
