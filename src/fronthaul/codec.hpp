#pragma once

/// \file codec.hpp
/// I/Q compression codecs for the fronthaul.
///
/// Each codec exposes a round-trip interface: given a block of reference
/// samples it produces the decoded samples a receiver would see plus the
/// exact number of bits the encoded form occupies. Benchmarks derive the
/// compression ratio (versus 15-bit CPRI I/Q words) and the EVM penalty.
///
/// Implemented codecs, in increasing sophistication:
///  * FixedPointCodec  — uniform scalar quantisation at B bits per component.
///  * BlockFloatCodec  — shared per-block exponent + B-bit mantissas (the
///                       classic CPRI-compression building block).
///  * MuLawCodec       — µ-law companding before quantisation; spends bits
///                       on small amplitudes where OFDM lives.
///  * PruningCodec     — removes guard-band subcarriers in the frequency
///                       domain (lossless for in-band signal) and applies an
///                       inner codec to the reduced-rate stream.

#include <memory>
#include <string>

#include "common/units.hpp"
#include "fronthaul/dsp.hpp"

namespace pran::fronthaul {

/// Bits per I/Q component on the uncompressed (CPRI baseline) fronthaul.
inline constexpr int kCpriSampleBits = 15;

/// Result of pushing a block through a codec.
struct CodecResult {
  std::vector<Cplx> decoded;  ///< Samples after decode, same size as input.
  units::Bits bits{0};        ///< Encoded size.
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  /// Encodes + decodes `block`; `block` must be non-empty.
  virtual CodecResult roundtrip(const std::vector<Cplx>& block) const = 0;

  /// Compression ratio vs. uncompressed 15-bit I/Q for a block of n samples.
  static double compression_ratio(std::size_t n_samples, units::Bits bits);
};

/// Uniform scalar quantiser; scale chosen per block from the peak magnitude
/// (transmitted as one 32-bit float).
class FixedPointCodec : public Codec {
 public:
  explicit FixedPointCodec(int bits_per_component);
  std::string name() const override;
  CodecResult roundtrip(const std::vector<Cplx>& block) const override;
  int bits_per_component() const noexcept { return bits_; }

 private:
  int bits_;
};

/// Block floating point: samples are grouped in blocks of `block_size`; each
/// group shares a 6-bit exponent and stores `mantissa_bits` per component.
class BlockFloatCodec : public Codec {
 public:
  BlockFloatCodec(int mantissa_bits, std::size_t block_size = 32);
  std::string name() const override;
  CodecResult roundtrip(const std::vector<Cplx>& block) const override;

 private:
  int mantissa_bits_;
  std::size_t block_size_;
};

/// µ-law companding followed by uniform quantisation of the companded value.
class MuLawCodec : public Codec {
 public:
  explicit MuLawCodec(int bits_per_component, double mu = 255.0);
  std::string name() const override;
  CodecResult roundtrip(const std::vector<Cplx>& block) const override;

 private:
  int bits_;
  double mu_;
};

/// Frequency-domain guard-band pruning composed with an inner codec. Keeps
/// `kept_fraction` of the spectrum centred on the active band. Input length
/// must be a multiple of `fft_size`.
class PruningCodec : public Codec {
 public:
  PruningCodec(std::unique_ptr<Codec> inner, std::size_t fft_size = 2048,
               std::size_t kept_bins = 1536);
  std::string name() const override;
  CodecResult roundtrip(const std::vector<Cplx>& block) const override;

 private:
  std::unique_ptr<Codec> inner_;
  std::size_t fft_size_;
  std::size_t kept_bins_;
};

}  // namespace pran::fronthaul
