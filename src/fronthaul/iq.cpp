#include "fronthaul/iq.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace pran::fronthaul {

std::vector<Cplx> generate_ofdm_symbol(Rng& rng, const OfdmParams& params) {
  PRAN_REQUIRE(is_pow2(params.fft_size), "FFT size must be a power of two");
  PRAN_REQUIRE(params.active_subcarriers <= params.fft_size,
               "more active subcarriers than FFT bins");
  std::vector<Cplx> freq(params.fft_size, Cplx{0.0, 0.0});

  // Active subcarriers straddle DC (bin 0 left empty), mirroring LTE's
  // symmetric allocation around the carrier.
  const std::size_t half = params.active_subcarriers / 2;
  auto qpsk = [&rng] {
    const double re = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double im = rng.bernoulli(0.5) ? 1.0 : -1.0;
    return Cplx{re, im} * (1.0 / std::numbers::sqrt2);
  };
  for (std::size_t k = 1; k <= half; ++k) freq[k] = qpsk();
  for (std::size_t k = 0; k < params.active_subcarriers - half; ++k)
    freq[params.fft_size - 1 - k] = qpsk();

  ifft(freq);

  const double r = rms(freq);
  PRAN_CHECK(r > 0.0, "generated symbol has zero power");
  for (auto& v : freq) v /= r;
  return freq;
}

std::vector<Cplx> generate_capture(Rng& rng, std::size_t symbols,
                                   const OfdmParams& params) {
  PRAN_REQUIRE(symbols >= 1, "capture needs at least one symbol");
  std::vector<Cplx> out;
  out.reserve(symbols * params.fft_size);
  for (std::size_t s = 0; s < symbols; ++s) {
    auto sym = generate_ofdm_symbol(rng, params);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

}  // namespace pran::fronthaul
