#pragma once

/// \file iq.hpp
/// Synthetic I/Q sample generation.
///
/// The paper's fronthaul experiments used captured radio samples; offline we
/// synthesise OFDM blocks instead — random QPSK symbols on the active
/// subcarriers, IFFT to time domain — which reproduces the statistics that
/// matter for compression (near-Gaussian amplitude distribution, ~8-11 dB
/// PAPR, oversampling headroom from guard subcarriers).

#include "common/rng.hpp"
#include "fronthaul/dsp.hpp"

namespace pran::fronthaul {

/// OFDM numerology for sample generation.
struct OfdmParams {
  std::size_t fft_size = 2048;          ///< 20 MHz LTE numerology.
  std::size_t active_subcarriers = 1200;  ///< 100 PRB * 12.
};

/// One OFDM symbol's worth of time-domain samples, unit RMS.
std::vector<Cplx> generate_ofdm_symbol(Rng& rng, const OfdmParams& params = {});

/// Concatenation of `symbols` OFDM symbols (a longer capture for codec
/// benchmarking), unit RMS overall.
std::vector<Cplx> generate_capture(Rng& rng, std::size_t symbols,
                                   const OfdmParams& params = {});

}  // namespace pran::fronthaul
