#pragma once

/// \file link.hpp
/// Shared fronthaul link model.
///
/// Radio heads ship each subframe's I/Q samples to the cluster over a
/// shared fibre. The transfer is store-and-forward FIFO: a burst that
/// becomes ready at `ready` starts serialising when the link frees, takes
/// bits/rate seconds on the wire, and lands one propagation delay later.
/// Serialisation + queueing eat directly into the HARQ processing budget,
/// which is what makes fronthaul dimensioning (and compression, E7/E12) a
/// first-order design input for PRAN rather than plumbing.
///
/// The model is deterministic and event-free: because arrivals are
/// enqueued in nondecreasing ready order (the deployment generates TTIs in
/// time order), the FIFO schedule can be computed eagerly and the arrival
/// time returned to the caller, who uses it as the job's release time.
///
/// Burst sizes are exact `units::Bits` and the fibre capacity a
/// `units::BitRate`, so a byte count (or a compressed fractional rate)
/// cannot silently land where wire bits belong.

#include <cstdint>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace pran::fronthaul {

struct LinkParams {
  units::BitRate rate_bps{25e9};                   ///< Fibre capacity.
  sim::Time propagation = 25 * sim::kMicrosecond;  ///< One-way, ~5 km.
};

class FronthaulLink {
 public:
  explicit FronthaulLink(LinkParams params);

  const LinkParams& params() const noexcept { return params_; }

  /// Enqueues a burst of `bits` that is ready to start at `ready`;
  /// returns the time its last bit arrives at the far end. `ready` must
  /// be nondecreasing across calls (FIFO ingress).
  sim::Time enqueue(sim::Time ready, units::Bits bits);

  /// Total bits accepted so far.
  units::Bits bits_carried() const noexcept { return bits_carried_; }

  /// Time the transmitter has spent serialising.
  sim::Time busy_time() const noexcept { return busy_; }

  /// Worst queueing delay (time a burst waited for the wire) seen so far.
  sim::Time max_queue_delay() const noexcept { return max_queue_delay_; }

  /// Link utilisation over [0, horizon].
  double utilization(sim::Time horizon) const;

  /// Number of bursts carried.
  std::uint64_t bursts() const noexcept { return bursts_; }

 private:
  LinkParams params_;
  sim::Time next_free_ = 0;
  sim::Time last_ready_ = 0;
  sim::Time busy_ = 0;
  sim::Time max_queue_delay_ = 0;
  units::Bits bits_carried_{0};
  std::uint64_t bursts_ = 0;
};

/// Bits one cell's subframe occupies on the wire: sample-rate * 1 ms worth
/// of I/Q words across all antennas, divided by the compression ratio
/// (rounded to the nearest whole bit).
units::Bits subframe_bits(units::Hertz sample_rate, int bits_per_component,
                          int antennas, double compression_ratio);

}  // namespace pran::fronthaul
