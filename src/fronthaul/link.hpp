#pragma once

/// \file link.hpp
/// Shared fronthaul link model.
///
/// Radio heads ship each subframe's I/Q samples to the cluster over a
/// shared fibre. The transfer is store-and-forward FIFO: a burst that
/// becomes ready at `ready` starts serialising when the link frees, takes
/// bits/rate seconds on the wire, and lands one propagation delay later.
/// Serialisation + queueing eat directly into the HARQ processing budget,
/// which is what makes fronthaul dimensioning (and compression, E7/E12) a
/// first-order design input for PRAN rather than plumbing.
///
/// The model is deterministic and event-free: because arrivals are
/// enqueued in nondecreasing ready order (the deployment generates TTIs in
/// time order), the FIFO schedule can be computed eagerly and the arrival
/// time returned to the caller, who uses it as the job's release time.
///
/// Impairments: a caller-installed hook (see faults::FronthaulImpairments)
/// may drop a burst at ingress (Gilbert–Elliott packet loss in the eCPRI
/// switch fabric, before the burst reaches the wire), delay its arrival
/// (per-packet forwarding jitter — the delivery is late but the wire
/// schedule is untouched, so the eager FIFO contract survives), or shrink
/// the effective capacity for its serialisation (a link-rate brownout).
/// The link accounts offered vs carried vs dropped bits so
/// `bits_carried() == bits_offered() - bits_dropped()` holds exactly, and
/// counts bursts whose queueing + jitter delay exceeded the configured
/// late threshold.
///
/// Burst sizes are exact `units::Bits` and the fibre capacity a
/// `units::BitRate`, so a byte count (or a compressed fractional rate)
/// cannot silently land where wire bits belong.

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace pran::fronthaul {

struct LinkParams {
  units::BitRate rate_bps{25e9};                   ///< Fibre capacity.
  sim::Time propagation = 25 * sim::kMicrosecond;  ///< One-way, ~5 km.
};

/// What an impairment model decided about one burst.
struct BurstImpairment {
  bool lost = false;            ///< Burst dropped at ingress, never sent.
  sim::Time extra_delay = 0;    ///< Jitter added to the arrival time.
  double capacity_factor = 1.0; ///< Effective rate multiplier, in (0, 1].
};

/// Outcome of one burst through the link.
struct BurstOutcome {
  bool lost = false;          ///< True: the burst never arrives.
  sim::Time arrival = 0;      ///< Last-bit arrival time; valid when !lost.
  sim::Time queue_delay = 0;  ///< Time the burst waited for the wire.
};

class FronthaulLink {
 public:
  /// Per-burst impairment decision; called once per enqueued burst, in
  /// FIFO ingress order.
  using ImpairmentHook =
      std::function<BurstImpairment(sim::Time ready, units::Bits bits)>;

  /// Windowed statistics since the previous take_window() call, for
  /// closed-loop consumers (the degradation ladder) that need per-epoch
  /// signals rather than whole-run cumulatives.
  struct Window {
    std::uint64_t bursts = 0;          ///< Offered this window (incl. lost).
    std::uint64_t lost = 0;            ///< Dropped at ingress this window.
    std::uint64_t late = 0;            ///< Over the late threshold.
    sim::Time max_queue_delay = 0;     ///< Worst wait this window.

    double loss_rate() const noexcept {
      return bursts ? static_cast<double>(lost) / static_cast<double>(bursts)
                    : 0.0;
    }
  };

  explicit FronthaulLink(LinkParams params);

  const LinkParams& params() const noexcept { return params_; }

  /// Installs (or clears, with nullptr) the impairment hook.
  void set_impairment_hook(ImpairmentHook hook) { hook_ = std::move(hook); }

  /// A burst counts as late when queueing + jitter delay exceeds this.
  void set_late_threshold(sim::Time threshold);

  /// Enqueues a burst of `bits` that is ready to start at `ready`; applies
  /// the impairment hook (if any) and returns the burst's fate. `ready`
  /// must be nondecreasing across calls (FIFO ingress).
  BurstOutcome enqueue_burst(sim::Time ready, units::Bits bits);

  /// Loss-free convenience wrapper: returns the time the burst's last bit
  /// arrives at the far end. Must not be used while an impairment hook
  /// that can drop bursts is installed (a lost burst has no arrival time);
  /// such callers use enqueue_burst().
  sim::Time enqueue(sim::Time ready, units::Bits bits);

  /// Total bits accepted onto the wire so far (excludes dropped bursts).
  units::Bits bits_carried() const noexcept { return bits_carried_; }
  /// Total bits presented at ingress (carried + dropped).
  units::Bits bits_offered() const noexcept { return bits_offered_; }
  /// Bits of bursts the impairment hook dropped at ingress.
  units::Bits bits_dropped() const noexcept { return bits_dropped_; }

  /// Time the transmitter has spent serialising.
  sim::Time busy_time() const noexcept { return busy_; }

  /// Worst queueing delay (time a burst waited for the wire) seen so far.
  sim::Time max_queue_delay() const noexcept { return max_queue_delay_; }

  /// Link utilisation over [0, horizon], clamped to 1. The eager FIFO
  /// schedule may have committed serialisation time beyond `horizon`
  /// (backlogged bursts); when that happens the clamp under-reports the
  /// true backlog, so `saturated` (if non-null) is set to true — callers
  /// that care about overload must check it instead of trusting the
  /// clamped ratio.
  double utilization(sim::Time horizon, bool* saturated = nullptr) const;

  /// Number of bursts carried (excludes dropped bursts).
  std::uint64_t bursts() const noexcept { return bursts_; }
  /// Bursts dropped at ingress by the impairment hook.
  std::uint64_t bursts_lost() const noexcept { return bursts_lost_; }
  /// Bursts whose queueing + jitter delay exceeded the late threshold.
  std::uint64_t late_bursts() const noexcept { return late_bursts_; }

  /// Returns the statistics accumulated since the previous call and
  /// resets the window. Cumulative counters are unaffected.
  Window take_window();

 private:
  LinkParams params_;
  ImpairmentHook hook_;
  sim::Time late_threshold_ = 0;
  sim::Time next_free_ = 0;
  sim::Time last_ready_ = 0;
  sim::Time busy_ = 0;
  sim::Time max_queue_delay_ = 0;
  units::Bits bits_carried_{0};
  units::Bits bits_offered_{0};
  units::Bits bits_dropped_{0};
  std::uint64_t bursts_ = 0;
  std::uint64_t bursts_lost_ = 0;
  std::uint64_t late_bursts_ = 0;
  Window window_;
};

/// Bits one cell's subframe occupies on the wire: sample-rate * 1 ms worth
/// of I/Q words across all antennas, divided by the compression ratio
/// (rounded to the nearest whole bit).
units::Bits subframe_bits(units::Hertz sample_rate, int bits_per_component,
                          int antennas, double compression_ratio);

}  // namespace pran::fronthaul
