#pragma once

/// \file cpri.hpp
/// CPRI-style fronthaul dimensioning: how many bits per second one cell's
/// antenna streams occupy, with and without compression. These are the
/// numbers behind PRAN's "fronthaul bandwidth is the bottleneck" argument.

#include <cstddef>

#include "common/units.hpp"

namespace pran::fronthaul {

/// Fronthaul link parameters for one cell.
struct CpriParams {
  units::Hertz sample_rate_hz{30.72e6};  ///< 20 MHz LTE sampling rate.
  int bits_per_component = 15;      ///< CPRI I/Q word width.
  int antennas = 4;
  /// CPRI control-word overhead: one control word per 15 data words.
  double control_overhead = 16.0 / 15.0;
  /// 8b/10b line coding expansion.
  double line_coding = 10.0 / 8.0;
};

/// Payload bit rate (I/Q only, before control and line coding).
units::BitRate payload_rate_bps(const CpriParams& params);

/// Line rate on the fibre, including control words and 8b/10b.
units::BitRate line_rate_bps(const CpriParams& params);

/// Line rate when the I/Q payload is compressed by `compression_ratio`
/// (> 0); control and line-coding overheads still apply.
units::BitRate compressed_line_rate_bps(const CpriParams& params,
                                        double compression_ratio);

/// Number of cells a fronthaul link of `link_capacity_bps` can carry at the
/// given per-cell line rate.
std::size_t cells_per_link(units::BitRate link_capacity,
                           units::BitRate per_cell_rate);

}  // namespace pran::fronthaul
