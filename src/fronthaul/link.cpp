#include "fronthaul/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::fronthaul {

using units::Bits;
using units::BitRate;
using units::Hertz;

FronthaulLink::FronthaulLink(LinkParams params) : params_(params) {
  PRAN_REQUIRE(params_.rate_bps > BitRate{0.0}, "link rate must be positive");
  PRAN_REQUIRE(params_.propagation >= 0, "propagation must be non-negative");
}

void FronthaulLink::set_late_threshold(sim::Time threshold) {
  PRAN_REQUIRE(threshold >= 0, "late threshold must be non-negative");
  late_threshold_ = threshold;
}

BurstOutcome FronthaulLink::enqueue_burst(sim::Time ready, Bits bits) {
  PRAN_REQUIRE(bits >= Bits{0}, "burst size must be non-negative");
  PRAN_REQUIRE(ready >= last_ready_, "FIFO ingress requires ordered bursts");
  last_ready_ = ready;

  BurstImpairment impairment;
  if (hook_) {
    impairment = hook_(ready, bits);
    PRAN_CHECK(impairment.capacity_factor > 0.0 &&
                   impairment.capacity_factor <= 1.0,
               "impairment capacity factor outside (0, 1]");
    PRAN_CHECK(impairment.extra_delay >= 0,
               "impairment jitter must be non-negative");
  }

  bits_offered_ += bits;
  ++window_.bursts;
  if (impairment.lost) {
    // Ingress drop: the eCPRI packet died in the switch fabric before the
    // wire, so it consumes no serialisation time and never arrives.
    bits_dropped_ += bits;
    ++bursts_lost_;
    ++window_.lost;
    return BurstOutcome{true, 0, 0};
  }

  const sim::Time start = std::max(ready, next_free_);
  const double rate =
      params_.rate_bps.value() * impairment.capacity_factor;
  const auto tx = static_cast<sim::Time>(
      std::llround(static_cast<double>(bits.count()) / rate * 1e9));
  next_free_ = start + tx;
  busy_ += tx;
  const sim::Time queue_delay = start - ready;
  max_queue_delay_ = std::max(max_queue_delay_, queue_delay);
  window_.max_queue_delay = std::max(window_.max_queue_delay, queue_delay);
  bits_carried_ += bits;
  ++bursts_;
  if (queue_delay + impairment.extra_delay > late_threshold_) {
    ++late_bursts_;
    ++window_.late;
  }
  return BurstOutcome{
      false, next_free_ + params_.propagation + impairment.extra_delay,
      queue_delay};
}

sim::Time FronthaulLink::enqueue(sim::Time ready, Bits bits) {
  const BurstOutcome outcome = enqueue_burst(ready, bits);
  PRAN_CHECK(!outcome.lost,
             "enqueue() cannot express a lost burst; use enqueue_burst() "
             "when a lossy impairment hook is installed");
  return outcome.arrival;
}

double FronthaulLink::utilization(sim::Time horizon, bool* saturated) const {
  PRAN_REQUIRE(horizon > 0, "horizon must be positive");
  if (saturated) *saturated = busy_ > horizon;
  return sim::to_seconds(std::min(busy_, horizon)) / sim::to_seconds(horizon);
}

FronthaulLink::Window FronthaulLink::take_window() {
  const Window out = window_;
  window_ = Window{};
  return out;
}

Bits subframe_bits(Hertz sample_rate, int bits_per_component, int antennas,
                   double compression_ratio) {
  PRAN_REQUIRE(sample_rate > Hertz{0.0}, "sample rate must be positive");
  PRAN_REQUIRE(bits_per_component > 0, "sample width must be positive");
  PRAN_REQUIRE(antennas > 0, "need at least one antenna");
  PRAN_REQUIRE(compression_ratio > 0.0, "compression ratio must be positive");
  return Bits{std::llround(sample_rate.value() * 1e-3 * 2.0 *
                           static_cast<double>(bits_per_component) *
                           static_cast<double>(antennas) /
                           compression_ratio)};
}

}  // namespace pran::fronthaul
