#include "fronthaul/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::fronthaul {

using units::Bits;
using units::BitRate;
using units::Hertz;

FronthaulLink::FronthaulLink(LinkParams params) : params_(params) {
  PRAN_REQUIRE(params_.rate_bps > BitRate{0.0}, "link rate must be positive");
  PRAN_REQUIRE(params_.propagation >= 0, "propagation must be non-negative");
}

sim::Time FronthaulLink::enqueue(sim::Time ready, Bits bits) {
  PRAN_REQUIRE(bits >= Bits{0}, "burst size must be non-negative");
  PRAN_REQUIRE(ready >= last_ready_, "FIFO ingress requires ordered bursts");
  last_ready_ = ready;

  const sim::Time start = std::max(ready, next_free_);
  const auto tx = static_cast<sim::Time>(std::llround(
      static_cast<double>(bits.count()) / params_.rate_bps.value() * 1e9));
  next_free_ = start + tx;
  busy_ += tx;
  max_queue_delay_ = std::max(max_queue_delay_, start - ready);
  bits_carried_ += bits;
  ++bursts_;
  return next_free_ + params_.propagation;
}

double FronthaulLink::utilization(sim::Time horizon) const {
  PRAN_REQUIRE(horizon > 0, "horizon must be positive");
  return sim::to_seconds(std::min(busy_, horizon)) / sim::to_seconds(horizon);
}

Bits subframe_bits(Hertz sample_rate, int bits_per_component, int antennas,
                   double compression_ratio) {
  PRAN_REQUIRE(sample_rate > Hertz{0.0}, "sample rate must be positive");
  PRAN_REQUIRE(bits_per_component > 0, "sample width must be positive");
  PRAN_REQUIRE(antennas > 0, "need at least one antenna");
  PRAN_REQUIRE(compression_ratio > 0.0, "compression ratio must be positive");
  return Bits{std::llround(sample_rate.value() * 1e-3 * 2.0 *
                           static_cast<double>(bits_per_component) *
                           static_cast<double>(antennas) /
                           compression_ratio)};
}

}  // namespace pran::fronthaul
