#include "fronthaul/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::fronthaul {
namespace {

/// Quantises `v` in [-1, 1] to `bits` and back (mid-rise uniform quantiser).
double quantize_unit(double v, int bits) {
  const double levels = static_cast<double>(1 << bits);
  const double clamped = std::clamp(v, -1.0, 1.0);
  // Map [-1,1] -> [0, levels), floor, then back to the cell midpoint.
  double cell = std::floor((clamped + 1.0) / 2.0 * levels);
  cell = std::min(cell, levels - 1.0);
  return (cell + 0.5) / levels * 2.0 - 1.0;
}

double peak_magnitude(const std::vector<Cplx>& block) {
  double peak = 0.0;
  for (const auto& v : block)
    peak = std::max({peak, std::abs(v.real()), std::abs(v.imag())});
  return peak;
}

}  // namespace

double Codec::compression_ratio(std::size_t n_samples, units::Bits bits) {
  PRAN_REQUIRE(bits > units::Bits{0}, "encoded size must be positive");
  const double raw =
      static_cast<double>(n_samples) * 2.0 * static_cast<double>(kCpriSampleBits);
  return raw / static_cast<double>(bits.count());
}

// ---------------------------------------------------------------- FixedPoint

FixedPointCodec::FixedPointCodec(int bits_per_component)
    : bits_(bits_per_component) {
  PRAN_REQUIRE(bits_per_component >= 1 && bits_per_component <= 24,
               "component width outside 1..24 bits");
}

std::string FixedPointCodec::name() const {
  return "fixed" + std::to_string(bits_);
}

CodecResult FixedPointCodec::roundtrip(const std::vector<Cplx>& block) const {
  PRAN_REQUIRE(!block.empty(), "cannot compress an empty block");
  CodecResult out;
  out.decoded.reserve(block.size());
  const double peak = peak_magnitude(block);
  const double scale = peak > 0.0 ? peak : 1.0;
  for (const auto& v : block) {
    out.decoded.emplace_back(quantize_unit(v.real() / scale, bits_) * scale,
                             quantize_unit(v.imag() / scale, bits_) * scale);
  }
  // Payload plus one 32-bit scale per block.
  out.bits = units::Bits{
      static_cast<std::int64_t>(block.size()) * 2 * bits_ + 32};
  return out;
}

// ---------------------------------------------------------------- BlockFloat

BlockFloatCodec::BlockFloatCodec(int mantissa_bits, std::size_t block_size)
    : mantissa_bits_(mantissa_bits), block_size_(block_size) {
  PRAN_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 24,
               "mantissa width outside 1..24 bits");
  PRAN_REQUIRE(block_size >= 1, "block size must be >= 1");
}

std::string BlockFloatCodec::name() const {
  return "bfp" + std::to_string(mantissa_bits_) + "/" +
         std::to_string(block_size_);
}

CodecResult BlockFloatCodec::roundtrip(const std::vector<Cplx>& block) const {
  PRAN_REQUIRE(!block.empty(), "cannot compress an empty block");
  CodecResult out;
  out.decoded.resize(block.size());
  std::size_t groups = 0;
  for (std::size_t start = 0; start < block.size(); start += block_size_) {
    const std::size_t end = std::min(start + block_size_, block.size());
    ++groups;
    double peak = 0.0;
    for (std::size_t i = start; i < end; ++i)
      peak = std::max({peak, std::abs(block[i].real()),
                       std::abs(block[i].imag())});
    // Shared exponent: smallest e with 2^e >= peak.
    const int exponent =
        peak > 0.0 ? static_cast<int>(std::ceil(std::log2(peak))) : 0;
    const double scale = std::ldexp(1.0, exponent);
    for (std::size_t i = start; i < end; ++i) {
      out.decoded[i] = Cplx{
          quantize_unit(block[i].real() / scale, mantissa_bits_) * scale,
          quantize_unit(block[i].imag() / scale, mantissa_bits_) * scale};
    }
  }
  out.bits = units::Bits{static_cast<std::int64_t>(block.size()) * 2 *
                             mantissa_bits_ +
                         static_cast<std::int64_t>(groups) * 6};
  // (6-bit exponent per group)
  return out;
}

// -------------------------------------------------------------------- MuLaw

MuLawCodec::MuLawCodec(int bits_per_component, double mu)
    : bits_(bits_per_component), mu_(mu) {
  PRAN_REQUIRE(bits_per_component >= 1 && bits_per_component <= 24,
               "component width outside 1..24 bits");
  PRAN_REQUIRE(mu > 0.0, "mu must be positive");
}

std::string MuLawCodec::name() const { return "mulaw" + std::to_string(bits_); }

CodecResult MuLawCodec::roundtrip(const std::vector<Cplx>& block) const {
  PRAN_REQUIRE(!block.empty(), "cannot compress an empty block");
  const double peak = peak_magnitude(block);
  const double scale = peak > 0.0 ? peak : 1.0;
  const double denom = std::log1p(mu_);
  auto compand = [&](double v) {
    const double x = std::clamp(v / scale, -1.0, 1.0);
    return std::copysign(std::log1p(mu_ * std::abs(x)) / denom, x);
  };
  auto expand = [&](double y) {
    return std::copysign((std::expm1(std::abs(y) * denom)) / mu_, y) * scale;
  };
  CodecResult out;
  out.decoded.reserve(block.size());
  for (const auto& v : block) {
    out.decoded.emplace_back(expand(quantize_unit(compand(v.real()), bits_)),
                             expand(quantize_unit(compand(v.imag()), bits_)));
  }
  out.bits = units::Bits{
      static_cast<std::int64_t>(block.size()) * 2 * bits_ + 32};
  return out;
}

// ------------------------------------------------------------------ Pruning

PruningCodec::PruningCodec(std::unique_ptr<Codec> inner, std::size_t fft_size,
                           std::size_t kept_bins)
    : inner_(std::move(inner)), fft_size_(fft_size), kept_bins_(kept_bins) {
  PRAN_REQUIRE(inner_ != nullptr, "pruning codec needs an inner codec");
  PRAN_REQUIRE(is_pow2(fft_size_), "FFT size must be a power of two");
  PRAN_REQUIRE(kept_bins_ >= 2 && kept_bins_ <= fft_size_,
               "kept bins outside 2..fft_size");
}

std::string PruningCodec::name() const {
  return "prune" + std::to_string(kept_bins_) + "/" +
         std::to_string(fft_size_) + "+" + inner_->name();
}

CodecResult PruningCodec::roundtrip(const std::vector<Cplx>& block) const {
  PRAN_REQUIRE(!block.empty() && block.size() % fft_size_ == 0,
               "block length must be a positive multiple of the FFT size");
  CodecResult out;
  out.decoded.reserve(block.size());
  const std::size_t half = kept_bins_ / 2;

  for (std::size_t start = 0; start < block.size(); start += fft_size_) {
    std::vector<Cplx> freq(block.begin() + static_cast<std::ptrdiff_t>(start),
                           block.begin() +
                               static_cast<std::ptrdiff_t>(start + fft_size_));
    fft(freq);

    // Keep the bins around DC (where LTE's active band sits in baseband).
    std::vector<Cplx> kept;
    kept.reserve(kept_bins_);
    for (std::size_t k = 0; k < half; ++k) kept.push_back(freq[k]);
    for (std::size_t k = fft_size_ - (kept_bins_ - half); k < fft_size_; ++k)
      kept.push_back(freq[k]);

    CodecResult inner = inner_->roundtrip(kept);
    out.bits += inner.bits;

    std::vector<Cplx> restored(fft_size_, Cplx{0.0, 0.0});
    for (std::size_t k = 0; k < half; ++k) restored[k] = inner.decoded[k];
    for (std::size_t k = 0; k < kept_bins_ - half; ++k)
      restored[fft_size_ - (kept_bins_ - half) + k] = inner.decoded[half + k];
    ifft(restored);
    out.decoded.insert(out.decoded.end(), restored.begin(), restored.end());
  }
  return out;
}

}  // namespace pran::fronthaul
