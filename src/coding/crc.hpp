#pragma once

/// \file crc.hpp
/// LTE transport-block CRC (TS 36.212): CRC-24A attached to each transport
/// block so the receiver can tell a clean decode from a decoding failure —
/// the signal HARQ acts on. Operates on bit vectors (one bit per byte),
/// matching how the rest of the coding chain passes data around.

#include <cstdint>
#include <vector>

namespace pran::coding {

/// A sequence of bits, one per element, each 0 or 1.
using Bits = std::vector<std::uint8_t>;

/// CRC-24A generator polynomial, x^24 + x^23 + x^18 + x^17 + x^14 + x^11 +
/// x^10 + x^7 + x^6 + x^5 + x^4 + x^3 + x + 1 (0x864CFB).
inline constexpr std::uint32_t kCrc24APoly = 0x864CFB;
inline constexpr int kCrcBits = 24;

/// Computes the 24-bit CRC of `data` (MSB-first bitwise division).
std::uint32_t crc24a(const Bits& data);

/// Pointer-span form of crc24a for callers that work on a prefix of a
/// buffer without copying it.
std::uint32_t crc24a(const std::uint8_t* bits, std::size_t n);

/// Returns `data` with its 24 CRC bits appended (MSB first).
Bits attach_crc(const Bits& data);

/// True if `data_with_crc` (>= 24 bits) passes the CRC check.
bool check_crc(const Bits& data_with_crc);

/// Pointer-span form of check_crc; performs no allocation.
bool check_crc(const std::uint8_t* bits, std::size_t n);

/// Strips a verified CRC; requires check_crc() to be true.
Bits strip_crc(const Bits& data_with_crc);

}  // namespace pran::coding
