#pragma once

/// \file rate_match.hpp
/// Rate matching: adapts the rate-1/3 mother code to the code rate the MCS
/// table demands, by evenly puncturing coded bits (rates above 1/3) —
/// punctured positions come back as zero-LLR erasures at the receiver.
/// Repetition (rates below 1/3) is supported by cycling through the block
/// again. This is a simplification of TS 36.212's circular-buffer rate
/// matching that preserves the property the experiments need: effective
/// rate in, BLER-vs-SNR shift out.

#include "coding/viterbi.hpp"

namespace pran::coding {

/// Positions kept when transmitting `output_bits` of an `input_bits`-long
/// mother codeword. Deterministic, evenly spread.
std::vector<std::size_t> rate_match_pattern(std::size_t input_bits,
                                            std::size_t output_bits);

/// Selects (punctures) or repeats coded bits to exactly `output_bits`.
Bits rate_match(const Bits& coded, std::size_t output_bits);

/// Reconstructs mother-codeword LLRs from received LLRs: punctured
/// positions get 0 (erasure), repeated positions accumulate.
Llrs rate_dematch(const Llrs& received, std::size_t mother_bits);

/// Effective code rate of transmitting `info_bits` information bits in
/// `output_bits` channel bits (termination overhead included).
double effective_rate(std::size_t info_bits, std::size_t output_bits);

/// Channel bits needed to carry `info_bits` at code rate `rate` with the
/// terminated mother code; never below the rate-1/3 floor... above it,
/// i.e. result >= some minimum keeping the code decodable.
std::size_t output_bits_for_rate(std::size_t info_bits, double rate);

}  // namespace pran::coding
