#pragma once

/// \file awgn.hpp
/// BPSK over an additive-white-Gaussian-noise channel: the standard test
/// channel for coding experiments. Bits map to ±1, noise with variance
/// sigma^2 = 1/(2 * 10^(EsN0_dB/10)) is added, and the demodulator emits
/// the exact LLR 2y/sigma^2 (sign convention: positive favours bit 0).

#include "coding/viterbi.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace pran::coding {

/// Noise standard deviation for a given Es/N0 (unit symbol energy).
double awgn_sigma(units::Db esn0);

/// Transmits `bits` as BPSK (+1 for 0, -1 for 1) through AWGN at the given
/// Es/N0 and returns per-bit LLRs.
Llrs transmit_bpsk(const Bits& bits, units::Db esn0, Rng& rng);

/// Out-parameter form: clears and fills `out`, reusing its capacity —
/// allocation-free once `out` has grown.
void transmit_bpsk(const Bits& bits, units::Db esn0, Rng& rng, Llrs& out);

/// Hard decisions from LLRs (ties resolve to 0).
Bits hard_decisions(const Llrs& llrs);

}  // namespace pran::coding
