#include "coding/turbo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace pran::coding {
namespace {

constexpr int kStates = 8;
constexpr int kTailSteps = 3;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
/// Standard extrinsic damping for max-log-MAP.
constexpr double kExtrinsicScale = 0.75;

/// One RSC step: returns {feedback bit w (= next input to the shift
/// register), parity bit z, next state}.
struct RscStep {
  unsigned w;
  unsigned z;
  unsigned next;
};

inline RscStep rsc_step(unsigned state, unsigned u) {
  const unsigned w1 = state & 1u;         // w_{t-1}
  const unsigned w2 = (state >> 1) & 1u;  // w_{t-2}
  const unsigned w3 = (state >> 2) & 1u;  // w_{t-3}
  const unsigned w = u ^ w2 ^ w3;         // feedback g0 = 1 + D^2 + D^3
  const unsigned z = w ^ w1 ^ w3;         // parity  g1 = 1 + D + D^3
  const unsigned next = ((state << 1) | w) & 7u;
  return RscStep{w, z, next};
}

/// Input that drives the register toward zero (termination).
inline unsigned rsc_termination_input(unsigned state) {
  const unsigned w2 = (state >> 1) & 1u;
  const unsigned w3 = (state >> 2) & 1u;
  return w2 ^ w3;  // makes w = 0
}

/// Encodes one RSC stream over `input`; appends (x, z) tail pairs to
/// `tail` while terminating.
void rsc_encode(const Bits& input, Bits& parity, Bits& tail) {
  unsigned state = 0;
  parity.reserve(parity.size() + input.size());
  for (std::uint8_t u : input) {
    const auto step = rsc_step(state, u);
    parity.push_back(static_cast<std::uint8_t>(step.z));
    state = step.next;
  }
  for (int t = 0; t < kTailSteps; ++t) {
    const unsigned x = rsc_termination_input(state);
    const auto step = rsc_step(state, x);
    PRAN_CHECK(step.w == 0, "termination input did not zero the feedback");
    tail.push_back(static_cast<std::uint8_t>(x));
    tail.push_back(static_cast<std::uint8_t>(step.z));
    state = step.next;
  }
  PRAN_CHECK(state == 0, "RSC termination failed");
}

/// Max-log-MAP decode of one constituent code.
///
/// `sys` and `apriori` have K entries; `parity` has K entries; `tail_sys`
/// and `tail_parity` have kTailSteps entries each. Returns the extrinsic
/// LLRs (K entries); `posterior` (optional out) receives sys+apriori+ext.
Llrs map_decode(const Llrs& sys, const Llrs& parity, const Llrs& apriori,
                const Llrs& tail_sys, const Llrs& tail_parity) {
  const std::size_t k = sys.size();
  const std::size_t steps = k + kTailSteps;

  // gamma contribution helper: log-metric of (bit b against LLR l).
  auto half = [](double l, unsigned b) { return b ? -0.5 * l : 0.5 * l; };

  // Forward recursion.
  std::vector<std::array<double, kStates>> alpha(steps + 1);
  alpha[0].fill(kNegInf);
  alpha[0][0] = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    alpha[t + 1].fill(kNegInf);
    const bool tail = t >= k;
    const double ls = tail ? tail_sys[t - k] : sys[t];
    const double la = tail ? 0.0 : apriori[t];
    const double lp = tail ? tail_parity[t - k] : parity[t];
    for (int s = 0; s < kStates; ++s) {
      if (alpha[t][static_cast<std::size_t>(s)] == kNegInf) continue;
      for (unsigned u = 0; u < 2; ++u) {
        if (tail && u != rsc_termination_input(static_cast<unsigned>(s)))
          continue;  // tail inputs are forced
        const auto step = rsc_step(static_cast<unsigned>(s), u);
        const double g = half(ls + la, u) + half(lp, step.z);
        auto& a = alpha[t + 1][step.next];
        a = std::max(a, alpha[t][static_cast<std::size_t>(s)] + g);
      }
    }
  }

  // Backward recursion.
  std::vector<std::array<double, kStates>> beta(steps + 1);
  beta[steps].fill(kNegInf);
  beta[steps][0] = 0.0;  // terminated trellis
  for (std::size_t t = steps; t-- > 0;) {
    beta[t].fill(kNegInf);
    const bool tail = t >= k;
    const double ls = tail ? tail_sys[t - k] : sys[t];
    const double la = tail ? 0.0 : apriori[t];
    const double lp = tail ? tail_parity[t - k] : parity[t];
    for (int s = 0; s < kStates; ++s) {
      for (unsigned u = 0; u < 2; ++u) {
        if (tail && u != rsc_termination_input(static_cast<unsigned>(s)))
          continue;
        const auto step = rsc_step(static_cast<unsigned>(s), u);
        if (beta[t + 1][step.next] == kNegInf) continue;
        const double g = half(ls + la, u) + half(lp, step.z);
        auto& b = beta[t] [static_cast<std::size_t>(s)];
        b = std::max(b, beta[t + 1][step.next] + g);
      }
    }
  }

  // Posterior LLRs for the information positions, then extrinsic.
  Llrs extrinsic(k, 0.0);
  for (std::size_t t = 0; t < k; ++t) {
    double best0 = kNegInf, best1 = kNegInf;
    for (int s = 0; s < kStates; ++s) {
      if (alpha[t][static_cast<std::size_t>(s)] == kNegInf) continue;
      for (unsigned u = 0; u < 2; ++u) {
        const auto step = rsc_step(static_cast<unsigned>(s), u);
        if (beta[t + 1][step.next] == kNegInf) continue;
        const double g = half(sys[t] + apriori[t], u) + half(parity[t], step.z);
        const double metric = alpha[t][static_cast<std::size_t>(s)] + g +
                              beta[t + 1][step.next];
        (u == 0 ? best0 : best1) = std::max(u == 0 ? best0 : best1, metric);
      }
    }
    const double posterior = best0 - best1;  // log(P0/P1)
    extrinsic[t] = posterior - sys[t] - apriori[t];
  }
  return extrinsic;
}

}  // namespace

bool turbo_block_size_ok(std::size_t k) noexcept {
  if (k < 64 || k > 8192) return false;
  return (k & (k - 1)) == 0;
}

std::vector<std::size_t> turbo_interleaver(std::size_t k) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  // QPP form with f1 odd and f2 even — a permutation for power-of-two K.
  const std::size_t f2 = k / 4;
  std::size_t f1 = 3 * k / 8 + 1;
  if (f1 % 2 == 0) ++f1;
  std::vector<std::size_t> pi(k);
  std::vector<std::uint8_t> seen(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    pi[i] = (f1 * i + f2 * i * i) % k;
    PRAN_CHECK(!seen[pi[i]], "interleaver is not a permutation");
    seen[pi[i]] = 1;
  }
  return pi;
}

Bits turbo_encode(const Bits& info) {
  PRAN_REQUIRE(turbo_block_size_ok(info.size()),
               "unsupported turbo block size");
  const auto pi = turbo_interleaver(info.size());

  Bits interleaved(info.size());
  for (std::size_t i = 0; i < info.size(); ++i) interleaved[i] = info[pi[i]];

  Bits parity1, parity2, tail;
  rsc_encode(info, parity1, tail);          // 6 tail bits from encoder 1
  rsc_encode(interleaved, parity2, tail);   // 6 more from encoder 2

  Bits out;
  out.reserve(turbo_encoded_length(info.size()));
  out.insert(out.end(), info.begin(), info.end());
  out.insert(out.end(), parity1.begin(), parity1.end());
  out.insert(out.end(), parity2.begin(), parity2.end());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

TurboResult turbo_decode(const Llrs& llrs, std::size_t k, int max_iterations,
                         const std::function<bool(const Bits&)>& early_exit) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  PRAN_REQUIRE(llrs.size() == turbo_encoded_length(k),
               "LLR length does not match turbo_encoded_length(k)");
  PRAN_REQUIRE(max_iterations >= 1, "need at least one iteration");

  const auto pi = turbo_interleaver(k);
  const Llrs sys(llrs.begin(), llrs.begin() + static_cast<std::ptrdiff_t>(k));
  const Llrs par1(llrs.begin() + static_cast<std::ptrdiff_t>(k),
                  llrs.begin() + static_cast<std::ptrdiff_t>(2 * k));
  const Llrs par2(llrs.begin() + static_cast<std::ptrdiff_t>(2 * k),
                  llrs.begin() + static_cast<std::ptrdiff_t>(3 * k));
  // Tail layout: enc1 (x,z) x3, then enc2 (x,z) x3.
  Llrs tail_sys1(3), tail_par1(3), tail_sys2(3), tail_par2(3);
  for (int t = 0; t < 3; ++t) {
    tail_sys1[static_cast<std::size_t>(t)] = llrs[3 * k + 2 * t];
    tail_par1[static_cast<std::size_t>(t)] = llrs[3 * k + 2 * t + 1];
    tail_sys2[static_cast<std::size_t>(t)] = llrs[3 * k + 6 + 2 * t];
    tail_par2[static_cast<std::size_t>(t)] = llrs[3 * k + 6 + 2 * t + 1];
  }

  Llrs sys_int(k);
  for (std::size_t i = 0; i < k; ++i) sys_int[i] = sys[pi[i]];

  Llrs ext2_deint(k, 0.0);  // extrinsic from decoder 2, natural order
  TurboResult result;
  result.info.assign(k, 0);

  for (int iter = 1; iter <= max_iterations; ++iter) {
    // Decoder 1 in natural order.
    Llrs ext1 =
        map_decode(sys, par1, ext2_deint, tail_sys1, tail_par1);
    for (double& e : ext1) e *= kExtrinsicScale;

    // Decoder 2 in interleaved order.
    Llrs apriori2(k);
    for (std::size_t i = 0; i < k; ++i) apriori2[i] = ext1[pi[i]];
    Llrs ext2 = map_decode(sys_int, par2, apriori2, tail_sys2, tail_par2);
    for (double& e : ext2) e *= kExtrinsicScale;
    for (std::size_t i = 0; i < k; ++i) ext2_deint[pi[i]] = ext2[i];

    // Posterior and hard decision.
    for (std::size_t i = 0; i < k; ++i) {
      const double posterior = sys[i] + ext1[i] + ext2_deint[i];
      result.info[i] = posterior < 0.0 ? 1 : 0;
    }
    result.iterations = iter;
    if (early_exit && early_exit(result.info)) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace pran::coding
