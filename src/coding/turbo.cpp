#include "coding/turbo.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>

#include "coding/simd/turbo_kernels.hpp"
#include "coding/simd/turbo_trellis.hpp"
#include "common/check.hpp"
#include "common/narrow.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::coding {
namespace {

constexpr int kStates = simd::kTurboStates;
constexpr int kTailSteps = simd::kTurboTailSteps;
/// Standard extrinsic damping for max-log-MAP.
constexpr float kExtrinsicScale = 0.75f;

/// The 8-state trellis (next state / parity / termination input per
/// state) now lives in simd/turbo_trellis.hpp, shared verbatim with the
/// SIMD kernels so encoder and every decoder tier walk identical tables.
constexpr const simd::TurboTrellis& kTrellis = simd::kTurboTrellis;

/// Encodes one RSC stream over `input`; appends (x, z) tail pairs to
/// `tail` while terminating.
void rsc_encode(const Bits& input, Bits& parity, Bits& tail) {
  unsigned state = 0;
  parity.reserve(parity.size() + input.size());
  for (std::uint8_t u : input) {
    parity.push_back(kTrellis.parity[state][u]);
    state = kTrellis.next[state][u];
  }
  for (int t = 0; t < kTailSteps; ++t) {
    const unsigned x = kTrellis.term[state];
    tail.push_back(narrow_cast<std::uint8_t>(x));
    tail.push_back(kTrellis.parity[state][x]);
    state = kTrellis.next[state][x];
  }
  PRAN_CHECK(state == 0, "RSC termination failed");
}

std::vector<std::size_t> build_interleaver(std::size_t k) {
  // QPP form with f1 odd and f2 even — a permutation for power-of-two K.
  const std::size_t f2 = k / 4;
  std::size_t f1 = 3 * k / 8 + 1;
  if (f1 % 2 == 0) ++f1;
  std::vector<std::size_t> pi(k);
  std::vector<std::uint8_t> seen(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    pi[i] = (f1 * i + f2 * i * i) % k;
    PRAN_CHECK(!seen[pi[i]], "interleaver is not a permutation");
    seen[pi[i]] = 1;
  }
  return pi;
}

/// Per-K interleaver memo: supported K are the 8 powers of two in
/// [64, 8192], so a fixed slot table suffices. Entries are built once
/// (including the O(K) permutation check) and shared by every encoder and
/// decoder thread thereafter.
const std::vector<std::size_t>& cached_interleaver(std::size_t k) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  // pran-lint: allow(determinism-hazard) -- the mutex only serializes memo
  // construction; it holds no run-visible state.
  static std::mutex mutex;
  // pran-lint: allow(determinism-hazard) -- build-once memo; each entry is
  // a pure function of k (QPP permutation), so contents are identical for
  // every run and thread count, and entries are immutable once published.
  static std::array<std::unique_ptr<const std::vector<std::size_t>>, 8> memo;
  const auto slot =
      static_cast<std::size_t>(std::countr_zero(k)) - 6;  // k=64 -> 0
  std::lock_guard<std::mutex> lock(mutex);
  auto& entry = memo[slot];
  if (!entry)
    entry = std::make_unique<const std::vector<std::size_t>>(
        build_interleaver(k));
  return *entry;
}

}  // namespace

bool turbo_block_size_ok(std::size_t k) noexcept {
  if (k < 64 || k > 8192) return false;
  return (k & (k - 1)) == 0;
}

std::vector<std::size_t> turbo_interleaver(std::size_t k) {
  return cached_interleaver(k);  // copy out; the memo keeps the original
}

Bits turbo_encode(const Bits& info) {
  PRAN_REQUIRE(turbo_block_size_ok(info.size()),
               "unsupported turbo block size");
  const auto& pi = cached_interleaver(info.size());

  Bits interleaved(info.size());
  for (std::size_t i = 0; i < info.size(); ++i) interleaved[i] = info[pi[i]];

  Bits parity1, parity2, tail;
  rsc_encode(info, parity1, tail);          // 6 tail bits from encoder 1
  rsc_encode(interleaved, parity2, tail);   // 6 more from encoder 2

  Bits out;
  out.reserve(turbo_encoded_length(info.size()));
  out.insert(out.end(), info.begin(), info.end());
  out.insert(out.end(), parity1.begin(), parity1.end());
  out.insert(out.end(), parity2.begin(), parity2.end());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void TurboDecoder::ensure_capacity(std::size_t k) {
  if (k <= capacity_k_) return;
  const std::size_t steps = k + kTailSteps;
  beta_.resize((steps + 1) * kStates);
  sys_.resize(steps);
  par1_.resize(steps);
  par2_.resize(steps);
  sys_int_.resize(steps);
  half_par1_.resize(steps);
  half_par2_.resize(steps);
  half_sys_.resize(steps);
  ext1_.resize(k);
  ext2_.resize(k);
  apriori2_.resize(k);
  ext2_deint_.resize(k);
  capacity_k_ = k;
}

void TurboDecoder::ensure_batch_capacity(std::size_t k, unsigned lanes) {
  if (k <= batch_capacity_k_ && lanes <= batch_capacity_lanes_) return;
  const std::size_t steps = k + kTailSteps;
  const std::size_t w = lanes;
  bbeta_.resize((steps + 1) * kStates * w);
  bsys_.resize(steps * w);
  bpar1_.resize(steps * w);
  bpar2_.resize(steps * w);
  bsys_int_.resize(steps * w);
  bhalf_par1_.resize(steps * w);
  bhalf_par2_.resize(steps * w);
  bhalf_sys_.resize(steps * w);
  bext1_.resize(k * w);
  bext2_.resize(k * w);
  bapriori2_.resize(k * w);
  bext2_deint_.resize(k * w);
  lane_item_.resize(w);
  lane_iter_.resize(w);
  lane_active_.resize(w);
  batch_capacity_k_ = std::max(batch_capacity_k_, k);
  batch_capacity_lanes_ = std::max(batch_capacity_lanes_, lanes);
}

const TurboResult& TurboDecoder::decode(
    const Llrs& llrs, std::size_t k, int max_iterations,
    const std::function<bool(const Bits&)>& early_exit) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  PRAN_REQUIRE(llrs.size() == turbo_encoded_length(k),
               "LLR length does not match turbo_encoded_length(k)");
  PRAN_REQUIRE(max_iterations >= 1, "need at least one iteration");

  ensure_capacity(k);
  const auto& pi = cached_interleaver(k);
  // State-axis kernel for the active tier (bit-exact across tiers).
  const auto& kernels = simd::turbo_kernels(simd::active_isa());

  // Demultiplex into the flat float workspace. Layout per stream:
  // [0, k) info positions, [k, k+3) tail. Tail layout on the wire:
  // enc1 (x, z) x3, then enc2 (x, z) x3.
  for (std::size_t i = 0; i < k; ++i) {
    sys_[i] = static_cast<float>(llrs[i]);
    par1_[i] = static_cast<float>(llrs[k + i]);
    par2_[i] = static_cast<float>(llrs[2 * k + i]);
  }
  for (std::size_t t = 0; t < kTailSteps; ++t) {
    sys_[k + t] = static_cast<float>(llrs[3 * k + 2 * t]);
    par1_[k + t] = static_cast<float>(llrs[3 * k + 2 * t + 1]);
    sys_int_[k + t] = static_cast<float>(llrs[3 * k + 6 + 2 * t]);
    par2_[k + t] = static_cast<float>(llrs[3 * k + 6 + 2 * t + 1]);
  }
  for (std::size_t i = 0; i < k; ++i) sys_int_[i] = sys_[pi[i]];

  const std::size_t steps = k + kTailSteps;
  for (std::size_t t = 0; t < steps; ++t) {
    half_par1_[t] = 0.5f * par1_[t];
    half_par2_[t] = 0.5f * par2_[t];
  }

  std::fill(ext2_deint_.begin(), ext2_deint_.begin() +
                                     static_cast<std::ptrdiff_t>(k), 0.0f);
  result_.info.assign(k, 0);
  result_.iterations = 0;
  result_.converged = false;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    // Decoder 1 in natural order; a-priori is decoder 2's extrinsic.
    for (std::size_t t = 0; t < k; ++t)
      half_sys_[t] = 0.5f * (sys_[t] + ext2_deint_[t]);
    for (std::size_t t = k; t < steps; ++t) half_sys_[t] = 0.5f * sys_[t];
    kernels.map_pass(half_sys_.data(), half_par1_.data(), sys_.data(),
                     ext2_deint_.data(), k, beta_.data(), ext1_.data());
    for (std::size_t i = 0; i < k; ++i) ext1_[i] *= kExtrinsicScale;

    // Decoder 2 in interleaved order.
    for (std::size_t i = 0; i < k; ++i) apriori2_[i] = ext1_[pi[i]];
    for (std::size_t t = 0; t < k; ++t)
      half_sys_[t] = 0.5f * (sys_int_[t] + apriori2_[t]);
    for (std::size_t t = k; t < steps; ++t) half_sys_[t] = 0.5f * sys_int_[t];
    kernels.map_pass(half_sys_.data(), half_par2_.data(), sys_int_.data(),
                     apriori2_.data(), k, beta_.data(), ext2_.data());
    for (std::size_t i = 0; i < k; ++i)
      ext2_deint_[pi[i]] = ext2_[i] * kExtrinsicScale;

    // Posterior and hard decision.
    for (std::size_t i = 0; i < k; ++i) {
      const float posterior = sys_[i] + ext1_[i] + ext2_deint_[i];
      result_.info[i] = posterior < 0.0f ? 1 : 0;
    }
    result_.iterations = iter;
    if (early_exit && early_exit(result_.info)) {
      result_.converged = true;
      break;
    }
  }
  return result_;
}

TurboBatchStats TurboDecoder::decode_batch(
    std::span<TurboBatchItem> items, std::size_t k, int max_iterations,
    const std::function<bool(std::size_t, const Bits&)>& early_stop) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  PRAN_REQUIRE(max_iterations >= 1, "need at least one iteration");
  for (auto& item : items) {
    PRAN_REQUIRE(item.llrs != nullptr, "decode_batch: item without LLRs");
    PRAN_REQUIRE(item.llrs->size() == turbo_encoded_length(k),
                 "LLR length does not match turbo_encoded_length(k)");
    PRAN_REQUIRE(item.max_iterations >= 0,
                 "per-item iteration budget must be non-negative");
  }

  // A positive per-item budget overrides the call-wide cap for that block.
  const auto item_cap = [&](std::size_t i) {
    return items[i].max_iterations > 0 ? items[i].max_iterations
                                       : max_iterations;
  };

  const auto& kernels = simd::turbo_kernels(simd::active_isa());
  const unsigned w = kernels.lane_width;
  TurboBatchStats stats;
  stats.lane_width = w;
  if (items.empty()) return stats;

  if (w == 1 || items.size() == 1) {
    // Scalar tier (lane width 1) or a single block: the lockstep path
    // degenerates to per-block decode.
    for (std::size_t i = 0; i < items.size(); ++i) {
      auto& item = items[i];
      std::function<bool(const Bits&)> exit_fn;
      if (early_stop)
        exit_fn = [&early_stop, i](const Bits& hard) {
          return early_stop(i, hard);
        };
      const TurboResult& r = decode(*item.llrs, k, item_cap(i), exit_fn);
      item.info = r.info;
      item.iterations = r.iterations;
      item.converged = r.converged;
      if (early_stop && !r.converged) ++stats.budget_exhausted;
      stats.map_pass_calls += 2 * static_cast<std::size_t>(r.iterations);
    }
    return stats;
  }

  ensure_batch_capacity(k, w);
  const auto& pi = cached_interleaver(k);
  const std::size_t steps = k + kTailSteps;
  const std::size_t kw = k * w;
  const std::size_t sw = steps * w;

  // Demultiplex one block into SIMD lane `l` and reset its iteration
  // state. Exactly the decode() demux, strided by the lane width.
  const auto load_lane = [&](unsigned l, std::size_t item_index) {
    const Llrs& llrs = *items[item_index].llrs;
    for (std::size_t i = 0; i < k; ++i) {
      bsys_[i * w + l] = static_cast<float>(llrs[i]);
      bpar1_[i * w + l] = static_cast<float>(llrs[k + i]);
      bpar2_[i * w + l] = static_cast<float>(llrs[2 * k + i]);
    }
    for (std::size_t t = 0; t < static_cast<std::size_t>(kTailSteps); ++t) {
      bsys_[(k + t) * w + l] = static_cast<float>(llrs[3 * k + 2 * t]);
      bpar1_[(k + t) * w + l] = static_cast<float>(llrs[3 * k + 2 * t + 1]);
      bsys_int_[(k + t) * w + l] =
          static_cast<float>(llrs[3 * k + 6 + 2 * t]);
      bpar2_[(k + t) * w + l] =
          static_cast<float>(llrs[3 * k + 6 + 2 * t + 1]);
    }
    for (std::size_t i = 0; i < k; ++i)
      bsys_int_[i * w + l] = bsys_[pi[i] * w + l];
    for (std::size_t t = 0; t < steps; ++t) {
      bhalf_par1_[t * w + l] = 0.5f * bpar1_[t * w + l];
      bhalf_par2_[t * w + l] = 0.5f * bpar2_[t * w + l];
    }
    for (std::size_t i = 0; i < k; ++i) bext2_deint_[i * w + l] = 0.0f;
    items[item_index].info.assign(k, 0);
    items[item_index].iterations = 0;
    items[item_index].converged = false;
    lane_item_[l] = item_index;
    lane_iter_[l] = 0;
    lane_active_[l] = 1;
  };

  // Idle lanes (batch smaller than the lane width) decode zero LLRs:
  // finite everywhere, never read back.
  const auto clear_lane = [&](unsigned l) {
    for (std::size_t t = 0; t < steps; ++t) {
      bsys_[t * w + l] = 0.0f;
      bsys_int_[t * w + l] = 0.0f;
      bhalf_par1_[t * w + l] = 0.0f;
      bhalf_par2_[t * w + l] = 0.0f;
    }
    for (std::size_t i = 0; i < k; ++i) bext2_deint_[i * w + l] = 0.0f;
    lane_active_[l] = 0;
  };

  std::size_t next_pending = 0;
  std::size_t active = 0;
  for (unsigned l = 0; l < w; ++l) {
    if (next_pending < items.size()) {
      load_lane(l, next_pending++);
      ++active;
    } else {
      clear_lane(l);
    }
  }

  while (active > 0) {
    // One full turbo iteration for every lane in lockstep. The per-lane
    // arithmetic is exactly decode()'s sequence, so each lane's outputs
    // are bit-identical to a standalone decode of that block.
    for (std::size_t idx = 0; idx < kw; ++idx)
      bhalf_sys_[idx] = 0.5f * (bsys_[idx] + bext2_deint_[idx]);
    for (std::size_t idx = kw; idx < sw; ++idx)
      bhalf_sys_[idx] = 0.5f * bsys_[idx];
    kernels.batch_map_pass(bhalf_sys_.data(), bhalf_par1_.data(),
                           bsys_.data(), bext2_deint_.data(), k,
                           bbeta_.data(), bext1_.data());
    for (std::size_t idx = 0; idx < kw; ++idx) bext1_[idx] *= kExtrinsicScale;

    for (std::size_t i = 0; i < k; ++i) {
      const float* src = bext1_.data() + pi[i] * w;
      float* dst = bapriori2_.data() + i * w;
      for (unsigned l = 0; l < w; ++l) dst[l] = src[l];
    }
    for (std::size_t idx = 0; idx < kw; ++idx)
      bhalf_sys_[idx] = 0.5f * (bsys_int_[idx] + bapriori2_[idx]);
    for (std::size_t idx = kw; idx < sw; ++idx)
      bhalf_sys_[idx] = 0.5f * bsys_int_[idx];
    kernels.batch_map_pass(bhalf_sys_.data(), bhalf_par2_.data(),
                           bsys_int_.data(), bapriori2_.data(), k,
                           bbeta_.data(), bext2_.data());
    for (std::size_t i = 0; i < k; ++i) {
      const float* src = bext2_.data() + i * w;
      float* dst = bext2_deint_.data() + pi[i] * w;
      for (unsigned l = 0; l < w; ++l) dst[l] = src[l] * kExtrinsicScale;
    }

    stats.map_pass_calls += 2;
    stats.idle_lane_iterations += w - active;

    for (unsigned l = 0; l < w; ++l) {
      if (!lane_active_[l]) continue;
      TurboBatchItem& item = items[lane_item_[l]];
      for (std::size_t i = 0; i < k; ++i) {
        const float posterior =
            bsys_[i * w + l] + bext1_[i * w + l] + bext2_deint_[i * w + l];
        item.info[i] = posterior < 0.0f ? 1 : 0;
      }
      item.iterations = ++lane_iter_[l];
      bool retire = false;
      if (early_stop && early_stop(lane_item_[l], item.info)) {
        item.converged = true;
        retire = true;
      } else if (lane_iter_[l] >= item_cap(lane_item_[l])) {
        if (early_stop) ++stats.budget_exhausted;
        retire = true;
      }
      if (retire) {
        if (next_pending < items.size()) {
          load_lane(l, next_pending++);
          ++stats.lane_refills;
        } else {
          lane_active_[l] = 0;
          --active;
        }
      }
    }
  }
  return stats;
}

TurboResult turbo_decode(const Llrs& llrs, std::size_t k, int max_iterations,
                         const std::function<bool(const Bits&)>& early_exit) {
  PRAN_SPAN("turbo_decode", static_cast<std::int64_t>(k));
  thread_local TurboDecoder decoder;
  return decoder.decode(llrs, k, max_iterations, early_exit);
}

TurboBatchStats turbo_decode_batch(
    std::span<TurboBatchItem> items, std::size_t k, int max_iterations,
    const std::function<bool(std::size_t, const Bits&)>& early_stop) {
  PRAN_SPAN("turbo_decode_batch", static_cast<std::int64_t>(items.size()));
  thread_local TurboDecoder decoder;
  return decoder.decode_batch(items, k, max_iterations, early_stop);
}

}  // namespace pran::coding
