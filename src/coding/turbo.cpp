#include "coding/turbo.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

#include "common/check.hpp"

#include "common/narrow.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::coding {
namespace {

constexpr int kStates = 8;
constexpr int kTailSteps = 3;
constexpr float kNegInfF = -std::numeric_limits<float>::infinity();
/// Standard extrinsic damping for max-log-MAP.
constexpr float kExtrinsicScale = 0.75f;

/// One RSC step: returns {feedback bit w (= next input to the shift
/// register), parity bit z, next state}.
struct RscStep {
  unsigned w;
  unsigned z;
  unsigned next;
};

constexpr RscStep rsc_step(unsigned state, unsigned u) {
  const unsigned w1 = state & 1u;         // w_{t-1}
  const unsigned w2 = (state >> 1) & 1u;  // w_{t-2}
  const unsigned w3 = (state >> 2) & 1u;  // w_{t-3}
  const unsigned w = u ^ w2 ^ w3;         // feedback g0 = 1 + D^2 + D^3
  const unsigned z = w ^ w1 ^ w3;         // parity  g1 = 1 + D + D^3
  const unsigned next = ((state << 1) | w) & 7u;
  return RscStep{w, z, next};
}

/// Input that drives the register toward zero (termination).
constexpr unsigned rsc_termination_input(unsigned state) {
  const unsigned w2 = (state >> 1) & 1u;
  const unsigned w3 = (state >> 2) & 1u;
  return w2 ^ w3;  // makes w = 0
}

/// The whole 8-state trellis, precomputed at compile time so the BCJR
/// recursions are pure table walks: next state and parity per (state,
/// input), plus the forced termination input per state.
struct Trellis {
  std::uint8_t next[kStates][2];
  std::uint8_t parity[kStates][2];
  std::uint8_t term[kStates];
};

constexpr Trellis build_trellis() {
  Trellis t{};
  for (unsigned s = 0; s < kStates; ++s) {
    for (unsigned u = 0; u < 2; ++u) {
      const auto step = rsc_step(s, u);
      t.next[s][u] = narrow_cast<std::uint8_t>(step.next);
      t.parity[s][u] = narrow_cast<std::uint8_t>(step.z);
    }
    t.term[s] = narrow_cast<std::uint8_t>(rsc_termination_input(s));
  }
  return t;
}

constexpr Trellis kTrellis = build_trellis();

/// Encodes one RSC stream over `input`; appends (x, z) tail pairs to
/// `tail` while terminating.
void rsc_encode(const Bits& input, Bits& parity, Bits& tail) {
  unsigned state = 0;
  parity.reserve(parity.size() + input.size());
  for (std::uint8_t u : input) {
    parity.push_back(kTrellis.parity[state][u]);
    state = kTrellis.next[state][u];
  }
  for (int t = 0; t < kTailSteps; ++t) {
    const unsigned x = kTrellis.term[state];
    tail.push_back(narrow_cast<std::uint8_t>(x));
    tail.push_back(kTrellis.parity[state][x]);
    state = kTrellis.next[state][x];
  }
  PRAN_CHECK(state == 0, "RSC termination failed");
}

std::vector<std::size_t> build_interleaver(std::size_t k) {
  // QPP form with f1 odd and f2 even — a permutation for power-of-two K.
  const std::size_t f2 = k / 4;
  std::size_t f1 = 3 * k / 8 + 1;
  if (f1 % 2 == 0) ++f1;
  std::vector<std::size_t> pi(k);
  std::vector<std::uint8_t> seen(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    pi[i] = (f1 * i + f2 * i * i) % k;
    PRAN_CHECK(!seen[pi[i]], "interleaver is not a permutation");
    seen[pi[i]] = 1;
  }
  return pi;
}

/// Per-K interleaver memo: supported K are the 8 powers of two in
/// [64, 8192], so a fixed slot table suffices. Entries are built once
/// (including the O(K) permutation check) and shared by every encoder and
/// decoder thread thereafter.
const std::vector<std::size_t>& cached_interleaver(std::size_t k) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  static std::mutex mutex;
  static std::array<std::unique_ptr<const std::vector<std::size_t>>, 8> memo;
  const auto slot =
      static_cast<std::size_t>(std::countr_zero(k)) - 6;  // k=64 -> 0
  std::lock_guard<std::mutex> lock(mutex);
  auto& entry = memo[slot];
  if (!entry)
    entry = std::make_unique<const std::vector<std::size_t>>(
        build_interleaver(k));
  return *entry;
}

}  // namespace

bool turbo_block_size_ok(std::size_t k) noexcept {
  if (k < 64 || k > 8192) return false;
  return (k & (k - 1)) == 0;
}

std::vector<std::size_t> turbo_interleaver(std::size_t k) {
  return cached_interleaver(k);  // copy out; the memo keeps the original
}

Bits turbo_encode(const Bits& info) {
  PRAN_REQUIRE(turbo_block_size_ok(info.size()),
               "unsupported turbo block size");
  const auto& pi = cached_interleaver(info.size());

  Bits interleaved(info.size());
  for (std::size_t i = 0; i < info.size(); ++i) interleaved[i] = info[pi[i]];

  Bits parity1, parity2, tail;
  rsc_encode(info, parity1, tail);          // 6 tail bits from encoder 1
  rsc_encode(interleaved, parity2, tail);   // 6 more from encoder 2

  Bits out;
  out.reserve(turbo_encoded_length(info.size()));
  out.insert(out.end(), info.begin(), info.end());
  out.insert(out.end(), parity1.begin(), parity1.end());
  out.insert(out.end(), parity2.begin(), parity2.end());
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void TurboDecoder::ensure_capacity(std::size_t k) {
  if (k <= capacity_k_) return;
  const std::size_t steps = k + kTailSteps;
  beta_.resize((steps + 1) * kStates);
  sys_.resize(steps);
  par1_.resize(steps);
  par2_.resize(steps);
  sys_int_.resize(steps);
  half_par1_.resize(steps);
  half_par2_.resize(steps);
  half_sys_.resize(steps);
  ext1_.resize(k);
  ext2_.resize(k);
  apriori2_.resize(k);
  ext2_deint_.resize(k);
  capacity_k_ = k;
}

/// Max-log-MAP pass over one constituent code.
///
/// `half_sys_apriori[t]` is 0.5*(systematic + a-priori) for step t (tail
/// steps carry 0.5*tail_sys, the a-priori being zero there);
/// `half_parity[t]` is 0.5*parity. `sys`/`apriori` are the unsummed K-entry
/// inputs the extrinsic subtracts back out. Writes K extrinsic LLRs.
///
/// The backward (beta) metrics are materialized in the flat workspace
/// buffer; the forward (alpha) recursion keeps only the live 8-entry row
/// and fuses the posterior/extrinsic computation into the same sweep, so
/// each trellis step is touched exactly twice with zero allocation.
void TurboDecoder::map_pass(const float* half_sys_apriori,
                            const float* half_parity, const float* sys,
                            const float* apriori, std::size_t k,
                            float* extrinsic) {
  const std::size_t steps = k + kTailSteps;
  float* beta = beta_.data();

  // Terminal condition: the trellis ends in state zero.
  {
    float* row = beta + steps * kStates;
    std::fill(row, row + kStates, kNegInfF);
    row[0] = 0.0f;
  }

  // Backward recursion. In the tail the input is forced to the
  // termination bit, so each state has exactly one outgoing branch.
  for (std::size_t t = steps; t-- > 0;) {
    const float hs = half_sys_apriori[t];
    const float hp = half_parity[t];
    const float* next_row = beta + (t + 1) * kStates;
    float* row = beta + t * kStates;
    if (t >= k) {
      for (int s = 0; s < kStates; ++s) {
        const unsigned u = kTrellis.term[s];
        const float g =
            (u ? -hs : hs) + (kTrellis.parity[s][u] ? -hp : hp);
        row[s] = next_row[kTrellis.next[s][u]] + g;
      }
    } else {
#pragma GCC unroll 8
      for (int s = 0; s < kStates; ++s) {
        const float m0 = next_row[kTrellis.next[s][0]] + hs +
                         (kTrellis.parity[s][0] ? -hp : hp);
        const float m1 = next_row[kTrellis.next[s][1]] - hs +
                         (kTrellis.parity[s][1] ? -hp : hp);
        row[s] = std::max(m0, m1);
      }
    }
  }

  // Forward recursion fused with the posterior pass. Only the live alpha
  // row is kept; the tail needs no extrinsic, so the sweep stops at K.
  float alpha[kStates];
  float next_alpha[kStates];
  std::fill(alpha + 1, alpha + kStates, kNegInfF);
  alpha[0] = 0.0f;
  for (std::size_t t = 0; t < k; ++t) {
    const float hs = half_sys_apriori[t];
    const float hp = half_parity[t];
    const float* next_row = beta + (t + 1) * kStates;
    std::fill(next_alpha, next_alpha + kStates, kNegInfF);
    float best0 = kNegInfF;
    float best1 = kNegInfF;
#pragma GCC unroll 8
    for (int s = 0; s < kStates; ++s) {
      const float a = alpha[s];
      const int n0 = kTrellis.next[s][0];
      const int n1 = kTrellis.next[s][1];
      const float m0 = a + hs + (kTrellis.parity[s][0] ? -hp : hp);
      const float m1 = a - hs + (kTrellis.parity[s][1] ? -hp : hp);
      best0 = std::max(best0, m0 + next_row[n0]);
      best1 = std::max(best1, m1 + next_row[n1]);
      next_alpha[n0] = std::max(next_alpha[n0], m0);
      next_alpha[n1] = std::max(next_alpha[n1], m1);
    }
    std::copy(next_alpha, next_alpha + kStates, alpha);
    // posterior = log(P0/P1); extrinsic removes the direct inputs.
    extrinsic[t] = (best0 - best1) - sys[t] - apriori[t];
  }
}

const TurboResult& TurboDecoder::decode(
    const Llrs& llrs, std::size_t k, int max_iterations,
    const std::function<bool(const Bits&)>& early_exit) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  PRAN_REQUIRE(llrs.size() == turbo_encoded_length(k),
               "LLR length does not match turbo_encoded_length(k)");
  PRAN_REQUIRE(max_iterations >= 1, "need at least one iteration");

  ensure_capacity(k);
  const auto& pi = cached_interleaver(k);

  // Demultiplex into the flat float workspace. Layout per stream:
  // [0, k) info positions, [k, k+3) tail. Tail layout on the wire:
  // enc1 (x, z) x3, then enc2 (x, z) x3.
  for (std::size_t i = 0; i < k; ++i) {
    sys_[i] = static_cast<float>(llrs[i]);
    par1_[i] = static_cast<float>(llrs[k + i]);
    par2_[i] = static_cast<float>(llrs[2 * k + i]);
  }
  for (std::size_t t = 0; t < kTailSteps; ++t) {
    sys_[k + t] = static_cast<float>(llrs[3 * k + 2 * t]);
    par1_[k + t] = static_cast<float>(llrs[3 * k + 2 * t + 1]);
    sys_int_[k + t] = static_cast<float>(llrs[3 * k + 6 + 2 * t]);
    par2_[k + t] = static_cast<float>(llrs[3 * k + 6 + 2 * t + 1]);
  }
  for (std::size_t i = 0; i < k; ++i) sys_int_[i] = sys_[pi[i]];

  const std::size_t steps = k + kTailSteps;
  for (std::size_t t = 0; t < steps; ++t) {
    half_par1_[t] = 0.5f * par1_[t];
    half_par2_[t] = 0.5f * par2_[t];
  }

  std::fill(ext2_deint_.begin(), ext2_deint_.begin() +
                                     static_cast<std::ptrdiff_t>(k), 0.0f);
  result_.info.assign(k, 0);
  result_.iterations = 0;
  result_.converged = false;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    // Decoder 1 in natural order; a-priori is decoder 2's extrinsic.
    for (std::size_t t = 0; t < k; ++t)
      half_sys_[t] = 0.5f * (sys_[t] + ext2_deint_[t]);
    for (std::size_t t = k; t < steps; ++t) half_sys_[t] = 0.5f * sys_[t];
    map_pass(half_sys_.data(), half_par1_.data(), sys_.data(),
             ext2_deint_.data(), k, ext1_.data());
    for (std::size_t i = 0; i < k; ++i) ext1_[i] *= kExtrinsicScale;

    // Decoder 2 in interleaved order.
    for (std::size_t i = 0; i < k; ++i) apriori2_[i] = ext1_[pi[i]];
    for (std::size_t t = 0; t < k; ++t)
      half_sys_[t] = 0.5f * (sys_int_[t] + apriori2_[t]);
    for (std::size_t t = k; t < steps; ++t) half_sys_[t] = 0.5f * sys_int_[t];
    map_pass(half_sys_.data(), half_par2_.data(), sys_int_.data(),
             apriori2_.data(), k, ext2_.data());
    for (std::size_t i = 0; i < k; ++i)
      ext2_deint_[pi[i]] = ext2_[i] * kExtrinsicScale;

    // Posterior and hard decision.
    for (std::size_t i = 0; i < k; ++i) {
      const float posterior = sys_[i] + ext1_[i] + ext2_deint_[i];
      result_.info[i] = posterior < 0.0f ? 1 : 0;
    }
    result_.iterations = iter;
    if (early_exit && early_exit(result_.info)) {
      result_.converged = true;
      break;
    }
  }
  return result_;
}

TurboResult turbo_decode(const Llrs& llrs, std::size_t k, int max_iterations,
                         const std::function<bool(const Bits&)>& early_exit) {
  PRAN_SPAN("turbo_decode", static_cast<std::int64_t>(k));
  thread_local TurboDecoder decoder;
  return decoder.decode(llrs, k, max_iterations, early_exit);
}

}  // namespace pran::coding
