#include "coding/bler.hpp"

#include "common/check.hpp"

namespace pran::coding {
namespace {

Bits random_payload(std::size_t bits, Rng& rng) {
  Bits out;
  out.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i)
    out.push_back(rng.bernoulli(0.5) ? 1 : 0);
  return out;
}

struct BlockOutcome {
  bool crc_ok = false;
  std::size_t bit_errors = 0;
  bool payload_match = false;
};

BlockOutcome send_block(const LinkConfig& config, double esn0_db, Rng& rng) {
  const Bits payload = random_payload(config.info_bits, rng);
  const Bits with_crc = attach_crc(payload);
  const Bits coded = convolutional_encode(with_crc);
  const std::size_t tx_bits =
      output_bits_for_rate(with_crc.size(), config.code_rate);
  const Bits matched = rate_match(coded, tx_bits);

  Llrs llrs = transmit_bpsk(matched, esn0_db, rng);
  if (!config.soft_decision) {
    // Hard decision: quantise to ±1 before de-matching.
    for (double& l : llrs) l = l < 0.0 ? -1.0 : 1.0;
  }
  const Llrs mother = rate_dematch(llrs, coded.size());
  const auto decoded = viterbi_decode(mother, with_crc.size());

  BlockOutcome outcome;
  outcome.crc_ok = check_crc(decoded.info);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i)
    if (decoded.info[i] != payload[i]) ++errors;
  outcome.bit_errors = errors;
  outcome.payload_match = errors == 0;
  return outcome;
}

}  // namespace

LinkStats run_link(const LinkConfig& config, double esn0_db,
                   std::size_t blocks, Rng& rng) {
  PRAN_REQUIRE(blocks >= 1, "need at least one block");
  PRAN_REQUIRE(config.info_bits >= 8, "payload too small");
  LinkStats stats;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto outcome = send_block(config, esn0_db, rng);
    ++stats.blocks;
    stats.bits += config.info_bits;
    stats.bit_errors += outcome.bit_errors;
    if (!outcome.crc_ok) {
      ++stats.block_errors;
    } else if (!outcome.payload_match) {
      ++stats.undetected_errors;  // CRC collision: should be ~2^-24
    }
  }
  return stats;
}

bool round_trip_block(const LinkConfig& config, double esn0_db, Rng& rng) {
  const auto outcome = send_block(config, esn0_db, rng);
  return outcome.crc_ok && outcome.payload_match;
}

}  // namespace pran::coding
