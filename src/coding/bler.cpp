#include "coding/bler.hpp"

#include <algorithm>

#include "coding/convolutional.hpp"
#include "coding/crc.hpp"
#include "coding/viterbi.hpp"
#include "common/check.hpp"

#include "common/narrow.hpp"

namespace pran::coding {
namespace {

/// Everything one worker reuses across trials: every buffer in the
/// CRC -> encode -> match -> channel -> dematch -> Viterbi chain plus the
/// decoder workspace. After the first block, a trial allocates nothing.
struct LinkWorkspace {
  Bits payload;
  Bits with_crc;
  Bits coded;
  Bits matched;
  Llrs llrs;
  Llrs mother;
  ViterbiDecoder viterbi;
  // Batched-decode staging: one payload/LLR slot per block of the group.
  std::vector<Bits> batch_payloads;
  std::vector<Llrs> batch_mothers;
  std::vector<ViterbiBatchItem> batch_items;
};

/// Per-config precomputation shared (read-only) by all trials of a sweep.
struct LinkPlan {
  std::size_t framed_bits = 0;  ///< info + CRC.
  std::size_t mother_bits = 0;  ///< encoded_length(framed_bits).
  std::vector<std::size_t> pattern;  ///< rate-match positions, reused both ways.
};

LinkPlan make_plan(const LinkConfig& config) {
  LinkPlan plan;
  plan.framed_bits = config.info_bits + static_cast<std::size_t>(kCrcBits);
  plan.mother_bits = encoded_length(plan.framed_bits);
  const std::size_t tx_bits =
      output_bits_for_rate(plan.framed_bits, config.code_rate);
  plan.pattern = rate_match_pattern(plan.mother_bits, tx_bits);
  return plan;
}

struct BlockOutcome {
  bool crc_ok = false;
  std::size_t bit_errors = 0;
  bool payload_match = false;
};

/// Channel front end of one trial: draws the payload, runs
/// CRC -> encode -> rate match -> BPSK/AWGN -> de-rate-match, and leaves
/// the decoder input in `mother` (and the transmitted payload in
/// `payload`). Consumes exactly the same RNG draws as the seed's
/// monolithic send_block, so trial statistics depend only on the stream.
void prepare_block(const LinkConfig& config, units::Db esn0, Rng& rng,
                   const LinkPlan& plan, LinkWorkspace& ws, Bits& payload,
                   Llrs& mother) {
  payload.clear();
  payload.reserve(config.info_bits);
  for (std::size_t i = 0; i < config.info_bits; ++i)
    payload.push_back(rng.bernoulli(0.5) ? 1 : 0);

  ws.with_crc = payload;
  ws.with_crc.reserve(plan.framed_bits);
  const std::uint32_t crc = crc24a(payload);
  for (int i = kCrcBits - 1; i >= 0; --i)
    ws.with_crc.push_back(narrow_cast<std::uint8_t>((crc >> i) & 1u));

  convolutional_encode(ws.with_crc, ws.coded);

  ws.matched.clear();
  ws.matched.reserve(plan.pattern.size());
  for (std::size_t pos : plan.pattern) ws.matched.push_back(ws.coded[pos]);

  transmit_bpsk(ws.matched, esn0, rng, ws.llrs);
  if (!config.soft_decision) {
    // Hard decision: quantise to ±1 before de-matching.
    for (double& l : ws.llrs) l = l < 0.0 ? -1.0 : 1.0;
  }
  // De-rate-match with the same pattern: punctured positions stay zero
  // (erasures), repeated positions accumulate.
  mother.assign(plan.mother_bits, 0.0);
  for (std::size_t i = 0; i < ws.llrs.size(); ++i)
    mother[plan.pattern[i]] += ws.llrs[i];
}

/// Scores one decoded block against its transmitted payload.
BlockOutcome judge_block(const Bits& payload, const Bits& info) {
  BlockOutcome outcome;
  outcome.crc_ok = check_crc(info.data(), info.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i)
    if (info[i] != payload[i]) ++errors;
  outcome.bit_errors = errors;
  outcome.payload_match = errors == 0;
  return outcome;
}

BlockOutcome send_block(const LinkConfig& config, units::Db esn0, Rng& rng,
                        const LinkPlan& plan, LinkWorkspace& ws) {
  prepare_block(config, esn0, rng, plan, ws, ws.payload, ws.mother);
  const auto& decoded = ws.viterbi.decode(ws.mother, plan.framed_bits);
  return judge_block(ws.payload, decoded.info);
}

void accumulate(LinkStats& stats, const LinkConfig& config,
                const BlockOutcome& outcome) {
  ++stats.blocks;
  stats.bits += config.info_bits;
  stats.bit_errors += outcome.bit_errors;
  if (!outcome.crc_ok) {
    ++stats.block_errors;
  } else if (!outcome.payload_match) {
    ++stats.undetected_errors;  // CRC collision: should be ~2^-24
  }
}

void merge(LinkStats& into, const LinkStats& from) {
  into.blocks += from.blocks;
  into.block_errors += from.block_errors;
  into.bit_errors += from.bit_errors;
  into.bits += from.bits;
  into.undetected_errors += from.undetected_errors;
}

}  // namespace

LinkStats run_link(const LinkConfig& config, units::Db esn0,
                   std::size_t blocks, Rng& rng, ThreadPool* pool) {
  PRAN_REQUIRE(blocks >= 1, "need at least one block");
  PRAN_REQUIRE(config.info_bits >= 8, "payload too small");
  const LinkPlan plan = make_plan(config);
  // One fork anchors all substreams; trial i draws only from stream(i), so
  // the counts below are invariant to how trials land on workers.
  const Rng base = rng.fork();

  const unsigned slots = pool ? pool->size() : 1;
  std::vector<LinkStats> partial(slots);
  std::vector<LinkWorkspace> workspaces(slots);
  // Blocks are decoded in index-contiguous groups through the batched
  // decoder. Each block still draws from stream(block index) and the
  // batched decode is bit-exact per block, so the counts are invariant to
  // the batch size, the thread count, and which worker runs a group.
  const std::size_t batch = std::max<std::size_t>(1, config.decode_batch);
  const std::size_t groups = (blocks + batch - 1) / batch;
  const auto group_trial = [&](unsigned slot, std::size_t g) {
    LinkWorkspace& ws = workspaces[slot];
    const std::size_t begin = g * batch;
    const std::size_t count = std::min(blocks - begin, batch);
    ws.batch_payloads.resize(count);
    ws.batch_mothers.resize(count);
    ws.batch_items.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      Rng trial_rng = base.stream(begin + i);
      prepare_block(config, esn0, trial_rng, plan, ws, ws.batch_payloads[i],
                    ws.batch_mothers[i]);
      ws.batch_items[i].llrs = &ws.batch_mothers[i];
    }
    ws.viterbi.decode_batch(ws.batch_items, plan.framed_bits);
    for (std::size_t i = 0; i < count; ++i)
      accumulate(partial[slot], config,
                 judge_block(ws.batch_payloads[i], ws.batch_items[i].info));
  };
  if (pool) {
    pool->for_each(groups, group_trial);
  } else {
    for (std::size_t g = 0; g < groups; ++g) group_trial(0, g);
  }

  LinkStats stats;
  for (const auto& p : partial) merge(stats, p);  // counter sums commute
  return stats;
}

bool round_trip_block(const LinkConfig& config, units::Db esn0, Rng& rng) {
  thread_local LinkWorkspace workspace;
  thread_local LinkPlan plan;
  thread_local std::size_t plan_info_bits = 0;
  thread_local double plan_rate = 0.0;
  if (plan_info_bits != config.info_bits || plan_rate != config.code_rate) {
    plan = make_plan(config);
    plan_info_bits = config.info_bits;
    plan_rate = config.code_rate;
  }
  const auto outcome = send_block(config, esn0, rng, plan, workspace);
  return outcome.crc_ok && outcome.payload_match;
}

}  // namespace pran::coding
