#pragma once

/// \file convolutional.hpp
/// The LTE control-channel convolutional code (TS 36.212 §5.1.3.1):
/// constraint length 7, rate 1/3, generators 133/171/165 (octal). We use
/// zero-tail termination (6 flush bits) rather than tail-biting — a
/// documented simplification that costs 18 overhead bits per block and
/// keeps the Viterbi decoder's start/end states known.

#include "coding/crc.hpp"

namespace pran::coding {

inline constexpr int kConstraintLength = 7;
inline constexpr int kNumStates = 1 << (kConstraintLength - 1);  // 64
inline constexpr int kCodeRateDen = 3;  ///< Mother code is rate 1/3.

/// Generator polynomials, LSB = newest bit (octal 133, 171, 165).
inline constexpr unsigned kGenerators[kCodeRateDen] = {0133, 0171, 0165};

/// Encodes `info` (any length >= 1) with zero termination. Output length is
/// 3 * (info.size() + 6) bits, interleaved g0,g1,g2 per input bit.
Bits convolutional_encode(const Bits& info);

/// Out-parameter form: clears and fills `out`, reusing its capacity —
/// allocation-free once `out` has grown (the BLER harness's per-trial
/// path).
void convolutional_encode(const Bits& info, Bits& out);

/// Number of coded bits the encoder emits for `info_bits` input bits.
constexpr std::size_t encoded_length(std::size_t info_bits) noexcept {
  return kCodeRateDen * (info_bits + kConstraintLength - 1);
}

}  // namespace pran::coding
