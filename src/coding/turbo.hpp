#pragma once

/// \file turbo.hpp
/// LTE-style turbo code: parallel concatenation of two 8-state recursive
/// systematic convolutional (RSC) encoders, g0 = 1 + D^2 + D^3 (feedback)
/// and g1 = 1 + D + D^3 (parity), joined by a quadratic permutation
/// interleaver, decoded iteratively with max-log-MAP (BCJR) constituent
/// decoders exchanging extrinsic information.
///
/// Faithfulness notes (documented substitutions):
///  * Block sizes are powers of two in [64, 8192]; the interleaver is
///    QPP-form pi(i) = (f1*i + f2*i^2) mod K with f1 odd / f2 even (a
///    permutation for power-of-two K), rather than 36.212's per-K table.
///  * Trellis termination: both encoders are driven back to state zero
///    with 3 tail steps each (12 tail bits on the wire, as in LTE).
///
/// This is the decoder whose iteration count the PHY cost model charges
/// for: E17 measures BLER versus iteration budget and the distribution of
/// iterations-to-converge (CRC-gated early termination).
///
/// The constituent max-log-MAP passes dispatch to the SIMD kernels in
/// src/coding/simd/ (scalar / AVX2 / AVX-512, picked at runtime — see
/// simd/dispatch.hpp). Two vectorization axes: decode() runs the 8 trellis
/// states of one codeblock across a vector register; decode_batch() runs
/// `lane_width` same-K codeblocks in lockstep, one float lane per block,
/// with per-lane CRC-gated early termination and lane refill. Every tier
/// is bit-exact against the scalar reference, so results never depend on
/// the host CPU.

#include <functional>
#include <span>

#include "coding/crc.hpp"
#include "coding/viterbi.hpp"  // Bits/Llrs aliases

namespace pran::coding {

/// Number of coded bits for a K-bit turbo block: systematic + 2 parity
/// streams + 12 termination bits.
constexpr std::size_t turbo_encoded_length(std::size_t k) noexcept {
  return 3 * k + 12;
}

/// True if `k` is a supported turbo block size.
bool turbo_block_size_ok(std::size_t k) noexcept;

/// QPP-form interleaver for block size `k` (power of two in [64, 8192]).
/// Returned vector maps interleaved position i -> original index pi(i).
std::vector<std::size_t> turbo_interleaver(std::size_t k);

/// Encodes `info` (size must satisfy turbo_block_size_ok). Output layout:
/// [systematic K | parity1 K | parity2 K | tail 12].
Bits turbo_encode(const Bits& info);

struct TurboResult {
  Bits info;            ///< Hard decisions after the final iteration.
  int iterations = 0;   ///< Iterations actually run.
  bool converged = false;  ///< True if the early-exit predicate fired.
};

/// One codeblock in a batched decode. The caller fills `llrs`;
/// decode_batch() fills the rest (same meaning as TurboResult —
/// `iterations` is the per-lane count actually run, so a lane that
/// early-terminates frees its slot for a pending block).
struct TurboBatchItem {
  const Llrs* llrs = nullptr;  ///< Input; length turbo_encoded_length(k).
  /// Per-block iteration budget; 0 inherits the call-wide max_iterations.
  /// A positive value overrides it, letting an overload controller give
  /// each transport block its own effort cap within one batch. A lane that
  /// reaches its budget without converging retires (and refills) exactly
  /// as if the call-wide cap had been hit.
  int max_iterations = 0;
  Bits info;                   ///< Hard decisions.
  int iterations = 0;          ///< Iterations this block used.
  bool converged = false;      ///< Early-stop predicate fired.
};

/// Occupancy accounting for one decode_batch() call.
struct TurboBatchStats {
  unsigned lane_width = 1;     ///< SIMD lanes of the tier that ran.
  std::size_t map_pass_calls = 0;  ///< Constituent passes launched.
  std::size_t lane_refills = 0;    ///< Finished lanes refilled mid-flight.
  std::size_t idle_lane_iterations = 0;  ///< Lane-iterations run empty.
  /// Blocks that hit their iteration budget without the early-stop
  /// predicate firing — the decode-side signature of an effort cap biting.
  /// Only counted when an early_stop predicate was supplied (without one,
  /// every block runs to its cap by construction).
  std::size_t budget_exhausted = 0;
};

/// Reusable max-log-MAP decoder workspace.
///
/// Holds the flat float alpha/beta/extrinsic buffers (structure-of-arrays
/// for the batched path) so repeated decodes perform zero heap allocation
/// once the buffers have grown to the largest K seen (the srsRAN `tdec_t`
/// idiom). One instance per thread: decode()/decode_batch() are not
/// reentrant, but distinct instances are fully independent — the parallel
/// BLER harness keeps one per worker slot.
class TurboDecoder {
 public:
  TurboDecoder() = default;

  /// Same contract as the free turbo_decode(); the returned reference
  /// (including `info`) aliases internal storage and is invalidated by the
  /// next decode() on this instance.
  const TurboResult& decode(const Llrs& llrs, std::size_t k,
                            int max_iterations = 8,
                            const std::function<bool(const Bits&)>&
                                early_exit = nullptr);

  /// Decodes `items` (all block size `k`) through the lane-axis batch
  /// kernels: lane_width blocks run in lockstep, one float lane each.
  /// `early_stop(item_index, hard)` is evaluated per lane after every
  /// iteration (e.g. a per-block CRC); a lane that converges — or exhausts
  /// `max_iterations` — retires and is refilled with the next pending
  /// block, so a long batch keeps the vector unit full even when most
  /// blocks terminate early. Per-item outputs are bit-identical to
  /// decode() on the same LLRs for every ISA tier.
  TurboBatchStats decode_batch(std::span<TurboBatchItem> items,
                               std::size_t k, int max_iterations = 8,
                               const std::function<bool(std::size_t,
                                                        const Bits&)>&
                                   early_stop = nullptr);

 private:
  void ensure_capacity(std::size_t k);
  void ensure_batch_capacity(std::size_t k, unsigned lanes);

  std::size_t capacity_k_ = 0;
  const std::vector<std::size_t>* pi_ = nullptr;  // cached interleaver
  std::vector<float> beta_;        // (steps+1) * 8 backward metrics
  std::vector<float> sys_, par1_, par2_, sys_int_;  // steps entries each
  std::vector<float> half_par1_, half_par2_;        // 0.5 * parity LLRs
  std::vector<float> half_sys_;    // per-iteration 0.5*(sys+apriori)
  std::vector<float> ext1_, ext2_, apriori2_, ext2_deint_;
  TurboResult result_;

  // Batched (structure-of-arrays, lane-minor) mirrors of the above;
  // entry for (step t, lane l) lives at [t * lane_width + l].
  std::size_t batch_capacity_k_ = 0;
  unsigned batch_capacity_lanes_ = 0;
  std::vector<float> bbeta_;
  std::vector<float> bsys_, bpar1_, bpar2_, bsys_int_;
  std::vector<float> bhalf_par1_, bhalf_par2_, bhalf_sys_;
  std::vector<float> bext1_, bext2_, bapriori2_, bext2_deint_;
  std::vector<std::size_t> lane_item_;
  std::vector<int> lane_iter_;
  std::vector<std::uint8_t> lane_active_;
};

/// Decodes `llrs` (length turbo_encoded_length(k), same layout as the
/// encoder output; sign convention log(P0/P1)). Runs up to
/// `max_iterations` full iterations; if `early_exit` is non-null it is
/// called with the current hard decision after each iteration and decoding
/// stops once it returns true (e.g. a CRC check — how real decoders save
/// most of their iterations at good SNR).
///
/// Thin wrapper over a thread-local TurboDecoder workspace: repeated calls
/// from one thread reuse the same buffers and pay no allocation beyond the
/// returned copy.
TurboResult turbo_decode(const Llrs& llrs, std::size_t k,
                         int max_iterations = 8,
                         const std::function<bool(const Bits&)>& early_exit =
                             nullptr);

/// Batched counterpart of turbo_decode(), on the same thread-local
/// workspace. See TurboDecoder::decode_batch.
TurboBatchStats turbo_decode_batch(std::span<TurboBatchItem> items,
                                   std::size_t k, int max_iterations = 8,
                                   const std::function<bool(std::size_t,
                                                            const Bits&)>&
                                       early_stop = nullptr);

}  // namespace pran::coding
