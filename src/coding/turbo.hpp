#pragma once

/// \file turbo.hpp
/// LTE-style turbo code: parallel concatenation of two 8-state recursive
/// systematic convolutional (RSC) encoders, g0 = 1 + D^2 + D^3 (feedback)
/// and g1 = 1 + D + D^3 (parity), joined by a quadratic permutation
/// interleaver, decoded iteratively with max-log-MAP (BCJR) constituent
/// decoders exchanging extrinsic information.
///
/// Faithfulness notes (documented substitutions):
///  * Block sizes are powers of two in [64, 8192]; the interleaver is
///    QPP-form pi(i) = (f1*i + f2*i^2) mod K with f1 odd / f2 even (a
///    permutation for power-of-two K), rather than 36.212's per-K table.
///  * Trellis termination: both encoders are driven back to state zero
///    with 3 tail steps each (12 tail bits on the wire, as in LTE).
///
/// This is the decoder whose iteration count the PHY cost model charges
/// for: E17 measures BLER versus iteration budget and the distribution of
/// iterations-to-converge (CRC-gated early termination).

#include <functional>

#include "coding/crc.hpp"
#include "coding/viterbi.hpp"  // Bits/Llrs aliases

namespace pran::coding {

/// Number of coded bits for a K-bit turbo block: systematic + 2 parity
/// streams + 12 termination bits.
constexpr std::size_t turbo_encoded_length(std::size_t k) noexcept {
  return 3 * k + 12;
}

/// True if `k` is a supported turbo block size.
bool turbo_block_size_ok(std::size_t k) noexcept;

/// QPP-form interleaver for block size `k` (power of two in [64, 8192]).
/// Returned vector maps interleaved position i -> original index pi(i).
std::vector<std::size_t> turbo_interleaver(std::size_t k);

/// Encodes `info` (size must satisfy turbo_block_size_ok). Output layout:
/// [systematic K | parity1 K | parity2 K | tail 12].
Bits turbo_encode(const Bits& info);

struct TurboResult {
  Bits info;            ///< Hard decisions after the final iteration.
  int iterations = 0;   ///< Iterations actually run.
  bool converged = false;  ///< True if the early-exit predicate fired.
};

/// Reusable max-log-MAP decoder workspace.
///
/// Holds the flat float alpha/beta/extrinsic buffers and the precomputed
/// 8-state trellis the BCJR recursions walk, so repeated decodes perform
/// zero heap allocation once the buffers have grown to the largest K seen
/// (the srsRAN `tdec_t` idiom). One instance per thread: decode() is not
/// reentrant, but distinct instances are fully independent — the parallel
/// BLER harness keeps one per worker slot.
class TurboDecoder {
 public:
  TurboDecoder() = default;

  /// Same contract as the free turbo_decode(); the returned reference
  /// (including `info`) aliases internal storage and is invalidated by the
  /// next decode() on this instance.
  const TurboResult& decode(const Llrs& llrs, std::size_t k,
                            int max_iterations = 8,
                            const std::function<bool(const Bits&)>&
                                early_exit = nullptr);

 private:
  void ensure_capacity(std::size_t k);
  /// One constituent max-log-MAP pass; see turbo.cpp for buffer layout.
  void map_pass(const float* half_sys_apriori, const float* half_parity,
                const float* sys, const float* apriori, std::size_t k,
                float* extrinsic);

  std::size_t capacity_k_ = 0;
  const std::vector<std::size_t>* pi_ = nullptr;  // cached interleaver
  std::vector<float> beta_;        // (steps+1) * 8 backward metrics
  std::vector<float> sys_, par1_, par2_, sys_int_;  // steps entries each
  std::vector<float> half_par1_, half_par2_;        // 0.5 * parity LLRs
  std::vector<float> half_sys_;    // per-iteration 0.5*(sys+apriori)
  std::vector<float> ext1_, ext2_, apriori2_, ext2_deint_;
  TurboResult result_;
};

/// Decodes `llrs` (length turbo_encoded_length(k), same layout as the
/// encoder output; sign convention log(P0/P1)). Runs up to
/// `max_iterations` full iterations; if `early_exit` is non-null it is
/// called with the current hard decision after each iteration and decoding
/// stops once it returns true (e.g. a CRC check — how real decoders save
/// most of their iterations at good SNR).
///
/// Thin wrapper over a thread-local TurboDecoder workspace: repeated calls
/// from one thread reuse the same buffers and pay no allocation beyond the
/// returned copy.
TurboResult turbo_decode(const Llrs& llrs, std::size_t k,
                         int max_iterations = 8,
                         const std::function<bool(const Bits&)>& early_exit =
                             nullptr);

}  // namespace pran::coding
