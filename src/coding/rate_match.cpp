#include "coding/rate_match.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::coding {

std::vector<std::size_t> rate_match_pattern(std::size_t input_bits,
                                            std::size_t output_bits) {
  PRAN_REQUIRE(input_bits >= 1 && output_bits >= 1,
               "pattern needs non-empty input and output");
  std::vector<std::size_t> pattern;
  pattern.reserve(output_bits);
  if (output_bits <= input_bits) {
    // Even puncturing: keep positions floor(i * in / out), all distinct.
    for (std::size_t i = 0; i < output_bits; ++i)
      pattern.push_back(i * input_bits / output_bits);
  } else {
    // Repetition: cycle through the mother codeword.
    for (std::size_t i = 0; i < output_bits; ++i)
      pattern.push_back(i % input_bits);
  }
  return pattern;
}

Bits rate_match(const Bits& coded, std::size_t output_bits) {
  const auto pattern = rate_match_pattern(coded.size(), output_bits);
  Bits out;
  out.reserve(output_bits);
  for (std::size_t pos : pattern) out.push_back(coded[pos]);
  return out;
}

Llrs rate_dematch(const Llrs& received, std::size_t mother_bits) {
  PRAN_REQUIRE(mother_bits >= 1, "mother codeword must be non-empty");
  const auto pattern = rate_match_pattern(mother_bits, received.size());
  Llrs out(mother_bits, 0.0);
  for (std::size_t i = 0; i < received.size(); ++i)
    out[pattern[i]] += received[i];
  return out;
}

double effective_rate(std::size_t info_bits, std::size_t output_bits) {
  PRAN_REQUIRE(info_bits >= 1 && output_bits >= 1,
               "rate needs non-empty input and output");
  return static_cast<double>(info_bits) / static_cast<double>(output_bits);
}

std::size_t output_bits_for_rate(std::size_t info_bits, double rate) {
  PRAN_REQUIRE(info_bits >= 1, "need at least one information bit");
  PRAN_REQUIRE(rate > 0.0 && rate < 1.0, "code rate outside (0, 1)");
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(info_bits) / rate));
}

}  // namespace pran::coding
