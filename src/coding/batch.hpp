#pragma once

/// \file batch.hpp
/// Same-K aggregation for the batched turbo decoder.
///
/// A subframe's decode work arrives as codeblocks of mixed sizes — several
/// transport blocks, each segmented into codeblocks, across UEs. The
/// lane-lockstep kernels need same-K groups, so this collector buckets
/// enqueued blocks by K (the 8 supported power-of-two sizes) and flushes
/// each bucket through TurboDecoder::decode_batch. Blocks from different
/// UEs/TBs that share a K ride the same vector registers; per-block CRC
/// early termination still applies lane by lane via the tag-aware
/// predicate.
///
/// Grouping is purely positional (FIFO within each K bucket), so results
/// are independent of thread count and of which UE contributed a block —
/// the determinism contract the E14/E17 sweeps rely on.

#include <cstddef>
#include <functional>
#include <vector>

#include "coding/turbo.hpp"

namespace pran::coding {

/// One decoded codeblock, handed back with the caller's tag.
struct TurboBatchResult {
  std::size_t tag = 0;     ///< Caller-supplied identity (e.g. UE/TB/CB).
  Bits info;               ///< Hard decisions.
  int iterations = 0;      ///< Iterations this block used.
  bool converged = false;  ///< Early-stop predicate fired.
};

/// Buckets codeblocks by K and flushes each bucket through decode_batch.
/// Reusable: flush() clears the buckets but keeps their capacity.
class TurboBatchCollector {
 public:
  /// Enqueues one codeblock. `llrs` must stay alive until flush();
  /// `k` must satisfy turbo_block_size_ok.
  void add(const Llrs& llrs, std::size_t k, std::size_t tag);

  /// Number of blocks currently enqueued.
  std::size_t pending() const noexcept;

  /// Decodes every enqueued block grouped by K (ascending K, FIFO within
  /// a group) and appends results to `out`. `early_stop`, if non-null, is
  /// called with the block's tag and current hard decision after each
  /// iteration. Returns lane-occupancy stats aggregated over the groups.
  TurboBatchStats flush(TurboDecoder& decoder, std::vector<TurboBatchResult>& out,
                        int max_iterations = 8,
                        const std::function<bool(std::size_t,
                                                 const Bits&)>& early_stop =
                            nullptr);

 private:
  struct Pending {
    const Llrs* llrs;
    std::size_t tag;
  };
  // Slot = countr_zero(k) - 6: the 8 supported K, 64 .. 8192.
  std::vector<Pending> buckets_[8];
  std::vector<TurboBatchItem> items_;  // flush scratch
};

}  // namespace pran::coding
