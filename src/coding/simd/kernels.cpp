// Kernel dispatch tables. Compiled with baseline flags — this TU only
// takes addresses of the per-ISA entry points, it never executes vector
// code, so it is safe on any CPU regardless of which kernel TUs were
// built. The PRAN_HAVE_* macros mirror which kernel TUs exist.

#include "coding/simd/turbo_kernels.hpp"
#include "coding/simd/viterbi_kernels.hpp"

#include "common/check.hpp"

namespace pran::coding::simd {
namespace {

constexpr TurboKernels kTurboScalar{turbo_map_pass_scalar,
                                    turbo_batch_map_pass_scalar,
                                    kTurboScalarLanes, "scalar"};
constexpr ViterbiKernels kViterbiScalar{viterbi_forward_scalar, "scalar"};

#if defined(PRAN_HAVE_AVX2)
constexpr TurboKernels kTurboAvx2{turbo_map_pass_avx2,
                                  turbo_batch_map_pass_avx2,
                                  kTurboAvx2Lanes, "avx2"};
constexpr ViterbiKernels kViterbiAvx2{viterbi_forward_avx2, "avx2"};
#endif

#if defined(PRAN_HAVE_AVX512) && defined(PRAN_HAVE_AVX2)
// The trellis is only 8 states wide, so a single-block zmm state-axis
// pass cannot fill the register — the AVX-512 tier pairs the AVX2
// state-axis map_pass with the 16-lane AVX-512 batch pass.
constexpr TurboKernels kTurboAvx512{turbo_map_pass_avx2,
                                    turbo_batch_map_pass_avx512,
                                    kTurboAvx512Lanes, "avx512"};
constexpr ViterbiKernels kViterbiAvx512{viterbi_forward_avx512, "avx512"};
#endif

}  // namespace

const TurboKernels& turbo_kernels(Isa isa) {
  PRAN_REQUIRE(isa_available(isa), "turbo_kernels: ISA not available");
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kAvx2:
#if defined(PRAN_HAVE_AVX2)
      return kTurboAvx2;
#else
      break;
#endif
    case Isa::kAvx512:
#if defined(PRAN_HAVE_AVX512) && defined(PRAN_HAVE_AVX2)
      return kTurboAvx512;
#else
      break;
#endif
  }
  return kTurboScalar;
}

const ViterbiKernels& viterbi_kernels(Isa isa) {
  PRAN_REQUIRE(isa_available(isa), "viterbi_kernels: ISA not available");
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kAvx2:
#if defined(PRAN_HAVE_AVX2)
      return kViterbiAvx2;
#else
      break;
#endif
    case Isa::kAvx512:
#if defined(PRAN_HAVE_AVX512) && defined(PRAN_HAVE_AVX2)
      return kViterbiAvx512;
#else
      break;
#endif
  }
  return kViterbiScalar;
}

}  // namespace pran::coding::simd
