#pragma once

/// \file viterbi_kernels.hpp
/// The dispatchable Viterbi kernel surface: the 64-state
/// add-compare-select forward sweep, which is >95% of decode time.
///
/// Contract (identical across ISAs, bit-exact per the same no-FMA /
/// same-order rules as the turbo kernels — see turbo_kernels.hpp):
///
///  * `llrs` holds kCodeRateDen doubles per trellis step.
///  * `metric` and `next_metric` are caller-owned scratch of
///    kNumStates + kViterbiMetricPad floats each (the pad lets the SIMD
///    paths over-read when splatting predecessor metrics). On entry
///    `metric` carries the initial path metrics (state 0 = 0, rest
///    -inf); on return it carries the final metrics — the kernel copies
///    back if its internal ping-pong ends on the other buffer.
///  * `decisions` is a bitmask matrix of 8 bytes (kNumStates bits) per
///    step: bit (ns & 7) of byte (t * 8 + (ns >> 3)) is 1 iff state ns's
///    winning predecessor at step t is (ns >> 1) | 32. Ties keep the low
///    predecessor, exactly as the scalar branch-by-branch formulation.
///
/// The Viterbi batch API loops this kernel per block rather than running
/// lanes in lockstep: with 64 trellis states the state axis already fills
/// a ymm/zmm, so a lane axis would add bookkeeping without widening the
/// useful vector occupancy (unlike turbo, whose trellis is only 8 wide).

#include <cstddef>
#include <cstdint>

#include "coding/simd/dispatch.hpp"

namespace pran::coding::simd {

/// Scratch padding past kNumStates so SIMD predecessor splats may
/// over-read (never over-write).
inline constexpr std::size_t kViterbiMetricPad = 16;

using ViterbiForwardFn = void (*)(const double* llrs,
                                  std::size_t total_steps, float* metric,
                                  float* next_metric,
                                  std::uint8_t* decisions);

struct ViterbiKernels {
  ViterbiForwardFn forward = nullptr;
  const char* name = "?";
};

/// Kernel table for `isa`; requires isa_available(isa).
const ViterbiKernels& viterbi_kernels(Isa isa);

// Per-ISA entry points (defined in viterbi_kernels_<isa>.cpp).
void viterbi_forward_scalar(const double* llrs, std::size_t total_steps,
                            float* metric, float* next_metric,
                            std::uint8_t* decisions);
#if defined(PRAN_HAVE_AVX2)
void viterbi_forward_avx2(const double* llrs, std::size_t total_steps,
                          float* metric, float* next_metric,
                          std::uint8_t* decisions);
#endif
#if defined(PRAN_HAVE_AVX512)
void viterbi_forward_avx512(const double* llrs, std::size_t total_steps,
                            float* metric, float* next_metric,
                            std::uint8_t* decisions);
#endif

}  // namespace pran::coding::simd
