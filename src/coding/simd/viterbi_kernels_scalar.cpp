// Scalar Viterbi ACS forward sweep — the golden reference for the SIMD
// tiers. Portable baseline flags only; same ordering caveats as
// turbo_kernels_scalar.cpp.

#include "coding/simd/viterbi_kernels.hpp"

#include <cstring>
#include <limits>
#include <utility>

#include "coding/simd/viterbi_tables.hpp"
#include "common/narrow.hpp"

namespace pran::coding::simd {
namespace {
constexpr float kNegInfF = -std::numeric_limits<float>::infinity();
}  // namespace

void viterbi_forward_scalar(const double* llrs, std::size_t total_steps,
                            float* metric, float* next_metric,
                            std::uint8_t* decisions) {
  float* cur = metric;
  float* nxt = next_metric;
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double* llr = llrs + kCodeRateDen * t;
    // The 8 possible branch metrics for this step, indexed by the
    // generator-output pattern (accumulated in generator order, matching
    // the per-branch sum).
    const auto l0 = static_cast<float>(llr[0]);
    const auto l1 = static_cast<float>(llr[1]);
    const auto l2 = static_cast<float>(llr[2]);
    float combo[8];
    for (int p = 0; p < 8; ++p)
      combo[p] = ((p & 1) ? -l0 : l0) + ((p & 2) ? -l1 : l1) +
                 ((p & 4) ? -l2 : l2);

    // Every next state receives exactly two candidates, so `nxt` needs no
    // -inf prefill — each entry is assigned exactly once below.
    std::uint8_t* decision = decisions + t * (kNumStates / 8);
    for (int group = 0; group < kNumStates / 8; ++group) {
      unsigned bits = 0;
      for (int lane = 0; lane < 8; ++lane) {
        const int ns = group * 8 + lane;
        const int p0 = ns >> 1;
        const int p1 = (ns >> 1) | (kNumStates >> 1);
        const float c0 = cur[p0] + combo[viterbi_pattern_lo(ns)];
        const float c1 = cur[p1] + combo[viterbi_pattern_hi(ns)];
        // Ties go to predecessor 0, as in the branch-by-branch
        // formulation.
        const bool pick1 = c1 > c0;
        nxt[ns] = pick1 ? c1 : c0;
        bits |= (pick1 ? 1u : 0u) << lane;
      }
      decision[group] = narrow_cast<std::uint8_t>(bits);
    }
    std::swap(cur, nxt);
  }
  if (cur != metric)
    std::memcpy(metric, cur, kNumStates * sizeof(float));
}

}  // namespace pran::coding::simd
