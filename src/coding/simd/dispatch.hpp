#pragma once

/// \file dispatch.hpp
/// Runtime ISA selection for the decoder kernels in src/coding/simd/.
///
/// The coding library ships one scalar and (when the compiler supports the
/// flags) one AVX2 and one AVX-512 build of each hot kernel, compiled in
/// separate translation units with per-file -m options — the rest of the
/// tree keeps the portable baseline flags. At startup the best ISA the CPU
/// supports is picked once via CPUID; the environment variable
///
///   PRAN_SIMD=scalar|avx2|avx512
///
/// overrides the choice downward for testing (a request the CPU or build
/// cannot honour silently falls back to the best supported tier — benches
/// print the active ISA so the substitution is visible). Tests may also
/// pin the ISA programmatically with force_isa().
///
/// Intrinsics are confined to this directory by the pran-lint
/// `raw-intrinsics` rule: everything outside src/coding/simd/ talks to the
/// kernels through the function-pointer tables in turbo_kernels.hpp /
/// viterbi_kernels.hpp.

namespace pran::coding::simd {

enum class Isa {
  kScalar,  ///< Portable C++; the golden reference the others must match.
  kAvx2,    ///< 8-lane float vectors (ymm).
  kAvx512,  ///< 16-lane float vectors (zmm); requires F+BW+VL+DQ.
};

/// Stable lower-case name ("scalar", "avx2", "avx512") for tables/JSON.
const char* isa_name(Isa isa) noexcept;

/// True if this binary carries kernels for `isa` *and* the CPU can run
/// them (scalar is always available).
bool isa_available(Isa isa) noexcept;

/// The ISA every decode uses: the best available tier, downgraded by a
/// PRAN_SIMD override or a force_isa() call. Cheap (one relaxed load).
Isa active_isa() noexcept;

/// Pins the active ISA — the testing hook behind the golden-equivalence
/// suite. Requires isa_available(isa). Not thread-safe against concurrent
/// decodes; call it between decodes (tests and bench setup only).
void force_isa(Isa isa);

/// Drops a force_isa() pin and re-applies detection + PRAN_SIMD.
void reset_forced_isa();

/// Parses "scalar"/"avx2"/"avx512" (as PRAN_SIMD uses). Returns true and
/// writes `out` on success; unknown strings return false.
bool parse_isa(const char* text, Isa& out) noexcept;

}  // namespace pran::coding::simd
