#pragma once

/// \file turbo_trellis.hpp
/// The 8-state RSC trellis shared by the turbo encoder, the scalar
/// max-log-MAP reference, and every SIMD kernel: next state and parity per
/// (state, input) plus the forced termination input per state, all
/// computed at compile time. Plain C++ on purpose — the intrinsics live in
/// the per-ISA kernel TUs; this header only carries the tables they index.

#include <cstdint>

#include "common/narrow.hpp"

namespace pran::coding::simd {

inline constexpr int kTurboStates = 8;
inline constexpr int kTurboTailSteps = 3;

/// One RSC step: feedback bit w (= next input to the shift register),
/// parity bit z, next state. g0 = 1 + D^2 + D^3 (feedback),
/// g1 = 1 + D + D^3 (parity).
struct RscStep {
  unsigned w;
  unsigned z;
  unsigned next;
};

constexpr RscStep rsc_step(unsigned state, unsigned u) {
  const unsigned w1 = state & 1u;         // w_{t-1}
  const unsigned w2 = (state >> 1) & 1u;  // w_{t-2}
  const unsigned w3 = (state >> 2) & 1u;  // w_{t-3}
  const unsigned w = u ^ w2 ^ w3;         // feedback g0 = 1 + D^2 + D^3
  const unsigned z = w ^ w1 ^ w3;         // parity  g1 = 1 + D + D^3
  const unsigned next = ((state << 1) | w) & 7u;
  return RscStep{w, z, next};
}

/// Input that drives the register toward zero (termination).
constexpr unsigned rsc_termination_input(unsigned state) {
  const unsigned w2 = (state >> 1) & 1u;
  const unsigned w3 = (state >> 2) & 1u;
  return w2 ^ w3;  // makes w = 0
}

struct TurboTrellis {
  std::uint8_t next[kTurboStates][2];
  std::uint8_t parity[kTurboStates][2];
  std::uint8_t term[kTurboStates];
};

constexpr TurboTrellis build_turbo_trellis() {
  TurboTrellis t{};
  for (unsigned s = 0; s < kTurboStates; ++s) {
    for (unsigned u = 0; u < 2; ++u) {
      const auto step = rsc_step(s, u);
      t.next[s][u] = narrow_cast<std::uint8_t>(step.next);
      t.parity[s][u] = narrow_cast<std::uint8_t>(step.z);
    }
    t.term[s] = narrow_cast<std::uint8_t>(rsc_termination_input(s));
  }
  return t;
}

inline constexpr TurboTrellis kTurboTrellis = build_turbo_trellis();

/// Predecessor view of the same trellis, used by the state-axis SIMD
/// forward pass: state `ns` is reached from pred_lo[ns] = ns >> 1 and
/// pred_hi[ns] = (ns >> 1) | 4; pred_*_input is the input bit driven on
/// that branch.
struct TurboTrellisPred {
  std::uint8_t pred_lo[kTurboStates];
  std::uint8_t pred_hi[kTurboStates];
  std::uint8_t pred_lo_input[kTurboStates];
  std::uint8_t pred_hi_input[kTurboStates];
};

constexpr TurboTrellisPred build_turbo_trellis_pred() {
  TurboTrellisPred p{};
  for (unsigned ns = 0; ns < kTurboStates; ++ns) {
    const unsigned lo = ns >> 1;
    const unsigned hi = (ns >> 1) | 4u;
    p.pred_lo[ns] = narrow_cast<std::uint8_t>(lo);
    p.pred_hi[ns] = narrow_cast<std::uint8_t>(hi);
    // The branch (s, u) lands on ns iff next[s][u] == ns; each of lo/hi
    // has exactly one such input.
    p.pred_lo_input[ns] =
        kTurboTrellis.next[lo][0] == ns ? std::uint8_t{0} : std::uint8_t{1};
    p.pred_hi_input[ns] =
        kTurboTrellis.next[hi][0] == ns ? std::uint8_t{0} : std::uint8_t{1};
  }
  return p;
}

inline constexpr TurboTrellisPred kTurboTrellisPred =
    build_turbo_trellis_pred();

}  // namespace pran::coding::simd
