// AVX-512 turbo batch kernel: 16 same-K codeblocks in lockstep, one zmm
// float lane per block. Compiled with -mavx512f/bw/vl/dq only (no FMA use
// in the kernel; see the equivalence contract in turbo_kernels.hpp).
//
// There is deliberately no AVX-512 single-block state-axis kernel: the
// trellis is 8 states wide, so the state axis can never fill a zmm — the
// dispatch table pairs the AVX2 state-axis pass with this 16-lane batch
// pass instead.

#include <immintrin.h>

#include "coding/simd/turbo_batch_impl.hpp"
#include "coding/simd/turbo_kernels.hpp"

namespace pran::coding::simd {
namespace {

struct OpsAvx512 {
  using V = __m512;
  static constexpr std::size_t kLanes = 16;
  static V load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, V v) { _mm512_storeu_ps(p, v); }
  static V add(V a, V b) { return _mm512_add_ps(a, b); }
  static V sub(V a, V b) { return _mm512_sub_ps(a, b); }
  static V max(V a, V b) { return _mm512_max_ps(a, b); }
  static V neg(V a) {
    return _mm512_castsi512_ps(_mm512_xor_si512(
        _mm512_castps_si512(a), _mm512_set1_epi32(INT32_MIN)));
  }
  static V broadcast(float x) { return _mm512_set1_ps(x); }
};

}  // namespace

void turbo_batch_map_pass_avx512(const float* half_sys_apriori,
                                 const float* half_parity, const float* sys,
                                 const float* apriori, std::size_t k,
                                 float* beta, float* extrinsic) {
  turbo_batch_map_pass_impl<OpsAvx512>(half_sys_apriori, half_parity, sys,
                                       apriori, k, beta, extrinsic);
}

}  // namespace pran::coding::simd
