#pragma once

/// \file turbo_kernels.hpp
/// The dispatchable turbo-decoder kernel surface.
///
/// Two kernels per ISA, covering the two vectorization axes:
///
///  * `map_pass` — one max-log-MAP constituent pass over a single
///    codeblock, vectorized across the 8 trellis states (AVX2: one ymm
///    register holds a whole alpha/beta row). Buffer contract matches the
///    original scalar TurboDecoder::map_pass: `half_sys_apriori[t]` is
///    0.5*(systematic + a-priori) for trellis step t (tail steps carry
///    0.5*tail_sys), `half_parity[t]` is 0.5*parity; `sys`/`apriori` are
///    the unsummed K-entry inputs the extrinsic subtracts back out.
///    `beta` is caller-provided scratch of (k + 3 + 1) * 8 floats. Writes
///    K extrinsic LLRs.
///
///  * `batch_map_pass` — the same pass over `lane_width` same-K
///    codeblocks in lockstep, vectorized across codeblocks. Every array
///    is structure-of-arrays with the lane as the minor axis: entry for
///    (step t, lane l) lives at [t * lane_width + l]. `beta` scratch is
///    (k + 3 + 1) * 8 * lane_width floats. Lanes are fully independent:
///    lane l's outputs are bit-identical to a single-block scalar decode
///    of lane l's inputs (the kernels use only per-lane add/max in the
///    scalar evaluation order — no FMA contraction, no reassociation), so
///    the golden-equivalence suite can assert exact equality.
///
/// Kernel TUs are compiled with per-file -m flags (see
/// src/coding/CMakeLists.txt); callers must go through turbo_kernels()
/// so a binary built with AVX-512 TUs still runs on a plain SSE machine.

#include <cstddef>

#include "coding/simd/dispatch.hpp"

namespace pran::coding::simd {

using TurboMapPassFn = void (*)(const float* half_sys_apriori,
                                const float* half_parity, const float* sys,
                                const float* apriori, std::size_t k,
                                float* beta, float* extrinsic);

struct TurboKernels {
  TurboMapPassFn map_pass = nullptr;
  TurboMapPassFn batch_map_pass = nullptr;
  unsigned lane_width = 1;  ///< Codeblocks batch_map_pass runs in lockstep.
  const char* name = "?";
};

/// Kernel table for `isa`; requires isa_available(isa).
const TurboKernels& turbo_kernels(Isa isa);

// Per-ISA entry points (defined in turbo_kernels_<isa>.cpp).
void turbo_map_pass_scalar(const float* half_sys_apriori,
                           const float* half_parity, const float* sys,
                           const float* apriori, std::size_t k, float* beta,
                           float* extrinsic);
void turbo_batch_map_pass_scalar(const float* half_sys_apriori,
                                 const float* half_parity, const float* sys,
                                 const float* apriori, std::size_t k,
                                 float* beta, float* extrinsic);
inline constexpr unsigned kTurboScalarLanes = 1;

#if defined(PRAN_HAVE_AVX2)
void turbo_map_pass_avx2(const float* half_sys_apriori,
                         const float* half_parity, const float* sys,
                         const float* apriori, std::size_t k, float* beta,
                         float* extrinsic);
void turbo_batch_map_pass_avx2(const float* half_sys_apriori,
                               const float* half_parity, const float* sys,
                               const float* apriori, std::size_t k,
                               float* beta, float* extrinsic);
inline constexpr unsigned kTurboAvx2Lanes = 8;
#endif

#if defined(PRAN_HAVE_AVX512)
void turbo_batch_map_pass_avx512(const float* half_sys_apriori,
                                 const float* half_parity, const float* sys,
                                 const float* apriori, std::size_t k,
                                 float* beta, float* extrinsic);
inline constexpr unsigned kTurboAvx512Lanes = 16;
#endif

}  // namespace pran::coding::simd
