// AVX2 Viterbi ACS forward sweep. Compiled with -mavx2 only (no -mfma).
//
// Vectorized across the 64 trellis states: each step processes 8
// consecutive next states per ymm. The butterfly structure makes the
// gather free — next states 8g..8g+7 share low predecessors 4g..4g+3
// (each used twice) and high predecessors 32+4g..32+4g+3, so one
// unaligned load plus an in-register duplication permute fetches all 8
// predecessor metrics.
//
// The compare-and-blend (not vmaxps) preserves the scalar tie rule:
// pick1 = c1 > c0, ties keep the low predecessor. Every lane performs
// cur[p] + combo[pattern] in scalar order, so metrics, decisions, and the
// traceback are bit-identical to viterbi_forward_scalar.

#include <immintrin.h>

#include <cstring>
#include <utility>

#include "coding/simd/viterbi_kernels.hpp"
#include "coding/simd/viterbi_tables.hpp"
#include "common/narrow.hpp"

namespace pran::coding::simd {

void viterbi_forward_avx2(const double* llrs, std::size_t total_steps,
                          float* metric, float* next_metric,
                          std::uint8_t* decisions) {
  // Duplicate lanes 0..3 of a load: predecessor p = base + (lane >> 1).
  const __m256i dup_idx = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
  // Combo-table gather indices per group of 8 next states.
  __m256i patt_lo[kNumStates / 8];
  __m256i patt_hi[kNumStates / 8];
  for (int g = 0; g < kNumStates / 8; ++g) {
    const int ns = g * 8;
    patt_lo[g] = _mm256_setr_epi32(
        viterbi_pattern_lo(ns + 0), viterbi_pattern_lo(ns + 1),
        viterbi_pattern_lo(ns + 2), viterbi_pattern_lo(ns + 3),
        viterbi_pattern_lo(ns + 4), viterbi_pattern_lo(ns + 5),
        viterbi_pattern_lo(ns + 6), viterbi_pattern_lo(ns + 7));
    patt_hi[g] = _mm256_setr_epi32(
        viterbi_pattern_hi(ns + 0), viterbi_pattern_hi(ns + 1),
        viterbi_pattern_hi(ns + 2), viterbi_pattern_hi(ns + 3),
        viterbi_pattern_hi(ns + 4), viterbi_pattern_hi(ns + 5),
        viterbi_pattern_hi(ns + 6), viterbi_pattern_hi(ns + 7));
  }

  float* cur = metric;
  float* nxt = next_metric;
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double* llr = llrs + kCodeRateDen * t;
    const auto l0 = static_cast<float>(llr[0]);
    const auto l1 = static_cast<float>(llr[1]);
    const auto l2 = static_cast<float>(llr[2]);
    alignas(32) float combo[8];
    for (int p = 0; p < 8; ++p)
      combo[p] = ((p & 1) ? -l0 : l0) + ((p & 2) ? -l1 : l1) +
                 ((p & 4) ? -l2 : l2);
    const __m256 combo_v = _mm256_load_ps(combo);

    std::uint8_t* decision = decisions + t * (kNumStates / 8);
    for (int g = 0; g < kNumStates / 8; ++g) {
      // Loads may run past the 4 metrics actually used (up to cur+67 for
      // g=7); kViterbiMetricPad covers the over-read.
      const __m256 m_p0 = _mm256_permutevar8x32_ps(
          _mm256_loadu_ps(cur + 4 * g), dup_idx);
      const __m256 m_p1 = _mm256_permutevar8x32_ps(
          _mm256_loadu_ps(cur + (kNumStates / 2) + 4 * g), dup_idx);
      const __m256 c0 = _mm256_add_ps(
          m_p0, _mm256_permutevar8x32_ps(combo_v, patt_lo[g]));
      const __m256 c1 = _mm256_add_ps(
          m_p1, _mm256_permutevar8x32_ps(combo_v, patt_hi[g]));
      const __m256 pick = _mm256_cmp_ps(c1, c0, _CMP_GT_OQ);
      _mm256_storeu_ps(nxt + 8 * g, _mm256_blendv_ps(c0, c1, pick));
      decision[g] = narrow_cast<std::uint8_t>(_mm256_movemask_ps(pick));
    }
    std::swap(cur, nxt);
  }
  if (cur != metric)
    std::memcpy(metric, cur, kNumStates * sizeof(float));
}

}  // namespace pran::coding::simd
