#include "coding/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace pran::coding::simd {
namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

bool built_with(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(PRAN_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(PRAN_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Detection + PRAN_SIMD, evaluated once. The override can only select an
/// available tier; anything else degrades to the best the CPU/build offers.
Isa detect_active() noexcept {
  Isa best = Isa::kScalar;
  if (isa_available(Isa::kAvx2)) best = Isa::kAvx2;
  if (isa_available(Isa::kAvx512)) best = Isa::kAvx512;
  const char* env = std::getenv("PRAN_SIMD");
  Isa requested;
  if (env != nullptr && parse_isa(env, requested) &&
      isa_available(requested))
    return requested;
  return best;
}

std::atomic<int>& forced_slot() noexcept {
  // pran-lint: allow(determinism-hazard) -- test-only force_isa() hook;
  // production code never writes it, and the golden-equivalence suite
  // proves every ISA tier decodes bit-identically, so the selected tier
  // cannot change results.
  static std::atomic<int> forced{-1};  // -1 = not forced
  return forced;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "?";
}

bool isa_available(Isa isa) noexcept {
  if (!built_with(isa)) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return cpu_has_avx2();
    case Isa::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

Isa active_isa() noexcept {
  const int forced = forced_slot().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa detected = detect_active();
  return detected;
}

void force_isa(Isa isa) {
  PRAN_REQUIRE(isa_available(isa),
               "force_isa: requested ISA is not available on this "
               "CPU/build");
  forced_slot().store(static_cast<int>(isa), std::memory_order_relaxed);
}

void reset_forced_isa() {
  forced_slot().store(-1, std::memory_order_relaxed);
}

bool parse_isa(const char* text, Isa& out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(text, "avx512") == 0) {
    out = Isa::kAvx512;
    return true;
  }
  return false;
}

}  // namespace pran::coding::simd
