// AVX2 turbo kernels. Compiled with -mavx2 only (no -mfma: the
// equivalence contract forbids contraction). Two kernels:
//
//  * turbo_map_pass_avx2 — state-axis vectorization: one ymm register
//    holds a whole 8-state alpha/beta row, the trellis wiring becomes
//    compile-time permutes (_mm256_permutevar8x32_ps) and the parity sign
//    flips become XORs on the IEEE sign bit. Bit-identical to the scalar
//    pass: same add/max order per state, and the horizontal best0/best1
//    reductions only reassociate max, which is exact.
//
//  * turbo_batch_map_pass_avx2 — lane-axis vectorization: 8 same-K
//    codeblocks in lockstep, one float lane per block (see
//    turbo_batch_impl.hpp).

#include <immintrin.h>

#include "coding/simd/turbo_batch_impl.hpp"
#include "coding/simd/turbo_kernels.hpp"
#include "coding/simd/turbo_trellis.hpp"

namespace pran::coding::simd {
namespace {

constexpr float kNegInfF = -__builtin_inff();

/// _mm256_blend_ps immediate selecting lane ns from the second operand
/// where input[ns] is 1.
constexpr int blend_imm(const std::uint8_t (&inputs)[kTurboStates]) {
  int imm = 0;
  for (int ns = 0; ns < kTurboStates; ++ns)
    if (inputs[ns]) imm |= 1 << ns;
  return imm;
}

constexpr int kPredLoBlend = blend_imm(kTurboTrellisPred.pred_lo_input);
constexpr int kPredHiBlend = blend_imm(kTurboTrellisPred.pred_hi_input);

inline __m256i next_index(unsigned u) {
  return _mm256_setr_epi32(
      kTurboTrellis.next[0][u], kTurboTrellis.next[1][u],
      kTurboTrellis.next[2][u], kTurboTrellis.next[3][u],
      kTurboTrellis.next[4][u], kTurboTrellis.next[5][u],
      kTurboTrellis.next[6][u], kTurboTrellis.next[7][u]);
}

/// Sign-bit mask: lane s is 0x80000000 where parity[s][u] == 1, so
/// XORing it against a broadcast hp yields the scalar (parity ? -hp : hp).
inline __m256 parity_sign(unsigned u) {
  const auto bit = [u](int s) {
    return kTurboTrellis.parity[s][u] ? INT32_MIN : 0;
  };
  return _mm256_castsi256_ps(_mm256_setr_epi32(bit(0), bit(1), bit(2), bit(3),
                                               bit(4), bit(5), bit(6),
                                               bit(7)));
}

/// Horizontal max of all 8 lanes. Pure max-tree: exact for the same
/// reason any reassociation of max is.
inline float hmax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtss_f32(m);
}

struct OpsAvx2 {
  using V = __m256;
  static constexpr std::size_t kLanes = 8;
  static V load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, V v) { _mm256_storeu_ps(p, v); }
  static V add(V a, V b) { return _mm256_add_ps(a, b); }
  static V sub(V a, V b) { return _mm256_sub_ps(a, b); }
  static V max(V a, V b) { return _mm256_max_ps(a, b); }
  static V neg(V a) {
    return _mm256_xor_ps(a, _mm256_set1_ps(-0.0f));
  }
  static V broadcast(float x) { return _mm256_set1_ps(x); }
};

}  // namespace

void turbo_map_pass_avx2(const float* half_sys_apriori,
                         const float* half_parity, const float* sys,
                         const float* apriori, std::size_t k, float* beta,
                         float* extrinsic) {
  const std::size_t steps = k + kTurboTailSteps;
  const __m256i next0 = next_index(0);
  const __m256i next1 = next_index(1);
  const __m256 sign0 = parity_sign(0);
  const __m256 sign1 = parity_sign(1);
  const __m256i pred_lo = _mm256_setr_epi32(
      kTurboTrellisPred.pred_lo[0], kTurboTrellisPred.pred_lo[1],
      kTurboTrellisPred.pred_lo[2], kTurboTrellisPred.pred_lo[3],
      kTurboTrellisPred.pred_lo[4], kTurboTrellisPred.pred_lo[5],
      kTurboTrellisPred.pred_lo[6], kTurboTrellisPred.pred_lo[7]);
  const __m256i pred_hi = _mm256_setr_epi32(
      kTurboTrellisPred.pred_hi[0], kTurboTrellisPred.pred_hi[1],
      kTurboTrellisPred.pred_hi[2], kTurboTrellisPred.pred_hi[3],
      kTurboTrellisPred.pred_hi[4], kTurboTrellisPred.pred_hi[5],
      kTurboTrellisPred.pred_hi[6], kTurboTrellisPred.pred_hi[7]);

  // Terminal condition: the trellis ends in state zero.
  {
    float* row = beta + steps * kTurboStates;
    for (int s = 0; s < kTurboStates; ++s) row[s] = kNegInfF;
    row[0] = 0.0f;
  }

  // Backward recursion. Tail steps stay scalar (3 steps, one forced
  // branch per state); the K info steps run one ymm row per step.
  for (std::size_t t = steps; t-- > k;) {
    const float hs = half_sys_apriori[t];
    const float hp = half_parity[t];
    const float* next_row = beta + (t + 1) * kTurboStates;
    float* row = beta + t * kTurboStates;
    for (int s = 0; s < kTurboStates; ++s) {
      const unsigned u = kTurboTrellis.term[s];
      const float g =
          (u ? -hs : hs) + (kTurboTrellis.parity[s][u] ? -hp : hp);
      row[s] = next_row[kTurboTrellis.next[s][u]] + g;
    }
  }
  for (std::size_t t = k; t-- > 0;) {
    const __m256 hs = _mm256_set1_ps(half_sys_apriori[t]);
    const __m256 hp = _mm256_set1_ps(half_parity[t]);
    const __m256 next_row = _mm256_loadu_ps(beta + (t + 1) * kTurboStates);
    const __m256 m0 = _mm256_add_ps(
        _mm256_add_ps(_mm256_permutevar8x32_ps(next_row, next0), hs),
        _mm256_xor_ps(hp, sign0));
    const __m256 m1 = _mm256_add_ps(
        _mm256_sub_ps(_mm256_permutevar8x32_ps(next_row, next1), hs),
        _mm256_xor_ps(hp, sign1));
    _mm256_storeu_ps(beta + t * kTurboStates, _mm256_max_ps(m0, m1));
  }

  // Forward recursion fused with the posterior pass.
  alignas(32) float alpha_init[kTurboStates] = {
      0.0f,     kNegInfF, kNegInfF, kNegInfF,
      kNegInfF, kNegInfF, kNegInfF, kNegInfF};
  __m256 alpha = _mm256_load_ps(alpha_init);
  for (std::size_t t = 0; t < k; ++t) {
    const __m256 hs = _mm256_set1_ps(half_sys_apriori[t]);
    const __m256 hp = _mm256_set1_ps(half_parity[t]);
    const __m256 next_row = _mm256_loadu_ps(beta + (t + 1) * kTurboStates);
    const __m256 m0 =
        _mm256_add_ps(_mm256_add_ps(alpha, hs), _mm256_xor_ps(hp, sign0));
    const __m256 m1 =
        _mm256_add_ps(_mm256_sub_ps(alpha, hs), _mm256_xor_ps(hp, sign1));
    const float best0 = hmax8(
        _mm256_add_ps(m0, _mm256_permutevar8x32_ps(next_row, next0)));
    const float best1 = hmax8(
        _mm256_add_ps(m1, _mm256_permutevar8x32_ps(next_row, next1)));
    // next_alpha[ns] = max of the two branch metrics that land on ns,
    // fetched through the predecessor view (same values the scalar code
    // scatter-maxes).
    const __m256 c_lo = _mm256_blend_ps(
        _mm256_permutevar8x32_ps(m0, pred_lo),
        _mm256_permutevar8x32_ps(m1, pred_lo), kPredLoBlend);
    const __m256 c_hi = _mm256_blend_ps(
        _mm256_permutevar8x32_ps(m0, pred_hi),
        _mm256_permutevar8x32_ps(m1, pred_hi), kPredHiBlend);
    alpha = _mm256_max_ps(c_lo, c_hi);
    extrinsic[t] = (best0 - best1) - sys[t] - apriori[t];
  }
}

void turbo_batch_map_pass_avx2(const float* half_sys_apriori,
                               const float* half_parity, const float* sys,
                               const float* apriori, std::size_t k,
                               float* beta, float* extrinsic) {
  turbo_batch_map_pass_impl<OpsAvx2>(half_sys_apriori, half_parity, sys,
                                     apriori, k, beta, extrinsic);
}

}  // namespace pran::coding::simd
