// AVX-512 Viterbi ACS forward sweep: 16 next states per zmm, 4 zmm ops
// per trellis step. Compiled with -mavx512f/bw/vl/dq only (no FMA).
//
// Same structure and bit-exactness contract as the AVX2 kernel — compare
// masks (not vmaxps) preserve the scalar tie rule, and every lane adds
// cur[p] + combo[pattern] in scalar order. The 16-bit compare mask is the
// decision bitmask for the group and is stored as two little-endian bytes
// (x86-only code path, matching bit (ns & 7) of byte (ns >> 3)).

#include <immintrin.h>

#include <cstring>
#include <utility>

#include "coding/simd/viterbi_kernels.hpp"
#include "coding/simd/viterbi_tables.hpp"
#include "common/narrow.hpp"

namespace pran::coding::simd {

void viterbi_forward_avx512(const double* llrs, std::size_t total_steps,
                            float* metric, float* next_metric,
                            std::uint8_t* decisions) {
  // Duplicate lanes 0..7 of a load: predecessor p = base + (lane >> 1).
  const __m512i dup_idx = _mm512_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3,  //
                                            4, 4, 5, 5, 6, 6, 7, 7);
  __m512i patt_lo[kNumStates / 16];
  __m512i patt_hi[kNumStates / 16];
  for (int g = 0; g < kNumStates / 16; ++g) {
    const int ns = g * 16;
    patt_lo[g] = _mm512_setr_epi32(
        viterbi_pattern_lo(ns + 0), viterbi_pattern_lo(ns + 1),
        viterbi_pattern_lo(ns + 2), viterbi_pattern_lo(ns + 3),
        viterbi_pattern_lo(ns + 4), viterbi_pattern_lo(ns + 5),
        viterbi_pattern_lo(ns + 6), viterbi_pattern_lo(ns + 7),
        viterbi_pattern_lo(ns + 8), viterbi_pattern_lo(ns + 9),
        viterbi_pattern_lo(ns + 10), viterbi_pattern_lo(ns + 11),
        viterbi_pattern_lo(ns + 12), viterbi_pattern_lo(ns + 13),
        viterbi_pattern_lo(ns + 14), viterbi_pattern_lo(ns + 15));
    patt_hi[g] = _mm512_setr_epi32(
        viterbi_pattern_hi(ns + 0), viterbi_pattern_hi(ns + 1),
        viterbi_pattern_hi(ns + 2), viterbi_pattern_hi(ns + 3),
        viterbi_pattern_hi(ns + 4), viterbi_pattern_hi(ns + 5),
        viterbi_pattern_hi(ns + 6), viterbi_pattern_hi(ns + 7),
        viterbi_pattern_hi(ns + 8), viterbi_pattern_hi(ns + 9),
        viterbi_pattern_hi(ns + 10), viterbi_pattern_hi(ns + 11),
        viterbi_pattern_hi(ns + 12), viterbi_pattern_hi(ns + 13),
        viterbi_pattern_hi(ns + 14), viterbi_pattern_hi(ns + 15));
  }

  float* cur = metric;
  float* nxt = next_metric;
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double* llr = llrs + kCodeRateDen * t;
    const auto l0 = static_cast<float>(llr[0]);
    const auto l1 = static_cast<float>(llr[1]);
    const auto l2 = static_cast<float>(llr[2]);
    alignas(32) float combo[8];
    for (int p = 0; p < 8; ++p)
      combo[p] = ((p & 1) ? -l0 : l0) + ((p & 2) ? -l1 : l1) +
                 ((p & 4) ? -l2 : l2);
    const __m512 combo_v =
        _mm512_broadcast_f32x8(_mm256_load_ps(combo));

    std::uint8_t* decision = decisions + t * (kNumStates / 8);
    for (int g = 0; g < kNumStates / 16; ++g) {
      // The high-predecessor load runs past the 8 metrics actually used
      // (up to cur+71 for g=3); kViterbiMetricPad covers the over-read.
      const __m512 m_p0 = _mm512_permutexvar_ps(
          dup_idx, _mm512_loadu_ps(cur + 8 * g));
      const __m512 m_p1 = _mm512_permutexvar_ps(
          dup_idx, _mm512_loadu_ps(cur + (kNumStates / 2) + 8 * g));
      const __m512 c0 = _mm512_add_ps(
          m_p0, _mm512_permutexvar_ps(patt_lo[g], combo_v));
      const __m512 c1 = _mm512_add_ps(
          m_p1, _mm512_permutexvar_ps(patt_hi[g], combo_v));
      const __mmask16 pick = _mm512_cmp_ps_mask(c1, c0, _CMP_GT_OQ);
      _mm512_storeu_ps(nxt + 16 * g, _mm512_mask_blend_ps(pick, c0, c1));
      const auto bits = narrow_cast<std::uint16_t>(pick);
      std::memcpy(decision + 2 * g, &bits, sizeof(bits));
    }
    std::swap(cur, nxt);
  }
  if (cur != metric)
    std::memcpy(metric, cur, kNumStates * sizeof(float));
}

}  // namespace pran::coding::simd
