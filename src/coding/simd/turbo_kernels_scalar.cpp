// Scalar max-log-MAP kernels — the golden reference every vectorized tier
// must match bit-for-bit. This TU is compiled with the portable baseline
// flags only; keep it free of intrinsics and of anything that would let
// the compiler change the add/max evaluation order (the equivalence
// contract in turbo_kernels.hpp leans on it).

#include "coding/simd/turbo_kernels.hpp"

#include <algorithm>
#include <limits>

#include "coding/simd/turbo_trellis.hpp"

namespace pran::coding::simd {
namespace {
constexpr float kNegInfF = -std::numeric_limits<float>::infinity();
}  // namespace

/// Max-log-MAP pass over one constituent code.
///
/// The backward (beta) metrics are materialized in the caller's scratch
/// buffer; the forward (alpha) recursion keeps only the live 8-entry row
/// and fuses the posterior/extrinsic computation into the same sweep, so
/// each trellis step is touched exactly twice with zero allocation.
void turbo_map_pass_scalar(const float* half_sys_apriori,
                           const float* half_parity, const float* sys,
                           const float* apriori, std::size_t k, float* beta,
                           float* extrinsic) {
  const std::size_t steps = k + kTurboTailSteps;

  // Terminal condition: the trellis ends in state zero.
  {
    float* row = beta + steps * kTurboStates;
    std::fill(row, row + kTurboStates, kNegInfF);
    row[0] = 0.0f;
  }

  // Backward recursion. In the tail the input is forced to the
  // termination bit, so each state has exactly one outgoing branch.
  for (std::size_t t = steps; t-- > 0;) {
    const float hs = half_sys_apriori[t];
    const float hp = half_parity[t];
    const float* next_row = beta + (t + 1) * kTurboStates;
    float* row = beta + t * kTurboStates;
    if (t >= k) {
      for (int s = 0; s < kTurboStates; ++s) {
        const unsigned u = kTurboTrellis.term[s];
        const float g =
            (u ? -hs : hs) + (kTurboTrellis.parity[s][u] ? -hp : hp);
        row[s] = next_row[kTurboTrellis.next[s][u]] + g;
      }
    } else {
#pragma GCC unroll 8
      for (int s = 0; s < kTurboStates; ++s) {
        const float m0 = next_row[kTurboTrellis.next[s][0]] + hs +
                         (kTurboTrellis.parity[s][0] ? -hp : hp);
        const float m1 = next_row[kTurboTrellis.next[s][1]] - hs +
                         (kTurboTrellis.parity[s][1] ? -hp : hp);
        row[s] = std::max(m0, m1);
      }
    }
  }

  // Forward recursion fused with the posterior pass. Only the live alpha
  // row is kept; the tail needs no extrinsic, so the sweep stops at K.
  float alpha[kTurboStates];
  float next_alpha[kTurboStates];
  std::fill(alpha + 1, alpha + kTurboStates, kNegInfF);
  alpha[0] = 0.0f;
  for (std::size_t t = 0; t < k; ++t) {
    const float hs = half_sys_apriori[t];
    const float hp = half_parity[t];
    const float* next_row = beta + (t + 1) * kTurboStates;
    std::fill(next_alpha, next_alpha + kTurboStates, kNegInfF);
    float best0 = kNegInfF;
    float best1 = kNegInfF;
#pragma GCC unroll 8
    for (int s = 0; s < kTurboStates; ++s) {
      const float a = alpha[s];
      const int n0 = kTurboTrellis.next[s][0];
      const int n1 = kTurboTrellis.next[s][1];
      const float m0 = a + hs + (kTurboTrellis.parity[s][0] ? -hp : hp);
      const float m1 = a - hs + (kTurboTrellis.parity[s][1] ? -hp : hp);
      best0 = std::max(best0, m0 + next_row[n0]);
      best1 = std::max(best1, m1 + next_row[n1]);
      next_alpha[n0] = std::max(next_alpha[n0], m0);
      next_alpha[n1] = std::max(next_alpha[n1], m1);
    }
    std::copy(next_alpha, next_alpha + kTurboStates, alpha);
    // posterior = log(P0/P1); extrinsic removes the direct inputs.
    extrinsic[t] = (best0 - best1) - sys[t] - apriori[t];
  }
}

void turbo_batch_map_pass_scalar(const float* half_sys_apriori,
                                 const float* half_parity, const float* sys,
                                 const float* apriori, std::size_t k,
                                 float* beta, float* extrinsic) {
  // Lane width 1: the batched entry point *is* the single-block pass.
  turbo_map_pass_scalar(half_sys_apriori, half_parity, sys, apriori, k, beta,
                        extrinsic);
}

}  // namespace pran::coding::simd
