#pragma once

/// \file turbo_batch_impl.hpp
/// Lane-axis (cross-codeblock) max-log-MAP batch kernel, shared by the
/// AVX2 and AVX-512 TUs through a small vector-ops trait. Only include
/// this from a TU compiled with the matching -m flags.
///
/// The structure mirrors turbo_map_pass_scalar step for step; every lane
/// performs exactly the scalar sequence of adds and maxes (same
/// associativity, sign flips via XOR on the IEEE sign bit, no FMA), so
/// lane l of the output is bit-identical to a scalar decode of lane l —
/// the property the golden-equivalence suite asserts.
///
/// Trait contract:
///   using V        — the vector register type (one float per lane)
///   kLanes         — lane count W
///   load/store     — unaligned W-float load/store
///   add/sub/max    — element-wise
///   neg            — flip the sign bit (XOR, exact)
///   broadcast      — splat a float
///
/// Buffer layout (structure-of-arrays, lane minor): entry for (step t,
/// lane l) at [t * W + l]; beta rows are 8 states by W lanes, so step t's
/// row starts at beta + t * 8 * W.

#include <cstddef>

#include "coding/simd/turbo_trellis.hpp"

namespace pran::coding::simd {

template <class Ops>
void turbo_batch_map_pass_impl(const float* half_sys_apriori,
                               const float* half_parity, const float* sys,
                               const float* apriori, std::size_t k,
                               float* beta, float* extrinsic) {
  using V = typename Ops::V;
  constexpr std::size_t W = Ops::kLanes;
  constexpr std::size_t kRow = kTurboStates * W;
  const std::size_t steps = k + kTurboTailSteps;
  const V neg_inf = Ops::broadcast(-__builtin_inff());
  const V zero = Ops::broadcast(0.0f);

  // Terminal condition: every lane's trellis ends in state zero.
  {
    float* row = beta + steps * kRow;
    Ops::store(row, zero);
    for (int s = 1; s < kTurboStates; ++s) Ops::store(row + s * W, neg_inf);
  }

  // Backward recursion.
  for (std::size_t t = steps; t-- > 0;) {
    const V hs = Ops::load(half_sys_apriori + t * W);
    const V hp = Ops::load(half_parity + t * W);
    const V neg_hs = Ops::neg(hs);
    const V neg_hp = Ops::neg(hp);
    const float* next_row = beta + (t + 1) * kRow;
    float* row = beta + t * kRow;
    if (t >= k) {
      for (int s = 0; s < kTurboStates; ++s) {
        const unsigned u = kTurboTrellis.term[s];
        const V g = Ops::add(u ? neg_hs : hs,
                             kTurboTrellis.parity[s][u] ? neg_hp : hp);
        Ops::store(row + s * W,
                   Ops::add(Ops::load(next_row + kTurboTrellis.next[s][u] * W),
                            g));
      }
    } else {
#pragma GCC unroll 8
      for (int s = 0; s < kTurboStates; ++s) {
        const V m0 = Ops::add(
            Ops::add(Ops::load(next_row + kTurboTrellis.next[s][0] * W), hs),
            kTurboTrellis.parity[s][0] ? neg_hp : hp);
        const V m1 = Ops::add(
            Ops::add(Ops::load(next_row + kTurboTrellis.next[s][1] * W),
                     neg_hs),
            kTurboTrellis.parity[s][1] ? neg_hp : hp);
        Ops::store(row + s * W, Ops::max(m0, m1));
      }
    }
  }

  // Forward recursion fused with the posterior/extrinsic pass.
  V alpha[kTurboStates];
  alpha[0] = zero;
  for (int s = 1; s < kTurboStates; ++s) alpha[s] = neg_inf;
  for (std::size_t t = 0; t < k; ++t) {
    const V hs = Ops::load(half_sys_apriori + t * W);
    const V hp = Ops::load(half_parity + t * W);
    const V neg_hs = Ops::neg(hs);
    const V neg_hp = Ops::neg(hp);
    const float* next_row = beta + (t + 1) * kRow;
    V best0 = neg_inf;
    V best1 = neg_inf;
    V m0v[kTurboStates];
    V m1v[kTurboStates];
#pragma GCC unroll 8
    for (int s = 0; s < kTurboStates; ++s) {
      const int n0 = kTurboTrellis.next[s][0];
      const int n1 = kTurboTrellis.next[s][1];
      const V m0 = Ops::add(Ops::add(alpha[s], hs),
                            kTurboTrellis.parity[s][0] ? neg_hp : hp);
      const V m1 = Ops::add(Ops::add(alpha[s], neg_hs),
                            kTurboTrellis.parity[s][1] ? neg_hp : hp);
      best0 = Ops::max(best0, Ops::add(m0, Ops::load(next_row + n0 * W)));
      best1 = Ops::max(best1, Ops::add(m1, Ops::load(next_row + n1 * W)));
      m0v[s] = m0;
      m1v[s] = m1;
    }
    // The scalar code scatter-maxes m0/m1 into next_alpha; here we read
    // the same two candidates per next-state through the predecessor
    // view (max is commutative and starts from -inf, so the value is
    // identical bit for bit).
    V next_alpha[kTurboStates];
#pragma GCC unroll 8
    for (int ns = 0; ns < kTurboStates; ++ns) {
      const int lo = kTurboTrellisPred.pred_lo[ns];
      const int hi = kTurboTrellisPred.pred_hi[ns];
      const V c_lo =
          kTurboTrellisPred.pred_lo_input[ns] ? m1v[lo] : m0v[lo];
      const V c_hi =
          kTurboTrellisPred.pred_hi_input[ns] ? m1v[hi] : m0v[hi];
      next_alpha[ns] = Ops::max(c_lo, c_hi);
    }
#pragma GCC unroll 8
    for (int s = 0; s < kTurboStates; ++s) alpha[s] = next_alpha[s];
    // extrinsic = (best0 - best1) - sys - apriori, in scalar order.
    Ops::store(extrinsic + t * W,
               Ops::sub(Ops::sub(Ops::sub(best0, best1),
                                 Ops::load(sys + t * W)),
                        Ops::load(apriori + t * W)));
  }
}

}  // namespace pran::coding::simd
