#pragma once

/// \file viterbi_tables.hpp
/// Branch-output tables for the K=7 rate-1/3 Viterbi decoder, shared by
/// the scalar reference and the SIMD kernels. Plain C++ — intrinsics stay
/// in the per-ISA TUs.

#include <array>
#include <bit>
#include <cstdint>

#include "coding/convolutional.hpp"
#include "common/narrow.hpp"

namespace pran::coding::simd {

/// Encoder output sign pattern per register value `reg` in [0, 128):
/// bit g of pattern[reg] is generator g's output. The three generator
/// outputs admit only 8 distinct sign combinations, so each trellis step
/// needs just 8 candidate branch metrics — computed once per step and
/// indexed by this table, instead of 3 lookups + adds per branch.
struct ViterbiBranchTable {
  std::array<std::uint8_t, 2 * kNumStates> pattern;

  constexpr ViterbiBranchTable() : pattern{} {
    for (unsigned reg = 0; reg < 2 * kNumStates; ++reg) {
      unsigned p = 0;
      for (int g = 0; g < kCodeRateDen; ++g)
        p |= static_cast<unsigned>(std::popcount(reg & kGenerators[g]) & 1) << g;
      pattern[reg] = narrow_cast<std::uint8_t>(p);
    }
  }
};

inline constexpr ViterbiBranchTable kViterbiBranchTable{};

/// Combo-table index for next state `ns` reached from its low predecessor
/// (ns >> 1) — the pattern the ACS adds to metric[ns >> 1].
constexpr int viterbi_pattern_lo(int ns) {
  const unsigned b = static_cast<unsigned>(ns) & 1u;
  const unsigned reg = (static_cast<unsigned>(ns >> 1) << 1) | b;
  return kViterbiBranchTable.pattern[reg];
}

/// Same for the high predecessor (ns >> 1) | 32.
constexpr int viterbi_pattern_hi(int ns) {
  const unsigned b = static_cast<unsigned>(ns) & 1u;
  const unsigned reg =
      ((static_cast<unsigned>(ns >> 1) | (kNumStates >> 1)) << 1) | b;
  return kViterbiBranchTable.pattern[reg];
}

}  // namespace pran::coding::simd
