#include "coding/viterbi.hpp"

#include <limits>

#include "coding/simd/viterbi_kernels.hpp"
#include "common/check.hpp"
#include "common/narrow.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::coding {
namespace {

constexpr float kNegInfF = -std::numeric_limits<float>::infinity();

/// Decision bytes per trellis step: one bit per next state.
constexpr std::size_t kDecisionBytes = kNumStates / 8;

}  // namespace

const ViterbiResult& ViterbiDecoder::decode(const Llrs& llrs,
                                            std::size_t info_bits) {
  PRAN_REQUIRE(info_bits >= 1, "need at least one information bit");
  const std::size_t total_steps = info_bits + kConstraintLength - 1;
  PRAN_REQUIRE(llrs.size() == kCodeRateDen * total_steps,
               "LLR length does not match encoded_length(info_bits)");

  // The pad lets SIMD kernels over-read when splatting predecessor
  // metrics; assign() initializes it, so the reads are always defined.
  metric_.assign(kNumStates + simd::kViterbiMetricPad, kNegInfF);
  next_metric_.assign(kNumStates + simd::kViterbiMetricPad, kNegInfF);
  metric_[0] = 0.0f;  // encoder starts in the zero state

  // Bitmask decisions: bit (ns & 7) of byte (t * 8 + (ns >> 3)) is 1 if
  // state ns's winning predecessor at step t is (ns >> 1) | 32. One bit
  // per branch instead of a byte — 8x less traffic on the store side of
  // the ACS loop and in the traceback working set.
  if (decisions_.size() < total_steps * kDecisionBytes)
    decisions_.resize(total_steps * kDecisionBytes);

  // ACS forward sweep through the active ISA's kernel (bit-exact across
  // tiers; final metrics land back in metric_).
  simd::viterbi_kernels(simd::active_isa())
      .forward(llrs.data(), total_steps, metric_.data(),
               next_metric_.data(), decisions_.data());

  // Traceback from the zero state (the encoder terminates there).
  result_.path_metric = metric_[0];
  if (inputs_.size() < total_steps) inputs_.resize(total_steps);
  int state = 0;
  for (std::size_t t = total_steps; t-- > 0;) {
    inputs_[t] = narrow_cast<std::uint8_t>(state & 1);
    const int which =
        (decisions_[t * kDecisionBytes +
                    static_cast<std::size_t>(state >> 3)] >>
         (state & 7)) &
        1;
    state = (state >> 1) | (which ? (kNumStates >> 1) : 0);
  }
  PRAN_CHECK(state == 0, "traceback did not return to the start state");

  result_.info.assign(inputs_.begin(),
                      inputs_.begin() + static_cast<std::ptrdiff_t>(info_bits));
  return result_;
}

const ViterbiResult& ViterbiDecoder::decode_hard(const Bits& coded,
                                                 std::size_t info_bits) {
  hard_llrs_.clear();
  hard_llrs_.reserve(coded.size());
  for (std::uint8_t bit : coded) {
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    hard_llrs_.push_back(bit ? -1.0 : 1.0);
  }
  return decode(hard_llrs_, info_bits);
}

void ViterbiDecoder::decode_batch(std::span<ViterbiBatchItem> items,
                                  std::size_t info_bits) {
  for (ViterbiBatchItem& item : items) {
    PRAN_REQUIRE(item.llrs != nullptr, "decode_batch: item without LLRs");
    const ViterbiResult& r = decode(*item.llrs, info_bits);
    item.info = r.info;
    item.path_metric = r.path_metric;
  }
}

ViterbiResult viterbi_decode(const Llrs& llrs, std::size_t info_bits) {
  PRAN_SPAN("viterbi_decode", static_cast<std::int64_t>(info_bits));
  thread_local ViterbiDecoder decoder;
  return decoder.decode(llrs, info_bits);
}

ViterbiResult viterbi_decode_hard(const Bits& coded, std::size_t info_bits) {
  PRAN_SPAN("viterbi_decode_hard", static_cast<std::int64_t>(info_bits));
  thread_local ViterbiDecoder decoder;
  return decoder.decode_hard(coded, info_bits);
}

void viterbi_decode_batch(std::span<ViterbiBatchItem> items,
                          std::size_t info_bits) {
  PRAN_SPAN("viterbi_decode_batch", static_cast<std::int64_t>(items.size()));
  thread_local ViterbiDecoder decoder;
  decoder.decode_batch(items, info_bits);
}

}  // namespace pran::coding
