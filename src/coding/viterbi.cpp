#include "coding/viterbi.hpp"

#include <array>
#include <bit>
#include <limits>

#include "common/check.hpp"

namespace pran::coding {
namespace {

/// Precomputed encoder outputs for register value `reg` in [0, 128).
struct BranchTable {
  // outputs[reg][k] in {0,1} for generator k.
  std::array<std::array<std::uint8_t, kCodeRateDen>, 2 * kNumStates> outputs;

  BranchTable() {
    for (unsigned reg = 0; reg < 2 * kNumStates; ++reg)
      for (int k = 0; k < kCodeRateDen; ++k)
        outputs[reg][static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(
            std::popcount(reg & kGenerators[k]) & 1u);
  }
};

const BranchTable& branch_table() {
  static const BranchTable table;
  return table;
}

}  // namespace

ViterbiResult viterbi_decode(const Llrs& llrs, std::size_t info_bits) {
  PRAN_REQUIRE(info_bits >= 1, "need at least one information bit");
  const std::size_t total_steps = info_bits + kConstraintLength - 1;
  PRAN_REQUIRE(llrs.size() == kCodeRateDen * total_steps,
               "LLR length does not match encoded_length(info_bits)");

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> metric(kNumStates, kNegInf);
  std::vector<double> next_metric(kNumStates, kNegInf);
  metric[0] = 0.0;  // encoder starts in the zero state

  // decisions[t][ns] = 1 if the winning predecessor is (ns>>1)|32.
  std::vector<std::vector<std::uint8_t>> decisions(
      total_steps, std::vector<std::uint8_t>(kNumStates, 0));

  const auto& table = branch_table();
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double* llr = &llrs[kCodeRateDen * t];
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    for (int ns = 0; ns < kNumStates; ++ns) {
      const unsigned b = static_cast<unsigned>(ns) & 1u;
      const int p0 = ns >> 1;
      const int p1 = (ns >> 1) | (kNumStates >> 1);
      for (int which = 0; which < 2; ++which) {
        const int p = which ? p1 : p0;
        if (metric[static_cast<std::size_t>(p)] == kNegInf) continue;
        const unsigned reg = (static_cast<unsigned>(p) << 1) | b;
        double branch = 0.0;
        for (int k = 0; k < kCodeRateDen; ++k) {
          const double l = llr[k];
          branch += table.outputs[reg][static_cast<std::size_t>(k)] ? -l : l;
        }
        const double candidate = metric[static_cast<std::size_t>(p)] + branch;
        if (candidate > next_metric[static_cast<std::size_t>(ns)]) {
          next_metric[static_cast<std::size_t>(ns)] = candidate;
          decisions[t][static_cast<std::size_t>(ns)] =
              static_cast<std::uint8_t>(which);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Traceback from the zero state (the encoder terminates there).
  ViterbiResult result;
  result.path_metric = metric[0];
  Bits inputs(total_steps, 0);
  int state = 0;
  for (std::size_t t = total_steps; t-- > 0;) {
    inputs[t] = static_cast<std::uint8_t>(state & 1);
    const int which = decisions[t][static_cast<std::size_t>(state)];
    state = (state >> 1) | (which ? (kNumStates >> 1) : 0);
  }
  PRAN_CHECK(state == 0, "traceback did not return to the start state");

  result.info.assign(inputs.begin(),
                     inputs.begin() + static_cast<std::ptrdiff_t>(info_bits));
  return result;
}

ViterbiResult viterbi_decode_hard(const Bits& coded, std::size_t info_bits) {
  Llrs llrs;
  llrs.reserve(coded.size());
  for (std::uint8_t bit : coded) {
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    llrs.push_back(bit ? -1.0 : 1.0);
  }
  return viterbi_decode(llrs, info_bits);
}

}  // namespace pran::coding
