#include "coding/viterbi.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "common/check.hpp"

#include "common/narrow.hpp"
#include "telemetry/telemetry.hpp"

namespace pran::coding {
namespace {

constexpr float kNegInfF = -std::numeric_limits<float>::infinity();

/// Encoder output sign pattern per register value `reg` in [0, 128):
/// bit k of pattern[reg] is generator k's output. The three generator
/// outputs admit only 8 distinct sign combinations, so each trellis step
/// needs just 8 candidate branch metrics — computed once per step and
/// indexed by this table, instead of 3 lookups + adds per branch.
struct BranchTable {
  std::array<std::uint8_t, 2 * kNumStates> pattern;

  constexpr BranchTable() : pattern{} {
    for (unsigned reg = 0; reg < 2 * kNumStates; ++reg) {
      unsigned p = 0;
      for (int k = 0; k < kCodeRateDen; ++k)
        p |= (std::popcount(reg & kGenerators[k]) & 1u) << k;
      pattern[reg] = narrow_cast<std::uint8_t>(p);
    }
  }
};

constexpr BranchTable kBranchTable{};

}  // namespace

const ViterbiResult& ViterbiDecoder::decode(const Llrs& llrs,
                                            std::size_t info_bits) {
  PRAN_REQUIRE(info_bits >= 1, "need at least one information bit");
  const std::size_t total_steps = info_bits + kConstraintLength - 1;
  PRAN_REQUIRE(llrs.size() == kCodeRateDen * total_steps,
               "LLR length does not match encoded_length(info_bits)");

  metric_.assign(kNumStates, kNegInfF);
  next_metric_.assign(kNumStates, kNegInfF);
  metric_[0] = 0.0f;  // encoder starts in the zero state

  // decisions_[t * kNumStates + ns] = 1 if the winning predecessor is
  // (ns >> 1) | 32.
  if (decisions_.size() < total_steps * kNumStates)
    decisions_.resize(total_steps * kNumStates);

  float* metric = metric_.data();
  float* next_metric = next_metric_.data();
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double* llr = &llrs[kCodeRateDen * t];
    // The 8 possible branch metrics for this step, indexed by the
    // generator-output pattern (accumulated in generator order, matching
    // the per-branch sum).
    const auto l0 = static_cast<float>(llr[0]);
    const auto l1 = static_cast<float>(llr[1]);
    const auto l2 = static_cast<float>(llr[2]);
    float combo[8];
    for (int p = 0; p < 8; ++p)
      combo[p] = ((p & 1) ? -l0 : l0) + ((p & 2) ? -l1 : l1) +
                 ((p & 4) ? -l2 : l2);

    std::uint8_t* decision = decisions_.data() + t * kNumStates;
    std::fill(next_metric, next_metric + kNumStates, kNegInfF);
    for (int ns = 0; ns < kNumStates; ++ns) {
      const unsigned b = static_cast<unsigned>(ns) & 1u;
      const int p0 = ns >> 1;
      const int p1 = (ns >> 1) | (kNumStates >> 1);
      const unsigned reg0 = (static_cast<unsigned>(p0) << 1) | b;
      const unsigned reg1 = (static_cast<unsigned>(p1) << 1) | b;
      const float c0 = metric[p0] + combo[kBranchTable.pattern[reg0]];
      const float c1 = metric[p1] + combo[kBranchTable.pattern[reg1]];
      // Ties go to predecessor 0, as in the branch-by-branch formulation.
      const bool pick1 = c1 > c0;
      next_metric[ns] = pick1 ? c1 : c0;
      decision[ns] = pick1 ? 1 : 0;
    }
    std::swap(metric, next_metric);
  }

  // Traceback from the zero state (the encoder terminates there).
  result_.path_metric = metric[0];
  if (inputs_.size() < total_steps) inputs_.resize(total_steps);
  int state = 0;
  for (std::size_t t = total_steps; t-- > 0;) {
    inputs_[t] = narrow_cast<std::uint8_t>(state & 1);
    const int which = decisions_[t * kNumStates + static_cast<std::size_t>(state)];
    state = (state >> 1) | (which ? (kNumStates >> 1) : 0);
  }
  PRAN_CHECK(state == 0, "traceback did not return to the start state");

  result_.info.assign(inputs_.begin(),
                      inputs_.begin() + static_cast<std::ptrdiff_t>(info_bits));
  return result_;
}

const ViterbiResult& ViterbiDecoder::decode_hard(const Bits& coded,
                                                 std::size_t info_bits) {
  hard_llrs_.clear();
  hard_llrs_.reserve(coded.size());
  for (std::uint8_t bit : coded) {
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    hard_llrs_.push_back(bit ? -1.0 : 1.0);
  }
  return decode(hard_llrs_, info_bits);
}

ViterbiResult viterbi_decode(const Llrs& llrs, std::size_t info_bits) {
  PRAN_SPAN("viterbi_decode", static_cast<std::int64_t>(info_bits));
  thread_local ViterbiDecoder decoder;
  return decoder.decode(llrs, info_bits);
}

ViterbiResult viterbi_decode_hard(const Bits& coded, std::size_t info_bits) {
  PRAN_SPAN("viterbi_decode_hard", static_cast<std::int64_t>(info_bits));
  thread_local ViterbiDecoder decoder;
  return decoder.decode_hard(coded, info_bits);
}

}  // namespace pran::coding
