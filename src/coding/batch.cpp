#include "coding/batch.hpp"

#include <bit>

#include "common/check.hpp"

namespace pran::coding {

void TurboBatchCollector::add(const Llrs& llrs, std::size_t k,
                              std::size_t tag) {
  PRAN_REQUIRE(turbo_block_size_ok(k), "unsupported turbo block size");
  PRAN_REQUIRE(llrs.size() == turbo_encoded_length(k),
               "LLR length does not match turbo_encoded_length(k)");
  const auto slot = static_cast<std::size_t>(std::countr_zero(k)) - 6;
  buckets_[slot].push_back(Pending{&llrs, tag});
}

std::size_t TurboBatchCollector::pending() const noexcept {
  std::size_t n = 0;
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

TurboBatchStats TurboBatchCollector::flush(
    TurboDecoder& decoder, std::vector<TurboBatchResult>& out,
    int max_iterations,
    const std::function<bool(std::size_t, const Bits&)>& early_stop) {
  TurboBatchStats total;
  for (std::size_t slot = 0; slot < 8; ++slot) {
    auto& bucket = buckets_[slot];
    if (bucket.empty()) continue;
    const std::size_t k = std::size_t{64} << slot;

    items_.resize(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      items_[i].llrs = bucket[i].llrs;
      items_[i].info.clear();
      items_[i].iterations = 0;
      items_[i].converged = false;
    }
    // The kernel-facing predicate sees batch indices; translate them back
    // to the caller's tags.
    std::function<bool(std::size_t, const Bits&)> stop_fn;
    if (early_stop)
      stop_fn = [&early_stop, &bucket](std::size_t index, const Bits& hard) {
        return early_stop(bucket[index].tag, hard);
      };
    const TurboBatchStats stats =
        decoder.decode_batch(items_, k, max_iterations, stop_fn);

    total.lane_width = stats.lane_width;
    total.map_pass_calls += stats.map_pass_calls;
    total.lane_refills += stats.lane_refills;
    total.idle_lane_iterations += stats.idle_lane_iterations;

    out.reserve(out.size() + items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      TurboBatchResult r;
      r.tag = bucket[i].tag;
      r.info = std::move(items_[i].info);
      r.iterations = items_[i].iterations;
      r.converged = items_[i].converged;
      out.push_back(std::move(r));
    }
    bucket.clear();
  }
  return total;
}

}  // namespace pran::coding
