#pragma once

/// \file viterbi.hpp
/// Soft-decision Viterbi decoder for the rate-1/3 K=7 convolutional code.
///
/// Maximum-likelihood sequence decoding over the 64-state trellis with full
/// traceback. Input is one log-likelihood ratio per coded bit, positive
/// meaning "bit 0 more likely"; a zero LLR is an erasure (used by the
/// de-rate-matcher for punctured positions). Hard-decision decoding is the
/// special case LLR = ±1.
///
/// The add-compare-select forward sweep dispatches to the SIMD kernels in
/// src/coding/simd/ (scalar / AVX2 / AVX-512, picked at runtime),
/// vectorized across the 64 trellis states. Every tier is bit-exact
/// against the scalar reference. decode_batch() amortizes workspace and
/// dispatch over a run of same-size blocks; unlike the turbo batch path it
/// loops the single-block kernel, because 64 states already fill a vector
/// register (see simd/viterbi_kernels.hpp).

#include <span>
#include <vector>

#include "coding/convolutional.hpp"

namespace pran::coding {

/// Log-likelihood ratios, one per coded bit; sign convention log(P0/P1).
using Llrs = std::vector<double>;

struct ViterbiResult {
  Bits info;            ///< Decoded information bits (flush bits removed).
  double path_metric = 0.0;  ///< Correlation metric of the winning path.
};

/// One block in a batched Viterbi decode: the caller fills `llrs`,
/// decode_batch() fills the outputs (same meaning as ViterbiResult).
struct ViterbiBatchItem {
  const Llrs* llrs = nullptr;  ///< Input; length encoded_length(info_bits).
  Bits info;                   ///< Decoded information bits.
  double path_metric = 0.0;    ///< Correlation metric of the winning path.
};

/// Reusable Viterbi decoder workspace.
///
/// Holds the flat float path-metric buffers and the per-step decision
/// bitmask matrix, so repeated decodes perform zero heap allocation once
/// the buffers have grown to the largest block seen. One instance per
/// thread; distinct instances are fully independent (the parallel BLER
/// harness keeps one per worker slot).
class ViterbiDecoder {
 public:
  ViterbiDecoder() = default;

  /// Same contract as the free viterbi_decode(); the returned reference
  /// (including `info`) aliases internal storage and is invalidated by the
  /// next decode on this instance.
  const ViterbiResult& decode(const Llrs& llrs, std::size_t info_bits);

  /// Hard-decision decode of coded bits.
  const ViterbiResult& decode_hard(const Bits& coded, std::size_t info_bits);

  /// Decodes a run of same-size blocks back to back on this workspace.
  /// Per-item outputs are bit-identical to decode() on the same LLRs.
  void decode_batch(std::span<ViterbiBatchItem> items,
                    std::size_t info_bits);

 private:
  std::vector<float> metric_, next_metric_;   // kNumStates + pad each
  std::vector<std::uint8_t> decisions_;       // total_steps * 8 bitmask bytes
  std::vector<std::uint8_t> inputs_;          // traceback scratch
  Llrs hard_llrs_;                            // decode_hard scratch
  ViterbiResult result_;
};

/// Decodes `llrs` (length must be a multiple of 3 and at least 3*7).
/// `info_bits` is the original information length; llrs must cover
/// encoded_length(info_bits) coded bits.
///
/// Thin wrapper over a thread-local ViterbiDecoder workspace: repeated
/// calls from one thread reuse the same buffers.
ViterbiResult viterbi_decode(const Llrs& llrs, std::size_t info_bits);

/// Convenience: hard-decision decode of coded bits.
ViterbiResult viterbi_decode_hard(const Bits& coded, std::size_t info_bits);

/// Batched counterpart of viterbi_decode(), on the same thread-local
/// workspace. See ViterbiDecoder::decode_batch.
void viterbi_decode_batch(std::span<ViterbiBatchItem> items,
                          std::size_t info_bits);

}  // namespace pran::coding
