#pragma once

/// \file viterbi.hpp
/// Soft-decision Viterbi decoder for the rate-1/3 K=7 convolutional code.
///
/// Maximum-likelihood sequence decoding over the 64-state trellis with full
/// traceback. Input is one log-likelihood ratio per coded bit, positive
/// meaning "bit 0 more likely"; a zero LLR is an erasure (used by the
/// de-rate-matcher for punctured positions). Hard-decision decoding is the
/// special case LLR = ±1.

#include <vector>

#include "coding/convolutional.hpp"

namespace pran::coding {

/// Log-likelihood ratios, one per coded bit; sign convention log(P0/P1).
using Llrs = std::vector<double>;

struct ViterbiResult {
  Bits info;            ///< Decoded information bits (flush bits removed).
  double path_metric = 0.0;  ///< Correlation metric of the winning path.
};

/// Reusable Viterbi decoder workspace.
///
/// Holds the flat float path-metric buffers and the per-step decision
/// matrix, plus a precomputed branch-output table, so repeated decodes
/// perform zero heap allocation once the buffers have grown to the largest
/// block seen. One instance per thread; distinct instances are fully
/// independent (the parallel BLER harness keeps one per worker slot).
class ViterbiDecoder {
 public:
  ViterbiDecoder() = default;

  /// Same contract as the free viterbi_decode(); the returned reference
  /// (including `info`) aliases internal storage and is invalidated by the
  /// next decode on this instance.
  const ViterbiResult& decode(const Llrs& llrs, std::size_t info_bits);

  /// Hard-decision decode of coded bits.
  const ViterbiResult& decode_hard(const Bits& coded, std::size_t info_bits);

 private:
  std::vector<float> metric_, next_metric_;   // kNumStates each
  std::vector<std::uint8_t> decisions_;       // total_steps * kNumStates
  std::vector<std::uint8_t> inputs_;          // traceback scratch
  Llrs hard_llrs_;                            // decode_hard scratch
  ViterbiResult result_;
};

/// Decodes `llrs` (length must be a multiple of 3 and at least 3*7).
/// `info_bits` is the original information length; llrs must cover
/// encoded_length(info_bits) coded bits.
///
/// Thin wrapper over a thread-local ViterbiDecoder workspace: repeated
/// calls from one thread reuse the same buffers.
ViterbiResult viterbi_decode(const Llrs& llrs, std::size_t info_bits);

/// Convenience: hard-decision decode of coded bits.
ViterbiResult viterbi_decode_hard(const Bits& coded, std::size_t info_bits);

}  // namespace pran::coding
