#pragma once

/// \file bler.hpp
/// End-to-end link experiments over the full chain:
/// CRC -> convolutional encode -> rate match -> BPSK/AWGN -> de-rate-match
/// -> Viterbi -> CRC check. Produces the BLER/BER waterfall curves and the
/// decoder-throughput numbers E14 reports.

#include "coding/awgn.hpp"
#include "coding/rate_match.hpp"
#include "common/parallel.hpp"

namespace pran::coding {

struct LinkConfig {
  std::size_t info_bits = 256;   ///< Payload before CRC.
  double code_rate = 1.0 / 3.0;  ///< Effective rate after matching.
  bool soft_decision = true;     ///< Soft vs hard Viterbi input.
  /// Blocks decoded per batched Viterbi call. Grouping is by block index
  /// (indices [g*B, (g+1)*B) form group g), every block still draws from
  /// its own RNG substream, and the batched decoder is bit-exact per
  /// block — so statistics are identical for every batch size and thread
  /// count, including the seed's original per-block path (B = 1).
  std::size_t decode_batch = 8;
};

struct LinkStats {
  std::size_t blocks = 0;
  std::size_t block_errors = 0;     ///< CRC failures after decode.
  std::size_t bit_errors = 0;       ///< Info-bit errors across all blocks.
  std::size_t bits = 0;             ///< Total info bits transmitted.
  std::size_t undetected_errors = 0;  ///< CRC passed but payload wrong.

  double bler() const noexcept {
    return blocks ? static_cast<double>(block_errors) /
                        static_cast<double>(blocks)
                  : 0.0;
  }
  double ber() const noexcept {
    return bits ? static_cast<double>(bit_errors) / static_cast<double>(bits)
                : 0.0;
  }
};

/// Runs `blocks` random transport blocks at the given Es/N0 and collects
/// error statistics.
///
/// Each block draws from its own substream of `rng` (`rng` itself advances
/// by exactly one draw), so the statistics depend only on the incoming RNG
/// state and the block index — never on scheduling. Passing a ThreadPool
/// fans the blocks across its workers, each with a preallocated workspace,
/// and is guaranteed to produce counts identical to the serial run.
LinkStats run_link(const LinkConfig& config, units::Db esn0,
                   std::size_t blocks, Rng& rng, ThreadPool* pool = nullptr);

/// One full round trip of a single block; returns true if the CRC-verified
/// payload matched (used by tests and the throughput bench).
bool round_trip_block(const LinkConfig& config, units::Db esn0, Rng& rng);

}  // namespace pran::coding
