#include "coding/crc.hpp"

#include "common/check.hpp"

#include "common/narrow.hpp"

namespace pran::coding {

std::uint32_t crc24a(const std::uint8_t* bits, std::size_t n) {
  // Bitwise long division of data * x^24 by the generator.
  std::uint32_t reg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t bit = bits[i];
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    const std::uint32_t msb = (reg >> 23) & 1u;
    reg = ((reg << 1) | bit) & 0xFFFFFF;
    if (msb) reg ^= kCrc24APoly & 0xFFFFFF;
  }
  // Flush 24 zero bits.
  for (int i = 0; i < kCrcBits; ++i) {
    const std::uint32_t msb = (reg >> 23) & 1u;
    reg = (reg << 1) & 0xFFFFFF;
    if (msb) reg ^= kCrc24APoly & 0xFFFFFF;
  }
  return reg;
}

std::uint32_t crc24a(const Bits& data) { return crc24a(data.data(), data.size()); }

Bits attach_crc(const Bits& data) {
  const std::uint32_t crc = crc24a(data);
  Bits out = data;
  out.reserve(data.size() + kCrcBits);
  for (int i = kCrcBits - 1; i >= 0; --i)
    out.push_back(narrow_cast<std::uint8_t>((crc >> i) & 1u));
  return out;
}

bool check_crc(const std::uint8_t* bits, std::size_t n) {
  if (n < static_cast<std::size_t>(kCrcBits)) return false;
  const std::size_t payload_bits = n - static_cast<std::size_t>(kCrcBits);
  const std::uint32_t expected = crc24a(bits, payload_bits);
  std::uint32_t actual = 0;
  for (std::size_t i = payload_bits; i < n; ++i)
    actual = (actual << 1) | bits[i];
  return actual == expected;
}

bool check_crc(const Bits& data_with_crc) {
  return check_crc(data_with_crc.data(), data_with_crc.size());
}

Bits strip_crc(const Bits& data_with_crc) {
  PRAN_REQUIRE(check_crc(data_with_crc), "CRC check failed");
  return Bits(data_with_crc.begin(), data_with_crc.end() - kCrcBits);
}

}  // namespace pran::coding
