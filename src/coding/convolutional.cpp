#include "coding/convolutional.hpp"

#include <bit>

#include "common/check.hpp"

#include "common/narrow.hpp"

namespace pran::coding {

Bits convolutional_encode(const Bits& info) {
  Bits out;
  convolutional_encode(info, out);
  return out;
}

void convolutional_encode(const Bits& info, Bits& out) {
  PRAN_REQUIRE(!info.empty(), "cannot encode an empty block");
  out.clear();
  out.reserve(encoded_length(info.size()));

  unsigned state = 0;  // shift register, bit 0 = most recent input
  auto push = [&](unsigned bit) {
    const unsigned reg = (state << 1) | bit;
    for (unsigned g : kGenerators) {
      out.push_back(
          narrow_cast<std::uint8_t>(std::popcount(reg & g) & 1u));
    }
    state = reg & (kNumStates - 1);
  };

  for (std::uint8_t bit : info) {
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    push(bit);
  }
  for (int i = 0; i < kConstraintLength - 1; ++i) push(0);  // flush to zero
  PRAN_CHECK(state == 0, "termination did not return to the zero state");
}

}  // namespace pran::coding
