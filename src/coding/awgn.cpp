#include "coding/awgn.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::coding {

double awgn_sigma(units::Db esn0) {
  return std::sqrt(1.0 / (2.0 * units::to_linear(esn0)));
}

Llrs transmit_bpsk(const Bits& bits, units::Db esn0, Rng& rng) {
  Llrs llrs;
  transmit_bpsk(bits, esn0, rng, llrs);
  return llrs;
}

void transmit_bpsk(const Bits& bits, units::Db esn0, Rng& rng, Llrs& out) {
  const double sigma = awgn_sigma(esn0);
  const double scale = 2.0 / (sigma * sigma);
  out.clear();
  out.reserve(bits.size());
  for (std::uint8_t bit : bits) {
    PRAN_REQUIRE(bit <= 1, "bit vectors must contain only 0/1");
    const double symbol = bit ? -1.0 : 1.0;
    const double y = symbol + rng.normal(0.0, sigma);
    out.push_back(scale * y);
  }
}

Bits hard_decisions(const Llrs& llrs) {
  Bits out;
  out.reserve(llrs.size());
  for (double l : llrs) out.push_back(l < 0.0 ? 1 : 0);
  return out;
}

}  // namespace pran::coding
