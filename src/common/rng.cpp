#include "common/rng.hpp"

#include <cmath>

namespace pran {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng{(*this)()}; }

void Rng::jump() noexcept {
  // Blackman & Vigna's jump polynomial for xoshiro256: advances 2^128 steps.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::stream(std::uint64_t index) const noexcept {
  // O(1) split: hash (state, index) through splitmix64 into a fresh seed.
  // The Rng constructor re-mixes, so even adjacent indices land in
  // well-separated states.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 29);
  std::uint64_t h = splitmix64(x);
  x = index ^ s_[3];
  h ^= splitmix64(x);
  return Rng{h};
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo (Lemire-style rejection kept simple).
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential(double rate) noexcept {
  // -log(1 - U) avoids log(0) because uniform() < 1.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint32_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double v = std::round(normal(mean, std::sqrt(mean)));
  return v < 0.0 ? 0u : static_cast<std::uint32_t>(v);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace pran
