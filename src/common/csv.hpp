#pragma once

/// \file csv.hpp
/// Minimal CSV reader/writer used to persist workload traces and experiment
/// results. Handles quoting; does not attempt full RFC 4180 edge cases like
/// embedded CRLF normalisation.

#include <string>
#include <vector>

namespace pran {

using CsvRow = std::vector<std::string>;

/// Parses a CSV document; empty trailing line is ignored.
std::vector<CsvRow> parse_csv(const std::string& text);

/// Serialises rows to CSV with quoting where needed.
std::string write_csv(const std::vector<CsvRow>& rows);

}  // namespace pran
