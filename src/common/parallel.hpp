#pragma once

/// \file parallel.hpp
/// Deterministic data-parallel execution for Monte-Carlo workloads.
///
/// `ThreadPool` is a small fixed-size pool of persistent workers;
/// `ThreadPool::for_each(count, fn)` fans indices [0, count) across them
/// and blocks until every index has run. Work items self-schedule off a
/// shared atomic cursor, so load-balancing is automatic, and the callback
/// receives a stable worker slot in [0, size()) so callers can keep
/// per-worker workspaces or partial accumulators without locking.
///
/// Determinism contract: the pool assigns *indices*, never data, and makes
/// no promise about which worker runs which index. Callers get
/// thread-count-independent results by deriving everything stochastic from
/// the index (e.g. `rng.stream(i)` from common/rng.hpp) and by combining
/// per-item results commutatively (counter sums) or by index (slot i of a
/// results array). Every BLER sweep in coding/ follows this pattern.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pran {

class ThreadPool {
 public:
  /// Item callback: (worker_slot, index). `worker_slot` is stable for the
  /// lifetime of one worker and lies in [0, size()).
  using IndexFn = std::function<void(unsigned, std::size_t)>;

  /// Spawns `threads` persistent workers (clamped to >= 1). The default
  /// follows the hardware.
  explicit ThreadPool(unsigned threads = default_threads());

  /// Joins all workers. Must not be called while a for_each is running on
  /// another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(slot, i) for every i in [0, count), blocking until all items
  /// finish. Items self-schedule; if any callback throws, the first
  /// exception is rethrown here after the remaining items drain. Reentrant
  /// calls from different threads serialize; calling from inside a
  /// callback deadlocks (don't).
  void for_each(std::size_t count, const IndexFn& fn);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned default_threads() noexcept;

 private:
  void worker_loop(unsigned slot);

  std::vector<std::thread> workers_;
  std::mutex mutex_;                  // guards everything below
  std::condition_variable wake_;      // workers wait for a job / shutdown
  std::condition_variable done_;      // for_each waits for completion
  const IndexFn* job_ = nullptr;      // non-null while a job is active
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_{0};  // next index to claim
  std::size_t inflight_ = 0;          // workers still inside the job
  std::uint64_t generation_ = 0;      // bumps per job so workers don't rerun
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::mutex submit_mutex_;  // serializes concurrent for_each callers
};

/// One-shot convenience: runs fn(slot, i) over [0, count) on `threads`
/// workers without requiring the caller to keep a pool. threads <= 1 runs
/// inline on the calling thread (slot 0) with zero thread overhead.
void parallel_for_each(unsigned threads, std::size_t count,
                       const ThreadPool::IndexFn& fn);

}  // namespace pran
