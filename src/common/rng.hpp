#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for simulations.
///
/// All stochastic PRAN components draw from `pran::Rng`, a xoshiro256++
/// generator. It is seedable, cheap to copy (fork() derives independent
/// streams), and satisfies the C++ UniformRandomBitGenerator concept, so it
/// also plugs into <random> distributions when needed. Simulations are fully
/// reproducible given the seed.

#include <cstdint>
#include <vector>

namespace pran {

/// xoshiro256++ engine (Blackman & Vigna). 256-bit state, 64-bit output.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so any 64-bit seed yields a well-mixed
  /// starting state (including seed 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Derives an independent generator (jump-free stream split): the child is
  /// seeded from the parent's output, advancing the parent.
  Rng fork() noexcept;

  /// Advances this generator by 2^128 draws (the canonical xoshiro256 jump
  /// polynomial): 2^128 non-overlapping subsequences for parallel use.
  void jump() noexcept;

  /// Derives the `index`-th substream of this generator without advancing
  /// it. Substreams are independent of each other and of the parent, and
  /// depend only on (parent state, index) — the foundation of
  /// thread-count-independent Monte-Carlo: give trial i stream(i) and the
  /// results are identical no matter how trials are scheduled.
  Rng stream(std::uint64_t index) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with the given mean / standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Exponential with the given rate (> 0); mean is 1/rate.
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (>= 0).
  /// Uses Knuth's method below mean 30 and a normal approximation above.
  std::uint32_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p clamped to [0, 1].
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to the weights
  /// (all >= 0, at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(
                         uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pran
