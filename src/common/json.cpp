#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <locale>
#include <sstream>

#include "common/check.hpp"
#include "common/narrow.hpp"

namespace pran::json {

namespace {

/// Recursive-descent parser over the raw text. Depth-limited so a
/// pathological input cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    PRAN_REQUIRE(pos_ == text_.size(),
                 "json: trailing characters after document" + where());
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string where() const {
    return " (at byte " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    PRAN_REQUIRE(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p)
      PRAN_REQUIRE(pos_ < text_.size() && text_[pos_++] == *p,
                   "json: bad literal, expected " + std::string(literal) +
                       where());
  }

  Value parse_value(int depth) {
    PRAN_REQUIRE(depth < kMaxDepth, "json: nesting deeper than 64 levels");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value(parse_string());
      case 't':
        expect_literal("true");
        return Value(true);
      case 'f':
        expect_literal("false");
        return Value(false);
      case 'n':
        expect_literal("null");
        return Value();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    next();  // consume '{'
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      next();
      return obj;
    }
    while (true) {
      skip_ws();
      PRAN_REQUIRE(peek() == '"', "json: object key must be a string" +
                                      where());
      std::string key = parse_string();
      skip_ws();
      PRAN_REQUIRE(next() == ':', "json: expected ':' after key" + where());
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      const char sep = next();
      if (sep == '}') return obj;
      PRAN_REQUIRE(sep == ',', "json: expected ',' or '}' in object" +
                                   where());
    }
  }

  Value parse_array(int depth) {
    next();  // consume '['
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      next();
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = next();
      if (sep == ']') return arr;
      PRAN_REQUIRE(sep == ',', "json: expected ',' or ']' in array" +
                                   where());
    }
  }

  std::string parse_string() {
    next();  // consume opening quote
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            append_codepoint(out, parse_hex4());
            break;
          default:
            PRAN_REQUIRE(false, "json: bad escape sequence" + where());
        }
        continue;
      }
      PRAN_REQUIRE(narrow_cast<unsigned char>(c) >= 0x20,
                   "json: raw control character in string" + where());
      out += c;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        PRAN_REQUIRE(false, "json: bad \\u escape digit" + where());
      }
    }
    return v;
  }

  void append_codepoint(std::string& out, std::uint32_t cp) {
    // Combine surrogate pairs when the second half follows immediately.
    if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      PRAN_REQUIRE(low >= 0xDC00 && low <= 0xDFFF,
                   "json: unpaired utf-16 surrogate" + where());
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
    PRAN_REQUIRE(cp < 0xD800 || cp > 0xDFFF,
                 "json: unpaired utf-16 surrogate" + where());
    if (cp < 0x80) {
      out += narrow_cast<char>(cp);
    } else if (cp < 0x800) {
      out += narrow_cast<char>(0xC0 | (cp >> 6));
      out += narrow_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += narrow_cast<char>(0xE0 | (cp >> 12));
      out += narrow_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += narrow_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += narrow_cast<char>(0xF0 | (cp >> 18));
      out += narrow_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += narrow_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += narrow_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(narrow_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    PRAN_REQUIRE(pos_ > start, "json: expected a value" + where());
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t consumed = 0;
      const double v = std::stod(token, &consumed);
      PRAN_REQUIRE(consumed == token.size(),
                   "json: malformed number '" + token + "'" + where());
      return Value(v);
    } catch (const ContractViolation&) {
      throw;
    } catch (const std::exception&) {
      PRAN_REQUIRE(false, "json: malformed number '" + token + "'" + where());
    }
    return Value();  // unreachable
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_value(const Value& v, std::string& out, int indent, int depth);

void append_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      return;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Value::Kind::kNumber:
      out += format_number(v.as_number());
      return;
    case Value::Kind::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      return;
    case Value::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += indent < 0 ? "," : ",";
        append_indent(out, indent, depth + 1);
        dump_value(items[i], out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out += ",";
        append_indent(out, indent, depth + 1);
        out += '"';
        out += escape(members[i].first);
        out += indent < 0 ? "\":" : "\": ";
        dump_value(members[i].second, out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Value::as_bool() const {
  PRAN_REQUIRE(kind_ == Kind::kBool, "json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  PRAN_REQUIRE(kind_ == Kind::kNumber, "json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PRAN_REQUIRE(kind_ == Kind::kString, "json: value is not a string");
  return string_;
}

const Value::Array& Value::items() const {
  PRAN_REQUIRE(kind_ == Kind::kArray, "json: value is not an array");
  return array_;
}

const Value::Object& Value::members() const {
  PRAN_REQUIRE(kind_ == Kind::kObject, "json: value is not an object");
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  PRAN_REQUIRE(v != nullptr, "json: missing object key '" + key + "'");
  return *v;
}

Value& Value::push_back(Value v) {
  PRAN_REQUIRE(kind_ == Kind::kArray, "json: push_back on a non-array");
  array_.push_back(std::move(v));
  return *this;
}

Value& Value::set(const std::string& key, Value v) {
  PRAN_REQUIRE(kind_ == Kind::kObject, "json: set on a non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (narrow_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(narrow_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  PRAN_REQUIRE(std::isfinite(v), "json: NaN/Inf cannot be serialised");
  // Integral doubles within exact-integer range print without a fraction.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << std::fixed << std::setprecision(0) << v;
    return os.str();
  }
  // Shortest representation that round-trips.
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << std::setprecision(precision) << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  return std::to_string(v);
}

}  // namespace pran::json
