#pragma once

/// \file narrow.hpp
/// Checked narrowing conversions in the spirit of gsl::narrow (C++ Core
/// Guidelines ES.46/ES.49). Use `narrow<T>` whenever a conversion may lose
/// information; it throws NarrowingError on loss instead of silently
/// truncating.

#include <stdexcept>
#include <type_traits>

namespace pran {

class NarrowingError : public std::runtime_error {
 public:
  NarrowingError() : std::runtime_error("narrowing conversion lost information") {}
};

/// Converts `v` to T, throwing NarrowingError if the value does not survive
/// the round trip (including signedness flips).
template <typename T, typename U>
constexpr T narrow(U v) {
  static_assert(std::is_arithmetic_v<T> && std::is_arithmetic_v<U>);
  const T result = static_cast<T>(v);
  if (static_cast<U>(result) != v) throw NarrowingError{};
  if constexpr (std::is_integral_v<T> && std::is_integral_v<U> &&
                std::is_signed_v<T> != std::is_signed_v<U>) {
    if ((result < T{}) != (v < U{})) throw NarrowingError{};
  }
  return result;
}

/// Unchecked narrowing for conversions the caller has proven safe; documents
/// intent at the call site (Core Guidelines ES.49).
template <typename T, typename U>
constexpr T narrow_cast(U v) noexcept {
  return static_cast<T>(v);
}

}  // namespace pran
