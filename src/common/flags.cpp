#include "common/flags.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace pran {

Flags::Flags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Flags::Entry* Flags::find(const std::string& name) {
  for (auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

const Flags::Entry* Flags::find(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

void Flags::add_string(const std::string& name, std::string default_value,
                       const std::string& help) {
  PRAN_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  entries_.push_back(
      Entry{name, Kind::kString, default_value, default_value, help});
}

void Flags::add_int(const std::string& name, long default_value,
                    const std::string& help) {
  PRAN_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  const std::string v = std::to_string(default_value);
  entries_.push_back(Entry{name, Kind::kInt, v, v, help});
}

void Flags::add_double(const std::string& name, double default_value,
                       const std::string& help) {
  PRAN_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  std::ostringstream os;
  os << default_value;
  entries_.push_back(Entry{name, Kind::kDouble, os.str(), os.str(), help});
}

void Flags::add_bool(const std::string& name, bool default_value,
                     const std::string& help) {
  PRAN_REQUIRE(find(name) == nullptr, "duplicate flag: " + name);
  const std::string v = default_value ? "true" : "false";
  entries_.push_back(Entry{name, Kind::kBool, v, v, help});
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Entry* entry = find(arg);
    if (entry == nullptr) {
      error_ = "unknown flag --" + arg;
      return false;
    }
    if (!has_value) {
      if (entry->kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + arg + " needs a value";
        return false;
      }
    }
    // Validate the value parses for the declared kind.
    char* end = nullptr;
    switch (entry->kind) {
      case Kind::kInt:
        std::strtol(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || value.empty()) {
          error_ = "flag --" + arg + " expects an integer, got '" + value + "'";
          return false;
        }
        break;
      case Kind::kDouble:
        std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || value.empty()) {
          error_ = "flag --" + arg + " expects a number, got '" + value + "'";
          return false;
        }
        break;
      case Kind::kBool:
        if (value != "true" && value != "false" && value != "1" &&
            value != "0") {
          error_ = "flag --" + arg + " expects true/false, got '" + value + "'";
          return false;
        }
        break;
      case Kind::kString:
        break;
    }
    entry->value = value;
  }
  return true;
}

std::string Flags::get_string(const std::string& name) const {
  const Entry* e = find(name);
  PRAN_REQUIRE(e != nullptr && e->kind == Kind::kString,
               "unknown string flag: " + name);
  return e->value;
}

long Flags::get_int(const std::string& name) const {
  const Entry* e = find(name);
  PRAN_REQUIRE(e != nullptr && e->kind == Kind::kInt,
               "unknown int flag: " + name);
  return std::strtol(e->value.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name) const {
  const Entry* e = find(name);
  PRAN_REQUIRE(e != nullptr && e->kind == Kind::kDouble,
               "unknown double flag: " + name);
  return std::strtod(e->value.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name) const {
  const Entry* e = find(name);
  PRAN_REQUIRE(e != nullptr && e->kind == Kind::kBool,
               "unknown bool flag: " + name);
  return e->value == "true" || e->value == "1";
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& e : entries_) {
    os << "  --" << e.name;
    switch (e.kind) {
      case Kind::kString:
        os << " <string>";
        break;
      case Kind::kInt:
        os << " <int>";
        break;
      case Kind::kDouble:
        os << " <number>";
        break;
      case Kind::kBool:
        os << " [true|false]";
        break;
    }
    os << "  " << e.help << " (default: " << e.default_value << ")\n";
  }
  return os.str();
}

}  // namespace pran
