#pragma once

/// \file table.hpp
/// Console table rendering for the benchmark harness. Each experiment bench
/// prints the series the paper's plot would show; Table keeps that output
/// aligned and machine-greppable.

#include <string>
#include <vector>

namespace pran {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Must be followed by exactly header-size cells.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule and right-aligned numeric-looking columns.
  std::string render() const;

  /// Renders as CSV (header + rows), for piping into plotting scripts.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pran
