#pragma once

/// \file units.hpp
/// Strong types for the physical quantities PRAN's planning math mixes:
/// dB vs linear power, Hz vs PRBs, bits vs bytes, µs vs simulated ns,
/// giga-operations. The cost model, link budget, fronthaul codecs, and
/// schedulers all pass these quantities across module boundaries, and a
/// bare `double` lets a dB value flow into a linear-power sum (or a byte
/// count into a bit budget) without complaint. These wrappers make such
/// mixing a compile error: every type supports arithmetic only with
/// itself, construction is explicit, and cross-unit conversions are
/// named free/static functions (`to_linear`, `to_db`, `Bytes::from_bits`,
/// `Micros::from_time`). Negative-compilation tests under
/// `tests/units_compile_fail/` pin the "does not build" guarantees.
///
/// Hot-path kernels (turbo/Viterbi workspaces, FFTs) keep raw floats
/// internally — the strong types live on API surfaces, where the unit of
/// a value crosses an abstraction boundary, and unwrap to raw scalars in
/// one place via `value()` / `count()`.

#include <cstdint>
#include <cmath>
#include <ostream>

// pran-lint: allow(layering) -- sim/time.hpp is a dependency-free leaf
// header (just the integer-ns Time alias); Micros::to_time/from_time is
// the one sanctioned bridge between unit types and the simulation clock,
// and inverting the edge would put the clock below every unit consumer.
#include "sim/time.hpp"

namespace pran::units {

namespace detail {

/// CRTP base: additive quantity over representation `Rep`. Supplies the
/// explicit constructor, accessor, same-type +/- and comparisons. No
/// cross-type operators exist anywhere, so `Db + LinearPower` (or any
/// other mixed pair) fails to compile by construction.
template <typename Derived, typename Rep>
class Additive {
 public:
  using rep = Rep;

  constexpr Additive() = default;
  constexpr explicit Additive(Rep v) noexcept : v_(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) noexcept {
    return Derived{a.v_ + b.v_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) noexcept {
    return Derived{a.v_ - b.v_};
  }
  constexpr Derived operator-() const noexcept { return Derived{-v_}; }
  constexpr Derived& operator+=(Derived o) noexcept {
    v_ += o.v_;
    return self();
  }
  constexpr Derived& operator-=(Derived o) noexcept {
    v_ -= o.v_;
    return self();
  }
  friend constexpr bool operator==(Derived a, Derived b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Derived a, Derived b) noexcept {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Derived a, Derived b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Derived a, Derived b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Derived a, Derived b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Derived a, Derived b) noexcept {
    return a.v_ >= b.v_;
  }

 protected:
  constexpr Rep raw() const noexcept { return v_; }
  constexpr Rep& raw() noexcept { return v_; }

 private:
  constexpr Derived& self() noexcept { return static_cast<Derived&>(*this); }
  Rep v_{};
};

/// Additive plus dimensionless scaling (`2 * rate`, `power / 4`). Scaling
/// is deliberately absent from logarithmic types: doubling a dB value is
/// squaring the underlying ratio, which is never what load math means.
template <typename Derived, typename Rep>
class Scalable : public Additive<Derived, Rep> {
 public:
  using Additive<Derived, Rep>::Additive;

  friend constexpr Derived operator*(Derived a, double s) noexcept {
    return Derived{static_cast<Rep>(static_cast<double>(a.value()) * s)};
  }
  friend constexpr Derived operator*(double s, Derived a) noexcept {
    return a * s;
  }
  friend constexpr Derived operator/(Derived a, double s) noexcept {
    return Derived{static_cast<Rep>(static_cast<double>(a.value()) / s)};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) noexcept {
    return static_cast<double>(a.value()) / static_cast<double>(b.value());
  }
  constexpr Rep value() const noexcept { return this->raw(); }
};

}  // namespace detail

// ---------------------------------------------------------------- power

/// A logarithmic ratio or level in decibels (dB, or dBm when used as an
/// absolute power level). Additive: gains and losses chain by +/-.
class Db : public detail::Additive<Db, double> {
 public:
  using Additive::Additive;
  constexpr double value() const noexcept { return raw(); }
};

/// Power (or any ratio) on the linear scale; when absolute, in milliwatts
/// so `to_db` yields dBm. Linear powers add (noise + interference) and
/// scale, which dB levels must not.
class LinearPower : public detail::Scalable<LinearPower, double> {
 public:
  using Scalable::Scalable;
};

/// dB -> linear ratio (dBm -> mW).
inline double to_linear(Db db) noexcept {
  return std::pow(10.0, db.value() / 10.0);
}

/// dB -> linear power object.
inline LinearPower to_linear_power(Db db) noexcept {
  return LinearPower{to_linear(db)};
}

/// Linear ratio (mW) -> dB (dBm).
inline Db to_db(LinearPower p) noexcept {
  return Db{10.0 * std::log10(p.value())};
}

// ------------------------------------------------------------ frequency

/// Frequency or bandwidth in hertz.
class Hertz : public detail::Scalable<Hertz, double> {
 public:
  using Scalable::Scalable;
};

inline constexpr Hertz kKilohertz{1e3};
inline constexpr Hertz kMegahertz{1e6};

// ----------------------------------------------------------- data sizes

class Bytes;

/// An exact bit count (transport blocks, encoded payloads). Integer so
/// off-by-8 bugs cannot hide in fractions; fractional *rates* belong in
/// BitRate.
class Bits : public detail::Additive<Bits, std::int64_t> {
 public:
  using Additive::Additive;
  constexpr std::int64_t count() const noexcept { return raw(); }
  /// Named conversion: 8 bits per byte, exact.
  static constexpr Bits from_bytes(Bytes b) noexcept;
};

/// An exact byte count.
class Bytes : public detail::Additive<Bytes, std::int64_t> {
 public:
  using Additive::Additive;
  constexpr std::int64_t count() const noexcept { return raw(); }
  /// Named conversion, rounding up to whole bytes (a 12-bit payload
  /// occupies 2 bytes on any byte-aligned transport).
  static constexpr Bytes from_bits(Bits b) noexcept;
};

constexpr Bits Bits::from_bytes(Bytes b) noexcept {
  return Bits{b.count() * 8};
}

constexpr Bytes Bytes::from_bits(Bits b) noexcept {
  return Bytes{(b.count() + 7) / 8};
}

/// Data rate in bits per second. Double-valued: line rates carry
/// fractional-overhead factors (8b/10b, control words) that are not whole
/// bits per second.
class BitRate : public detail::Scalable<BitRate, double> {
 public:
  using Scalable::Scalable;
  /// Named conversion: an exact amount of data over an exact duration.
  static BitRate per_second(Bits amount, double seconds) noexcept {
    return BitRate{static_cast<double>(amount.count()) / seconds};
  }
};

// -------------------------------------------------------------- spectrum

/// A count of LTE physical resource blocks. Distinct from Hertz (a PRB is
/// 180 kHz but scheduling math counts blocks, not hertz) and from Bits
/// (capacity depends on MCS).
class PrbCount : public detail::Additive<PrbCount, int> {
 public:
  using Additive::Additive;
  constexpr int count() const noexcept { return raw(); }
};

// --------------------------------------------------------------- compute

/// Giga-operations of base-band compute (the cost model's currency).
class Gops : public detail::Scalable<Gops, double> {
 public:
  using Scalable::Scalable;
};

// ------------------------------------------------------------------ time

/// A duration in microseconds, bridging to the simulator's integer
/// nanosecond clock (sim::Time) through named conversions only. Keeps
/// wall-clock-style budgets (HARQ 3 ms, per-subframe decode time) from
/// mixing with raw ns counts or bare doubles.
class Micros : public detail::Scalable<Micros, double> {
 public:
  using Scalable::Scalable;
  /// Simulated-clock duration closest to this many microseconds.
  constexpr sim::Time to_time() const noexcept {
    return sim::from_microseconds(value());
  }
  /// Named conversion from the simulator clock.
  static constexpr Micros from_time(sim::Time t) noexcept {
    return Micros{sim::to_microseconds(t)};
  }
};

// -------------------------------------------------------------- printing

inline std::ostream& operator<<(std::ostream& os, Db v) {
  return os << v.value() << " dB";
}
inline std::ostream& operator<<(std::ostream& os, LinearPower v) {
  return os << v.value() << " mW";
}
inline std::ostream& operator<<(std::ostream& os, Hertz v) {
  return os << v.value() << " Hz";
}
inline std::ostream& operator<<(std::ostream& os, Bits v) {
  return os << v.count() << " bit";
}
inline std::ostream& operator<<(std::ostream& os, Bytes v) {
  return os << v.count() << " B";
}
inline std::ostream& operator<<(std::ostream& os, BitRate v) {
  return os << v.value() << " bit/s";
}
inline std::ostream& operator<<(std::ostream& os, PrbCount v) {
  return os << v.count() << " PRB";
}
inline std::ostream& operator<<(std::ostream& os, Gops v) {
  return os << v.value() << " Gop";
}
inline std::ostream& operator<<(std::ostream& os, Micros v) {
  return os << v.value() << " us";
}

}  // namespace pran::units
