#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace pran {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PRAN_REQUIRE(lo < hi, "histogram range must be non-empty");
  PRAN_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::size_t n) noexcept {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += n;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

std::vector<double> Histogram::cdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  std::size_t acc = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    out[i] = static_cast<double>(acc) / static_cast<double>(total_);
  }
  return out;
}

double Histogram::quantile(double q) const {
  return detail::binned_quantile(
      lo_, hi_, counts_.size(),
      [this](std::size_t i) {
        return static_cast<std::uint64_t>(counts_[i]);
      },
      static_cast<std::uint64_t>(underflow_),
      static_cast<std::uint64_t>(overflow_), q);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace pran
