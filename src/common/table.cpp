#include "common/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace pran {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PRAN_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty())
    PRAN_REQUIRE(rows_.back().size() == header_.size(),
                 "previous row is incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  PRAN_REQUIRE(!rows_.empty(), "cell() before row()");
  PRAN_REQUIRE(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = looks_numeric(cells[c]);
      os << (c ? "  " : "");
      if (right)
        os << std::setw(static_cast<int>(width[c])) << std::right << cells[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << cells[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << csv_escape(header_[c]);
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << (c ? "," : "") << csv_escape(r[c]);
    os << "\n";
  }
  return os.str();
}

}  // namespace pran
