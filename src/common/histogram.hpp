#pragma once

/// \file histogram.hpp
/// Fixed-bin histogram with CDF export, used to report latency and
/// processing-time distributions in the benchmark harness.

#include <cstddef>
#include <string>
#include <vector>

namespace pran {

/// Uniform-bin histogram over [lo, hi). Samples outside the range are
/// counted in saturating under/overflow bins so totals are never lost.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_n(double x, std::size_t n) noexcept;

  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const noexcept;
  /// Upper edge of bin i.
  double bin_hi(std::size_t i) const noexcept;

  /// Empirical CDF evaluated at each bin's upper edge (overflow included in
  /// the final value reaching 1.0 when total() > 0).
  std::vector<double> cdf() const;

  /// Approximate quantile from the binned data (upper-edge convention).
  double quantile(double q) const;

  /// Multi-line textual rendering (one line per bin with a bar), for quick
  /// inspection in example programs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pran
