#pragma once

/// \file histogram.hpp
/// Fixed-bin histogram with CDF export, used to report latency and
/// processing-time distributions in the benchmark harness.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace pran {

namespace detail {

/// Shared binned-quantile convention, used by both `pran::Histogram` and
/// `telemetry::MetricsSnapshot::HistogramValue` so the two implementations
/// cannot drift:
///
///  - empty histogram: returns `lo` (no throw — an empty window simply has
///    no tail yet);
///  - q == 0: lower edge of the first occupied mass (`lo` when underflow
///    mass exists, `hi` when all mass overflowed);
///  - q == 1: upper edge of the last occupied mass (`hi` when overflow
///    mass exists, `lo` when all mass underflowed);
///  - 0 < q < 1: upper-edge convention at rank ceil(q * n), with underflow
///    mass counting toward the rank below every bin and overflow above.
///
/// `count(i)` returns the count of bin i; bin edges are computed as
/// `lo + (hi - lo) * i / bins` so both callers agree bit for bit.
template <class CountFn>
double binned_quantile(double lo, double hi, std::size_t bins,
                       const CountFn& count, std::uint64_t underflow,
                       std::uint64_t overflow, double q) {
  PRAN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level outside [0, 1]");
  const auto edge = [lo, hi, bins](std::size_t i) {
    return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
  };
  std::uint64_t n = underflow + overflow;
  for (std::size_t i = 0; i < bins; ++i) n += count(i);
  if (n == 0) return lo;
  if (q <= 0.0) {
    if (underflow > 0) return lo;
    for (std::size_t i = 0; i < bins; ++i)
      if (count(i) > 0) return edge(i);
    return hi;  // all mass in the overflow bin
  }
  if (q >= 1.0) {
    if (overflow > 0) return hi;
    for (std::size_t i = bins; i-- > 0;)
      if (count(i) > 0) return edge(i + 1);
    return lo;  // all mass in the underflow bin
  }
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = underflow;
  if (seen >= rank) return lo;
  for (std::size_t i = 0; i < bins; ++i) {
    seen += count(i);
    if (seen >= rank) return edge(i + 1);
  }
  return hi;  // rank falls in the overflow bin
}

}  // namespace detail

/// Uniform-bin histogram over [lo, hi). Samples outside the range are
/// counted in saturating under/overflow bins so totals are never lost.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_n(double x, std::size_t n) noexcept;

  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }

  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const noexcept;
  /// Upper edge of bin i.
  double bin_hi(std::size_t i) const noexcept;

  /// Empirical CDF evaluated at each bin's upper edge (overflow included in
  /// the final value reaching 1.0 when total() > 0).
  std::vector<double> cdf() const;

  /// Approximate quantile from the binned data. Follows the shared
  /// `detail::binned_quantile` convention (upper-edge; empty returns lo;
  /// q=0/q=1 snap to the first/last occupied edge).
  double quantile(double q) const;

  /// Multi-line textual rendering (one line per bin with a bar), for quick
  /// inspection in example programs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pran
