#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/narrow.hpp"

namespace pran {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(narrow_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(narrow_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

std::string with_unit(double value, const char* unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << value << " " << unit;
  return os.str();
}

}  // namespace

std::string format_bitrate(double bits_per_second) {
  const double v = std::abs(bits_per_second);
  if (v >= 1e9) return with_unit(bits_per_second / 1e9, "Gbps");
  if (v >= 1e6) return with_unit(bits_per_second / 1e6, "Mbps");
  if (v >= 1e3) return with_unit(bits_per_second / 1e3, "kbps");
  return with_unit(bits_per_second, "bps");
}

std::string format_duration(double seconds) {
  const double v = std::abs(seconds);
  if (v >= 1.0) return with_unit(seconds, "s");
  if (v >= 1e-3) return with_unit(seconds * 1e3, "ms");
  if (v >= 1e-6) return with_unit(seconds * 1e6, "us");
  return with_unit(seconds * 1e9, "ns");
}

}  // namespace pran
