#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  PRAN_REQUIRE(!values_.empty(), "min() of empty sample set");
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  PRAN_REQUIRE(!values_.empty(), "max() of empty sample set");
  ensure_sorted();
  return values_.back();
}

double Samples::quantile(double q) const {
  PRAN_REQUIRE(!values_.empty(), "quantile() of empty sample set");
  PRAN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level outside [0, 1]");
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::ci_half_width(double level) const {
  if (values_.size() < 2) return 0.0;
  double z = 1.96;
  if (level <= 0.90)
    z = 1.645;
  else if (level >= 0.99)
    z = 2.576;
  return z * stddev() / std::sqrt(static_cast<double>(values_.size()));
}

double jain_fairness(const std::vector<double>& allocations) noexcept {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double a : allocations) {
    sum += a;
    sum_sq += a * a;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace pran
