#pragma once

/// \file stats.hpp
/// Descriptive statistics used by the benchmark harness and the controller's
/// KPI reporting: online accumulators, percentiles, confidence intervals, and
/// Jain's fairness index.

#include <cstddef>
#include <vector>

namespace pran {

/// Online mean/variance accumulator (Welford). O(1) memory; suitable for the
/// controller's rolling KPIs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with quantile / CI queries. Stores all samples; intended
/// for offline experiment analysis, not the hot path.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values) : values_(std::move(values)) {}

  void add(double x) { values_.push_back(x); }
  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  const std::vector<double>& values() const noexcept { return values_; }

  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const;
  double max() const;

  /// Quantile in [0,1] with linear interpolation between order statistics.
  /// Requires at least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Half-width of the two-sided confidence interval around the mean using a
  /// normal approximation (z of 1.645 for 90%, 1.96 for 95%). `level` is one
  /// of 0.90, 0.95, 0.99.
  double ci_half_width(double level = 0.95) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Jain's fairness index over per-entity allocations:
///   (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means perfectly fair.
/// Returns 1.0 for empty input or all-zero allocations (vacuously fair).
double jain_fairness(const std::vector<double>& allocations) noexcept;

}  // namespace pran
