#include "common/parallel.hpp"

namespace pran {

unsigned ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned slot = 0; slot < threads; ++slot)
    workers_.emplace_back([this, slot] { worker_loop(slot); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned slot) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const IndexFn* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_ && job_ == nullptr) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
      ++inflight_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*job)(slot, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--inflight_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::for_each(std::size_t count, const IndexFn& fn) {
  if (count == 0) return;
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // All indices claimed and every worker that joined the job has left it.
    done_.wait(lock, [&] {
      return inflight_ == 0 && next_.load(std::memory_order_relaxed) >= count;
    });
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for_each(unsigned threads, std::size_t count,
                       const ThreadPool::IndexFn& fn) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  ThreadPool pool(threads);
  pool.for_each(count, fn);
}

}  // namespace pran
