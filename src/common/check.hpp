#pragma once

/// \file check.hpp
/// Lightweight precondition / invariant checking used across the PRAN
/// libraries. Violations are programming errors, so they throw
/// `pran::ContractViolation` (derived from std::logic_error) rather than
/// aborting, which keeps the simulation harness testable.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pran {

/// Raised when a PRAN_CHECK / PRAN_REQUIRE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_contract(const char* kind, const char* expr,
                                        const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace pran

/// Precondition check on public API arguments.
#define PRAN_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::pran::detail::raise_contract("precondition", #expr, __FILE__,        \
                                     __LINE__, (msg));                       \
  } while (false)

/// Internal invariant check.
#define PRAN_CHECK(expr, msg)                                                \
  do {                                                                       \
    if (!(expr))                                                             \
      ::pran::detail::raise_contract("invariant", #expr, __FILE__, __LINE__, \
                                     (msg));                                 \
  } while (false)
