#pragma once

/// \file strings.hpp
/// Small string helpers shared across modules.

#include <string>
#include <vector>

namespace pran {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Formats a byte-per-second rate with a binary-free SI suffix
/// ("1.23 Gbps"), for fronthaul reporting.
std::string format_bitrate(double bits_per_second);

/// Formats seconds with an adaptive unit (ns/µs/ms/s).
std::string format_duration(double seconds);

}  // namespace pran
