#include "common/csv.hpp"

namespace pran {

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string write_csv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      const std::string& f = row[c];
      if (f.find_first_of(",\"\n") != std::string::npos) {
        out += '"';
        for (char ch : f) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += f;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace pran
