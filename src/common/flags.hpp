#pragma once

/// \file flags.hpp
/// Minimal command-line flag parser for the tools/ binaries.
/// Supports `--name value`, `--name=value`, boolean `--name`, and
/// positional arguments; generates a usage string from registrations.

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pran {

class Flags {
 public:
  /// `program` and `description` feed the usage text.
  Flags(std::string program, std::string description);

  /// Registers a flag with a default. Call before parse().
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);
  void add_int(const std::string& name, long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// malformed values. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  bool help_requested() const noexcept { return help_requested_; }
  const std::string& error() const noexcept { return error_; }

  /// Usage text listing every registered flag with its default.
  std::string usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Entry {
    std::string name;
    Kind kind;
    std::string value;  // canonical string form
    std::string default_value;
    std::string help;
  };
  Entry* find(const std::string& name);
  const Entry* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Entry> entries_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace pran
