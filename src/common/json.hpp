#pragma once

/// \file json.hpp
/// Minimal JSON value model with a strict recursive-descent parser and a
/// deterministic serializer. Dependency-free on purpose: it backs the
/// telemetry timeline (JSONL windows), the flight-recorder post-mortems,
/// and the pran-bench-diff / pran-report tooling, none of which may pull
/// in an external JSON library.
///
/// Scope: full JSON per RFC 8259 minus one liberty — numbers are stored
/// as doubles (53-bit integer precision), which covers every counter this
/// codebase exports. Object member order is preserved on parse and used
/// verbatim on dump, so parse→dump round-trips are stable.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pran::json {

/// Tagged JSON value. Malformed input and wrong-kind accessors raise
/// ContractViolation (common/check.hpp) with a position-annotated message.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(int n) : Value(static_cast<double>(n)) {}
  explicit Value(long long n) : Value(static_cast<double>(n)) {}
  explicit Value(unsigned long long n) : Value(static_cast<double>(n)) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(const char* s) : Value(std::string(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Value parse(const std::string& text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Checked accessors (ContractViolation on kind mismatch).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Object lookup by key; nullptr when absent (or when not an object).
  const Value* find(const std::string& key) const;
  /// Object lookup that requires the key to exist.
  const Value& at(const std::string& key) const;

  /// Array append (requires kArray).
  Value& push_back(Value v);
  /// Object insert-or-overwrite (requires kObject); preserves first-insert
  /// position on overwrite.
  Value& set(const std::string& key, Value v);

  /// Serializes deterministically: member order preserved, doubles in
  /// shortest round-trip form, integral doubles without a fraction.
  /// `indent < 0` emits the compact single-line form (JSONL-safe);
  /// `indent >= 0` pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes a string for embedding in a JSON document (quotes not added).
std::string escape(const std::string& s);

/// Shortest-round-trip double formatting shared by all JSON emitters;
/// integral values print without an exponent or fraction.
std::string format_number(double v);

}  // namespace pran::json
