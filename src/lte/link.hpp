#pragma once

/// \file link.hpp
/// Radio-link abstraction: distance-dependent path loss, SNR, and the
/// Shannon-derived spectral efficiency used to pick a UE's CQI/MCS. The
/// model is the standard 3GPP urban-macro evaluation setup; absolute values
/// are only inputs to the compute-cost model, so fidelity of *shape*
/// (efficiency falls with distance, saturates near the cell) is what
/// matters.

#include "lte/mcs.hpp"

namespace pran::lte {

/// Link-budget parameters with 3GPP urban-macro defaults.
struct LinkBudget {
  /// Effective per-PRB transmit power. 17 dBm/PRB (~37 dBm across a
  /// 100-PRB carrier) calibrates the cell so CQI spans the full table:
  /// 15 near the site, ~8 at 800 m, out-of-range beyond ~2 km.
  double tx_power_dbm = 17.0;
  double noise_figure_db = 7.0;     ///< Receiver noise figure.
  double bandwidth_per_prb_hz = 180e3;
  double implementation_margin = 0.75;  ///< Fraction of Shannon achieved.
  double max_spectral_eff = 5.5547;     ///< Cap at CQI-15 efficiency.
};

/// Path loss in dB for distance `meters` (>= 1), 3GPP UMa:
/// 128.1 + 37.6 log10(d_km).
double pathloss_db(double meters);

/// Thermal noise power in dBm over `bandwidth_hz` at 290 K, plus the noise
/// figure.
double noise_power_dbm(double bandwidth_hz, double noise_figure_db);

/// Per-PRB SNR in dB at `meters` from the antenna under `budget`.
double snr_db(double meters, const LinkBudget& budget = {});

/// Attenuated-Shannon spectral efficiency (bits per symbol) for a given SNR
/// in dB, capped at the table maximum.
double spectral_efficiency(double snr_db_value, const LinkBudget& budget = {});

/// End-to-end convenience: distance -> CQI (0..15).
int cqi_at_distance(double meters, const LinkBudget& budget = {});

/// Achievable rate in bit/s for one PRB at the given MCS (TTI = 1 ms).
double prb_rate_bps(int mcs_index);

/// PRBs needed to carry `rate_bps` at the given MCS (ceil); 0 for rate 0.
int prbs_for_rate(double rate_bps, int mcs_index);

}  // namespace pran::lte
