#pragma once

/// \file link.hpp
/// Radio-link abstraction: distance-dependent path loss, SNR, and the
/// Shannon-derived spectral efficiency used to pick a UE's CQI/MCS. The
/// model is the standard 3GPP urban-macro evaluation setup; absolute values
/// are only inputs to the compute-cost model, so fidelity of *shape*
/// (efficiency falls with distance, saturates near the cell) is what
/// matters.
///
/// All dB/dBm, Hz, and bit/s quantities cross this API as strong unit
/// types (common/units.hpp): a path loss cannot be added to a linear
/// power, and a byte-per-second rate cannot slip into `prbs_for_rate`.

#include "common/units.hpp"
#include "lte/mcs.hpp"

namespace pran::lte {

/// Link-budget parameters with 3GPP urban-macro defaults.
struct LinkBudget {
  /// Effective per-PRB transmit power. 17 dBm/PRB (~37 dBm across a
  /// 100-PRB carrier) calibrates the cell so CQI spans the full table:
  /// 15 near the site, ~8 at 800 m, out-of-range beyond ~2 km.
  units::Db tx_power_dbm{17.0};
  units::Db noise_figure_db{7.0};  ///< Receiver noise figure.
  units::Hertz bandwidth_per_prb_hz{180e3};
  double implementation_margin = 0.75;  ///< Fraction of Shannon achieved.
  double max_spectral_eff = 5.5547;     ///< Cap at CQI-15 efficiency.
};

/// Path loss for distance `meters` (>= 1), 3GPP UMa:
/// 128.1 + 37.6 log10(d_km).
units::Db pathloss_db(double meters);

/// Thermal noise power (dBm) over `bandwidth` at 290 K, plus the noise
/// figure.
units::Db noise_power_dbm(units::Hertz bandwidth, units::Db noise_figure);

/// Per-PRB SNR at `meters` from the antenna under `budget`.
units::Db snr_db(double meters, const LinkBudget& budget = {});

/// Attenuated-Shannon spectral efficiency (bits per symbol) for a given
/// SNR, capped at the table maximum.
double spectral_efficiency(units::Db snr, const LinkBudget& budget = {});

/// End-to-end convenience: distance -> CQI (0..15).
int cqi_at_distance(double meters, const LinkBudget& budget = {});

/// Achievable rate for one PRB at the given MCS (TTI = 1 ms).
units::BitRate prb_rate_bps(int mcs_index);

/// PRBs needed to carry `rate` at the given MCS (ceil); 0 for rate 0.
units::PrbCount prbs_for_rate(units::BitRate rate, int mcs_index);

}  // namespace pran::lte
