#pragma once

/// \file mcs.hpp
/// LTE modulation-and-coding-scheme and CQI tables, plus transport-block
/// sizing. Tables follow the shape of 3GPP TS 36.213 (Rel-8 up to 64-QAM):
/// 15 CQI levels and 29 MCS indices. Transport-block size is computed from
/// usable resource elements rather than the full 36.213 TBS lookup table,
/// which preserves the scaling behaviour the processing-cost model needs.

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace pran::lte {

enum class Modulation : std::uint8_t { kQpsk = 2, kQam16 = 4, kQam64 = 6 };

/// Bits carried per modulation symbol.
constexpr int bits_per_symbol(Modulation m) noexcept {
  return static_cast<int>(m);
}

/// One row of the MCS table.
struct McsEntry {
  int index;            ///< MCS index 0..28.
  Modulation mod;       ///< Constellation.
  double code_rate;     ///< Effective channel-coding rate in (0, 1).
  double spectral_eff;  ///< Information bits per resource element.
};

/// One row of the CQI table (TS 36.213 Table 7.2.3-1 shape).
struct CqiEntry {
  int index;            ///< CQI 1..15 (0 = out of range).
  Modulation mod;
  double code_rate;
  double spectral_eff;  ///< Bits per resource element.
};

/// The 29-entry MCS table (indices 0..28).
const std::vector<McsEntry>& mcs_table();

/// The 15-entry CQI table (indices 1..15).
const std::vector<CqiEntry>& cqi_table();

/// Entry lookup; requires 0 <= index <= 28.
const McsEntry& mcs(int index);

/// Entry lookup; requires 1 <= index <= 15.
const CqiEntry& cqi(int index);

/// Highest CQI whose spectral efficiency does not exceed `bits_per_re`;
/// returns 0 when even CQI 1 is unsupportable.
int cqi_from_efficiency(double bits_per_re);

/// Maps CQI (0..15) to the highest MCS with spectral efficiency not above
/// the CQI's. CQI 0 maps to MCS 0 (most robust).
int mcs_from_cqi(int cqi_index);

/// Usable resource elements per PRB pair per subframe, after control /
/// reference-signal overhead (168 raw, ~140 usable).
inline constexpr int kUsableRePerPrb = 140;

/// Transport-block size for `n_prb` PRBs at MCS `mcs_index`.
/// Approximates 36.213: floor(spectral_eff * usable REs), floored to a
/// multiple of 8 bits (byte-aligned MAC PDU).
units::Bits transport_block_bits(int mcs_index, units::PrbCount n_prb);

/// Number of code blocks a transport block of `tb_bits` is segmented into
/// (turbo-coder block limit 6144 bits, TS 36.212).
int code_block_count(units::Bits tb_bits);

}  // namespace pran::lte
