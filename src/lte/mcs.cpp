#include "lte/mcs.hpp"

#include "common/check.hpp"

namespace pran::lte {
namespace {

std::vector<McsEntry> make_mcs_table() {
  // Code rates follow the TS 36.213 I_MCS -> (Q_m, I_TBS) progression;
  // spectral efficiency = bits_per_symbol * code_rate.
  const struct {
    Modulation mod;
    double rate;
  } rows[29] = {
      {Modulation::kQpsk, 0.1171}, {Modulation::kQpsk, 0.1533},
      {Modulation::kQpsk, 0.1884}, {Modulation::kQpsk, 0.2451},
      {Modulation::kQpsk, 0.3008}, {Modulation::kQpsk, 0.3701},
      {Modulation::kQpsk, 0.4385}, {Modulation::kQpsk, 0.5137},
      {Modulation::kQpsk, 0.5879}, {Modulation::kQpsk, 0.6631},
      {Modulation::kQam16, 0.3320}, {Modulation::kQam16, 0.3691},
      {Modulation::kQam16, 0.4238}, {Modulation::kQam16, 0.4785},
      {Modulation::kQam16, 0.5400}, {Modulation::kQam16, 0.6016},
      {Modulation::kQam16, 0.6426}, {Modulation::kQam64, 0.4277},
      {Modulation::kQam64, 0.4551}, {Modulation::kQam64, 0.5049},
      {Modulation::kQam64, 0.5537}, {Modulation::kQam64, 0.6016},
      {Modulation::kQam64, 0.6504}, {Modulation::kQam64, 0.7021},
      {Modulation::kQam64, 0.7539}, {Modulation::kQam64, 0.8027},
      {Modulation::kQam64, 0.8525}, {Modulation::kQam64, 0.8887},
      {Modulation::kQam64, 0.9258}};
  std::vector<McsEntry> table;
  table.reserve(29);
  for (int i = 0; i < 29; ++i) {
    table.push_back(McsEntry{
        i, rows[i].mod, rows[i].rate,
        static_cast<double>(bits_per_symbol(rows[i].mod)) * rows[i].rate});
  }
  return table;
}

std::vector<CqiEntry> make_cqi_table() {
  // TS 36.213 Table 7.2.3-1 (efficiency in bits per resource element).
  const struct {
    Modulation mod;
    double rate;
    double eff;
  } rows[15] = {{Modulation::kQpsk, 0.0762, 0.1523},
                {Modulation::kQpsk, 0.1172, 0.2344},
                {Modulation::kQpsk, 0.1885, 0.3770},
                {Modulation::kQpsk, 0.3008, 0.6016},
                {Modulation::kQpsk, 0.4385, 0.8770},
                {Modulation::kQpsk, 0.5879, 1.1758},
                {Modulation::kQam16, 0.3691, 1.4766},
                {Modulation::kQam16, 0.4785, 1.9141},
                {Modulation::kQam16, 0.6016, 2.4063},
                {Modulation::kQam64, 0.4551, 2.7305},
                {Modulation::kQam64, 0.5537, 3.3223},
                {Modulation::kQam64, 0.6504, 3.9023},
                {Modulation::kQam64, 0.7539, 4.5234},
                {Modulation::kQam64, 0.8525, 5.1152},
                {Modulation::kQam64, 0.9258, 5.5547}};
  std::vector<CqiEntry> table;
  table.reserve(15);
  for (int i = 0; i < 15; ++i)
    table.push_back(CqiEntry{i + 1, rows[i].mod, rows[i].rate, rows[i].eff});
  return table;
}

}  // namespace

const std::vector<McsEntry>& mcs_table() {
  static const std::vector<McsEntry> table = make_mcs_table();
  return table;
}

const std::vector<CqiEntry>& cqi_table() {
  static const std::vector<CqiEntry> table = make_cqi_table();
  return table;
}

const McsEntry& mcs(int index) {
  PRAN_REQUIRE(index >= 0 && index <= 28, "MCS index outside 0..28");
  return mcs_table()[static_cast<std::size_t>(index)];
}

const CqiEntry& cqi(int index) {
  PRAN_REQUIRE(index >= 1 && index <= 15, "CQI index outside 1..15");
  return cqi_table()[static_cast<std::size_t>(index - 1)];
}

int cqi_from_efficiency(double bits_per_re) {
  int best = 0;
  for (const auto& entry : cqi_table())
    if (entry.spectral_eff <= bits_per_re) best = entry.index;
  return best;
}

int mcs_from_cqi(int cqi_index) {
  PRAN_REQUIRE(cqi_index >= 0 && cqi_index <= 15, "CQI index outside 0..15");
  if (cqi_index == 0) return 0;
  // Small tolerance: table rounding makes e.g. MCS 28 (5.5548) sit a hair
  // above CQI 15 (5.5547); they are the same operating point.
  const double target = cqi(cqi_index).spectral_eff + 1e-3;
  int best = 0;
  for (const auto& entry : mcs_table())
    if (entry.spectral_eff <= target) best = entry.index;
  return best;
}

units::Bits transport_block_bits(int mcs_index, units::PrbCount n_prb) {
  PRAN_REQUIRE(n_prb >= units::PrbCount{0}, "PRB count must be non-negative");
  if (n_prb == units::PrbCount{0}) return units::Bits{0};
  const auto& entry = mcs(mcs_index);
  const double bits = entry.spectral_eff *
                      static_cast<double>(kUsableRePerPrb) *
                      static_cast<double>(n_prb.count());
  const auto whole = static_cast<std::int64_t>(bits);
  return units::Bits{whole - whole % 8};
}

int code_block_count(units::Bits tb_bits) {
  PRAN_REQUIRE(tb_bits >= units::Bits{0},
               "transport block size must be non-negative");
  if (tb_bits == units::Bits{0}) return 0;
  constexpr std::int64_t kMaxCodeBlockBits = 6144;
  return static_cast<int>((tb_bits.count() + kMaxCodeBlockBits - 1) /
                          kMaxCodeBlockBits);
}

}  // namespace pran::lte
