#pragma once

/// \file harq.hpp
/// LTE HARQ timing: the real-time constraint PRAN's scheduler must honour.
///
/// FDD LTE uses an 8-subframe synchronous uplink HARQ loop: a transport
/// block received in subframe n must be acknowledged in subframe n+4. After
/// subtracting one TTI each for the UE's own turnaround and transmission,
/// the eNB — and therefore the PRAN cluster — has roughly a 3 ms budget
/// from the end of the received subframe to finish decoding, minus whatever
/// the fronthaul spends hauling the samples in and the ACK back out.

#include "sim/time.hpp"

namespace pran::lte {

/// Number of parallel HARQ processes (FDD).
inline constexpr int kHarqProcesses = 8;

/// ACK must leave the eNB this many subframes after uplink reception.
inline constexpr int kAckOffsetSubframes = 4;

/// Processing budget at the cluster for one uplink subframe (3 ms).
inline constexpr sim::Time kUplinkProcessingBudget = 3 * sim::kMillisecond;

/// Absolute decode deadline for an uplink subframe whose samples finish
/// arriving at `arrival`, given the round-trip fronthaul latency that must
/// be reserved for hauling the ACK back. Returns a time >= arrival; a
/// fronthaul RTT at or beyond the whole budget leaves a zero-length window
/// (the deployment is infeasible and the caller should reject it).
constexpr sim::Time uplink_deadline(sim::Time arrival,
                                    sim::Time fronthaul_rtt) noexcept {
  const sim::Time window = kUplinkProcessingBudget - fronthaul_rtt;
  return arrival + (window > 0 ? window : 0);
}

}  // namespace pran::lte
