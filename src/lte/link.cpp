#include "lte/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::lte {

using units::BitRate;
using units::Db;
using units::Hertz;
using units::PrbCount;

Db pathloss_db(double meters) {
  PRAN_REQUIRE(meters >= 0.0, "distance must be non-negative");
  const double d_km = std::max(meters, 1.0) / 1000.0;
  return Db{128.1 + 37.6 * std::log10(std::max(d_km, 0.001))};
}

Db noise_power_dbm(Hertz bandwidth, Db noise_figure) {
  PRAN_REQUIRE(bandwidth > Hertz{0.0}, "bandwidth must be positive");
  // kTB at 290 K is -174 dBm/Hz.
  return Db{-174.0 + 10.0 * std::log10(bandwidth.value())} + noise_figure;
}

Db snr_db(double meters, const LinkBudget& budget) {
  const Db rx_dbm = budget.tx_power_dbm - pathloss_db(meters);
  return rx_dbm -
         noise_power_dbm(budget.bandwidth_per_prb_hz, budget.noise_figure_db);
}

double spectral_efficiency(Db snr, const LinkBudget& budget) {
  const double snr_linear = units::to_linear(snr);
  const double eff =
      budget.implementation_margin * std::log2(1.0 + snr_linear);
  return std::clamp(eff, 0.0, budget.max_spectral_eff);
}

int cqi_at_distance(double meters, const LinkBudget& budget) {
  return cqi_from_efficiency(spectral_efficiency(snr_db(meters, budget), budget));
}

BitRate prb_rate_bps(int mcs_index) {
  // One PRB carries kUsableRePerPrb usable resource elements per 1 ms TTI.
  return BitRate{mcs(mcs_index).spectral_eff *
                 static_cast<double>(kUsableRePerPrb) / 1e-3};
}

PrbCount prbs_for_rate(BitRate rate, int mcs_index) {
  PRAN_REQUIRE(rate >= BitRate{0.0}, "rate must be non-negative");
  if (rate == BitRate{0.0}) return PrbCount{0};
  const BitRate per_prb = prb_rate_bps(mcs_index);
  return PrbCount{static_cast<int>(std::ceil(rate / per_prb))};
}

}  // namespace pran::lte
