#include "lte/link.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::lte {

double pathloss_db(double meters) {
  PRAN_REQUIRE(meters >= 0.0, "distance must be non-negative");
  const double d_km = std::max(meters, 1.0) / 1000.0;
  return 128.1 + 37.6 * std::log10(std::max(d_km, 0.001));
}

double noise_power_dbm(double bandwidth_hz, double noise_figure_db) {
  PRAN_REQUIRE(bandwidth_hz > 0.0, "bandwidth must be positive");
  // kTB at 290 K is -174 dBm/Hz.
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double snr_db(double meters, const LinkBudget& budget) {
  const double rx_dbm = budget.tx_power_dbm - pathloss_db(meters);
  return rx_dbm -
         noise_power_dbm(budget.bandwidth_per_prb_hz, budget.noise_figure_db);
}

double spectral_efficiency(double snr_db_value, const LinkBudget& budget) {
  const double snr_linear = std::pow(10.0, snr_db_value / 10.0);
  const double eff =
      budget.implementation_margin * std::log2(1.0 + snr_linear);
  return std::clamp(eff, 0.0, budget.max_spectral_eff);
}

int cqi_at_distance(double meters, const LinkBudget& budget) {
  return cqi_from_efficiency(spectral_efficiency(snr_db(meters, budget), budget));
}

double prb_rate_bps(int mcs_index) {
  // One PRB carries kUsableRePerPrb usable resource elements per 1 ms TTI.
  return mcs(mcs_index).spectral_eff * static_cast<double>(kUsableRePerPrb) /
         1e-3;
}

int prbs_for_rate(double rate_bps, int mcs_index) {
  PRAN_REQUIRE(rate_bps >= 0.0, "rate must be non-negative");
  if (rate_bps == 0.0) return 0;
  const double per_prb = prb_rate_bps(mcs_index);
  return static_cast<int>(std::ceil(rate_bps / per_prb));
}

}  // namespace pran::lte
