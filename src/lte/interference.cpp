#include "lte/interference.hpp"

#include <cmath>
#include <set>

#include "common/check.hpp"

namespace pran::lte {

InterferenceMap::InterferenceMap(std::vector<SitePosition> cells,
                                 LinkBudget budget)
    : cells_(std::move(cells)), budget_(budget) {
  PRAN_REQUIRE(!cells_.empty(), "interference map needs at least one cell");
  std::set<int> ids;
  for (const auto& c : cells_)
    PRAN_REQUIRE(ids.insert(c.cell_id).second, "duplicate cell id");
}

std::size_t InterferenceMap::index_of(int cell_id) const {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].cell_id == cell_id) return i;
  PRAN_REQUIRE(false, "unknown cell id");
  return 0;
}

units::Db InterferenceMap::received_dbm(double x_m, double y_m,
                                        int cell_id) const {
  const auto& c = cells_[index_of(cell_id)];
  const double dx = x_m - c.x_m;
  const double dy = y_m - c.y_m;
  const double dist = std::sqrt(dx * dx + dy * dy);
  return budget_.tx_power_dbm - pathloss_db(dist);
}

int InterferenceMap::best_server(double x_m, double y_m) const {
  int best = cells_.front().cell_id;
  units::Db best_dbm = received_dbm(x_m, y_m, best);
  for (const auto& c : cells_) {
    const units::Db dbm = received_dbm(x_m, y_m, c.cell_id);
    if (dbm > best_dbm + units::Db{1e-12}) {
      best = c.cell_id;
      best_dbm = dbm;
    }
  }
  return best;
}

units::Db InterferenceMap::sinr_db(double x_m, double y_m, int serving_cell,
                                   const std::vector<double>& activity) const {
  PRAN_REQUIRE(activity.size() == cells_.size(),
               "activity vector must match the cell count");
  const std::size_t serving = index_of(serving_cell);

  // Powers only combine on the linear scale; the strong types make the
  // dBm -> mW hops explicit.
  const units::LinearPower signal =
      units::to_linear_power(received_dbm(x_m, y_m, serving_cell));
  const units::LinearPower noise = units::to_linear_power(noise_power_dbm(
      budget_.bandwidth_per_prb_hz, budget_.noise_figure_db));
  units::LinearPower interference{0.0};
  for (std::size_t j = 0; j < cells_.size(); ++j) {
    if (j == serving) continue;
    const double a = activity[j];
    PRAN_REQUIRE(a >= 0.0 && a <= 1.0, "activity outside [0, 1]");
    if (a == 0.0) continue;
    interference +=
        a * units::to_linear_power(received_dbm(x_m, y_m, cells_[j].cell_id));
  }
  return units::to_db(
      units::LinearPower{signal / (noise + interference)});
}

int InterferenceMap::cqi_at(double x_m, double y_m, int serving_cell,
                            const std::vector<double>& activity) const {
  return cqi_from_efficiency(spectral_efficiency(
      sinr_db(x_m, y_m, serving_cell, activity), budget_));
}

std::vector<SitePosition> linear_layout(int n, double spacing_m) {
  PRAN_REQUIRE(n >= 1, "layout needs at least one cell");
  PRAN_REQUIRE(spacing_m > 0.0, "spacing must be positive");
  std::vector<SitePosition> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(SitePosition{i, spacing_m * i, 0.0});
  return out;
}

std::vector<SitePosition> grid_layout(int rows, int cols, double pitch_m) {
  PRAN_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  PRAN_REQUIRE(pitch_m > 0.0, "pitch must be positive");
  std::vector<SitePosition> out;
  out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  int id = 0;
  for (int r = 0; r < rows; ++r) {
    // Offset odd rows by half a pitch for a hex-like packing.
    const double x0 = (r % 2) ? pitch_m / 2.0 : 0.0;
    for (int c = 0; c < cols; ++c)
      out.push_back(SitePosition{id++, x0 + pitch_m * c,
                                 pitch_m * 0.866 * r});
  }
  return out;
}

}  // namespace pran::lte
