#include "lte/cost_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pran::lte {

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kFft:
      return "fft";
    case Stage::kChannelEstimation:
      return "chest";
    case Stage::kEqualization:
      return "equalize";
    case Stage::kDemodulation:
      return "demod";
    case Stage::kDecode:
      return "decode";
    case Stage::kMac:
      return "mac";
    case Stage::kCount:
      break;
  }
  return "?";
}

EffortCapOutcome apply_effort_cap(std::span<Allocation> allocs, int cap) {
  PRAN_REQUIRE(cap >= 1, "effort cap must allow at least one pass");
  EffortCapOutcome out;
  for (Allocation& alloc : allocs) {
    if (alloc.n_prb == 0) continue;
    out.needed_iterations += alloc.turbo_iterations;
    if (alloc.turbo_iterations > cap) {
      alloc.turbo_iterations = cap;
      ++out.capped_tbs;
    }
    out.realized_iterations += alloc.turbo_iterations;
  }
  return out;
}

double StageCost::total() const noexcept {
  double sum = 0.0;
  for (double g : gops) sum += g;
  return sum;
}

StageCost& StageCost::operator+=(const StageCost& other) noexcept {
  for (std::size_t i = 0; i < kStageCount; ++i) gops[i] += other.gops[i];
  return *this;
}

StageCost CostModel::fixed_cost(const CellConfig& cell, Direction dir) const {
  PRAN_REQUIRE(cell.fft_size >= 2, "FFT size must be >= 2");
  PRAN_REQUIRE(cell.antennas >= 1, "cell needs at least one antenna");
  StageCost cost{};
  const double n = static_cast<double>(cell.fft_size);
  const double butterflies = n * std::log2(n) / 2.0;
  // Downlink IFFT is symmetric in cost to the uplink FFT.
  cost[Stage::kFft] = params_.fft_ops_per_butterfly * butterflies *
                      static_cast<double>(cell.antennas) *
                      static_cast<double>(params_.ofdm_symbols_per_subframe) /
                      1e9;
  (void)dir;
  return cost;
}

StageCost CostModel::allocation_cost(const CellConfig& cell,
                                     const Allocation& alloc,
                                     Direction dir) const {
  PRAN_REQUIRE(alloc.n_prb >= 0 && alloc.n_prb <= cell.n_prb,
               "allocation exceeds the cell's PRBs");
  PRAN_REQUIRE(alloc.turbo_iterations >= 1, "decoder runs at least one pass");
  StageCost cost{};
  if (alloc.n_prb == 0) return cost;

  const auto& entry = mcs(alloc.mcs);
  const double prbs = static_cast<double>(alloc.n_prb);
  const double ants = static_cast<double>(cell.antennas);
  const double layers = static_cast<double>(cell.mimo_layers);
  const double mod_bits = static_cast<double>(bits_per_symbol(entry.mod));
  const double tb_bits =
      static_cast<double>(
          transport_block_bits(alloc.mcs, units::PrbCount{alloc.n_prb})
              .count()) *
      layers;

  cost[Stage::kChannelEstimation] =
      params_.chest_ops_per_antenna_prb * ants * prbs / 1e9;
  if (dir == Direction::kUplink) {
    cost[Stage::kEqualization] =
        params_.eq_ops_per_ant2_layer_prb * ants * ants * layers * prbs / 1e9;
  }
  cost[Stage::kDemodulation] =
      params_.demod_ops_per_bit_layer_prb * mod_bits * layers * prbs / 1e9;

  const double decode_scale =
      dir == Direction::kUplink ? 1.0 : params_.downlink_decode_scale;
  const double iters = dir == Direction::kUplink
                           ? static_cast<double>(alloc.turbo_iterations)
                           : 1.0;
  cost[Stage::kDecode] =
      params_.decode_ops_per_bit_iter * tb_bits * iters * decode_scale / 1e9;
  cost[Stage::kMac] = params_.mac_ops_per_bit * tb_bits / 1e9;
  return cost;
}

StageCost CostModel::subframe_cost(const CellConfig& cell,
                                   std::span<const Allocation> allocs,
                                   Direction dir) const {
  StageCost cost = fixed_cost(cell, dir);
  int used_prbs = 0;
  for (const auto& alloc : allocs) {
    used_prbs += alloc.n_prb;
    cost += allocation_cost(cell, alloc, dir);
  }
  PRAN_REQUIRE(used_prbs <= cell.n_prb,
               "allocations oversubscribe the cell's PRBs");
  return cost;
}

StageCost CostModel::peak_cost(const CellConfig& cell, Direction dir,
                               int turbo_iterations) const {
  const Allocation full{cell.n_prb, 28, turbo_iterations};
  const Allocation allocs[] = {full};
  return subframe_cost(cell, allocs, dir);
}

units::Micros CostModel::time_us(const StageCost& cost, double core_gops) {
  PRAN_REQUIRE(core_gops > 0.0, "core capacity must be positive");
  return units::Micros{cost.total() / core_gops * 1e6};
}

}  // namespace pran::lte
