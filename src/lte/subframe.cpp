#include "lte/subframe.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::lte {

SubframeFactory::SubframeFactory(int cell_id, CellConfig config,
                                 CostModel model,
                                 sim::Time fronthaul_one_way_latency)
    : cell_id_(cell_id),
      config_(config),
      model_(model),
      fronthaul_latency_(fronthaul_one_way_latency) {
  PRAN_REQUIRE(fronthaul_one_way_latency >= 0,
               "fronthaul latency must be non-negative");
  PRAN_REQUIRE(2 * fronthaul_one_way_latency < kUplinkProcessingBudget,
               "fronthaul RTT consumes the whole HARQ budget");
}

SubframeJob SubframeFactory::uplink_job(
    std::int64_t tti, std::span<const Allocation> allocs) const {
  PRAN_REQUIRE(tti >= 0, "TTI index must be non-negative");
  SubframeJob job;
  job.cell_id = cell_id_;
  job.tti = tti;
  job.direction = Direction::kUplink;
  job.cost = model_.subframe_cost(config_, allocs, Direction::kUplink);
  int code_blocks = 0;
  for (const auto& a : allocs) {
    if (a.n_prb == 0) continue;
    const auto tb = transport_block_bits(a.mcs, units::PrbCount{a.n_prb});
    code_blocks += code_block_count(tb) * config_.mimo_layers;
    job.tb_count += 1;
    job.tb_bits +=
        static_cast<double>(tb.count()) * config_.mimo_layers;
    job.decode_iterations_needed += a.turbo_iterations;
    job.decode_iterations_realized += a.turbo_iterations;
  }
  job.parallelism = std::max(1, code_blocks);
  // Over-the-air during [tti, tti+1); last sample lands one fronthaul
  // latency after the subframe ends.
  job.release = (tti + 1) * sim::kTti + fronthaul_latency_;
  job.deadline =
      uplink_deadline((tti + 1) * sim::kTti, 2 * fronthaul_latency_);
  return job;
}

SubframeJob SubframeFactory::downlink_job(
    std::int64_t tti, std::span<const Allocation> allocs) const {
  PRAN_REQUIRE(tti >= 1, "downlink needs one TTI of lookahead");
  SubframeJob job;
  job.cell_id = cell_id_;
  job.tti = tti;
  job.direction = Direction::kDownlink;
  job.cost = model_.subframe_cost(config_, allocs, Direction::kDownlink);
  job.deadline = tti * sim::kTti - fronthaul_latency_;
  PRAN_REQUIRE(job.deadline > 0, "downlink deadline precedes time zero");
  job.release = std::max<sim::Time>(0, job.deadline - sim::kTti);
  return job;
}

}  // namespace pran::lte
