#pragma once

/// \file cost_model.hpp
/// Per-stage base-band processing cost model.
///
/// PRAN's central premise is that L1/L2 processing of many cells runs on
/// commodity servers, so the controller needs a calibrated model of how many
/// operations one subframe costs. We model the uplink receive pipeline
/// (FFT -> channel estimation -> equalisation -> demodulation -> turbo
/// decoding -> MAC) and the cheaper downlink transmit pipeline, with each
/// stage scaling in the physically meaningful dimension:
///
///   FFT            ~ antennas * symbols * N log2 N   (whole band, fixed)
///   channel est.   ~ antennas * PRBs
///   equalisation   ~ antennas^2 * layers * PRBs      (MMSE matrix work)
///   demodulation   ~ mod-bits * layers * PRBs        (LLR computation)
///   turbo decode   ~ iterations * transport-block bits   (dominant stage)
///   MAC            ~ transport-block bits
///
/// Default calibration: a fully loaded 20 MHz, 4-antenna, 2-layer, MCS-28
/// uplink subframe costs ~0.30 giga-operations, ~50% of it turbo decoding —
/// matching published software-LTE measurements in shape (decode-dominated,
/// linear in PRBs, super-linear in MCS via the transport block).

#include <array>
#include <cstddef>
#include <span>

#include "lte/mcs.hpp"

namespace pran::lte {

/// Static radio configuration of one cell.
struct CellConfig {
  int n_prb = 100;      ///< 20 MHz carrier.
  int antennas = 4;     ///< Receive antennas.
  int mimo_layers = 2;  ///< Spatial layers.
  int fft_size = 2048;  ///< OFDM FFT length for this bandwidth.
};

/// Turbo-decoder iteration-count envelope. Every layer that reasons about
/// decode effort — the traffic sampler, the MAC scheduler's per-MCS
/// estimate, the cost model's peak provisioning and the overload
/// controller's effort caps — must use these two constants so they cannot
/// drift apart again (the seed had the Allocation default at 6 while
/// peak_cost budgeted 8).
inline constexpr int kMinTurboIterations = 2;
inline constexpr int kMaxTurboIterations = 8;

/// One UE's allocation inside a subframe.
struct Allocation {
  int n_prb = 0;
  int mcs = 0;
  /// Decoder iterations actually run. Defaults to the worst-case budget so
  /// an un-sampled Allocation is charged conservatively, matching
  /// peak_cost().
  int turbo_iterations = kMaxTurboIterations;
};

/// Result of clamping a subframe's allocations to an effort cap.
struct EffortCapOutcome {
  int capped_tbs = 0;            ///< Allocations whose budget was reduced.
  long needed_iterations = 0;    ///< Sum of pre-cap (sampled) iterations.
  long realized_iterations = 0;  ///< Sum of post-cap iterations.
};

/// Clamp each allocation's turbo_iterations to `cap` in place, so the cost
/// model charges the *realized* effort rather than the sampled demand. The
/// floor is 1 iteration — a capped decode still runs at least one pass.
/// Returns how much effort was asked for vs granted so callers can account
/// for the complexity-rate tradeoff honestly.
EffortCapOutcome apply_effort_cap(std::span<Allocation> allocs, int cap);

enum class Direction { kUplink, kDownlink };

/// Pipeline stages, in processing order.
enum class Stage : std::size_t {
  kFft = 0,
  kChannelEstimation,
  kEqualization,
  kDemodulation,
  kDecode,  ///< Turbo decode (UL) or encode (DL).
  kMac,
  kCount
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

const char* stage_name(Stage s) noexcept;

/// Giga-operations per stage for some unit of work.
struct StageCost {
  std::array<double, kStageCount> gops{};

  double& operator[](Stage s) { return gops[static_cast<std::size_t>(s)]; }
  double operator[](Stage s) const {
    return gops[static_cast<std::size_t>(s)];
  }
  double total() const noexcept;
  StageCost& operator+=(const StageCost& other) noexcept;
  friend StageCost operator+(StageCost a, const StageCost& b) noexcept {
    a += b;
    return a;
  }
};

/// Calibration constants (operations, not giga-operations).
struct CostParams {
  double fft_ops_per_butterfly = 24.0;
  double chest_ops_per_antenna_prb = 75e3;
  double eq_ops_per_ant2_layer_prb = 14.0e3;
  double demod_ops_per_bit_layer_prb = 25e3;
  double decode_ops_per_bit_iter = 160.0;
  double mac_ops_per_bit = 96.0;
  int ofdm_symbols_per_subframe = 14;
  /// Downlink runs the transmit pipeline: no equalisation, encoding is about
  /// a third of decoding, everything else symmetric.
  double downlink_decode_scale = 1.0 / 3.0;
};

/// Deterministic cost model; all stochasticity (e.g. iteration counts)
/// enters through the Allocation inputs.
class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : params_(params) {}

  const CostParams& params() const noexcept { return params_; }

  /// Per-subframe cost that is paid whenever the cell is active, regardless
  /// of load (front-end FFTs across the whole band).
  StageCost fixed_cost(const CellConfig& cell, Direction dir) const;

  /// Cost of one UE's allocation.
  StageCost allocation_cost(const CellConfig& cell, const Allocation& alloc,
                            Direction dir) const;

  /// Full subframe: fixed cost plus every allocation.
  StageCost subframe_cost(const CellConfig& cell,
                          std::span<const Allocation> allocs,
                          Direction dir) const;

  /// Worst-case subframe cost for a cell: all PRBs allocated at the highest
  /// MCS. This is what per-cell peak provisioning must budget for.
  StageCost peak_cost(const CellConfig& cell, Direction dir,
                      int turbo_iterations = kMaxTurboIterations) const;

  /// Wall-clock time to execute `cost` on a core sustaining `core_gops`
  /// giga-operations per second.
  static units::Micros time_us(const StageCost& cost, double core_gops);

 private:
  CostParams params_;
};

}  // namespace pran::lte
