#pragma once

/// \file subframe.hpp
/// The unit of work the PRAN cluster schedules: one cell-subframe job with a
/// release time (samples fully received over the fronthaul) and a hard HARQ
/// deadline.

#include <span>
#include <vector>

#include "lte/cost_model.hpp"
#include "lte/harq.hpp"
#include "sim/time.hpp"

namespace pran::lte {

/// One cell's base-band processing for one TTI.
struct SubframeJob {
  int cell_id = 0;
  std::int64_t tti = 0;          ///< Subframe index since epoch.
  Direction direction = Direction::kUplink;
  StageCost cost;                ///< Per-stage giga-operations.
  /// Additional work contributed by custom (programmed-in) pipeline stages
  /// beyond the standard six; see core::Pipeline.
  double extra_gops = 0.0;
  /// How many HARQ retransmissions this job has already been through
  /// (0 = first transmission).
  int harq_retx = 0;
  /// Maximum useful intra-job parallelism: the number of turbo code blocks
  /// in the subframe (code blocks decode independently, so a job can fan
  /// out over up to this many cores with near-linear speedup).
  int parallelism = 1;
  sim::Time release = 0;         ///< Earliest start (samples available).
  sim::Time deadline = 0;        ///< Hard completion deadline.
  /// Transport blocks carried (uplink: one per non-empty allocation).
  int tb_count = 0;
  /// Offered transport-block bits across all allocations and layers; the
  /// goodput numerator when the job completes on time.
  double tb_bits = 0.0;
  /// Sum of sampled (pre-cap) turbo iterations over the job's TBs — what
  /// the channel demanded for convergence.
  long decode_iterations_needed = 0;
  /// Sum of post-cap iterations — the effort actually charged. Equal to
  /// needed when no effort cap is in force.
  long decode_iterations_realized = 0;
  /// Transport blocks abandoned by the overload controller for lack of
  /// compute (computational outage), set when the job is refused admission.
  int compute_outage_tbs = 0;

  double total_gops() const noexcept { return cost.total() + extra_gops; }
};

/// Builds SubframeJobs for one cell from per-TTI allocations, folding in the
/// fronthaul latency on both the release time and the HARQ deadline.
class SubframeFactory {
 public:
  SubframeFactory(int cell_id, CellConfig config, CostModel model,
                  sim::Time fronthaul_one_way_latency);

  int cell_id() const noexcept { return cell_id_; }
  const CellConfig& config() const noexcept { return config_; }
  const CostModel& model() const noexcept { return model_; }
  sim::Time fronthaul_latency() const noexcept { return fronthaul_latency_; }

  /// Uplink job for subframe `tti` that was transmitted over the air during
  /// [tti, tti+1) ms and whose samples finish arriving one fronthaul latency
  /// later.
  SubframeJob uplink_job(std::int64_t tti,
                         std::span<const Allocation> allocs) const;

  /// Downlink job for subframe `tti`: must be *finished* early enough that
  /// samples reach the radio head before the subframe goes on air, so its
  /// deadline is the air time minus the fronthaul latency and its release is
  /// one TTI before that (the scheduler works one subframe ahead).
  SubframeJob downlink_job(std::int64_t tti,
                           std::span<const Allocation> allocs) const;

 private:
  int cell_id_;
  CellConfig config_;
  CostModel model_;
  sim::Time fronthaul_latency_;
};

}  // namespace pran::lte
