#pragma once

/// \file interference.hpp
/// Multi-cell downlink interference.
///
/// A UE served by cell c sees SINR = S_c / (N0 + sum_{j != c} I_j), where
/// each neighbour's interference I_j is its received power scaled by its
/// *activity factor* (fraction of PRBs it is transmitting on). This load
/// coupling is what makes cross-cell coordination valuable — and PRAN's
/// centralisation makes such coordination a software feature: every cell's
/// scheduler runs in the same cluster, so muting patterns (almost-blank
/// subframes) or CoMP sets are just data-plane configuration. Experiment
/// E15 quantifies the cell-edge gain.

#include <vector>

#include "lte/link.hpp"

namespace pran::lte {

/// A cell site on the plane.
struct SitePosition {
  int cell_id = 0;
  double x_m = 0.0;
  double y_m = 0.0;
};

class InterferenceMap {
 public:
  /// `cells` must be non-empty with distinct ids.
  explicit InterferenceMap(std::vector<SitePosition> cells,
                           LinkBudget budget = {});

  const std::vector<SitePosition>& cells() const noexcept { return cells_; }

  /// Received power in dBm at (x, y) from the given cell.
  units::Db received_dbm(double x_m, double y_m, int cell_id) const;

  /// Cell with the strongest received power at (x, y) (lowest id wins
  /// ties) — the natural serving cell.
  int best_server(double x_m, double y_m) const;

  /// SINR at (x, y) served by `serving_cell`, given each cell's
  /// activity factor in [0, 1] (index-aligned with cells()). The serving
  /// cell's own activity does not matter for its UE's SINR.
  units::Db sinr_db(double x_m, double y_m, int serving_cell,
                    const std::vector<double>& activity) const;

  /// Convenience: SINR -> CQI through the attenuated-Shannon mapping.
  int cqi_at(double x_m, double y_m, int serving_cell,
             const std::vector<double>& activity) const;

 private:
  std::size_t index_of(int cell_id) const;
  std::vector<SitePosition> cells_;
  LinkBudget budget_;
};

/// Standard layouts for experiments: `n` cells evenly spaced on a line
/// with `spacing_m` between neighbours.
std::vector<SitePosition> linear_layout(int n, double spacing_m);

/// Hexagonal-ish 2D layout: cells on a grid with the given pitch.
std::vector<SitePosition> grid_layout(int rows, int cols, double pitch_m);

}  // namespace pran::lte
