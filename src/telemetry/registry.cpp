#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/histogram.hpp"
#include "common/narrow.hpp"
#include "common/strings.hpp"

namespace pran::telemetry {

unsigned thread_index() noexcept {
  // pran-lint: allow(determinism-hazard) -- assigns each thread a stable
  // shard slot; which thread gets which slot varies, but snapshots sum
  // across shards, so exported metrics stay thread-count invariant (the
  // telemetry stress test pins this).
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

namespace {

/// Deterministic shortest-round-trip double formatting for JSON/CSV (the
/// snapshot must serialise identically for identical state).
std::string format_double(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(17) << v;
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    std::ostringstream shorter;
    shorter.imbue(std::locale::classic());
    shorter << std::setprecision(precision) << v;
    if (std::stod(shorter.str()) == v) return shorter.str();
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- snapshot

std::uint64_t MetricsSnapshot::HistogramValue::total() const noexcept {
  std::uint64_t n = underflow + overflow;
  for (std::uint64_t b : buckets) n += b;
  return n;
}

double MetricsSnapshot::HistogramValue::mean() const noexcept {
  const std::uint64_t n = total();
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double MetricsSnapshot::HistogramValue::bucket_lo(
    std::size_t i) const noexcept {
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  return lo + static_cast<double>(i) * width;
}

double MetricsSnapshot::HistogramValue::bucket_hi(
    std::size_t i) const noexcept {
  return bucket_lo(i + 1);
}

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  return pran::detail::binned_quantile(
      lo, hi, buckets.size(), [this](std::size_t i) { return buckets[i]; },
      underflow, overflow, q);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(gauges[i].name)
       << "\": " << format_double(gauges[i].value);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(h.name)
       << "\": {\"lo\": " << format_double(h.lo)
       << ", \"hi\": " << format_double(h.hi)
       << ", \"underflow\": " << h.underflow
       << ", \"overflow\": " << h.overflow
       << ", \"sum\": " << format_double(h.sum) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      os << (b ? "," : "") << h.buckets[b];
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::vector<CsvRow> rows;
  rows.push_back({"kind", "name", "value", "lo", "hi", "underflow",
                  "overflow", "sum", "buckets"});
  for (const auto& c : counters)
    rows.push_back(
        {"counter", c.name, std::to_string(c.value), "", "", "", "", "", ""});
  for (const auto& g : gauges)
    rows.push_back(
        {"gauge", g.name, format_double(g.value), "", "", "", "", "", ""});
  for (const auto& h : histograms) {
    std::vector<std::string> buckets;
    buckets.reserve(h.buckets.size());
    for (std::uint64_t b : h.buckets) buckets.push_back(std::to_string(b));
    rows.push_back({"histogram", h.name, "", format_double(h.lo),
                    format_double(h.hi), std::to_string(h.underflow),
                    std::to_string(h.overflow), format_double(h.sum),
                    join(buckets, ";")});
  }
  return write_csv(rows);
}

MetricsSnapshot MetricsSnapshot::from_csv(const std::string& text) {
  MetricsSnapshot snap;
  const auto rows = parse_csv(text);
  PRAN_REQUIRE(!rows.empty() && rows[0].size() == 9 && rows[0][0] == "kind",
               "not a metrics-snapshot CSV (expected the 9-column header)");
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    PRAN_REQUIRE(row.size() == 9, "metrics-snapshot CSV row has != 9 cells");
    if (row[0] == "counter") {
      snap.counters.push_back({row[1], std::stoull(row[2])});
    } else if (row[0] == "gauge") {
      snap.gauges.push_back({row[1], std::stod(row[2])});
    } else if (row[0] == "histogram") {
      HistogramValue h;
      h.name = row[1];
      h.lo = std::stod(row[3]);
      h.hi = std::stod(row[4]);
      h.underflow = std::stoull(row[5]);
      h.overflow = std::stoull(row[6]);
      h.sum = std::stod(row[7]);
      for (const auto& cell : split(row[8], ';'))
        if (!cell.empty()) h.buckets.push_back(std::stoull(cell));
      snap.histograms.push_back(std::move(h));
    } else {
      PRAN_REQUIRE(false, "unknown metric kind in snapshot CSV: " + row[0]);
    }
  }
  return snap;
}

// ------------------------------------------------------------- registry

MetricsRegistry::MetricsRegistry() : MetricsRegistry(Config()) {}

MetricsRegistry::MetricsRegistry(Config config) : config_(config) {
  PRAN_REQUIRE(config_.shards >= 1, "registry needs at least one shard");
  PRAN_REQUIRE(config_.max_counters >= 1 && config_.max_gauges >= 1 &&
                   config_.max_histograms >= 1,
               "registry capacities must be positive");
  PRAN_REQUIRE(config_.max_bins >= 1, "histogram bin capacity must be >= 1");
  counter_names_ = std::make_unique<std::string[]>(config_.max_counters);
  gauge_names_ = std::make_unique<std::string[]>(config_.max_gauges);
  histogram_meta_ =
      std::make_unique<HistogramMeta[]>(config_.max_histograms);
  counter_cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      config_.shards * config_.max_counters);
  gauge_cells_ = std::make_unique<std::atomic<double>[]>(config_.max_gauges);
  hist_buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      config_.shards * config_.max_histograms * (config_.max_bins + 2));
  hist_sums_ = std::make_unique<std::atomic<std::int64_t>[]>(
      config_.shards * config_.max_histograms);
  for (std::size_t i = 0; i < config_.max_gauges; ++i)
    gauge_cells_[i].store(0.0, std::memory_order_relaxed);
}

CounterId MetricsRegistry::counter(std::string_view name) {
  PRAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counter_ids_.find(std::string(name));
  if (it != counter_ids_.end()) return CounterId{it->second};
  const std::uint32_t id = counter_count_.load(std::memory_order_relaxed);
  PRAN_REQUIRE(id < config_.max_counters,
               "registry counter capacity exhausted; raise max_counters");
  counter_names_[id] = std::string(name);
  counter_ids_.emplace(std::string(name), id);
  counter_count_.store(id + 1, std::memory_order_release);
  return CounterId{id};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  PRAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauge_ids_.find(std::string(name));
  if (it != gauge_ids_.end()) return GaugeId{it->second};
  const std::uint32_t id = gauge_count_.load(std::memory_order_relaxed);
  PRAN_REQUIRE(id < config_.max_gauges,
               "registry gauge capacity exhausted; raise max_gauges");
  gauge_names_[id] = std::string(name);
  gauge_ids_.emplace(std::string(name), id);
  gauge_count_.store(id + 1, std::memory_order_release);
  return GaugeId{id};
}

HistogramId MetricsRegistry::histogram(std::string_view name, double lo,
                                       double hi, std::size_t bins) {
  PRAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  PRAN_REQUIRE(lo < hi, "histogram needs lo < hi");
  PRAN_REQUIRE(bins >= 1 && bins <= config_.max_bins,
               "histogram bins outside [1, max_bins]");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_ids_.find(std::string(name));
  if (it != histogram_ids_.end()) {
    const HistogramMeta& m = histogram_meta_[it->second];
    PRAN_REQUIRE(m.lo == lo && m.hi == hi && m.bins == bins,
                 "histogram re-registered with different bounds");
    return HistogramId{it->second};
  }
  const std::uint32_t id = histogram_count_.load(std::memory_order_relaxed);
  PRAN_REQUIRE(id < config_.max_histograms,
               "registry histogram capacity exhausted; raise max_histograms");
  HistogramMeta& meta = histogram_meta_[id];
  meta.name = std::string(name);
  meta.lo = lo;
  meta.hi = hi;
  meta.bins = bins;
  meta.inv_width = static_cast<double>(bins) / (hi - lo);
  histogram_ids_.emplace(std::string(name), id);
  histogram_count_.store(id + 1, std::memory_order_release);
  return HistogramId{id};
}

void MetricsRegistry::add(CounterId id, std::uint64_t n) noexcept {
  const unsigned shard = thread_index() % config_.shards;
  counter_cells_[static_cast<std::size_t>(shard) * config_.max_counters +
                 id.index]
      .fetch_add(n, std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, double value) noexcept {
  gauge_cells_[id.index].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(HistogramId id, double value) noexcept {
  const HistogramMeta& m = histogram_meta_[id.index];
  std::size_t bucket;
  if (value < m.lo) {
    bucket = config_.max_bins;  // underflow slot
  } else if (value >= m.hi) {
    bucket = config_.max_bins + 1;  // overflow slot
  } else {
    bucket = static_cast<std::size_t>((value - m.lo) * m.inv_width);
    if (bucket >= m.bins) bucket = m.bins - 1;  // fp rounding at the edge
  }
  const unsigned shard = thread_index() % config_.shards;
  hist_buckets_[hist_cell(shard, id.index, bucket)].fetch_add(
      1, std::memory_order_relaxed);
  hist_sums_[static_cast<std::size_t>(shard) * config_.max_histograms +
             id.index]
      .fetch_add(std::llround(value * kSumScale), std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::counter_value(CounterId id) const {
  std::uint64_t total = 0;
  for (unsigned s = 0; s < config_.shards; ++s)
    total += counter_cells_[static_cast<std::size_t>(s) *
                                config_.max_counters +
                            id.index]
                 .load(std::memory_order_relaxed);
  return total;
}

double MetricsRegistry::gauge_value(GaugeId id) const {
  return gauge_cells_[id.index].load(std::memory_order_relaxed);
}

std::size_t MetricsRegistry::num_counters() const {
  return counter_count_.load(std::memory_order_acquire);
}

std::size_t MetricsRegistry::num_gauges() const {
  return gauge_count_.load(std::memory_order_acquire);
}

std::size_t MetricsRegistry::num_histograms() const {
  return histogram_count_.load(std::memory_order_acquire);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;

  const std::uint32_t n_counters =
      counter_count_.load(std::memory_order_acquire);
  snap.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::uint64_t total = 0;
    for (unsigned s = 0; s < config_.shards; ++s)
      total +=
          counter_cells_[static_cast<std::size_t>(s) * config_.max_counters +
                         i]
              .load(std::memory_order_relaxed);
    snap.counters.push_back({counter_names_[i], total});
  }

  const std::uint32_t n_gauges = gauge_count_.load(std::memory_order_acquire);
  snap.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i)
    snap.gauges.push_back(
        {gauge_names_[i], gauge_cells_[i].load(std::memory_order_relaxed)});

  const std::uint32_t n_hists =
      histogram_count_.load(std::memory_order_acquire);
  snap.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    const HistogramMeta& m = histogram_meta_[i];
    MetricsSnapshot::HistogramValue h;
    h.name = m.name;
    h.lo = m.lo;
    h.hi = m.hi;
    h.buckets.assign(m.bins, 0);
    std::int64_t sum_fixed = 0;
    for (unsigned s = 0; s < config_.shards; ++s) {
      for (std::size_t b = 0; b < m.bins; ++b)
        h.buckets[b] +=
            hist_buckets_[hist_cell(s, i, b)].load(std::memory_order_relaxed);
      h.underflow += hist_buckets_[hist_cell(s, i, config_.max_bins)].load(
          std::memory_order_relaxed);
      h.overflow += hist_buckets_[hist_cell(s, i, config_.max_bins + 1)].load(
          std::memory_order_relaxed);
      sum_fixed +=
          hist_sums_[static_cast<std::size_t>(s) * config_.max_histograms + i]
              .load(std::memory_order_relaxed);
    }
    h.sum = static_cast<double>(sum_fixed) / kSumScale;
    snap.histograms.push_back(std::move(h));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace pran::telemetry
