#pragma once

/// \file flight_recorder.hpp
/// Anomaly flight recorder: a bounded black box of recent system history
/// — the last N closed KPI windows (from a TimeSeriesRecorder), recent
/// degradation-ladder transitions, recent discrete events (quarantines,
/// faults), and a tail of simulated-time spans — dumped as one
/// self-contained JSON post-mortem when something goes wrong: an SLO
/// burn-rate trips, a quarantine fires, or the run aborts.
///
/// Recording is cheap (bounded deque pushes on the sim-event thread);
/// dumping walks the rings once and writes a single file. Dumps are
/// rate-limited (`max_dumps`) so a flapping alert cannot fill a disk.
///
/// The span tail is read from the SpanCollector, which requires that no
/// other thread is recording spans at trigger time — true for a
/// single-threaded discrete-event run, which is the only mode the
/// deployment timeline supports (sweeps that share the global registry
/// across parallel deployments keep the timeline off).

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "telemetry/span.hpp"
#include "telemetry/timeseries.hpp"

namespace pran::telemetry {

class FlightRecorder {
 public:
  struct Config {
    /// Directory post-mortems are written into (must exist). Empty means
    /// record-only: rings stay queryable but trigger() writes nothing.
    std::string out_dir;
    /// KPI windows included in a dump (taken from the recorder's ring).
    std::size_t max_windows = 32;
    std::size_t max_transitions = 64;
    std::size_t max_events = 64;
    /// Sim-span tail records included in a dump.
    std::size_t max_spans = 256;
    /// Dump budget for the whole run.
    std::size_t max_dumps = 4;
  };

  /// `spans` may be null (no span tail in dumps).
  FlightRecorder(const TimeSeriesRecorder& recorder,
                 const SpanCollector* spans, Config config);

  /// Records one degradation-ladder transition.
  void record_transition(sim::Time at, int from_rung, int to_rung,
                         std::string_view rung_name);
  /// Records a discrete anomaly-adjacent event (quarantine, fault...).
  void record_event(sim::Time at, std::string_view kind,
                    std::string_view detail);

  /// Dumps the black box. Returns the file path, or "" when record-only
  /// or the dump budget is exhausted (the trigger still counts).
  std::string trigger(sim::Time at, std::string_view reason,
                      std::string_view detail);

  std::size_t triggers() const noexcept { return triggers_; }
  std::size_t dumps_written() const noexcept { return dumps_written_; }
  const Config& config() const noexcept { return config_; }

  /// The post-mortem document a dump would write right now (tests, and
  /// callers that want the payload without the file).
  json::Value build_postmortem(sim::Time at, std::string_view reason,
                               std::string_view detail) const;

 private:
  struct Transition {
    sim::Time at = 0;
    int from_rung = 0;
    int to_rung = 0;
    std::string rung_name;
  };
  struct Event {
    sim::Time at = 0;
    std::string kind;
    std::string detail;
  };

  const TimeSeriesRecorder& recorder_;
  const SpanCollector* spans_;
  Config config_;
  std::deque<Transition> transitions_;
  std::deque<Event> events_;
  std::size_t triggers_ = 0;
  std::size_t dumps_written_ = 0;
};

}  // namespace pran::telemetry
