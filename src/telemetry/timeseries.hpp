#pragma once

/// \file timeseries.hpp
/// Windowed KPI time series over a MetricsRegistry: `sample(now)` closes
/// one window by diffing the current snapshot against the previous one —
/// counters become per-window deltas, histograms become per-window bucket
/// deltas (yielding streaming per-window quantiles from the shared binned
/// convention), gauges are carried as sampled values. Closed windows land
/// in a bounded ring (the flight recorder's black box) and, optionally,
/// as one JSON object per line in a JSONL stream (`--timeline-out`).
///
/// The recorder is a *reader*: it never blocks the wait-free write path —
/// it pays one registry snapshot per window on the sampling thread (the
/// sim-event thread in a Deployment). Counter deltas are exact under
/// concurrent writers in the same way snapshots are; gauge values are the
/// last write at sampling time.

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace pran::telemetry {

/// One closed window: deltas/samples between two registry snapshots.
struct WindowSample {
  std::uint64_t index = 0;     ///< 0-based window ordinal.
  sim::Time t_start = 0;       ///< Window open (sim time).
  sim::Time t_end = 0;         ///< Window close (sim time).

  struct CounterDelta {
    std::string name;
    std::uint64_t delta = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  /// Per-window histogram digest computed from the bucket deltas.
  struct HistogramWindow {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Sorted by name; counters with a zero delta are omitted.
  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  /// Histograms with zero observations this window are omitted.
  std::vector<HistogramWindow> histograms;

  /// Delta of one counter this window (0 when absent).
  std::uint64_t counter_delta(std::string_view name) const noexcept;
  /// Gauge value at window close; `fallback` when absent.
  double gauge(std::string_view name, double fallback = 0.0) const noexcept;

  /// The JSONL line body (one compact object, no trailing newline).
  json::Value to_json() const;
};

class TimeSeriesRecorder {
 public:
  struct Config {
    /// Nominal sampling cadence; recorded on each window for consumers.
    /// The recorder itself closes a window whenever sample() is called,
    /// so the driver owns the clock (sim-event cadence, test scripts...).
    sim::Time window = 100 * sim::kMillisecond;
    /// Ring capacity: how many closed windows stay resident.
    std::size_t history = 128;
  };

  TimeSeriesRecorder(MetricsRegistry& registry, Config config);

  /// Routes every subsequently closed window to `path` as JSONL (append
  /// per window, flushed per line). Throws when the file cannot be opened.
  void open_jsonl(const std::string& path);

  /// Closes the window [previous sample, now) and returns it. The first
  /// call baselines against the registry state at construction.
  const WindowSample& sample(sim::Time now);

  /// Closed windows, oldest first (bounded by Config::history).
  const std::deque<WindowSample>& windows() const noexcept {
    return windows_;
  }
  std::uint64_t windows_sampled() const noexcept { return next_index_; }
  const Config& config() const noexcept { return config_; }

 private:
  MetricsRegistry& registry_;
  Config config_;
  MetricsSnapshot prev_;
  sim::Time window_start_ = 0;
  std::uint64_t next_index_ = 0;
  std::deque<WindowSample> windows_;
  std::ofstream jsonl_;
};

}  // namespace pran::telemetry
