#include "telemetry/family.hpp"

#include <array>

#include "common/check.hpp"

namespace pran::telemetry {

namespace {

constexpr std::array<std::string_view, 4> kAllowedLabelKeys = {
    "cell", "server", "rung", "slice"};

/// Clamp-series label value for writes past the cardinality budget.
constexpr std::string_view kOverflowValue = "other";

constexpr std::string_view kOverflowCounterName = "telemetry.label_overflow";

}  // namespace

bool label_key_allowed(std::string_view key) noexcept {
  for (std::string_view allowed : kAllowedLabelKeys)
    if (key == allowed) return true;
  return false;
}

std::string series_name(std::string_view base, std::string_view key,
                        std::string_view value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 3);
  out.append(base);
  out += '{';
  out.append(key);
  out += '=';
  out.append(value);
  out += '}';
  return out;
}

bool parse_series_name(std::string_view full, ParsedSeries& out) {
  if (full.empty() || full.back() != '}') return false;
  const std::size_t brace = full.find('{');
  if (brace == std::string_view::npos || brace == 0) return false;
  const std::string_view inner =
      full.substr(brace + 1, full.size() - brace - 2);
  const std::size_t eq = inner.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= inner.size())
    return false;
  out.base = std::string(full.substr(0, brace));
  out.key = std::string(inner.substr(0, eq));
  out.value = std::string(inner.substr(eq + 1));
  return true;
}

namespace detail {

SeriesIndex::SeriesIndex(std::string base, std::string key,
                         std::size_t max_series)
    : base_(std::move(base)), key_(std::move(key)), max_series_(max_series) {
  PRAN_REQUIRE(!base_.empty(), "metric family needs a base name");
  PRAN_REQUIRE(base_.find('{') == std::string::npos,
               "metric family base name must not contain '{'");
  PRAN_REQUIRE(label_key_allowed(key_),
               "label key '" + key_ +
                   "' is not in the allowlist (cell/server/rung/slice)");
  PRAN_REQUIRE(max_series_ >= 1, "metric family needs max_series >= 1");
  // One extra slot for the clamp series.
  ids_ = std::make_unique<std::atomic<std::int64_t>[]>(max_series_ + 1);
  for (std::size_t i = 0; i <= max_series_; ++i)
    ids_[i].store(-1, std::memory_order_relaxed);
}

std::string SeriesIndex::name_of_slot(std::size_t slot) const {
  return series_name(base_, key_,
                     slot < max_series_ ? std::to_string(slot)
                                        : std::string(kOverflowValue));
}

}  // namespace detail

// -------------------------------------------------------- CounterFamily

CounterFamily::CounterFamily(MetricsRegistry& registry, std::string_view base,
                             std::string_view label_key,
                             std::size_t max_series)
    : registry_(registry),
      index_(std::string(base), std::string(label_key), max_series),
      overflow_counter_(registry.counter(kOverflowCounterName)) {}

CounterId CounterFamily::id_for(std::size_t slot) {
  const std::int64_t cached = index_.load(slot);
  if (cached >= 0) return CounterId{static_cast<std::uint32_t>(cached)};
  // First touch: register under the registry mutex. Racing threads all
  // resolve to the same id (registration is idempotent per name).
  const CounterId id = registry_.counter(index_.name_of_slot(slot));
  index_.store(slot, static_cast<std::int64_t>(id.index));
  return id;
}

void CounterFamily::add(std::size_t label, std::uint64_t n) {
  const std::size_t slot = index_.slot_of(label);
  if (slot == index_.max_series())
    registry_.add(overflow_counter_);  // budget exceeded; fold into clamp
  registry_.add(id_for(slot), n);
}

std::uint64_t CounterFamily::value(std::size_t label) const {
  const std::int64_t cached = index_.load(index_.slot_of(label));
  if (cached < 0) return 0;
  return registry_.counter_value(CounterId{static_cast<std::uint32_t>(cached)});
}

// ---------------------------------------------------------- GaugeFamily

GaugeFamily::GaugeFamily(MetricsRegistry& registry, std::string_view base,
                         std::string_view label_key, std::size_t max_series)
    : registry_(registry),
      index_(std::string(base), std::string(label_key), max_series),
      overflow_counter_(registry.counter(kOverflowCounterName)) {}

GaugeId GaugeFamily::id_for(std::size_t slot) {
  const std::int64_t cached = index_.load(slot);
  if (cached >= 0) return GaugeId{static_cast<std::uint32_t>(cached)};
  const GaugeId id = registry_.gauge(index_.name_of_slot(slot));
  index_.store(slot, static_cast<std::int64_t>(id.index));
  return id;
}

void GaugeFamily::set(std::size_t label, double value) {
  const std::size_t slot = index_.slot_of(label);
  if (slot == index_.max_series()) registry_.add(overflow_counter_);
  registry_.set(id_for(slot), value);
}

double GaugeFamily::value(std::size_t label) const {
  const std::int64_t cached = index_.load(index_.slot_of(label));
  if (cached < 0) return 0.0;
  return registry_.gauge_value(GaugeId{static_cast<std::uint32_t>(cached)});
}

// ------------------------------------------------------ HistogramFamily

HistogramFamily::HistogramFamily(MetricsRegistry& registry,
                                 std::string_view base,
                                 std::string_view label_key, double lo,
                                 double hi, std::size_t bins,
                                 std::size_t max_series)
    : registry_(registry),
      index_(std::string(base), std::string(label_key), max_series),
      overflow_counter_(registry.counter(kOverflowCounterName)),
      lo_(lo),
      hi_(hi),
      bins_(bins) {
  PRAN_REQUIRE(lo_ < hi_ && bins_ >= 1,
               "histogram family needs lo < hi and bins >= 1");
}

HistogramId HistogramFamily::id_for(std::size_t slot) {
  const std::int64_t cached = index_.load(slot);
  if (cached >= 0) return HistogramId{static_cast<std::uint32_t>(cached)};
  const HistogramId id =
      registry_.histogram(index_.name_of_slot(slot), lo_, hi_, bins_);
  index_.store(slot, static_cast<std::int64_t>(id.index));
  return id;
}

void HistogramFamily::observe(std::size_t label, double value) {
  const std::size_t slot = index_.slot_of(label);
  if (slot == index_.max_series()) registry_.add(overflow_counter_);
  registry_.observe(id_for(slot), value);
}

}  // namespace pran::telemetry
