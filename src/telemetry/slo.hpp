#pragma once

/// \file slo.hpp
/// Declarative service-level objectives evaluated online over the
/// TimeSeriesRecorder's window stream, with multi-window burn-rate
/// alerting (the SRE pattern: alert when both a short and a long trailing
/// window burn error budget faster than a threshold multiple — the short
/// window makes the alert fast, the long window makes it sticky against
/// single-window blips).
///
/// An objective is a ratio bound over two counters:
///     bad_counter / total_counter  <  objective
/// e.g. `deadline_miss_rate: deployment.deadline_misses /
/// deployment.subframes < 1e-3`. Burn rate is the observed bad fraction
/// divided by the objective (burn 1.0 = exactly consuming budget at the
/// allowed rate). Each closed window updates `slo.<name>.*` gauges in the
/// registry, so SLO state rides every metrics snapshot and `pran-report
/// --slo` can render a verdict table offline.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/timeseries.hpp"

namespace pran::telemetry {

/// One declarative objective.
struct SloSpec {
  std::string name;           ///< Dotted-lowercase id, e.g. "deadline_miss_rate".
  std::string bad_counter;    ///< Numerator counter (bad events).
  std::string total_counter;  ///< Denominator counter (all events).
  double objective = 1e-3;    ///< Max allowed bad/total fraction.
  /// Trailing evaluation windows (in recorder windows).
  std::size_t short_windows = 2;
  std::size_t long_windows = 12;
  /// Trip when BOTH trailing burn rates meet/exceed this multiple.
  double burn_threshold = 4.0;
};

/// Online evaluation state of one SLO.
struct SloStatus {
  SloSpec spec;
  double burn_short = 0.0;        ///< Short-window burn multiple.
  double burn_long = 0.0;         ///< Long-window burn multiple.
  double run_rate = 0.0;          ///< Cumulative bad/total over the run.
  /// Fraction of the whole-run error budget consumed so far
  /// (cumulative bad / (objective * cumulative total)).
  double budget_consumed = 0.0;
  std::uint64_t trips = 0;        ///< Rising-edge trip count.
  bool tripping = false;          ///< Currently above threshold.
};

/// Feeds WindowSamples to every registered SLO and exports
/// `slo.<name>.{burn_short,burn_long,run_rate,budget_consumed,objective}`
/// gauges plus a `slo.<name>.trips` counter into the registry.
class SloEngine {
 public:
  SloEngine(MetricsRegistry& registry, std::vector<SloSpec> specs);

  /// Evaluates one closed window. Returns the names of SLOs that tripped
  /// on this window (rising edge only — an alert fires once per episode).
  std::vector<std::string> on_window(const WindowSample& window);

  const std::vector<SloStatus>& status() const noexcept { return status_; }
  const SloStatus* find(std::string_view name) const noexcept;

 private:
  struct PerSlo {
    /// Trailing (bad, total) deltas, newest last, bounded by long_windows.
    std::deque<std::pair<std::uint64_t, std::uint64_t>> history;
    std::uint64_t cum_bad = 0;
    std::uint64_t cum_total = 0;
    GaugeId burn_short;
    GaugeId burn_long;
    GaugeId run_rate;
    GaugeId budget;
    CounterId trips;
  };

  MetricsRegistry& registry_;
  std::vector<SloStatus> status_;
  std::vector<PerSlo> state_;
};

/// The stock deployment objectives (deadline misses, compute outages,
/// fronthaul lateness) used by pran-sim and the E19/E21 benches unless a
/// caller overrides them.
std::vector<SloSpec> default_deployment_slos();

}  // namespace pran::telemetry
