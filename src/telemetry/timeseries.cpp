#include "telemetry/timeseries.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::telemetry {

std::uint64_t WindowSample::counter_delta(
    std::string_view name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.delta;
  return 0;
}

double WindowSample::gauge(std::string_view name,
                           double fallback) const noexcept {
  for (const auto& g : gauges)
    if (g.name == name) return g.value;
  return fallback;
}

json::Value WindowSample::to_json() const {
  json::Value obj = json::Value::object();
  obj.set("window", json::Value(static_cast<double>(index)));
  obj.set("t_start_ms", json::Value(sim::to_seconds(t_start) * 1e3));
  obj.set("t_end_ms", json::Value(sim::to_seconds(t_end) * 1e3));
  json::Value cs = json::Value::object();
  for (const auto& c : counters)
    cs.set(c.name, json::Value(static_cast<double>(c.delta)));
  obj.set("counters", std::move(cs));
  json::Value gs = json::Value::object();
  for (const auto& g : gauges) gs.set(g.name, json::Value(g.value));
  obj.set("gauges", std::move(gs));
  json::Value hs = json::Value::object();
  for (const auto& h : histograms) {
    json::Value digest = json::Value::object();
    digest.set("count", json::Value(static_cast<double>(h.count)));
    digest.set("mean", json::Value(h.mean));
    digest.set("p50", json::Value(h.p50));
    digest.set("p95", json::Value(h.p95));
    digest.set("p99", json::Value(h.p99));
    hs.set(h.name, std::move(digest));
  }
  obj.set("histograms", std::move(hs));
  return obj;
}

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry& registry,
                                       Config config)
    : registry_(registry), config_(config) {
  PRAN_REQUIRE(config_.window > 0, "timeline window must be positive");
  PRAN_REQUIRE(config_.history >= 1, "timeline history must be >= 1");
  prev_ = registry_.snapshot();
}

void TimeSeriesRecorder::open_jsonl(const std::string& path) {
  jsonl_.open(path, std::ios::out | std::ios::trunc);
  PRAN_REQUIRE(jsonl_.is_open(), "cannot open timeline output: " + path);
}

const WindowSample& TimeSeriesRecorder::sample(sim::Time now) {
  MetricsSnapshot cur = registry_.snapshot();

  WindowSample w;
  w.index = next_index_++;
  w.t_start = window_start_;
  w.t_end = now;
  window_start_ = now;

  // Counter deltas: both snapshots are sorted by name and the previous one
  // is a prefix-set of the current (metrics register, never unregister), so
  // one merge walk suffices. Freshly registered counters baseline at 0.
  {
    std::size_t p = 0;
    for (const auto& c : cur.counters) {
      while (p < prev_.counters.size() && prev_.counters[p].name < c.name)
        ++p;
      std::uint64_t before = 0;
      if (p < prev_.counters.size() && prev_.counters[p].name == c.name)
        before = prev_.counters[p].value;
      if (c.value > before)
        w.counters.push_back({c.name, c.value - before});
    }
  }

  for (const auto& g : cur.gauges) w.gauges.push_back({g.name, g.value});

  {
    std::size_t p = 0;
    for (const auto& h : cur.histograms) {
      while (p < prev_.histograms.size() && prev_.histograms[p].name < h.name)
        ++p;
      // Per-window digest from the bucket deltas: reuse the snapshot
      // HistogramValue so the quantile convention is the shared one.
      MetricsSnapshot::HistogramValue delta = h;
      if (p < prev_.histograms.size() && prev_.histograms[p].name == h.name) {
        const auto& before = prev_.histograms[p];
        for (std::size_t b = 0; b < delta.buckets.size(); ++b)
          delta.buckets[b] -= before.buckets[b];
        delta.underflow -= before.underflow;
        delta.overflow -= before.overflow;
        delta.sum -= before.sum;
      }
      const std::uint64_t count = delta.total();
      if (count == 0) continue;
      w.histograms.push_back({h.name, count, delta.mean(),
                              delta.quantile(0.50), delta.quantile(0.95),
                              delta.quantile(0.99)});
    }
  }

  prev_ = std::move(cur);

  if (jsonl_.is_open()) {
    jsonl_ << w.to_json().dump() << '\n';
    jsonl_.flush();
  }

  windows_.push_back(std::move(w));
  while (windows_.size() > config_.history) windows_.pop_front();
  return windows_.back();
}

}  // namespace pran::telemetry
