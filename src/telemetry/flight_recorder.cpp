#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <vector>

#include "common/check.hpp"

namespace pran::telemetry {

namespace {

/// Filesystem-safe slug for the dump filename.
std::string sanitize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    (c >= 'A' && c <= 'Z');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(const TimeSeriesRecorder& recorder,
                               const SpanCollector* spans, Config config)
    : recorder_(recorder), spans_(spans), config_(std::move(config)) {
  PRAN_REQUIRE(config_.max_windows >= 1 && config_.max_transitions >= 1 &&
                   config_.max_events >= 1,
               "flight recorder rings need capacity >= 1");
}

void FlightRecorder::record_transition(sim::Time at, int from_rung,
                                       int to_rung,
                                       std::string_view rung_name) {
  transitions_.push_back({at, from_rung, to_rung, std::string(rung_name)});
  while (transitions_.size() > config_.max_transitions)
    transitions_.pop_front();
}

void FlightRecorder::record_event(sim::Time at, std::string_view kind,
                                  std::string_view detail) {
  events_.push_back({at, std::string(kind), std::string(detail)});
  while (events_.size() > config_.max_events) events_.pop_front();
}

json::Value FlightRecorder::build_postmortem(sim::Time at,
                                             std::string_view reason,
                                             std::string_view detail) const {
  json::Value doc = json::Value::object();
  doc.set("kind", json::Value("pran_postmortem"));
  doc.set("reason", json::Value(std::string(reason)));
  doc.set("detail", json::Value(std::string(detail)));
  doc.set("t_ms", json::Value(sim::to_seconds(at) * 1e3));
  doc.set("trigger_index", json::Value(static_cast<double>(triggers_)));

  // The last-N KPI windows, oldest first.
  json::Value windows = json::Value::array();
  const auto& ring = recorder_.windows();
  const std::size_t take = std::min(config_.max_windows, ring.size());
  for (std::size_t i = ring.size() - take; i < ring.size(); ++i)
    windows.push_back(ring[i].to_json());
  doc.set("windows", std::move(windows));

  // Degradation-ladder transitions preceding the trigger.
  json::Value transitions = json::Value::array();
  for (const auto& t : transitions_) {
    json::Value obj = json::Value::object();
    obj.set("t_ms", json::Value(sim::to_seconds(t.at) * 1e3));
    obj.set("from_rung", json::Value(static_cast<double>(t.from_rung)));
    obj.set("to_rung", json::Value(static_cast<double>(t.to_rung)));
    obj.set("rung_name", json::Value(t.rung_name));
    transitions.push_back(std::move(obj));
  }
  doc.set("ladder_transitions", std::move(transitions));

  json::Value events = json::Value::array();
  for (const auto& e : events_) {
    json::Value obj = json::Value::object();
    obj.set("t_ms", json::Value(sim::to_seconds(e.at) * 1e3));
    obj.set("kind", json::Value(e.kind));
    obj.set("detail", json::Value(e.detail));
    events.push_back(std::move(obj));
  }
  doc.set("events", std::move(events));

  // Tail of simulated-time spans (the per-subframe execution record).
  json::Value spans = json::Value::array();
  if (spans_ != nullptr) {
    std::vector<SpanRecord> records = spans_->records();
    std::vector<const SpanRecord*> sim_records;
    sim_records.reserve(records.size());
    for (const auto& r : records)
      if (r.kind != SpanKind::kWall) sim_records.push_back(&r);
    const std::size_t keep = std::min(config_.max_spans, sim_records.size());
    for (std::size_t i = sim_records.size() - keep; i < sim_records.size();
         ++i) {
      const SpanRecord& r = *sim_records[i];
      json::Value obj = json::Value::object();
      obj.set("name", json::Value(spans_->name(r.name_id)));
      obj.set("track", json::Value(static_cast<double>(r.track)));
      obj.set("t_ms", json::Value(static_cast<double>(r.start_ns) / 1e6));
      obj.set("dur_ms",
              json::Value(static_cast<double>(r.duration_ns) / 1e6));
      if (r.arg0 != kNoArg)
        obj.set("arg0", json::Value(static_cast<double>(r.arg0)));
      if (r.arg1 != kNoArg)
        obj.set("arg1", json::Value(static_cast<double>(r.arg1)));
      spans.push_back(std::move(obj));
    }
  }
  doc.set("spans", std::move(spans));
  return doc;
}

std::string FlightRecorder::trigger(sim::Time at, std::string_view reason,
                                    std::string_view detail) {
  const json::Value doc = build_postmortem(at, reason, detail);
  const std::size_t index = triggers_++;
  if (config_.out_dir.empty() || dumps_written_ >= config_.max_dumps)
    return std::string();
  const std::string path = config_.out_dir + "/postmortem_" +
                           std::to_string(index) + "_" + sanitize(reason) +
                           ".json";
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  PRAN_REQUIRE(out.is_open(), "cannot write post-mortem: " + path);
  out << doc.dump(2) << '\n';
  ++dumps_written_;
  return path;
}

}  // namespace pran::telemetry
