#pragma once

/// \file registry.hpp
/// Thread-safe metrics registry: counters, gauges and fixed-bucket
/// histograms, sharded so hot-path updates are wait-free.
///
/// Sharding model: each thread owns a stable small index
/// (`thread_index()`, handed out once per thread from a global counter)
/// that selects one of `Config::shards` per-metric arenas. An update is a
/// single relaxed `fetch_add` on the calling thread's arena slot — no
/// locks, no CAS loops — and distinct threads touch distinct cache
/// regions, so instrumented hot paths (the turbo decoder wrapper, the
/// executor tick) pay a handful of nanoseconds. `snapshot()` merges the
/// arenas.
///
/// Determinism contract (the `--threads` invariance the parallel sweeps
/// guarantee): counter adds and histogram observations are commutative
/// integer sums — histogram value sums are accumulated in fixed-point
/// (microunit) integers precisely so the merged snapshot is a pure
/// function of the *multiset* of observations, independent of which
/// thread recorded each one or of shard count. Gauges are last-write-wins
/// and should be set from one logical owner (they carry end-of-run KPI
/// values, not hot-path increments).
///
/// Registration (`counter()` / `gauge()` / `histogram()`) takes a mutex
/// and is idempotent per name; do it once at startup or via the
/// static-local caching in the PRAN_COUNTER_* macros. Capacities are
/// fixed at construction so arenas never reallocate under concurrent
/// writers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pran::telemetry {

/// Stable, dense per-thread index (first call on each thread claims the
/// next value). Used to pick a metrics shard; also exported for span
/// lanes and tests.
unsigned thread_index() noexcept;

/// Fixed-point scale for histogram value sums: 1e6 ticks per unit keeps
/// the merge order-independent (integer adds commute exactly, double adds
/// do not) at a precision of one microunit per observation.
inline constexpr double kSumScale = 1e6;

struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

/// Point-in-time merged view of a registry; the exportable artifact
/// behind `--metrics-out`. Entries are sorted by name so two snapshots of
/// identical state serialise identically byte for byte.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    /// Sum of observed values (fixed-point accumulated, microunit exact).
    double sum = 0.0;

    std::uint64_t total() const noexcept;
    double mean() const noexcept;
    /// Approximate quantile from the binned data. Identical to
    /// pran::Histogram::quantile by construction — both delegate to
    /// pran::detail::binned_quantile (upper-edge convention; empty returns
    /// lo; q=0/q=1 snap to the first/last occupied edge).
    double quantile(double q) const;
    double bucket_lo(std::size_t i) const noexcept;
    double bucket_hi(std::size_t i) const noexcept;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// One JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Flat CSV (kind,name,value,lo,hi,underflow,overflow,sum,buckets) that
  /// round-trips through from_csv(); the format pran-report consumes.
  std::string to_csv() const;
  static MetricsSnapshot from_csv(const std::string& text);
};

class MetricsRegistry {
 public:
  struct Config {
    // Sized with labelled-family headroom: a deployment registers up to
    // ~3 counter families x (kDefaultMaxSeries + 1) per-cell series on
    // top of the ~60 scalar metrics (see telemetry/family.hpp on the
    // cardinality budget).
    std::size_t max_counters = 512;
    std::size_t max_gauges = 256;
    std::size_t max_histograms = 48;
    std::size_t max_bins = 64;
    unsigned shards = 16;
  };

  MetricsRegistry();  ///< Default Config.
  explicit MetricsRegistry(Config config);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register-or-look-up by name. Re-registering an existing name returns
  /// the same id (histograms must repeat the same bounds).
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name, double lo, double hi,
                        std::size_t bins);

  /// Wait-free: one relaxed fetch_add on the calling thread's shard.
  void add(CounterId id, std::uint64_t n = 1) noexcept;
  /// Last-write-wins store; set from a single logical owner.
  void set(GaugeId id, double value) noexcept;
  /// Wait-free: bucket fetch_add plus a fixed-point sum fetch_add.
  void observe(HistogramId id, double value) noexcept;

  /// Merged value across shards (tests and quick checks).
  std::uint64_t counter_value(CounterId id) const;
  double gauge_value(GaugeId id) const;

  std::size_t num_counters() const;
  std::size_t num_gauges() const;
  std::size_t num_histograms() const;
  const Config& config() const noexcept { return config_; }

  MetricsSnapshot snapshot() const;

 private:
  struct HistogramMeta {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    double inv_width = 1.0;
    std::size_t bins = 1;
  };

  std::size_t hist_cell(unsigned shard, std::uint32_t id,
                        std::size_t bucket) const noexcept {
    return (static_cast<std::size_t>(shard) * config_.max_histograms + id) *
               (config_.max_bins + 2) +
           bucket;
  }

  Config config_;

  mutable std::mutex mutex_;  // guards registration state only
  std::unordered_map<std::string, std::uint32_t> counter_ids_;
  std::unordered_map<std::string, std::uint32_t> gauge_ids_;
  std::unordered_map<std::string, std::uint32_t> histogram_ids_;
  /// Names/meta live in fixed arrays (never reallocated) so readers can
  /// index them lock-free while another thread registers.
  std::unique_ptr<std::string[]> counter_names_;
  std::unique_ptr<std::string[]> gauge_names_;
  std::unique_ptr<HistogramMeta[]> histogram_meta_;
  std::atomic<std::uint32_t> counter_count_{0};
  std::atomic<std::uint32_t> gauge_count_{0};
  std::atomic<std::uint32_t> histogram_count_{0};

  /// Arenas, shard-major: shard s's slots are contiguous, so one thread's
  /// updates stay in its own cache lines.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counter_cells_;
  std::unique_ptr<std::atomic<double>[]> gauge_cells_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> hist_buckets_;
  std::unique_ptr<std::atomic<std::int64_t>[]> hist_sums_;
};

}  // namespace pran::telemetry
