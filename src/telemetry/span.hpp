#pragma once

/// \file span.hpp
/// Pipeline-stage spans: named, nested intervals recorded into per-thread
/// ring buffers and exported as Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing) or folded into aggregate stage-latency
/// histograms.
///
/// Two time bases share one collector:
///  * wall spans — `ScopedSpan` (usually via the PRAN_SPAN macro) measures
///    real compute with the steady clock: kernel wrappers, solver calls,
///    the deployment tick. Each recording thread owns a lane, so the hot
///    path is a clock read plus a ring write — no locks, no allocation.
///  * sim spans — `emit_sim()` records intervals in *simulated*
///    nanoseconds on a virtual track (e.g. "server 3 ran cell 5's
///    subframe from t=12 ms for 0.4 ms"). The discrete-event engine is
///    single-threaded, so these land in the calling thread's lane too.
///
/// Rings overwrite oldest-first once full (`dropped()` counts what fell
/// out), so a long run can always export its tail. Reading APIs
/// (records / to_chrome_trace / aggregate_into) must only run while no
/// thread is recording — quiesce the pool first, like every sweep does.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"

namespace pran::telemetry {

/// Sentinel for "no argument" on a span.
inline constexpr std::int64_t kNoArg = INT64_MIN;

enum class SpanKind : std::uint8_t {
  kWall,        ///< Duration measured with the steady clock.
  kSim,         ///< Duration in simulated time on a virtual track.
  kInstantSim,  ///< Zero-duration marker in simulated time.
};

struct SpanRecord {
  std::uint32_t name_id = 0;
  SpanKind kind = SpanKind::kWall;
  std::uint16_t depth = 0;      ///< Nesting depth within the thread (wall).
  std::int32_t track = 0;       ///< Sim kinds: virtual track (server id...).
  std::int64_t start_ns = 0;    ///< Wall: ns since epoch_ns(); sim: sim ns.
  std::int64_t duration_ns = 0;
  std::int64_t arg0 = kNoArg;
  std::int64_t arg1 = kNoArg;
};

class SpanCollector {
 public:
  struct Config {
    /// Span records kept per thread lane (ring buffer).
    std::size_t ring_capacity = 1u << 15;
    /// Thread lanes; threads beyond this drop their spans (counted).
    unsigned max_lanes = 64;
    /// Bucket range for aggregate_into()'s per-stage histograms, in µs.
    double hist_lo_us = 0.0;
    double hist_hi_us = 10'000.0;
    std::size_t hist_bins = 50;
  };

  SpanCollector();  ///< Default Config.
  explicit SpanCollector(Config config);
  ~SpanCollector();

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Interns a span name (mutex; cache the id — the PRAN_SPAN macro keeps
  /// it in a function-local static).
  std::uint32_t intern(std::string_view name);
  const std::string& name(std::uint32_t id) const;

  /// Records a finished wall span on the calling thread's lane. `start_ns`
  /// and `end_ns` are wall_now_ns() values; ScopedSpan is the normal way
  /// to call this.
  void record_wall(std::uint32_t name_id, std::uint16_t depth,
                   std::int64_t start_ns, std::int64_t end_ns,
                   std::int64_t arg0 = kNoArg,
                   std::int64_t arg1 = kNoArg) noexcept;

  /// Records an interval in simulated time on virtual track `track`.
  void emit_sim(std::uint32_t name_id, std::int32_t track,
                std::int64_t start_sim_ns, std::int64_t duration_ns,
                std::int64_t arg0 = kNoArg,
                std::int64_t arg1 = kNoArg) noexcept;

  /// Zero-duration marker in simulated time (trace events, faults...).
  void instant_sim(std::uint32_t name_id, std::int32_t track,
                   std::int64_t at_sim_ns,
                   std::int64_t arg0 = kNoArg) noexcept;

  /// Nesting-depth bookkeeping for ScopedSpan: returns the depth the new
  /// span runs at and pushes one level on the calling thread's lane.
  std::uint16_t enter() noexcept;
  void leave() noexcept;

  /// ScopedSpan fast path: one lane lookup for the whole span lifecycle.
  /// begin_span() claims the calling thread's lane (nullptr on overflow)
  /// and pushes one nesting level; end_span() pops it and records. The
  /// opaque handle is only valid on the thread that called begin_span().
  void* begin_span() noexcept;
  void end_span(void* lane, std::uint32_t name_id, std::int64_t start_ns,
                std::int64_t end_ns, std::int64_t arg0,
                std::int64_t arg1) noexcept;

  /// All retained records, lane by lane (each lane oldest-first). Only
  /// call while no thread is recording.
  std::vector<SpanRecord> records() const;
  std::uint64_t recorded() const;  ///< Total ever recorded (incl. dropped).
  std::uint64_t dropped() const;   ///< Overwritten by ring wrap + lane overflow.
  void clear();

  /// Chrome trace-event JSON (object format, {"traceEvents": [...]}).
  /// Wall spans appear under process "wall-clock" with one row per
  /// recording thread; sim spans under process "simulated-time" with one
  /// row per track. Loadable in Perfetto / chrome://tracing.
  std::string to_chrome_trace() const;

  /// Folds span durations into per-stage latency histograms
  /// ("<prefix><name>", µs, bounds from Config) plus drop/total counters,
  /// so stage timings ride the same snapshot as every other metric.
  void aggregate_into(MetricsRegistry& registry,
                      std::string_view prefix = "span_us.") const;

  /// Wall epoch: the steady-clock ns all wall spans are relative to.
  std::int64_t epoch_ns() const noexcept { return epoch_ns_; }

  const Config& config() const noexcept { return config_; }
  unsigned lanes_in_use() const;

 private:
  struct Lane {
    std::vector<SpanRecord> ring;
    std::uint64_t count = 0;  ///< Total pushed; ring keeps the last cap.
    std::uint16_t depth = 0;  ///< Owning thread's current nesting depth.
  };

  Lane* lane() noexcept;  ///< Calling thread's lane (nullptr on overflow).
  void push(Lane* lane, const SpanRecord& record) noexcept;

  Config config_;
  std::uint64_t collector_id_;  ///< Unique per collector, keys TLS lookup.
  std::int64_t epoch_ns_;
  std::vector<Lane> lanes_;  ///< Sized max_lanes at construction, immutable.
  std::atomic<unsigned> lanes_used_{0};
  std::atomic<std::uint64_t> overflow_dropped_{0};

  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
};

/// RAII wall span; prefer the PRAN_SPAN macro, which interns the name once
/// per call site and compiles away under PRAN_TELEMETRY=OFF.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector& collector, std::uint32_t name_id,
             std::int64_t arg0 = kNoArg, std::int64_t arg1 = kNoArg) noexcept
      : collector_(collector),
        name_id_(name_id),
        arg0_(arg0),
        arg1_(arg1),
        lane_(collector.begin_span()),
        start_ns_(wall_now_ns()) {}

  ~ScopedSpan() {
    collector_.end_span(lane_, name_id_, start_ns_, wall_now_ns(), arg0_,
                        arg1_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector& collector_;
  std::uint32_t name_id_;
  std::int64_t arg0_;
  std::int64_t arg1_;
  void* lane_;
  std::int64_t start_ns_;
};

}  // namespace pran::telemetry
