#include "telemetry/slo.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pran::telemetry {

namespace {

/// Burn multiple over a trailing suffix of the history.
double trailing_burn(
    const std::deque<std::pair<std::uint64_t, std::uint64_t>>& history,
    std::size_t windows, double objective) {
  std::uint64_t bad = 0;
  std::uint64_t total = 0;
  const std::size_t n = std::min(windows, history.size());
  for (std::size_t i = history.size() - n; i < history.size(); ++i) {
    bad += history[i].first;
    total += history[i].second;
  }
  if (total == 0) return 0.0;
  const double rate = static_cast<double>(bad) / static_cast<double>(total);
  return rate / objective;
}

}  // namespace

SloEngine::SloEngine(MetricsRegistry& registry, std::vector<SloSpec> specs)
    : registry_(registry) {
  status_.reserve(specs.size());
  state_.reserve(specs.size());
  for (auto& spec : specs) {
    PRAN_REQUIRE(!spec.name.empty(), "slo needs a name");
    PRAN_REQUIRE(!spec.bad_counter.empty() && !spec.total_counter.empty(),
                 "slo '" + spec.name + "' needs bad and total counters");
    PRAN_REQUIRE(spec.objective > 0.0 && spec.objective <= 1.0,
                 "slo '" + spec.name + "' objective must be in (0, 1]");
    PRAN_REQUIRE(spec.short_windows >= 1 &&
                     spec.long_windows >= spec.short_windows,
                 "slo '" + spec.name +
                     "' needs 1 <= short_windows <= long_windows");
    PRAN_REQUIRE(spec.burn_threshold > 0.0,
                 "slo '" + spec.name + "' burn threshold must be positive");
    const std::string prefix = "slo." + spec.name + ".";
    PerSlo per;
    per.burn_short = registry_.gauge(prefix + "burn_short");
    per.burn_long = registry_.gauge(prefix + "burn_long");
    per.run_rate = registry_.gauge(prefix + "run_rate");
    per.budget = registry_.gauge(prefix + "budget_consumed");
    per.trips = registry_.counter(prefix + "trips");
    registry_.set(registry_.gauge(prefix + "objective"), spec.objective);
    registry_.set(registry_.gauge(prefix + "burn_threshold"),
                  spec.burn_threshold);
    SloStatus st;
    st.spec = std::move(spec);
    status_.push_back(std::move(st));
    state_.push_back(std::move(per));
  }
}

std::vector<std::string> SloEngine::on_window(const WindowSample& window) {
  std::vector<std::string> tripped;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    SloStatus& st = status_[i];
    PerSlo& per = state_[i];
    const std::uint64_t bad = window.counter_delta(st.spec.bad_counter);
    const std::uint64_t total = window.counter_delta(st.spec.total_counter);
    per.history.emplace_back(bad, total);
    while (per.history.size() > st.spec.long_windows) per.history.pop_front();
    per.cum_bad += bad;
    per.cum_total += total;

    st.burn_short =
        trailing_burn(per.history, st.spec.short_windows, st.spec.objective);
    st.burn_long =
        trailing_burn(per.history, st.spec.long_windows, st.spec.objective);
    st.run_rate = per.cum_total == 0
                      ? 0.0
                      : static_cast<double>(per.cum_bad) /
                            static_cast<double>(per.cum_total);
    st.budget_consumed = st.run_rate / st.spec.objective;

    const bool above = st.burn_short >= st.spec.burn_threshold &&
                       st.burn_long >= st.spec.burn_threshold;
    if (above && !st.tripping) {
      ++st.trips;
      registry_.add(per.trips);
      tripped.push_back(st.spec.name);
    }
    st.tripping = above;

    registry_.set(per.burn_short, st.burn_short);
    registry_.set(per.burn_long, st.burn_long);
    registry_.set(per.run_rate, st.run_rate);
    registry_.set(per.budget, st.budget_consumed);
  }
  return tripped;
}

const SloStatus* SloEngine::find(std::string_view name) const noexcept {
  for (const auto& st : status_)
    if (st.spec.name == name) return &st;
  return nullptr;
}

std::vector<SloSpec> default_deployment_slos() {
  std::vector<SloSpec> specs;
  {
    // The paper's headline claim: deadline misses stay near zero.
    SloSpec s;
    s.name = "deadline_miss_rate";
    s.bad_counter = "deployment.deadline_misses";
    s.total_counter = "deployment.subframes";
    s.objective = 1e-3;
    specs.push_back(std::move(s));
  }
  {
    // Computational outages are budgeted, not free (DESIGN §13).
    SloSpec s;
    s.name = "compute_outage_rate";
    s.bad_counter = "compute.outage_jobs";
    s.total_counter = "deployment.subframes";
    s.objective = 5e-2;
    specs.push_back(std::move(s));
  }
  {
    // Fronthaul lateness: the leading indicator the degradation ladder
    // reacts to — its burn alert is what trips during a brownout even
    // when the ladder holds the miss rate itself at zero. The 500 us
    // late threshold is a soft bound that the tail of every healthy
    // burst train grazes (~20% of bursts on the E19 fibre, 0% once a
    // compression rung is in), so the objective budgets for that
    // steady-state grazing: at 10%, normal operation burns at 2x and
    // stays under the 4x alert, while a brownout (every burst late)
    // burns at 5-10x at onset. The windows are fast-burn shaped (1
    // short / 3 long at 3x) because the ladder's compression rung
    // erases the lateness within about two windows of reacting — a
    // slow 12-window alert would average the excursion away and page
    // on nothing, while the fast alert fires one window after the
    // ladder transition it is meant to explain.
    SloSpec s;
    s.name = "fronthaul_late_rate";
    s.bad_counter = "fronthaul.late_bursts";
    s.total_counter = "fronthaul.bursts";
    s.objective = 0.1;
    s.short_windows = 1;
    s.long_windows = 3;
    s.burn_threshold = 3.0;
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace pran::telemetry
