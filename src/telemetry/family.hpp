#pragma once

/// \file family.hpp
/// Labelled metric families: a counter/gauge/histogram replicated across a
/// small integer-keyed label dimension (`cell=`, `server=`, `rung=`, ...),
/// layered on MetricsRegistry without touching its write path.
///
/// Design: each (family, label value) pair is flattened to an ordinary
/// registry series named `base{key=value}` — e.g.
/// `deployment.cell_misses{cell=3}` — so snapshots, CSV/JSON export,
/// sorting and the thread-count-invariance contract all hold unchanged.
/// The family caches the registered ids in a fixed atomic array indexed by
/// label value: the hot path is one relaxed load plus the registry's own
/// relaxed fetch_add (wait-free after a label's first touch; the first
/// touch registers under the registry mutex, exactly like the static-local
/// init in the PRAN_COUNTER_* macros).
///
/// Cardinality budget: a family holds at most `max_series` concrete label
/// values. Writes with label >= max_series fold into one clamp series
/// `base{key=other}` and bump the `telemetry.label_overflow` counter —
/// high-cardinality keys degrade to a visible aggregate instead of
/// exhausting registry capacity (DESIGN §14 discusses the budget).
///
/// Label keys come from a fixed allowlist (`label_key_allowed`); the
/// pran-lint `metric-name` rule rejects ad-hoc keys at review time and the
/// constructor rejects them at run time.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "telemetry/registry.hpp"

namespace pran::telemetry {

/// Default per-family label-cardinality budget.
inline constexpr std::size_t kDefaultMaxSeries = 64;

/// True when `key` is an approved label key (cell, server, rung, slice).
bool label_key_allowed(std::string_view key) noexcept;

/// Flattened registry name for one series: `base{key=value}`.
std::string series_name(std::string_view base, std::string_view key,
                        std::string_view value);

/// A labelled series name split back into its parts.
struct ParsedSeries {
  std::string base;   ///< Family base name.
  std::string key;    ///< Label key.
  std::string value;  ///< Label value ("other" for the clamp series).
};

/// Parses `base{key=value}`; returns false for unlabelled plain names.
bool parse_series_name(std::string_view full, ParsedSeries& out);

namespace detail {

/// Id-cache shared by the three family kinds: a fixed array of atomic
/// slots (−1 = unregistered), one per label value plus one clamp slot.
class SeriesIndex {
 public:
  SeriesIndex(std::string base, std::string key, std::size_t max_series);

  const std::string& base() const noexcept { return base_; }
  const std::string& key() const noexcept { return key_; }
  std::size_t max_series() const noexcept { return max_series_; }

  /// Maps a label value to its slot, folding overflow into the clamp slot.
  std::size_t slot_of(std::size_t label) const noexcept {
    return label < max_series_ ? label : max_series_;
  }
  /// Registry name of a slot (the clamp slot renders as value "other").
  std::string name_of_slot(std::size_t slot) const;

  /// Cached id of a slot, or a negative value when not yet registered.
  std::int64_t load(std::size_t slot) const noexcept {
    return ids_[slot].load(std::memory_order_acquire);
  }
  void store(std::size_t slot, std::int64_t id) noexcept {
    ids_[slot].store(id, std::memory_order_release);
  }

 private:
  std::string base_;
  std::string key_;
  std::size_t max_series_;
  std::unique_ptr<std::atomic<std::int64_t>[]> ids_;
};

}  // namespace detail

/// Counter family: `add(label, n)` is wait-free after the label's first
/// touch. Registration failures (registry capacity, bad name) throw on the
/// first touch, so `add` is not noexcept.
class CounterFamily {
 public:
  CounterFamily(MetricsRegistry& registry, std::string_view base,
                std::string_view label_key,
                std::size_t max_series = kDefaultMaxSeries);

  void add(std::size_t label, std::uint64_t n = 1);
  void inc(std::size_t label) { add(label, 1); }

  /// Merged value of one label's series (0 when never touched).
  std::uint64_t value(std::size_t label) const;

  const std::string& base() const noexcept { return index_.base(); }
  const std::string& label_key() const noexcept { return index_.key(); }

 private:
  CounterId id_for(std::size_t slot);

  MetricsRegistry& registry_;
  detail::SeriesIndex index_;
  CounterId overflow_counter_;
};

/// Gauge family: last-write-wins per series; set from one logical owner.
class GaugeFamily {
 public:
  GaugeFamily(MetricsRegistry& registry, std::string_view base,
              std::string_view label_key,
              std::size_t max_series = kDefaultMaxSeries);

  void set(std::size_t label, double value);
  double value(std::size_t label) const;

  const std::string& base() const noexcept { return index_.base(); }
  const std::string& label_key() const noexcept { return index_.key(); }

 private:
  GaugeId id_for(std::size_t slot);

  MetricsRegistry& registry_;
  detail::SeriesIndex index_;
  CounterId overflow_counter_;
};

/// Histogram family: every series shares the family's fixed bounds.
class HistogramFamily {
 public:
  HistogramFamily(MetricsRegistry& registry, std::string_view base,
                  std::string_view label_key, double lo, double hi,
                  std::size_t bins,
                  std::size_t max_series = kDefaultMaxSeries);

  void observe(std::size_t label, double value);

  const std::string& base() const noexcept { return index_.base(); }
  const std::string& label_key() const noexcept { return index_.key(); }

 private:
  HistogramId id_for(std::size_t slot);

  MetricsRegistry& registry_;
  detail::SeriesIndex index_;
  CounterId overflow_counter_;
  double lo_;
  double hi_;
  std::size_t bins_;
};

}  // namespace pran::telemetry
