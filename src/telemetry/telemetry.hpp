#pragma once

/// \file telemetry.hpp
/// Process-global telemetry facade: one MetricsRegistry + one
/// SpanCollector shared by every library, plus the instrumentation macros
/// the hot paths use.
///
/// The macros intern names once per call site (function-local static id)
/// and compile to nothing when the library is configured with
/// -DPRAN_TELEMETRY=OFF — the classes stay available either way, only the
/// global instrumentation points vanish. Keep per-call overhead in mind:
/// PRAN_SPAN is two clock reads plus a ring write; the counter/histogram
/// macros are one relaxed fetch_add.

#include <string>
#include <string_view>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

#ifndef PRAN_TELEMETRY_ENABLED
#define PRAN_TELEMETRY_ENABLED 1
#endif

namespace pran::telemetry {

/// True when the build has global instrumentation compiled in.
constexpr bool enabled() noexcept { return PRAN_TELEMETRY_ENABLED != 0; }

/// Process-global registry / collector (constructed on first use, never
/// destroyed, so instrumented code may run during static teardown).
MetricsRegistry& registry();
SpanCollector& spans();

/// Resets the global registry and collector to empty (tests and
/// multi-sweep tools; callers must quiesce recording threads first).
void reset_for_testing();

/// Serialises registry() (with spans() folded in as span_us.* histograms)
/// to `path`. Format by extension: .json → MetricsSnapshot::to_json,
/// anything else → to_csv. Throws ContractViolation if the file cannot be
/// written.
void write_metrics_file(const std::string& path);

/// Writes spans() as Chrome trace-event JSON to `path` (open in Perfetto
/// or chrome://tracing).
void write_chrome_trace_file(const std::string& path);

}  // namespace pran::telemetry

#if PRAN_TELEMETRY_ENABLED

#define PRAN_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define PRAN_TELEMETRY_CONCAT(a, b) PRAN_TELEMETRY_CONCAT_IMPL(a, b)

/// Scoped wall-clock span around the enclosing block:
///   PRAN_SPAN("turbo_decode");
///   PRAN_SPAN("turbo_decode", cell_id);
///   PRAN_SPAN("turbo_decode", cell_id, subframe);
#define PRAN_SPAN(name_literal, ...)                                        \
  static const std::uint32_t PRAN_TELEMETRY_CONCAT(pran_span_id_,           \
                                                   __LINE__) =             \
      ::pran::telemetry::spans().intern(name_literal);                      \
  ::pran::telemetry::ScopedSpan PRAN_TELEMETRY_CONCAT(pran_span_,           \
                                                      __LINE__)(           \
      ::pran::telemetry::spans(),                                           \
      PRAN_TELEMETRY_CONCAT(pran_span_id_, __LINE__) __VA_OPT__(, )         \
          __VA_ARGS__)

/// Adds `n` (default 1) to the named global counter.
#define PRAN_COUNTER_ADD(name_literal, n)                                   \
  do {                                                                      \
    static const ::pran::telemetry::CounterId pran_counter_id =             \
        ::pran::telemetry::registry().counter(name_literal);                \
    ::pran::telemetry::registry().add(pran_counter_id, (n));                \
  } while (false)

#define PRAN_COUNTER_INC(name_literal) PRAN_COUNTER_ADD(name_literal, 1)

/// Last-write-wins gauge store (end-of-run KPI values).
#define PRAN_GAUGE_SET(name_literal, value)                                 \
  do {                                                                      \
    static const ::pran::telemetry::GaugeId pran_gauge_id =                 \
        ::pran::telemetry::registry().gauge(name_literal);                  \
    ::pran::telemetry::registry().set(pran_gauge_id, (value));              \
  } while (false)

/// Observes `value` into a named histogram with fixed bounds; bounds must
/// match across call sites for the same name.
#define PRAN_HIST_OBSERVE(name_literal, lo, hi, bins, value)                \
  do {                                                                      \
    static const ::pran::telemetry::HistogramId pran_hist_id =              \
        ::pran::telemetry::registry().histogram(name_literal, (lo), (hi),   \
                                                (bins));                    \
    ::pran::telemetry::registry().observe(pran_hist_id, (value));           \
  } while (false)

/// Interval on a simulated-time track (server lane, cell lane...).
#define PRAN_SIM_SPAN(name_literal, track, start_sim_ns, duration_ns, ...)  \
  do {                                                                      \
    static const std::uint32_t pran_sim_span_id =                           \
        ::pran::telemetry::spans().intern(name_literal);                    \
    ::pran::telemetry::spans().emit_sim(pran_sim_span_id, (track),          \
                                        (start_sim_ns),                     \
                                        (duration_ns)__VA_OPT__(, )         \
                                            __VA_ARGS__);                   \
  } while (false)

/// Zero-duration marker in simulated time.
#define PRAN_SIM_INSTANT(name_literal, track, at_sim_ns, ...)               \
  do {                                                                      \
    static const std::uint32_t pran_sim_instant_id =                        \
        ::pran::telemetry::spans().intern(name_literal);                    \
    ::pran::telemetry::spans().instant_sim(pran_sim_instant_id, (track),    \
                                           (at_sim_ns)__VA_OPT__(, )        \
                                               __VA_ARGS__);                \
  } while (false)

#else  // PRAN_TELEMETRY_ENABLED

#define PRAN_SPAN(name_literal, ...) \
  do {                               \
  } while (false)
#define PRAN_COUNTER_ADD(name_literal, n) \
  do {                                    \
  } while (false)
#define PRAN_COUNTER_INC(name_literal) \
  do {                                 \
  } while (false)
#define PRAN_GAUGE_SET(name_literal, value) \
  do {                                      \
  } while (false)
#define PRAN_HIST_OBSERVE(name_literal, lo, hi, bins, value) \
  do {                                                       \
  } while (false)
#define PRAN_SIM_SPAN(name_literal, track, start_sim_ns, duration_ns, ...) \
  do {                                                                     \
  } while (false)
#define PRAN_SIM_INSTANT(name_literal, track, at_sim_ns, ...) \
  do {                                                        \
  } while (false)

#endif  // PRAN_TELEMETRY_ENABLED
