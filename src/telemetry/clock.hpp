#pragma once

/// \file clock.hpp
/// The telemetry layer's wall clock. This header is the ONE place in src/
/// allowed to touch std::chrono (pran-lint's adhoc-timing rule enforces
/// it): every wall-clock measurement in the libraries goes through
/// Stopwatch or a span, so all timings share one monotonic clock and show
/// up in the same exported snapshot instead of ad-hoc locals.

#include <chrono>
#include <cstdint>

namespace pran::telemetry {

/// Monotonic nanoseconds since an arbitrary process-local origin
/// (std::chrono::steady_clock, so immune to NTP steps).
inline std::int64_t wall_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal monotonic stopwatch. Replaces the ad-hoc
/// `std::chrono::steady_clock::now()` pairs that used to live in the
/// solver and placer hot paths.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(wall_now_ns()) {}

  void reset() noexcept { start_ = wall_now_ns(); }

  std::int64_t elapsed_ns() const noexcept { return wall_now_ns() - start_; }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  std::int64_t start_;
};

}  // namespace pran::telemetry
