#include "telemetry/span.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/narrow.hpp"

namespace pran::telemetry {

namespace {

/// Thread-local lane cache. Keyed by a process-unique collector id (never
/// reused), so a stale entry for a destroyed collector can never alias a
/// new one. One entry per (thread, collector) pair — bounded in practice.
struct LaneRef {
  std::uint64_t collector_id;
  unsigned lane;
};

// pran-lint: allow(determinism-hazard) -- pure memo of (collector id ->
// lane slot); a stale entry is detected by id mismatch and rebuilt, so
// cache state never changes what gets recorded.
thread_local std::vector<LaneRef> t_lane_cache;

std::uint64_t next_collector_id() {
  // pran-lint: allow(determinism-hazard) -- collector identity tag used
  // only to invalidate the lane cache above; ids never appear in exported
  // traces or snapshots.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Chrome trace timestamps are microseconds; keep three decimals of ns.
std::string us_from_ns(std::int64_t ns) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ns) / 1e3;
  return os.str();
}

}  // namespace

SpanCollector::SpanCollector() : SpanCollector(Config()) {}

SpanCollector::SpanCollector(Config config)
    : config_(config),
      collector_id_(next_collector_id()),
      epoch_ns_(wall_now_ns()) {
  PRAN_REQUIRE(config_.ring_capacity >= 1, "ring capacity must be >= 1");
  PRAN_REQUIRE(config_.max_lanes >= 1, "collector needs at least one lane");
  PRAN_REQUIRE(config_.hist_lo_us < config_.hist_hi_us,
               "aggregate histogram needs lo < hi");
  PRAN_REQUIRE(config_.hist_bins >= 1, "aggregate histogram needs bins");
  lanes_.resize(config_.max_lanes);
  for (auto& lane : lanes_) lane.ring.reserve(config_.ring_capacity);
}

SpanCollector::~SpanCollector() = default;

std::uint32_t SpanCollector::intern(std::string_view name) {
  PRAN_REQUIRE(!name.empty(), "span name must be non-empty");
  std::lock_guard<std::mutex> lock(names_mutex_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = narrow_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

const std::string& SpanCollector::name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(names_mutex_);
  PRAN_REQUIRE(id < names_.size(), "unknown span name id");
  return names_[id];
}

SpanCollector::Lane* SpanCollector::lane() noexcept {
  for (const LaneRef& ref : t_lane_cache)
    if (ref.collector_id == collector_id_) {
      if (ref.lane >= config_.max_lanes) return nullptr;  // overflow thread
      return &lanes_[ref.lane];
    }
  const unsigned claimed = lanes_used_.fetch_add(1, std::memory_order_relaxed);
  t_lane_cache.push_back(LaneRef{collector_id_, claimed});
  if (claimed >= config_.max_lanes) return nullptr;
  return &lanes_[claimed];
}

void SpanCollector::push(Lane* lane, const SpanRecord& record) noexcept {
  if (lane == nullptr) {
    overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (lane->ring.size() < config_.ring_capacity) {
    lane->ring.push_back(record);  // capacity reserved: no allocation
  } else {
    lane->ring[lane->count % config_.ring_capacity] = record;
  }
  ++lane->count;
}

void SpanCollector::record_wall(std::uint32_t name_id, std::uint16_t depth,
                                std::int64_t start_ns, std::int64_t end_ns,
                                std::int64_t arg0,
                                std::int64_t arg1) noexcept {
  SpanRecord r;
  r.name_id = name_id;
  r.kind = SpanKind::kWall;
  r.depth = depth;
  r.start_ns = start_ns - epoch_ns_;
  r.duration_ns = end_ns - start_ns;
  r.arg0 = arg0;
  r.arg1 = arg1;
  push(lane(), r);
}

void SpanCollector::emit_sim(std::uint32_t name_id, std::int32_t track,
                             std::int64_t start_sim_ns,
                             std::int64_t duration_ns, std::int64_t arg0,
                             std::int64_t arg1) noexcept {
  SpanRecord r;
  r.name_id = name_id;
  r.kind = SpanKind::kSim;
  r.track = track;
  r.start_ns = start_sim_ns;
  r.duration_ns = duration_ns;
  r.arg0 = arg0;
  r.arg1 = arg1;
  push(lane(), r);
}

void SpanCollector::instant_sim(std::uint32_t name_id, std::int32_t track,
                                std::int64_t at_sim_ns,
                                std::int64_t arg0) noexcept {
  SpanRecord r;
  r.name_id = name_id;
  r.kind = SpanKind::kInstantSim;
  r.track = track;
  r.start_ns = at_sim_ns;
  r.arg0 = arg0;
  push(lane(), r);
}

std::uint16_t SpanCollector::enter() noexcept {
  Lane* l = lane();
  if (l == nullptr) return 0;
  return l->depth++;
}

void SpanCollector::leave() noexcept {
  Lane* l = lane();
  if (l != nullptr && l->depth > 0) --l->depth;
}

void* SpanCollector::begin_span() noexcept {
  Lane* l = lane();
  if (l != nullptr) ++l->depth;
  return l;
}

void SpanCollector::end_span(void* lane, std::uint32_t name_id,
                             std::int64_t start_ns, std::int64_t end_ns,
                             std::int64_t arg0, std::int64_t arg1) noexcept {
  Lane* l = static_cast<Lane*>(lane);
  SpanRecord r;
  r.name_id = name_id;
  r.kind = SpanKind::kWall;
  r.depth = l != nullptr && l->depth > 0 ? --l->depth : 0;
  r.start_ns = start_ns - epoch_ns_;
  r.duration_ns = end_ns - start_ns;
  r.arg0 = arg0;
  r.arg1 = arg1;
  push(l, r);
}

std::vector<SpanRecord> SpanCollector::records() const {
  std::vector<SpanRecord> out;
  for (const Lane& lane : lanes_) {
    const std::size_t kept =
        std::min<std::uint64_t>(lane.count, config_.ring_capacity);
    if (kept == 0) continue;
    // Oldest-first: the ring's logical start is count % capacity once full.
    const std::size_t start =
        lane.count <= config_.ring_capacity
            ? 0
            : static_cast<std::size_t>(lane.count % config_.ring_capacity);
    for (std::size_t i = 0; i < kept; ++i)
      out.push_back(lane.ring[(start + i) % config_.ring_capacity]);
  }
  return out;
}

std::uint64_t SpanCollector::recorded() const {
  std::uint64_t total = overflow_dropped_.load(std::memory_order_relaxed);
  for (const Lane& lane : lanes_) total += lane.count;
  return total;
}

std::uint64_t SpanCollector::dropped() const {
  std::uint64_t dropped = overflow_dropped_.load(std::memory_order_relaxed);
  for (const Lane& lane : lanes_)
    if (lane.count > config_.ring_capacity)
      dropped += lane.count - config_.ring_capacity;
  return dropped;
}

void SpanCollector::clear() {
  for (Lane& lane : lanes_) {
    lane.ring.clear();
    lane.count = 0;
    lane.depth = 0;
  }
  overflow_dropped_.store(0, std::memory_order_relaxed);
}

unsigned SpanCollector::lanes_in_use() const {
  return std::min(lanes_used_.load(std::memory_order_relaxed),
                  config_.max_lanes);
}

std::string SpanCollector::to_chrome_trace() const {
  // Copy names once so we do not take the mutex per record.
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    names = names_;
  }
  constexpr int kWallPid = 1;
  constexpr int kSimPid = 2;
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
     << ",\"args\":{\"name\":\"wall-clock\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
     << ",\"args\":{\"name\":\"simulated-time\"}}";
  for (unsigned t = 0; t < lanes_in_use(); ++t)
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kWallPid
       << ",\"tid\":" << t << ",\"args\":{\"name\":\"thread-" << t << "\"}}";

  unsigned lane_index = 0;
  for (const Lane& lane : lanes_) {
    const std::size_t kept =
        std::min<std::uint64_t>(lane.count, config_.ring_capacity);
    const std::size_t start =
        lane.count <= config_.ring_capacity
            ? 0
            : static_cast<std::size_t>(lane.count % config_.ring_capacity);
    for (std::size_t i = 0; i < kept; ++i) {
      const SpanRecord& r = lane.ring[(start + i) % config_.ring_capacity];
      const std::string& name =
          r.name_id < names.size() ? names[r.name_id] : names.emplace_back("?");
      os << ",\n{\"name\":\"" << json_escape(name) << "\",";
      if (r.kind == SpanKind::kInstantSim) {
        os << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kSimPid
           << ",\"tid\":" << r.track;
      } else if (r.kind == SpanKind::kSim) {
        os << "\"ph\":\"X\",\"dur\":" << us_from_ns(r.duration_ns)
           << ",\"pid\":" << kSimPid << ",\"tid\":" << r.track;
      } else {
        os << "\"ph\":\"X\",\"dur\":" << us_from_ns(r.duration_ns)
           << ",\"pid\":" << kWallPid << ",\"tid\":" << lane_index;
      }
      os << ",\"ts\":" << us_from_ns(r.start_ns);
      if (r.arg0 != kNoArg || r.arg1 != kNoArg) {
        os << ",\"args\":{";
        bool first = true;
        if (r.arg0 != kNoArg) {
          os << "\"arg0\":" << r.arg0;
          first = false;
        }
        if (r.arg1 != kNoArg) os << (first ? "" : ",") << "\"arg1\":" << r.arg1;
        os << "}";
      }
      os << "}";
    }
    ++lane_index;
  }
  os << "\n]}\n";
  return os.str();
}

void SpanCollector::aggregate_into(MetricsRegistry& registry,
                                   std::string_view prefix) const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    names = names_;
  }
  std::vector<HistogramId> ids;
  ids.reserve(names.size());
  for (const std::string& n : names)
    ids.push_back(registry.histogram(std::string(prefix) + n,
                                     config_.hist_lo_us, config_.hist_hi_us,
                                     config_.hist_bins));
  for (const SpanRecord& r : records()) {
    if (r.kind == SpanKind::kInstantSim) continue;
    if (r.name_id >= ids.size()) continue;
    registry.observe(ids[r.name_id],
                     static_cast<double>(r.duration_ns) / 1e3);
  }
  registry.set(registry.gauge("spans.recorded"),
               static_cast<double>(recorded()));
  registry.set(registry.gauge("spans.dropped"),
               static_cast<double>(dropped()));
}

}  // namespace pran::telemetry
