#include "telemetry/telemetry.hpp"

#include <fstream>
#include <new>

#include "common/check.hpp"

namespace pran::telemetry {

namespace {

struct Globals {
  MetricsRegistry registry;
  SpanCollector spans;
};

// Leaked on purpose: instrumented code may run during static teardown of
// other translation units, so the globals must outlive everything.
Globals* globals() {
  static Globals* const g = new Globals();
  return g;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PRAN_CHECK(out.good(), "cannot open telemetry output file: " + path);
  out << text;
  out.flush();
  PRAN_CHECK(out.good(), "failed writing telemetry output file: " + path);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

MetricsRegistry& registry() { return globals()->registry; }

SpanCollector& spans() { return globals()->spans; }

void reset_for_testing() {
  // Rebuild in place: the references handed out by registry()/spans()
  // must stay valid, so replace the *contents*, not the pointer.
  Globals* g = globals();
  g->~Globals();
  new (g) Globals();
}

void write_metrics_file(const std::string& path) {
  spans().aggregate_into(registry());
  const MetricsSnapshot snap = registry().snapshot();
  write_text_file(path, ends_with(path, ".json") ? snap.to_json()
                                                 : snap.to_csv());
}

void write_chrome_trace_file(const std::string& path) {
  write_text_file(path, spans().to_chrome_trace());
}

}  // namespace pran::telemetry
