#pragma once

/// \file bridge.hpp
/// Glue between the simulation's Trace and the telemetry layer: a
/// sim::TraceSink that mirrors every enabled trace record into the global
/// telemetry state — a per-category counter ("trace.<category>") in the
/// metrics registry plus an instant marker on the simulated-time track of
/// the span collector, so controller/fault/quarantine events line up with
/// job spans in the exported Chrome trace.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/trace.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace pran::telemetry {

class SimTraceBridge : public sim::TraceSink {
 public:
  /// `track` is the simulated-time row the markers appear on in the
  /// exported trace (kept separate from server tracks, which are >= 0).
  SimTraceBridge(MetricsRegistry& registry, SpanCollector& spans,
                 std::int32_t track = -1);

  void on_record(const sim::TraceRecord& record) override;

 private:
  MetricsRegistry& registry_;
  SpanCollector& spans_;
  std::int32_t track_;
  /// Both caches are keyed by the trace's dense category ids, so steady
  /// state is two vector lookups per record — no string hashing.
  std::unordered_map<std::uint32_t, CounterId> counters_;
  std::unordered_map<std::uint32_t, std::uint32_t> span_names_;
};

}  // namespace pran::telemetry
