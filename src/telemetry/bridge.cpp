#include "telemetry/bridge.hpp"

namespace pran::telemetry {

SimTraceBridge::SimTraceBridge(MetricsRegistry& registry, SpanCollector& spans,
                               std::int32_t track)
    : registry_(registry), spans_(spans), track_(track) {}

void SimTraceBridge::on_record(const sim::TraceRecord& record) {
  auto counter_it = counters_.find(record.category_id);
  if (counter_it == counters_.end()) {
    counter_it =
        counters_
            .emplace(record.category_id,
                     registry_.counter("trace." + record.category))
            .first;
  }
  registry_.add(counter_it->second);

  auto name_it = span_names_.find(record.category_id);
  if (name_it == span_names_.end()) {
    name_it = span_names_
                  .emplace(record.category_id,
                           spans_.intern("trace." + record.category))
                  .first;
  }
  spans_.instant_sim(name_it->second, track_, record.at);
}

}  // namespace pran::telemetry
