#include "mac/ue.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::mac {

Ue::Ue(UeConfig config, std::uint64_t seed) : config_(config), rng_(seed) {
  PRAN_REQUIRE(config_.distance_m > 0.0, "UE distance must be positive");
  PRAN_REQUIRE(config_.mean_arrival_bps >= 0.0,
               "arrival rate must be non-negative");
  PRAN_REQUIRE(config_.burst_bytes > 0.0, "burst size must be positive");
  advance_channel();
}

void Ue::advance_channel() {
  // 3 dB log-normal fast fading around the distance-determined SNR.
  fading_db_ = units::Db{rng_.normal(0.0, 3.0)};
  const units::Db snr = lte::snr_db(config_.distance_m) + fading_db_;
  cqi_ = lte::cqi_from_efficiency(lte::spectral_efficiency(snr));
}

void Ue::set_rate_scale(double scale) {
  PRAN_REQUIRE(scale >= 0.0, "rate scale must be non-negative");
  rate_scale_ = scale;
}

void Ue::advance_traffic() {
  if (config_.traffic == TrafficKind::kFullBuffer) return;
  // Poisson bursts: expected bursts per TTI * mean size keeps the offered
  // rate at rate_scale * mean_arrival_bps.
  const double bits_per_tti = rate_scale_ * config_.mean_arrival_bps * 1e-3;
  const double bursts_per_tti = bits_per_tti / (config_.burst_bytes * 8.0);
  const std::uint32_t bursts = rng_.poisson(bursts_per_tti);
  for (std::uint32_t b = 0; b < bursts; ++b)
    backlog_bytes_ += rng_.exponential(1.0 / config_.burst_bytes);
}

bool Ue::has_data() const noexcept {
  if (config_.traffic == TrafficKind::kFullBuffer) return true;
  return backlog_bytes_ >= 1.0;
}

double Ue::drain(double bytes) {
  PRAN_REQUIRE(bytes >= 0.0, "cannot drain negative bytes");
  if (config_.traffic == TrafficKind::kFullBuffer) return bytes;
  const double taken = std::min(bytes, backlog_bytes_);
  backlog_bytes_ -= taken;
  return taken;
}

void Ue::update_average(double served, double window_ttis) {
  PRAN_REQUIRE(window_ttis >= 1.0, "PF window must be >= 1 TTI");
  const double alpha = 1.0 / window_ttis;
  const double served_bps = served / 1e-3;  // bits per 1 ms TTI
  avg_tput_bps_ = (1.0 - alpha) * avg_tput_bps_ + alpha * served_bps;
  total_bits_ += served;
}

}  // namespace pran::mac
