#pragma once

/// \file scheduler.hpp
/// Per-TTI MAC schedulers. Given the cell's PRB budget and the UEs'
/// current channel/backlog state, a scheduler picks who transmits and on
/// how many PRBs — producing exactly the lte::Allocation list the PRAN
/// data plane then has to process. Three classic policies:
///
///  * RoundRobin       — equal turns, channel-blind.
///  * MaxRate (max-C/I) — always the best channel; maximises cell
///                        throughput, starves the cell edge.
///  * ProportionalFair — schedules by instantaneous-rate / average-rate;
///                        the standard operator compromise.

#include <memory>
#include <string>
#include <vector>

#include "lte/cost_model.hpp"
#include "mac/ue.hpp"

namespace pran::mac {

/// One scheduling decision for one UE in one TTI.
struct Grant {
  int ue_id = 0;
  lte::Allocation allocation;
  double served_bits = 0.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Allocates up to `n_prb` PRBs among `ues` for one TTI. Must not grant
  /// a UE with no data, must not exceed the PRB budget, and must set each
  /// grant's MCS from the UE's current CQI.
  virtual std::vector<Grant> schedule(std::vector<Ue>& ues,
                                      units::PrbCount n_prb) = 0;

 protected:
  /// Builds a grant of `prbs` PRBs for `ue` at its current CQI, draining
  /// its backlog and updating its PF average. Returns a zero-PRB grant if
  /// the UE's channel is unusable (CQI 0).
  static Grant make_grant(Ue& ue, int prbs);

  /// PRBs this UE could actually fill given its backlog (grant no more).
  static int useful_prbs(const Ue& ue, int available);
};

class RoundRobinScheduler : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  std::vector<Grant> schedule(std::vector<Ue>& ues,
                              units::PrbCount n_prb) override;

 private:
  std::size_t next_ = 0;
};

class MaxRateScheduler : public Scheduler {
 public:
  std::string name() const override { return "max-rate"; }
  std::vector<Grant> schedule(std::vector<Ue>& ues,
                              units::PrbCount n_prb) override;
};

class ProportionalFairScheduler : public Scheduler {
 public:
  explicit ProportionalFairScheduler(double window_ttis = 100.0)
      : window_(window_ttis) {}
  std::string name() const override { return "proportional-fair"; }
  std::vector<Grant> schedule(std::vector<Ue>& ues,
                              units::PrbCount n_prb) override;

 private:
  double window_;
};

/// Factory by name ("round-robin", "max-rate", "proportional-fair").
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace pran::mac
