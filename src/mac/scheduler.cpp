#include "mac/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace pran::mac {
namespace {

int iterations_for(int mcs) {
  const double rate = lte::mcs(mcs).code_rate;
  return std::clamp(static_cast<int>(std::lround(3.0 + 4.0 * rate)),
                    lte::kMinTurboIterations, lte::kMaxTurboIterations);
}

/// PF-style bookkeeping shared by all policies: fold every UE's served
/// bits (0 if unscheduled) into its throughput average.
void settle_averages(std::vector<Ue>& ues, const std::vector<Grant>& grants,
                     double window) {
  for (auto& ue : ues) {
    double served = 0.0;
    for (const auto& g : grants)
      if (g.ue_id == ue.id()) served += g.served_bits;
    ue.update_average(served, window);
  }
}

}  // namespace

Grant Scheduler::make_grant(Ue& ue, int prbs) {
  Grant grant;
  grant.ue_id = ue.id();
  const int cqi = ue.current_cqi();
  if (cqi == 0 || prbs <= 0) return grant;
  const int mcs = lte::mcs_from_cqi(cqi);
  const units::Bits tb = lte::transport_block_bits(mcs, units::PrbCount{prbs});
  const double drained = ue.drain(static_cast<double>(tb.count()) / 8.0);
  grant.allocation = lte::Allocation{prbs, mcs, iterations_for(mcs)};
  grant.served_bits = drained * 8.0;
  return grant;
}

int Scheduler::useful_prbs(const Ue& ue, int available) {
  if (available <= 0 || ue.current_cqi() == 0) return 0;
  if (ue.config().traffic == TrafficKind::kFullBuffer) return available;
  const int mcs = lte::mcs_from_cqi(ue.current_cqi());
  const auto bits_per_prb =
      static_cast<int>(lte::transport_block_bits(mcs, units::PrbCount{1}).count());
  if (bits_per_prb <= 0) return 0;
  const double needed_bits = ue.backlog_bytes() * 8.0;
  const int needed =
      static_cast<int>(std::ceil(needed_bits / bits_per_prb));
  return std::min(available, needed);
}

std::vector<Grant> RoundRobinScheduler::schedule(std::vector<Ue>& ues,
                                                 units::PrbCount budget) {
  PRAN_REQUIRE(budget >= units::PrbCount{0}, "PRB budget must be non-negative");
  const int n_prb = budget.count();
  std::vector<Grant> grants;
  if (ues.empty() || n_prb == 0) return grants;

  // Rotating order starting after last TTI's first UE.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < ues.size(); ++i)
    order.push_back((next_ + i) % ues.size());
  next_ = (next_ + 1) % ues.size();

  std::size_t active = 0;
  for (std::size_t idx : order)
    if (ues[idx].has_data() && ues[idx].current_cqi() > 0) ++active;
  if (active == 0) {
    settle_averages(ues, grants, 100.0);
    return grants;
  }
  const int share =
      std::max(1, n_prb / static_cast<int>(active));

  int left = n_prb;
  for (std::size_t idx : order) {
    if (left == 0) break;
    Ue& ue = ues[idx];
    if (!ue.has_data()) continue;
    const int prbs = useful_prbs(ue, std::min(share, left));
    if (prbs == 0) continue;
    Grant g = make_grant(ue, prbs);
    if (g.allocation.n_prb == 0) continue;
    left -= g.allocation.n_prb;
    grants.push_back(g);
  }
  settle_averages(ues, grants, 100.0);
  return grants;
}

std::vector<Grant> MaxRateScheduler::schedule(std::vector<Ue>& ues,
                                              units::PrbCount budget) {
  PRAN_REQUIRE(budget >= units::PrbCount{0}, "PRB budget must be non-negative");
  const int n_prb = budget.count();
  std::vector<std::size_t> order(ues.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ues[a].current_cqi() != ues[b].current_cqi())
      return ues[a].current_cqi() > ues[b].current_cqi();
    return a < b;
  });

  std::vector<Grant> grants;
  int left = n_prb;
  for (std::size_t idx : order) {
    if (left == 0) break;
    Ue& ue = ues[idx];
    if (!ue.has_data()) continue;
    const int prbs = useful_prbs(ue, left);
    if (prbs == 0) continue;
    Grant g = make_grant(ue, prbs);
    if (g.allocation.n_prb == 0) continue;
    left -= g.allocation.n_prb;
    grants.push_back(g);
  }
  settle_averages(ues, grants, 100.0);
  return grants;
}

std::vector<Grant> ProportionalFairScheduler::schedule(std::vector<Ue>& ues,
                                                       units::PrbCount budget) {
  PRAN_REQUIRE(budget >= units::PrbCount{0}, "PRB budget must be non-negative");
  const int n_prb = budget.count();
  // PF metric: achievable rate this TTI / average served rate.
  auto metric = [&](const Ue& ue) {
    const int cqi = ue.current_cqi();
    if (cqi == 0) return 0.0;
    const int mcs = lte::mcs_from_cqi(cqi);
    const double inst_rate = lte::prb_rate_bps(mcs).value();
    return inst_rate / ue.average_throughput_bps();
  };

  std::vector<std::size_t> order(ues.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ma = metric(ues[a]);
    const double mb = metric(ues[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  });

  std::vector<Grant> grants;
  int left = n_prb;
  for (std::size_t idx : order) {
    if (left == 0) break;
    Ue& ue = ues[idx];
    if (!ue.has_data()) continue;
    const int prbs = useful_prbs(ue, left);
    if (prbs == 0) continue;
    Grant g = make_grant(ue, prbs);
    if (g.allocation.n_prb == 0) continue;
    left -= g.allocation.n_prb;
    grants.push_back(g);
  }
  settle_averages(ues, grants, window_);
  return grants;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "max-rate") return std::make_unique<MaxRateScheduler>();
  if (name == "proportional-fair")
    return std::make_unique<ProportionalFairScheduler>();
  PRAN_REQUIRE(false, "unknown scheduler: " + name);
  return nullptr;
}

}  // namespace pran::mac
