#pragma once

/// \file cell_mac.hpp
/// One cell's MAC: a UE population plus a scheduler, advanced TTI by TTI.
/// Produces the allocation lists the base-band pipeline processes — the
/// closed-loop alternative to workload::TrafficModel's statistical
/// sampling — and tracks the throughput/fairness metrics scheduler studies
/// report.

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "mac/scheduler.hpp"

namespace pran::mac {

struct CellMacConfig {
  lte::CellConfig cell;
  int num_ues = 12;
  std::string scheduler = "proportional-fair";
  TrafficKind traffic = TrafficKind::kFullBuffer;
  double mean_arrival_bps = 5e6;   ///< Per UE, Poisson mode.
  double radius_m = 800.0;         ///< UEs placed uniformly in this disc.
  double min_distance_m = 30.0;
  std::uint64_t seed = 1;
};

class CellMac {
 public:
  explicit CellMac(CellMacConfig config);

  const CellMacConfig& config() const noexcept { return config_; }
  const std::vector<Ue>& ues() const noexcept { return ues_; }
  const Scheduler& scheduler() const noexcept { return *scheduler_; }
  std::int64_t ttis_run() const noexcept { return ttis_; }

  /// Advances channels and traffic one TTI, runs the scheduler, and
  /// returns the resulting allocations (for the cost model / executor).
  std::vector<lte::Allocation> run_tti();

  /// Diurnal modulation: scales every UE's offered load (Poisson mode).
  void set_load_scale(double scale);

  /// Grants of the most recent TTI (parallel to the last run_tti result).
  const std::vector<Grant>& last_grants() const noexcept { return grants_; }

  /// Aggregate served cell throughput so far, bit/s.
  double cell_throughput_bps() const;

  /// Per-UE long-run throughputs (bit/s), index-aligned with ues().
  std::vector<double> ue_throughputs_bps() const;

  /// Jain fairness over per-UE throughputs.
  double fairness() const;

 private:
  CellMacConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<Ue> ues_;
  std::vector<Grant> grants_;
  std::int64_t ttis_ = 0;
};

}  // namespace pran::mac
