#pragma once

/// \file ue.hpp
/// User-equipment state for the MAC scheduler: radio position (fixing the
/// CQI through the link model), a byte backlog fed by an arrival process,
/// and the throughput average the proportional-fair scheduler tracks.

#include <cstdint>

#include "common/rng.hpp"
#include "lte/link.hpp"

namespace pran::mac {

/// Traffic source kinds for a UE's backlog.
enum class TrafficKind {
  kFullBuffer,  ///< Always has data (classic scheduler-evaluation mode).
  kPoisson,     ///< Bursts of bytes arriving at exponential intervals.
};

struct UeConfig {
  int ue_id = 0;
  double distance_m = 300.0;    ///< Distance to the serving RU.
  TrafficKind traffic = TrafficKind::kFullBuffer;
  double mean_arrival_bps = 5e6;   ///< Poisson mode: average offered rate.
  double burst_bytes = 6000.0;     ///< Poisson mode: mean burst size.
};

/// Mutable per-UE scheduler state.
class Ue {
 public:
  Ue(UeConfig config, std::uint64_t seed);

  const UeConfig& config() const noexcept { return config_; }
  int id() const noexcept { return config_.ue_id; }

  /// Wideband CQI this TTI. Static channel plus small fast-fading jitter
  /// (log-normal, redrawn per TTI) around the distance-determined mean.
  int current_cqi() const noexcept { return cqi_; }

  /// Redraws fading and refreshes CQI; call once per TTI.
  void advance_channel();

  /// Adds traffic arrivals for one TTI; call once per TTI.
  void advance_traffic();

  /// Scales the Poisson arrival intensity (diurnal modulation); 1 = the
  /// configured mean_arrival_bps. No effect on full-buffer traffic.
  void set_rate_scale(double scale);
  double rate_scale() const noexcept { return rate_scale_; }

  /// Bytes waiting in the downlink queue.
  double backlog_bytes() const noexcept { return backlog_bytes_; }
  bool has_data() const noexcept;

  /// Removes up to `bytes` from the backlog (scheduler served them).
  /// Returns the bytes actually drained.
  double drain(double bytes);

  /// Exponentially averaged served throughput (bit/s) for PF metrics.
  double average_throughput_bps() const noexcept { return avg_tput_bps_; }

  /// Folds one TTI's served bits (`served`, possibly fractional — the
  /// backlog drains in fractional bytes) into the PF average
  /// (alpha = 1/window).
  void update_average(double served, double window_ttis = 100.0);

  /// Total bits served so far.
  double total_served_bits() const noexcept { return total_bits_; }

 private:
  UeConfig config_;
  Rng rng_;
  units::Db fading_db_{0.0};
  int cqi_ = 0;
  double backlog_bytes_ = 0.0;
  double rate_scale_ = 1.0;
  double avg_tput_bps_ = 1.0;  // small floor avoids divide-by-zero in PF
  double total_bits_ = 0.0;
};

}  // namespace pran::mac
