#include "mac/cell_mac.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace pran::mac {

CellMac::CellMac(CellMacConfig config)
    : config_(std::move(config)), scheduler_(make_scheduler(config_.scheduler)) {
  PRAN_REQUIRE(config_.num_ues >= 1, "cell needs at least one UE");
  PRAN_REQUIRE(config_.radius_m > config_.min_distance_m,
               "radius must exceed the minimum UE distance");
  Rng rng(config_.seed);
  ues_.reserve(static_cast<std::size_t>(config_.num_ues));
  for (int u = 0; u < config_.num_ues; ++u) {
    UeConfig uc;
    uc.ue_id = u;
    uc.distance_m = std::max(std::sqrt(rng.uniform()) * config_.radius_m,
                             config_.min_distance_m);
    uc.traffic = config_.traffic;
    uc.mean_arrival_bps = config_.mean_arrival_bps;
    ues_.emplace_back(uc, rng());
  }
}

void CellMac::set_load_scale(double scale) {
  for (auto& ue : ues_) ue.set_rate_scale(scale);
}

std::vector<lte::Allocation> CellMac::run_tti() {
  for (auto& ue : ues_) {
    ue.advance_channel();
    ue.advance_traffic();
  }
  grants_ = scheduler_->schedule(ues_, units::PrbCount{config_.cell.n_prb});
  ++ttis_;

  std::vector<lte::Allocation> allocs;
  allocs.reserve(grants_.size());
  int total = 0;
  for (const auto& g : grants_) {
    total += g.allocation.n_prb;
    allocs.push_back(g.allocation);
  }
  PRAN_CHECK(total <= config_.cell.n_prb,
             "scheduler exceeded the cell's PRB budget");
  return allocs;
}

double CellMac::cell_throughput_bps() const {
  if (ttis_ == 0) return 0.0;
  double bits = 0.0;
  for (const auto& ue : ues_) bits += ue.total_served_bits();
  return bits / (static_cast<double>(ttis_) * 1e-3);
}

std::vector<double> CellMac::ue_throughputs_bps() const {
  std::vector<double> out;
  out.reserve(ues_.size());
  const double seconds = static_cast<double>(std::max<std::int64_t>(ttis_, 1)) * 1e-3;
  for (const auto& ue : ues_) out.push_back(ue.total_served_bits() / seconds);
  return out;
}

double CellMac::fairness() const { return jain_fairness(ue_throughputs_bps()); }

}  // namespace pran::mac
