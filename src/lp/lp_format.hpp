#pragma once

/// \file lp_format.hpp
/// CPLEX-LP-format export/escape hatch.
///
/// The in-repo branch-and-bound is exact but deliberately small; for
/// instances beyond its reach, `write_lp_format` serialises any Model into
/// the industry-standard LP file format so it can be handed to CBC
/// (`cbc model.lp`), SCIP, or CPLEX unchanged. Variable names are
/// sanitised to the LP-format charset; a name map is returned for callers
/// who need to match solutions back.

#include <map>
#include <string>

#include "lp/model.hpp"

namespace pran::lp {

struct LpExport {
  std::string text;  ///< The .lp file contents.
  /// sanitised name -> model variable index.
  std::map<std::string, int> name_to_index;
};

/// Serialises `model` to CPLEX LP format (objective, constraints, bounds,
/// generals/binaries sections).
LpExport write_lp_format(const Model& model);

}  // namespace pran::lp
