#include "lp/branch_and_bound.hpp"

#include <cmath>
#include <queue>

#include "common/check.hpp"
#include "lp/presolve.hpp"
#include "telemetry/clock.hpp"

namespace pran::lp {

double MilpResult::gap() const noexcept {
  if (status == MilpStatus::kOptimal) return 0.0;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

namespace {

/// Bound tightenings that define a node relative to the root model.
struct BoundChange {
  Variable var;
  double lower;
  double upper;
};

struct Node {
  std::vector<BoundChange> changes;
  double bound;  ///< Parent relaxation objective (internal minimise sense).
  long seq;      ///< Insertion order, for deterministic tie-breaks.
};

struct WorseBound {
  bool operator()(const Node& a, const Node& b) const noexcept {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.seq > b.seq;
  }
};

/// Applies a node's bound changes to a scratch copy of the root model.
void apply_changes(Model& model, const std::vector<BoundChange>& changes) {
  for (const auto& ch : changes) model.set_bounds(ch.var, ch.lower, ch.upper);
}

}  // namespace

MilpResult MilpSolver::solve(const Model& model) const {
  PRAN_REQUIRE(model.num_variables() > 0, "model has no variables");
  if (!options_.presolve) return solve_impl(model);

  const PresolveResult pre = ::pran::lp::presolve(model);
  if (pre.infeasible) {
    MilpResult result;
    result.status = MilpStatus::kInfeasible;
    return result;
  }
  MilpResult result = solve_impl(*pre.model);
  if (result.has_solution()) {
    result.x = pre.restore(result.x);
    // Objective/bound already include the substituted constants (the
    // reduced model's objective carries them).
  }
  return result;
}

MilpResult MilpSolver::solve_impl(const Model& root) const {
  PRAN_REQUIRE(root.num_variables() > 0, "model has no variables");
  const telemetry::Stopwatch stopwatch;
  auto elapsed = [&] { return stopwatch.elapsed_seconds(); };

  const double sense_sign = root.sense() == Sense::kMinimize ? 1.0 : -1.0;
  // Internal objective values are always "minimise": internal = sign * model.
  auto to_internal = [&](double v) { return sense_sign * v; };
  auto to_model = [&](double v) { return sense_sign * v; };

  SimplexSolver lp_solver(options_.lp);
  MilpResult result;

  std::vector<int> int_vars;
  for (int j = 0; j < root.num_variables(); ++j)
    if (root.variables()[static_cast<std::size_t>(j)].type !=
        VarType::kContinuous)
      int_vars.push_back(j);

  double incumbent_internal = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_x;

  auto try_incumbent = [&](const std::vector<double>& x) {
    const double internal = to_internal(root.objective_value(x));
    if (internal < incumbent_internal - 1e-12) {
      incumbent_internal = internal;
      incumbent_x = x;
    }
  };

  std::priority_queue<Node, std::vector<Node>, WorseBound> open;
  open.push(Node{{}, -std::numeric_limits<double>::infinity(), 0});
  long seq = 1;
  double best_open_bound = -std::numeric_limits<double>::infinity();
  bool any_limit_hit = false;
  bool root_unbounded = false;

  while (!open.empty()) {
    if (result.nodes >= options_.max_nodes || elapsed() > options_.time_limit_s) {
      any_limit_hit = true;
      best_open_bound = open.top().bound;
      break;
    }
    Node node = open.top();
    open.pop();

    // Bound pruning against the incumbent (queue is bound-ordered, but
    // the incumbent may have improved since this node was pushed).
    if (node.bound >= incumbent_internal - options_.int_tol) continue;

    Model scratch = root;
    apply_changes(scratch, node.changes);

    const LpResult relax = lp_solver.solve(scratch);
    ++result.nodes;
    result.lp_iterations += relax.iterations;

    if (relax.status == LpStatus::kInfeasible) continue;
    if (relax.status == LpStatus::kUnbounded) {
      // With all-finite integer bounds this means the continuous part is
      // unbounded: the MILP is unbounded too.
      root_unbounded = true;
      break;
    }
    if (relax.status == LpStatus::kIterationLimit) {
      any_limit_hit = true;
      continue;
    }

    const double node_bound = to_internal(relax.objective);
    if (node_bound >= incumbent_internal - options_.int_tol) continue;

    // Find the most fractional integer variable.
    int branch_var = -1;
    double branch_val = 0.0;
    double best_frac_score = options_.int_tol;
    for (int j : int_vars) {
      const double v = relax.x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      const double score = std::min(frac, 1.0 - frac) + frac * 0.0;
      if (frac > options_.int_tol && score > best_frac_score) {
        best_frac_score = score;
        branch_var = j;
        branch_val = v;
      }
    }

    if (branch_var < 0) {
      // Integral relaxation: round off the tolerance noise and accept.
      std::vector<double> x = relax.x;
      for (int j : int_vars)
        x[static_cast<std::size_t>(j)] =
            std::round(x[static_cast<std::size_t>(j)]);
      if (root.is_feasible(x, 1e-6)) try_incumbent(x);
      continue;
    }

    if (options_.rounding_heuristic) {
      std::vector<double> rounded = relax.x;
      for (int j : int_vars)
        rounded[static_cast<std::size_t>(j)] =
            std::round(rounded[static_cast<std::size_t>(j)]);
      if (root.is_feasible(rounded, 1e-6)) try_incumbent(rounded);
    }

    // Branch on floor / ceil of the fractional value, keeping the scratch
    // model's (possibly already tightened) bounds as the base.
    const auto& info =
        scratch.variables()[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(branch_val);
    const double ceil_v = std::ceil(branch_val);

    if (floor_v >= info.lower - options_.int_tol) {
      Node child = node;
      child.changes.push_back(
          BoundChange{Variable{branch_var}, info.lower, floor_v});
      child.bound = node_bound;
      child.seq = seq++;
      open.push(std::move(child));
    }
    if (ceil_v <= info.upper + options_.int_tol) {
      Node child = node;
      child.changes.push_back(
          BoundChange{Variable{branch_var}, ceil_v, info.upper});
      child.bound = node_bound;
      child.seq = seq++;
      open.push(std::move(child));
    }
  }

  result.solve_seconds = elapsed();

  if (root_unbounded) {
    result.status = MilpStatus::kUnbounded;
    return result;
  }

  const bool have_incumbent = !incumbent_x.empty();
  if (have_incumbent) {
    result.x = incumbent_x;
    result.objective = to_model(incumbent_internal);
  }

  if (!any_limit_hit && open.empty()) {
    result.status =
        have_incumbent ? MilpStatus::kOptimal : MilpStatus::kInfeasible;
    result.best_bound = result.objective;
    return result;
  }

  // A limit fired: the proof is incomplete. The optimum lies either at the
  // incumbent or inside an open subtree, so the valid global bound is the
  // smaller of the incumbent value and the best open-node bound.
  double bound_internal =
      open.empty() ? best_open_bound : open.top().bound;
  if (have_incumbent)
    bound_internal = std::isfinite(bound_internal)
                         ? std::min(bound_internal, incumbent_internal)
                         : incumbent_internal;
  result.best_bound = to_model(bound_internal);
  result.status = have_incumbent ? MilpStatus::kFeasible : MilpStatus::kLimit;
  return result;
}

}  // namespace pran::lp
