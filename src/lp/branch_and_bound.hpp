#pragma once

/// \file branch_and_bound.hpp
/// Branch-and-bound MILP solver on top of SimplexSolver — the offline
/// substitute for the commercial solver the paper used. Best-first search on
/// the LP-relaxation bound, most-fractional branching, and a
/// round-and-check primal heuristic that usually finds an incumbent at the
/// root. Exact on the small placement instances PRAN's controller solves;
/// node/time limits turn it into an anytime solver with a reported bound.

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace pran::lp {

enum class MilpStatus {
  kOptimal,     ///< Proven optimal incumbent.
  kFeasible,    ///< Limit hit with an incumbent in hand.
  kInfeasible,  ///< No integer-feasible point exists.
  kUnbounded,   ///< LP relaxation unbounded.
  kLimit        ///< Limit hit without any incumbent.
};

struct MilpOptions {
  double int_tol = 1e-6;
  long max_nodes = 200000;
  double time_limit_s = 60.0;
  bool rounding_heuristic = true;
  /// Run the lp/presolve.hpp reductions before branching.
  bool presolve = true;
  SimplexOptions lp;
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  std::vector<double> x;      ///< Incumbent (empty if none).
  double objective = 0.0;     ///< Incumbent objective, model sense.
  double best_bound = 0.0;    ///< Proven bound on the optimum, model sense.
  long nodes = 0;             ///< Branch-and-bound nodes solved.
  long lp_iterations = 0;     ///< Simplex pivots across all nodes.
  double solve_seconds = 0.0;

  bool has_solution() const noexcept {
    return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible;
  }
  /// Relative optimality gap |obj - bound| / max(1, |obj|); 0 when optimal.
  double gap() const noexcept;
};

class MilpSolver {
 public:
  explicit MilpSolver(MilpOptions options = {}) : options_(options) {}

  /// Solves `model` to optimality or until a limit fires. The model is
  /// copied internally; the argument is not modified.
  MilpResult solve(const Model& model) const;

 private:
  MilpResult solve_impl(const Model& model) const;
  MilpOptions options_;
};

}  // namespace pran::lp
