#pragma once

/// \file presolve.hpp
/// Lightweight MILP presolve, run before branch and bound.
///
/// Implements the standard cheap reductions that matter on placement
/// instances:
///  * substitute variables whose bounds are equal (fixed variables) into
///    the constraints and objective;
///  * round fractional bounds of integer variables inward;
///  * drop constraints that are always satisfied (row activity bounds
///    inside the rhs) and detect ones that never can be (infeasible);
///  * singleton rows become bound tightenings.
///
/// The output is a smaller Model plus the information needed to lift a
/// solution of the reduced model back to the original variable space.

#include <optional>
#include <vector>

#include "lp/model.hpp"

namespace pran::lp {

struct PresolveResult {
  /// Reduced model; absent when presolve proved infeasibility.
  std::optional<Model> model;
  bool infeasible = false;

  /// original index -> reduced index, or -1 if the variable was fixed.
  std::vector<int> index_map;
  /// original index -> fixed value (valid where index_map is -1; fixed
  /// values are also recorded for surviving variables whose bounds became
  /// equal — check index_map first).
  std::vector<double> fixed_value;

  int fixed_variables = 0;
  int dropped_constraints = 0;
  int tightened_bounds = 0;

  /// Lifts a reduced-model solution back to original variable order.
  std::vector<double> restore(const std::vector<double>& reduced) const;
};

/// Runs the reductions to a fixed point (bounded passes).
PresolveResult presolve(const Model& model);

}  // namespace pran::lp
