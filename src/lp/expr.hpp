#pragma once

/// \file expr.hpp
/// Symbolic linear expressions for building optimisation models. Kept
/// deliberately small: a Variable is an index handle into a Model, a
/// LinearExpr is a sparse coefficient map plus a constant, and operator
/// overloads make formulations read like the paper's math.

#include <map>

namespace pran::lp {

/// Opaque handle to a model variable.
struct Variable {
  int index = -1;
  bool valid() const noexcept { return index >= 0; }
  friend bool operator==(Variable a, Variable b) noexcept {
    return a.index == b.index;
  }
  friend bool operator<(Variable a, Variable b) noexcept {
    return a.index < b.index;
  }
};

/// Sparse linear expression: sum(coeff_i * x_i) + constant.
class LinearExpr {
 public:
  LinearExpr() = default;
  /*implicit*/ LinearExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinearExpr(Variable v) { terms_[v] = 1.0; }

  const std::map<Variable, double>& terms() const noexcept { return terms_; }
  double constant() const noexcept { return constant_; }

  LinearExpr& operator+=(const LinearExpr& other) {
    for (const auto& [v, c] : other.terms_) add_term(v, c);
    constant_ += other.constant_;
    return *this;
  }
  LinearExpr& operator-=(const LinearExpr& other) {
    for (const auto& [v, c] : other.terms_) add_term(v, -c);
    constant_ -= other.constant_;
    return *this;
  }
  LinearExpr& operator*=(double k) {
    for (auto& [v, c] : terms_) c *= k;
    constant_ *= k;
    return *this;
  }

  void add_term(Variable v, double coeff) {
    auto [it, inserted] = terms_.emplace(v, coeff);
    if (!inserted) it->second += coeff;
  }

 private:
  std::map<Variable, double> terms_;
  double constant_ = 0.0;
};

inline LinearExpr operator+(LinearExpr a, const LinearExpr& b) {
  a += b;
  return a;
}
inline LinearExpr operator-(LinearExpr a, const LinearExpr& b) {
  a -= b;
  return a;
}
inline LinearExpr operator*(LinearExpr a, double k) {
  a *= k;
  return a;
}
inline LinearExpr operator*(double k, LinearExpr a) {
  a *= k;
  return a;
}
inline LinearExpr operator-(LinearExpr a) {
  a *= -1.0;
  return a;
}

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// A constraint `expr (<=,>=,=) rhs` in canonical expr-vs-constant form.
struct Constraint {
  LinearExpr lhs;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// Comparison operators build Constraints: expr <= bound, etc. The variable
/// part stays on the left; constants migrate to the right-hand side.
inline Constraint operator<=(LinearExpr lhs, double rhs) {
  const double c = lhs.constant();
  lhs -= c;
  return Constraint{std::move(lhs), Relation::kLessEqual, rhs - c};
}
inline Constraint operator>=(LinearExpr lhs, double rhs) {
  const double c = lhs.constant();
  lhs -= c;
  return Constraint{std::move(lhs), Relation::kGreaterEqual, rhs - c};
}
inline Constraint operator==(LinearExpr lhs, double rhs) {
  const double c = lhs.constant();
  lhs -= c;
  return Constraint{std::move(lhs), Relation::kEqual, rhs - c};
}

}  // namespace pran::lp
