#include "lp/model.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace pran::lp {

Variable Model::add_variable(std::string name, double lower, double upper,
                             VarType type) {
  if (type == VarType::kBinary) {
    lower = std::max(lower, 0.0);
    upper = std::min(upper, 1.0);
  }
  PRAN_REQUIRE(std::isfinite(lower), "variable lower bound must be finite");
  PRAN_REQUIRE(lower <= upper, "variable bounds are crossed");
  variables_.push_back(VariableInfo{std::move(name), lower, upper, type});
  return Variable{static_cast<int>(variables_.size()) - 1};
}

Variable Model::add_binary(std::string name) {
  return add_variable(std::move(name), 0.0, 1.0, VarType::kBinary);
}

Variable Model::add_integer(std::string name, double lower, double upper) {
  return add_variable(std::move(name), lower, upper, VarType::kInteger);
}

Variable Model::add_continuous(std::string name, double lower, double upper) {
  return add_variable(std::move(name), lower, upper, VarType::kContinuous);
}

void Model::add_constraint(std::string name, Constraint constraint) {
  for (const auto& [v, c] : constraint.lhs.terms()) {
    PRAN_REQUIRE(v.index >= 0 && v.index < num_variables(),
                 "constraint references an unknown variable");
    (void)c;
  }
  constraints_.push_back(ConstraintInfo{std::move(name), std::move(constraint)});
}

void Model::set_objective(Sense sense, LinearExpr objective) {
  for (const auto& [v, c] : objective.terms()) {
    PRAN_REQUIRE(v.index >= 0 && v.index < num_variables(),
                 "objective references an unknown variable");
    (void)c;
  }
  sense_ = sense;
  objective_ = std::move(objective);
}

int Model::num_integer_variables() const noexcept {
  int n = 0;
  for (const auto& v : variables_)
    if (v.type != VarType::kContinuous) ++n;
  return n;
}

const VariableInfo& Model::variable(Variable v) const {
  PRAN_REQUIRE(v.index >= 0 && v.index < num_variables(),
               "unknown variable handle");
  return variables_[static_cast<std::size_t>(v.index)];
}

void Model::set_bounds(Variable v, double lower, double upper) {
  PRAN_REQUIRE(v.index >= 0 && v.index < num_variables(),
               "unknown variable handle");
  PRAN_REQUIRE(lower <= upper, "variable bounds are crossed");
  auto& info = variables_[static_cast<std::size_t>(v.index)];
  info.lower = lower;
  info.upper = upper;
}

double Model::objective_value(const std::vector<double>& x) const {
  PRAN_REQUIRE(x.size() == variables_.size(),
               "point dimension does not match the model");
  double value = objective_.constant();
  for (const auto& [v, c] : objective_.terms())
    value += c * x[static_cast<std::size_t>(v.index)];
  return value;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const auto& info = variables_[i];
    if (x[i] < info.lower - tol || x[i] > info.upper + tol) return false;
    if (info.type != VarType::kContinuous &&
        std::abs(x[i] - std::round(x[i])) > tol)
      return false;
  }
  for (const auto& c : constraints_) {
    double lhs = c.constraint.lhs.constant();
    for (const auto& [v, coeff] : c.constraint.lhs.terms())
      lhs += coeff * x[static_cast<std::size_t>(v.index)];
    switch (c.constraint.relation) {
      case Relation::kLessEqual:
        if (lhs > c.constraint.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.constraint.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - c.constraint.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::to_string() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "minimize" : "maximize") << "\n  ";
  bool first = true;
  for (const auto& [v, c] : objective_.terms()) {
    os << (first ? "" : " + ") << c << " "
       << variables_[static_cast<std::size_t>(v.index)].name;
    first = false;
  }
  if (objective_.constant() != 0.0) os << " + " << objective_.constant();
  os << "\nsubject to\n";
  for (const auto& ci : constraints_) {
    os << "  " << ci.name << ": ";
    first = true;
    for (const auto& [v, c] : ci.constraint.lhs.terms()) {
      os << (first ? "" : " + ") << c << " "
         << variables_[static_cast<std::size_t>(v.index)].name;
      first = false;
    }
    switch (ci.constraint.relation) {
      case Relation::kLessEqual:
        os << " <= ";
        break;
      case Relation::kGreaterEqual:
        os << " >= ";
        break;
      case Relation::kEqual:
        os << " = ";
        break;
    }
    os << ci.constraint.rhs << "\n";
  }
  os << "bounds\n";
  for (const auto& v : variables_) {
    os << "  " << v.lower << " <= " << v.name << " <= " << v.upper;
    if (v.type == VarType::kBinary)
      os << " (binary)";
    else if (v.type == VarType::kInteger)
      os << " (integer)";
    os << "\n";
  }
  return os.str();
}

}  // namespace pran::lp
