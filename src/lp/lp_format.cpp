#include "lp/lp_format.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

#include "common/narrow.hpp"

namespace pran::lp {
namespace {

bool lp_name_char(char c) {
  return std::isalnum(narrow_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string sanitise(const std::string& name, int index) {
  std::string out;
  for (char c : name) out += lp_name_char(c) ? c : '_';
  if (out.empty() || std::isdigit(narrow_cast<unsigned char>(out[0])))
    out = "x" + std::to_string(index) + "_" + out;
  return out;
}

void append_expr(std::ostringstream& os, const LinearExpr& expr) {
  bool first = true;
  for (const auto& [v, c] : expr.terms()) {
    if (c == 0.0) continue;
    if (first) {
      if (c < 0.0) os << "- ";
    } else {
      os << (c < 0.0 ? " - " : " + ");
    }
    const double mag = std::abs(c);
    if (mag != 1.0) os << mag << " ";
    os << "v" << v.index;
    first = false;
  }
  if (first) os << "0 v0";  // LP format forbids empty expressions
}

}  // namespace

LpExport write_lp_format(const Model& model) {
  PRAN_REQUIRE(model.num_variables() > 0, "model has no variables");
  LpExport out;

  // Unique sanitised names, then rewrite expression dumps from vN
  // placeholders — simplest way to keep append_expr allocation-free.
  std::vector<std::string> names;
  names.reserve(model.variables().size());
  std::map<std::string, int> used;
  for (int i = 0; i < model.num_variables(); ++i) {
    std::string base = sanitise(
        model.variables()[static_cast<std::size_t>(i)].name, i);
    auto [it, inserted] = used.emplace(base, i);
    if (!inserted) {
      base += "_" + std::to_string(i);
      used.emplace(base, i);
    }
    names.push_back(base);
    out.name_to_index[base] = i;
  }
  auto rewrite = [&](std::string text) {
    // Replace placeholders vN with sanitised names, longest index first is
    // unnecessary since we delimit scan by non-digit char.
    std::string result;
    for (std::size_t i = 0; i < text.size();) {
      if (text[i] == 'v' && i + 1 < text.size() &&
          std::isdigit(narrow_cast<unsigned char>(text[i + 1]))) {
        std::size_t j = i + 1;
        while (j < text.size() &&
               std::isdigit(narrow_cast<unsigned char>(text[j])))
          ++j;
        const int idx = std::stoi(text.substr(i + 1, j - i - 1));
        result += names[static_cast<std::size_t>(idx)];
        i = j;
      } else {
        result += text[i++];
      }
    }
    return result;
  };

  std::ostringstream os;
  os << (model.sense() == Sense::kMinimize ? "Minimize" : "Maximize")
     << "\n obj: ";
  {
    std::ostringstream expr;
    append_expr(expr, model.objective());
    os << rewrite(expr.str());
    // LP format has no objective constant; emit as a comment.
    if (model.objective().constant() != 0.0)
      os << "\n\\ objective constant: " << model.objective().constant();
  }
  os << "\nSubject To\n";
  int row = 0;
  for (const auto& ci : model.constraints()) {
    std::ostringstream expr;
    append_expr(expr, ci.constraint.lhs);
    os << " c" << row++ << ": " << rewrite(expr.str());
    switch (ci.constraint.relation) {
      case Relation::kLessEqual:
        os << " <= ";
        break;
      case Relation::kGreaterEqual:
        os << " >= ";
        break;
      case Relation::kEqual:
        os << " = ";
        break;
    }
    os << ci.constraint.rhs << "\n";
  }

  os << "Bounds\n";
  for (int i = 0; i < model.num_variables(); ++i) {
    const auto& v = model.variables()[static_cast<std::size_t>(i)];
    if (v.type == VarType::kBinary) continue;  // implied by Binaries
    os << " " << v.lower << " <= " << names[static_cast<std::size_t>(i)];
    if (std::isfinite(v.upper)) os << " <= " << v.upper;
    os << "\n";
  }

  std::ostringstream generals, binaries;
  for (int i = 0; i < model.num_variables(); ++i) {
    const auto& v = model.variables()[static_cast<std::size_t>(i)];
    if (v.type == VarType::kInteger)
      generals << " " << names[static_cast<std::size_t>(i)] << "\n";
    else if (v.type == VarType::kBinary)
      binaries << " " << names[static_cast<std::size_t>(i)] << "\n";
  }
  if (!generals.str().empty()) os << "Generals\n" << generals.str();
  if (!binaries.str().empty()) os << "Binaries\n" << binaries.str();
  os << "End\n";

  out.text = os.str();
  return out;
}

}  // namespace pran::lp
