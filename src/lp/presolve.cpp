#include "lp/presolve.hpp"

#include <cmath>
#include <map>

#include "common/check.hpp"

namespace pran::lp {
namespace {

constexpr double kTol = 1e-9;

struct WorkingRow {
  std::map<int, double> terms;
  Relation relation;
  double rhs;
  bool alive = true;
};

}  // namespace

std::vector<double> PresolveResult::restore(
    const std::vector<double>& reduced) const {
  PRAN_REQUIRE(!infeasible && model.has_value(),
               "cannot restore from an infeasible presolve");
  PRAN_REQUIRE(reduced.size() ==
                   static_cast<std::size_t>(model->num_variables()),
               "reduced solution has wrong dimension");
  std::vector<double> full(index_map.size(), 0.0);
  for (std::size_t i = 0; i < index_map.size(); ++i) {
    full[i] = index_map[i] >= 0
                  ? reduced[static_cast<std::size_t>(index_map[i])]
                  : fixed_value[i];
  }
  return full;
}

PresolveResult presolve(const Model& original) {
  PRAN_REQUIRE(original.num_variables() > 0, "model has no variables");
  const int n = original.num_variables();

  std::vector<double> lower(static_cast<std::size_t>(n));
  std::vector<double> upper(static_cast<std::size_t>(n));
  std::vector<VarType> type(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& v = original.variables()[static_cast<std::size_t>(i)];
    lower[static_cast<std::size_t>(i)] = v.lower;
    upper[static_cast<std::size_t>(i)] = v.upper;
    type[static_cast<std::size_t>(i)] = v.type;
  }

  std::vector<WorkingRow> rows;
  rows.reserve(original.constraints().size());
  for (const auto& ci : original.constraints()) {
    WorkingRow row;
    row.relation = ci.constraint.relation;
    row.rhs = ci.constraint.rhs;
    for (const auto& [v, c] : ci.constraint.lhs.terms())
      if (c != 0.0) row.terms[v.index] += c;
    rows.push_back(std::move(row));
  }

  PresolveResult result;
  result.index_map.assign(static_cast<std::size_t>(n), 0);
  result.fixed_value.assign(static_cast<std::size_t>(n), 0.0);

  auto integral_round = [&](int i) {
    auto& lo = lower[static_cast<std::size_t>(i)];
    auto& hi = upper[static_cast<std::size_t>(i)];
    if (type[static_cast<std::size_t>(i)] == VarType::kContinuous) return;
    const double new_lo = std::ceil(lo - kTol);
    const double new_hi = std::isfinite(hi) ? std::floor(hi + kTol) : hi;
    if (new_lo > lo + kTol || new_hi < hi - kTol) ++result.tightened_bounds;
    lo = new_lo;
    hi = new_hi;
  };
  for (int i = 0; i < n; ++i) integral_round(i);

  bool changed = true;
  for (int pass = 0; pass < 10 && changed; ++pass) {
    changed = false;

    for (int i = 0; i < n; ++i)
      if (lower[static_cast<std::size_t>(i)] >
          upper[static_cast<std::size_t>(i)] + kTol) {
        result.infeasible = true;
        return result;
      }

    for (auto& row : rows) {
      if (!row.alive) continue;

      // Substitute fixed variables (bounds equal) into the rhs.
      for (auto it = row.terms.begin(); it != row.terms.end();) {
        const auto i = static_cast<std::size_t>(it->first);
        if (std::abs(upper[i] - lower[i]) <= kTol) {
          row.rhs -= it->second * lower[i];
          it = row.terms.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }

      // Singleton row -> bound tightening.
      if (row.terms.size() == 1) {
        const int i = row.terms.begin()->first;
        const double a = row.terms.begin()->second;
        const double bound = row.rhs / a;
        auto& lo = lower[static_cast<std::size_t>(i)];
        auto& hi = upper[static_cast<std::size_t>(i)];
        const bool upper_bound =
            (row.relation == Relation::kLessEqual) == (a > 0.0);
        if (row.relation == Relation::kEqual) {
          lo = std::max(lo, bound);
          hi = std::min(hi, bound);
        } else if (upper_bound) {
          if (bound < hi - kTol) ++result.tightened_bounds;
          hi = std::min(hi, bound);
        } else {
          if (bound > lo + kTol) ++result.tightened_bounds;
          lo = std::max(lo, bound);
        }
        integral_round(i);
        row.alive = false;
        ++result.dropped_constraints;
        changed = true;
        continue;
      }

      // Activity bounds.
      double min_act = 0.0;
      double max_act = 0.0;
      bool min_finite = true, max_finite = true;
      for (const auto& [i, a] : row.terms) {
        const double lo = lower[static_cast<std::size_t>(i)];
        const double hi = upper[static_cast<std::size_t>(i)];
        const double amin = a > 0.0 ? a * lo : a * hi;
        const double amax = a > 0.0 ? a * hi : a * lo;
        if (!std::isfinite(amin)) min_finite = false; else min_act += amin;
        if (!std::isfinite(amax)) max_finite = false; else max_act += amax;
      }
      if (row.terms.empty()) {
        // Constant row: either trivially true or infeasible.
        const bool ok = (row.relation == Relation::kLessEqual &&
                         0.0 <= row.rhs + kTol) ||
                        (row.relation == Relation::kGreaterEqual &&
                         0.0 >= row.rhs - kTol) ||
                        (row.relation == Relation::kEqual &&
                         std::abs(row.rhs) <= kTol);
        if (!ok) {
          result.infeasible = true;
          return result;
        }
        row.alive = false;
        ++result.dropped_constraints;
        changed = true;
        continue;
      }
      switch (row.relation) {
        case Relation::kLessEqual:
          if (min_finite && min_act > row.rhs + kTol) {
            result.infeasible = true;
            return result;
          }
          if (max_finite && max_act <= row.rhs + kTol) {
            row.alive = false;
            ++result.dropped_constraints;
            changed = true;
          }
          break;
        case Relation::kGreaterEqual:
          if (max_finite && max_act < row.rhs - kTol) {
            result.infeasible = true;
            return result;
          }
          if (min_finite && min_act >= row.rhs - kTol) {
            row.alive = false;
            ++result.dropped_constraints;
            changed = true;
          }
          break;
        case Relation::kEqual:
          if ((min_finite && min_act > row.rhs + kTol) ||
              (max_finite && max_act < row.rhs - kTol)) {
            result.infeasible = true;
            return result;
          }
          break;
      }
    }
  }

  // Build the reduced model.
  Model reduced;
  int next = 0;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (std::abs(upper[idx] - lower[idx]) <= kTol) {
      result.index_map[idx] = -1;
      result.fixed_value[idx] = lower[idx];
      ++result.fixed_variables;
    } else {
      result.index_map[idx] = next++;
      reduced.add_variable(
          original.variables()[idx].name, lower[idx], upper[idx], type[idx]);
    }
  }

  if (next == 0) {
    // Everything fixed: keep one dummy so downstream solvers have a model.
    reduced.add_continuous("presolve_dummy", 0.0, 0.0);
  }

  int row_id = 0;
  for (const auto& row : rows) {
    if (!row.alive) continue;
    LinearExpr expr;
    double rhs = row.rhs;
    bool any = false;
    for (const auto& [i, a] : row.terms) {
      const auto idx = static_cast<std::size_t>(i);
      if (result.index_map[idx] < 0) {
        rhs -= a * result.fixed_value[idx];
      } else {
        expr.add_term(Variable{result.index_map[idx]}, a);
        any = true;
      }
    }
    if (!any) continue;  // fully substituted; feasibility was checked above
    reduced.add_constraint("p" + std::to_string(row_id++),
                           Constraint{std::move(expr), row.relation, rhs});
  }

  LinearExpr objective;
  double constant = original.objective().constant();
  for (const auto& [v, c] : original.objective().terms()) {
    const auto idx = static_cast<std::size_t>(v.index);
    if (result.index_map[idx] < 0)
      constant += c * result.fixed_value[idx];
    else
      objective.add_term(Variable{result.index_map[idx]}, c);
  }
  objective += LinearExpr(constant);
  reduced.set_objective(original.sense(), std::move(objective));

  result.model = std::move(reduced);
  return result;
}

}  // namespace pran::lp
