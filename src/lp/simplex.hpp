#pragma once

/// \file simplex.hpp
/// Two-phase primal simplex over a dense tableau.
///
/// Solves the continuous (LP) relaxation of a Model: integer/binary types
/// are ignored, bounds are honoured by variable shifting plus explicit
/// upper-bound rows. Dantzig pricing with a Bland's-rule fallback after a
/// configurable number of iterations guarantees termination on degenerate
/// problems. Dense storage is deliberate — PRAN's placement instances are a
/// few hundred variables, where dense pivoting is both simple and fast.

#include <vector>

#include "lp/model.hpp"

namespace pran::lp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;     ///< Values per model variable (when optimal).
  double objective = 0.0;    ///< In the model's own sense.
  long iterations = 0;       ///< Total simplex pivots (both phases).
};

struct SimplexOptions {
  long max_iterations = 200000;
  /// Switch from Dantzig to Bland pricing after this many pivots in a phase
  /// (anti-cycling).
  long bland_threshold = 5000;
  double eps = 1e-9;
  /// Phase-1 objective above this is declared infeasible.
  double feas_tol = 1e-7;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the LP relaxation of `model`.
  LpResult solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace pran::lp
