#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::lp {
namespace {

/// Dense two-phase tableau. Columns: structural (shifted model variables),
/// then slack/surplus, then artificial; final column is the RHS.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& options)
      : options_(options) {
    build(model);
  }

  LpResult run(const Model& model) {
    LpResult result;
    // Phase 1: minimize the sum of artificial variables.
    if (num_artificial_ > 0) {
      std::vector<double> phase1_cost(num_cols_, 0.0);
      for (std::size_t j = artificial_begin_; j < num_cols_; ++j)
        phase1_cost[j] = 1.0;
      set_cost(phase1_cost);
      const auto status = optimize(result.iterations, /*phase1=*/true);
      if (status == LpStatus::kIterationLimit) {
        result.status = status;
        return result;
      }
      if (objective_value() > options_.feas_tol) {
        result.status = LpStatus::kInfeasible;
        return result;
      }
      expel_artificials();
    }

    // Phase 2: original costs (converted to minimisation).
    set_cost(structural_cost_);
    forbid_artificials();
    const auto status = optimize(result.iterations, /*phase1=*/false);
    if (status != LpStatus::kOptimal) {
      result.status = status;
      return result;
    }

    result.status = LpStatus::kOptimal;
    result.x.assign(model.variables().size(), 0.0);
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const std::size_t col = basis_[i];
      if (col < shift_.size())
        result.x[col] = rows_[i].back();
    }
    for (std::size_t j = 0; j < shift_.size(); ++j) result.x[j] += shift_[j];
    result.objective = model.objective_value(result.x);
    return result;
  }

 private:
  void build(const Model& model) {
    const auto& vars = model.variables();
    const std::size_t n = vars.size();
    shift_.resize(n);
    for (std::size_t j = 0; j < n; ++j) shift_[j] = vars[j].lower;

    // Collect rows: model constraints plus upper-bound rows for finite
    // upper bounds, all in shifted coordinates (y = x - lower >= 0).
    struct RawRow {
      std::vector<double> a;
      Relation rel;
      double rhs;
    };
    std::vector<RawRow> raw;
    raw.reserve(model.constraints().size() + n);
    for (const auto& ci : model.constraints()) {
      RawRow row{std::vector<double>(n, 0.0), ci.constraint.relation,
                 ci.constraint.rhs};
      for (const auto& [v, c] : ci.constraint.lhs.terms()) {
        row.a[static_cast<std::size_t>(v.index)] += c;
        row.rhs -= c * shift_[static_cast<std::size_t>(v.index)];
      }
      raw.push_back(std::move(row));
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (std::isfinite(vars[j].upper)) {
        RawRow row{std::vector<double>(n, 0.0), Relation::kLessEqual,
                   vars[j].upper - vars[j].lower};
        row.a[j] = 1.0;
        raw.push_back(std::move(row));
      }
    }

    // Normalise to non-negative RHS.
    for (auto& row : raw) {
      if (row.rhs < 0.0) {
        for (auto& v : row.a) v = -v;
        row.rhs = -row.rhs;
        if (row.rel == Relation::kLessEqual)
          row.rel = Relation::kGreaterEqual;
        else if (row.rel == Relation::kGreaterEqual)
          row.rel = Relation::kLessEqual;
      }
    }

    // Count auxiliary columns.
    std::size_t num_slack = 0;
    std::size_t num_artificial = 0;
    for (const auto& row : raw) {
      if (row.rel != Relation::kEqual) ++num_slack;
      if (row.rel != Relation::kLessEqual) ++num_artificial;
    }
    const std::size_t m = raw.size();
    artificial_begin_ = n + num_slack;
    num_artificial_ = num_artificial;
    num_cols_ = n + num_slack + num_artificial;

    rows_.assign(m, std::vector<double>(num_cols_ + 1, 0.0));
    basis_.assign(m, 0);
    std::size_t slack_col = n;
    std::size_t art_col = artificial_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      auto& row = rows_[i];
      for (std::size_t j = 0; j < n; ++j) row[j] = raw[i].a[j];
      row.back() = raw[i].rhs;
      switch (raw[i].rel) {
        case Relation::kLessEqual:
          row[slack_col] = 1.0;
          basis_[i] = slack_col++;
          break;
        case Relation::kGreaterEqual:
          row[slack_col] = -1.0;
          ++slack_col;
          row[art_col] = 1.0;
          basis_[i] = art_col++;
          break;
        case Relation::kEqual:
          row[art_col] = 1.0;
          basis_[i] = art_col++;
          break;
      }
    }

    // Structural cost vector (minimisation).
    structural_cost_.assign(num_cols_, 0.0);
    const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
    for (const auto& [v, c] : model.objective().terms())
      structural_cost_[static_cast<std::size_t>(v.index)] += sign * c;
    banned_.assign(num_cols_, false);
  }

  /// Installs `cost` and prices out the current basis so reduced costs are
  /// consistent.
  void set_cost(const std::vector<double>& cost) {
    cost_row_.assign(num_cols_ + 1, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_row_[j] = cost[j];
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= num_cols_; ++j)
        cost_row_[j] -= cb * rows_[i][j];
    }
  }

  double objective_value() const { return -cost_row_.back(); }

  void forbid_artificials() {
    for (std::size_t j = artificial_begin_; j < num_cols_; ++j)
      banned_[j] = true;
  }

  /// After phase 1, pivots any artificial still in the basis onto a
  /// non-artificial column, or marks its (redundant) row inert.
  void expel_artificials() {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < artificial_begin_) continue;
      std::size_t enter = num_cols_;
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (std::abs(rows_[i][j]) > options_.eps && !banned_[j]) {
          enter = j;
          break;
        }
      }
      if (enter == num_cols_) {
        // Redundant row: zero it so it can never constrain a pivot.
        std::fill(rows_[i].begin(), rows_[i].end(), 0.0);
        continue;
      }
      pivot(i, enter);
    }
  }

  LpStatus optimize(long& iterations, bool phase1) {
    (void)phase1;
    long local = 0;
    for (;;) {
      if (iterations >= options_.max_iterations)
        return LpStatus::kIterationLimit;
      const bool bland = local >= options_.bland_threshold;

      // Pricing: pick the entering column.
      std::size_t enter = num_cols_;
      double best = -options_.eps;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (banned_[j]) continue;
        const double rc = cost_row_[j];
        if (rc < -options_.eps) {
          if (bland) {
            enter = j;
            break;
          }
          if (rc < best) {
            best = rc;
            enter = j;
          }
        }
      }
      if (enter == num_cols_) return LpStatus::kOptimal;

      // Ratio test.
      std::size_t leave = rows_.size();
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const double a = rows_[i][enter];
        if (a <= options_.eps) continue;
        const double ratio = rows_[i].back() / a;
        if (leave == rows_.size() || ratio < best_ratio - options_.eps ||
            (std::abs(ratio - best_ratio) <= options_.eps &&
             basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == rows_.size()) return LpStatus::kUnbounded;

      pivot(leave, enter);
      ++iterations;
      ++local;
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    auto& prow = rows_[row];
    const double p = prow[col];
    PRAN_CHECK(std::abs(p) > options_.eps, "pivot on a (near-)zero element");
    const double inv = 1.0 / p;
    for (auto& v : prow) v *= inv;
    prow[col] = 1.0;  // kill residual round-off
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i == row) continue;
      const double factor = rows_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= num_cols_; ++j)
        rows_[i][j] -= factor * prow[j];
      rows_[i][col] = 0.0;
    }
    const double cfactor = cost_row_[col];
    if (cfactor != 0.0) {
      for (std::size_t j = 0; j <= num_cols_; ++j)
        cost_row_[j] -= cfactor * prow[j];
      cost_row_[col] = 0.0;
    }
    basis_[row] = col;
  }

  SimplexOptions options_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> cost_row_;
  std::vector<double> structural_cost_;
  std::vector<double> shift_;
  std::vector<std::size_t> basis_;
  std::vector<bool> banned_;
  std::size_t num_cols_ = 0;
  std::size_t artificial_begin_ = 0;
  std::size_t num_artificial_ = 0;
};

}  // namespace

LpResult SimplexSolver::solve(const Model& model) const {
  PRAN_REQUIRE(model.num_variables() > 0, "model has no variables");
  Tableau tableau(model, options_);
  return tableau.run(model);
}

}  // namespace pran::lp
