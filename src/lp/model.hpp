#pragma once

/// \file model.hpp
/// Mixed-integer linear program container. Plays the role CPLEX's model API
/// played in the paper's experiments: formulations are built through
/// add_variable / add_constraint and handed to SimplexSolver (LP relaxation)
/// or MilpSolver (branch and bound).

#include <limits>
#include <string>
#include <vector>

#include "lp/expr.hpp"

namespace pran::lp {

enum class VarType { kContinuous, kInteger, kBinary };
enum class Sense { kMinimize, kMaximize };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct VariableInfo {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  VarType type = VarType::kContinuous;
};

struct ConstraintInfo {
  std::string name;
  Constraint constraint;
};

class Model {
 public:
  /// Adds a variable; binary variables get bounds clamped to [0, 1].
  /// Lower bound must be finite and <= upper.
  Variable add_variable(std::string name, double lower, double upper,
                        VarType type);

  /// Convenience wrappers.
  Variable add_binary(std::string name);
  Variable add_integer(std::string name, double lower, double upper);
  Variable add_continuous(std::string name, double lower, double upper);

  void add_constraint(std::string name, Constraint constraint);

  /// Sets the objective; expression constant is carried into reported
  /// objective values.
  void set_objective(Sense sense, LinearExpr objective);

  int num_variables() const noexcept {
    return static_cast<int>(variables_.size());
  }
  int num_constraints() const noexcept {
    return static_cast<int>(constraints_.size());
  }
  int num_integer_variables() const noexcept;

  const VariableInfo& variable(Variable v) const;
  const std::vector<VariableInfo>& variables() const noexcept {
    return variables_;
  }
  const std::vector<ConstraintInfo>& constraints() const noexcept {
    return constraints_;
  }
  Sense sense() const noexcept { return sense_; }
  const LinearExpr& objective() const noexcept { return objective_; }

  /// Tightens a variable's bounds (used by branch and bound). New bounds
  /// must stay within [current lower, current upper] ordering (lo <= hi is
  /// checked; crossing bounds indicate an infeasible branch and are allowed
  /// to be rejected by the caller instead).
  void set_bounds(Variable v, double lower, double upper);

  /// Evaluates the objective (including constant) at a point.
  double objective_value(const std::vector<double>& x) const;

  /// True if `x` satisfies all constraints and bounds within `tol`
  /// (integrality of integer variables included).
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump (LP-format-like), for debugging formulations.
  std::string to_string() const;

 private:
  std::vector<VariableInfo> variables_;
  std::vector<ConstraintInfo> constraints_;
  LinearExpr objective_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace pran::lp
