#include "sim/engine.hpp"

#include <utility>

#include "common/check.hpp"

namespace pran::sim {

EventId Engine::schedule_at(Time at, Handler handler) {
  PRAN_REQUIRE(at >= now_, "cannot schedule an event in the past");
  PRAN_REQUIRE(handler != nullptr, "event handler must be callable");
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(handler)});
  live_.insert(id);
  return id;
}

EventId Engine::schedule_in(Time delay, Handler handler) {
  PRAN_REQUIRE(delay >= 0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Engine::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void Engine::skim_cancelled() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Engine::step() {
  skim_cancelled();
  if (queue_.empty()) return false;
  // Copy the event out before popping so the handler can schedule/cancel
  // freely while it runs.
  Event ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  PRAN_CHECK(ev.at >= now_, "event queue produced a time in the past");
  now_ = ev.at;
  ++executed_;
  ev.handler();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time deadline) {
  PRAN_REQUIRE(deadline >= now_, "deadline is in the past");
  for (;;) {
    skim_cancelled();
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
  }
  now_ = deadline;
}

}  // namespace pran::sim
