#pragma once

/// \file engine.hpp
/// Deterministic discrete-event simulation engine.
///
/// The engine owns a priority queue of (time, sequence, callback) events.
/// Ties at the same timestamp are broken by insertion order, which makes
/// whole-cluster simulations reproducible run to run. Handlers may schedule
/// further events and cancel pending ones through the returned EventId.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pran::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Engine {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `handler` to fire at absolute time `at` (>= now()).
  EventId schedule_at(Time at, Handler handler);

  /// Schedules `handler` to fire `delay` (>= 0) after now().
  EventId schedule_in(Time delay, Handler handler);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled (cancel is idempotent).
  bool cancel(EventId id);

  /// True if any non-cancelled events remain.
  bool has_pending() const noexcept { return !live_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending_count() const noexcept { return live_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with time <= deadline, then advances the clock to
  /// `deadline` even if the queue drained earlier.
  void run_until(Time deadline);

  /// Total events executed so far.
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Event {
    Time at;
    EventId id;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  /// Pops cancelled events off the queue head.
  void skim_cancelled();

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not fired or cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled, still in queue_
};

}  // namespace pran::sim
