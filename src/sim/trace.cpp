#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace pran::sim {

void Trace::emit(Time at, std::string category, std::string message) {
  if (!enabled(category)) return;
  records_.push_back(TraceRecord{at, std::move(category), std::move(message)});
}

void Trace::set_enabled_categories(std::vector<std::string> categories) {
  enabled_categories_ = std::move(categories);
}

bool Trace::enabled(const std::string& category) const {
  if (enabled_categories_.empty()) return true;
  return std::find(enabled_categories_.begin(), enabled_categories_.end(),
                   category) != enabled_categories_.end();
}

std::vector<TraceRecord> Trace::filter(const std::string& category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_)
    if (r.category == category) out.push_back(r);
  return out;
}

std::size_t Trace::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.category == category) ++n;
  return n;
}

std::string Trace::render() const {
  std::ostringstream os;
  for (const auto& r : records_)
    os << "t=" << format_duration(to_seconds(r.at)) << " [" << r.category
       << "] " << r.message << "\n";
  return os.str();
}

}  // namespace pran::sim
