#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/narrow.hpp"
#include "common/strings.hpp"

namespace pran::sim {

std::uint32_t Trace::intern(const std::string& category) {
  const auto it = category_ids_.find(category);
  if (it != category_ids_.end()) return it->second;
  const auto id = pran::narrow_cast<std::uint32_t>(category_ids_.size());
  category_ids_.emplace(category, id);
  const bool enabled =
      enabled_categories_.empty() ||
      std::find(enabled_categories_.begin(), enabled_categories_.end(),
                category) != enabled_categories_.end();
  category_enabled_.push_back(enabled ? 1 : 0);
  category_counts_.push_back(0);
  return id;
}

void Trace::emit(Time at, std::string category, std::string message) {
  const std::uint32_t id = intern(category);
  if (category_enabled_[id] == 0) return;
  TraceRecord record{at, id, std::move(category), std::move(message)};
  if (sink_ != nullptr) sink_->on_record(record);
  if (max_records_ != 0 && records_.size() >= max_records_) {
    ++dropped_;
    return;
  }
  ++category_counts_[id];
  records_.push_back(std::move(record));
}

void Trace::set_enabled_categories(std::vector<std::string> categories) {
  enabled_categories_ = std::move(categories);
  for (const auto& [name, id] : category_ids_)
    category_enabled_[id] =
        (enabled_categories_.empty() ||
         std::find(enabled_categories_.begin(), enabled_categories_.end(),
                   name) != enabled_categories_.end())
            ? 1
            : 0;
}

void Trace::set_capacity(std::size_t max_records) noexcept {
  max_records_ = max_records;
}

void Trace::clear() noexcept {
  records_.clear();
  dropped_ = 0;
  std::fill(category_counts_.begin(), category_counts_.end(), 0);
}

std::vector<TraceRecord> Trace::filter(const std::string& category) const {
  std::vector<TraceRecord> out;
  const auto it = category_ids_.find(category);
  if (it == category_ids_.end()) return out;
  const std::uint32_t id = it->second;
  for (const auto& r : records_)
    if (r.category_id == id) out.push_back(r);
  return out;
}

std::size_t Trace::count(const std::string& category) const {
  const auto it = category_ids_.find(category);
  if (it == category_ids_.end()) return 0;
  return category_counts_[it->second];
}

std::string Trace::render() const {
  std::ostringstream os;
  for (const auto& r : records_)
    os << "t=" << format_duration(to_seconds(r.at)) << " [" << r.category
       << "] " << r.message << "\n";
  return os.str();
}

}  // namespace pran::sim
