#pragma once

/// \file time.hpp
/// Simulated time. PRAN uses an integer nanosecond clock so event ordering
/// is exact and runs are bit-reproducible (no floating-point time drift).

#include <cstdint>

namespace pran::sim {

/// Simulated time in integer nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// One LTE transmission time interval (subframe).
inline constexpr Time kTti = kMillisecond;

constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_microseconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

constexpr Time from_seconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr Time from_microseconds(double us) noexcept {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}

}  // namespace pran::sim
