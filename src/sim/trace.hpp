#pragma once

/// \file trace.hpp
/// Structured event tracing for simulations: components append typed records
/// (category, time, message) that tests and examples can filter. Keeps the
/// engine itself free of I/O.

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pran::sim {

struct TraceRecord {
  Time at = 0;
  std::string category;
  std::string message;
};

/// Append-only trace sink with category filtering. Not thread-safe; the
/// simulation is single-threaded by design.
class Trace {
 public:
  /// Records one entry if the category is enabled (all are by default).
  void emit(Time at, std::string category, std::string message);

  /// Restricts recording to the given categories; empty list re-enables all.
  void set_enabled_categories(std::vector<std::string> categories);

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  /// All records in a category, in emission order.
  std::vector<TraceRecord> filter(const std::string& category) const;

  /// Number of records in a category.
  std::size_t count(const std::string& category) const;

  /// Renders "t=... [category] message" lines.
  std::string render() const;

 private:
  bool enabled(const std::string& category) const;
  std::vector<TraceRecord> records_;
  std::vector<std::string> enabled_categories_;
};

}  // namespace pran::sim
