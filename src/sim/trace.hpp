#pragma once

/// \file trace.hpp
/// Structured event tracing for simulations: components append typed records
/// (category, time, message) that tests and examples can filter. Keeps the
/// engine itself free of I/O.
///
/// Categories are interned: the category string is hashed once per emit
/// (not scanned linearly against the enabled list), and records carry a
/// dense category id alongside the name, so count() is O(1) and filter()
/// compares integers. Retention is capped (set_capacity): once the cap is
/// reached new records are dropped and counted in dropped(), so a long
/// simulation cannot grow the trace without bound. An optional TraceSink
/// observes every enabled record — even capacity-dropped ones — which is
/// how records reach the telemetry layer without sim/ depending on it.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace pran::sim {

struct TraceRecord {
  Time at = 0;
  std::uint32_t category_id = 0;
  std::string category;
  std::string message;
};

/// Observer for enabled trace records; implemented outside sim/ (the
/// telemetry bridge) so the engine stays dependency-free.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_record(const TraceRecord& record) = 0;
};

/// Append-only trace with category filtering. Not thread-safe; the
/// simulation is single-threaded by design.
class Trace {
 public:
  /// Records one entry if the category is enabled (all are by default).
  void emit(Time at, std::string category, std::string message);

  /// Restricts recording to the given categories; empty list re-enables all.
  void set_enabled_categories(std::vector<std::string> categories);

  /// Caps retained records; 0 means unlimited (the default). Records
  /// emitted past the cap are dropped (newest-dropped) and counted.
  void set_capacity(std::size_t max_records) noexcept;
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Installs a non-owning observer of every enabled record (nullptr to
  /// detach). The sink sees records even when the capacity cap drops them.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() noexcept;

  /// All records in a category, in emission order.
  std::vector<TraceRecord> filter(const std::string& category) const;

  /// Number of *retained* records in a category.
  std::size_t count(const std::string& category) const;

  /// Renders "t=... [category] message" lines.
  std::string render() const;

 private:
  std::uint32_t intern(const std::string& category);

  std::vector<TraceRecord> records_;
  std::size_t max_records_ = 0;
  std::uint64_t dropped_ = 0;
  TraceSink* sink_ = nullptr;

  std::unordered_map<std::string, std::uint32_t> category_ids_;
  std::vector<char> category_enabled_;  ///< Indexed by category id.
  std::vector<std::size_t> category_counts_;
  std::vector<std::string> enabled_categories_;  ///< Empty = all enabled.
};

}  // namespace pran::sim
