#pragma once

/// \file trace.hpp
/// Materialised load traces: per-cell expected load sampled on a fixed time
/// grid over a day. The pooling experiments operate on traces (compute
/// demand per time slot) rather than TTI-level simulation, matching how the
/// paper analysed operator data; TTI-level behaviour is covered by the
/// cluster executor experiments.

#include <string>
#include <vector>

#include "workload/traffic.hpp"

namespace pran::workload {

/// One cell's demand across the day on a uniform grid.
struct CellTrace {
  int cell_id = 0;
  SiteKind kind = SiteKind::kMixed;
  /// Expected giga-operations per subframe at each grid point.
  std::vector<double> gops;
  /// Expected PRB utilisation (0..1) at each grid point.
  std::vector<double> utilization;
};

/// A day of traces for a fleet, on a grid of `slots_per_day` points.
class DayTrace {
 public:
  /// Samples `fleet` every 24h/slots_per_day. `gops_samples` controls the
  /// Monte Carlo accuracy of the expected-cost estimate.
  static DayTrace from_fleet(const Fleet& fleet, int slots_per_day = 96,
                             int gops_samples = 32);

  int slots_per_day() const noexcept { return slots_; }
  double hour_of_slot(int slot) const;
  const std::vector<CellTrace>& cells() const noexcept { return cells_; }

  /// Sum of all cells' expected gops in a slot.
  double total_gops(int slot) const;

  /// Slot with the highest fleet-wide aggregate demand.
  int busiest_slot() const;

  /// Sum over cells of each cell's own *maximum* slot demand — what
  /// per-cell peak provisioning must budget for.
  double sum_of_cell_peaks() const;

  /// Maximum over slots of the fleet aggregate — what a pooled deployment
  /// must budget for. sum_of_cell_peaks() / peak_of_sum() is the
  /// statistical-multiplexing (pooling) gain.
  double peak_of_sum() const;

  /// CSV round trip (header: slot,hour,cell,kind,gops,utilization).
  std::string to_csv() const;
  static DayTrace from_csv(const std::string& csv);

 private:
  int slots_ = 0;
  std::vector<CellTrace> cells_;
};

}  // namespace pran::workload
