#include "workload/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace pran::workload {

DayTrace DayTrace::from_fleet(const Fleet& fleet, int slots_per_day,
                              int gops_samples) {
  PRAN_REQUIRE(slots_per_day >= 1, "need at least one slot per day");
  DayTrace trace;
  trace.slots_ = slots_per_day;
  trace.cells_.reserve(fleet.cells.size());
  for (const auto& cell : fleet.cells) {
    CellTrace ct;
    ct.cell_id = cell.site().cell_id;
    ct.kind = cell.site().kind;
    ct.gops.reserve(static_cast<std::size_t>(slots_per_day));
    ct.utilization.reserve(static_cast<std::size_t>(slots_per_day));
    for (int s = 0; s < slots_per_day; ++s) {
      const double hour = 24.0 * s / slots_per_day;
      ct.gops.push_back(cell.expected_subframe_gops(hour, gops_samples));
      ct.utilization.push_back(cell.expected_utilization(hour));
    }
    trace.cells_.push_back(std::move(ct));
  }
  return trace;
}

double DayTrace::hour_of_slot(int slot) const {
  PRAN_REQUIRE(slot >= 0 && slot < slots_, "slot outside the day");
  return 24.0 * slot / slots_;
}

double DayTrace::total_gops(int slot) const {
  PRAN_REQUIRE(slot >= 0 && slot < slots_, "slot outside the day");
  double sum = 0.0;
  for (const auto& c : cells_) sum += c.gops[static_cast<std::size_t>(slot)];
  return sum;
}

int DayTrace::busiest_slot() const {
  PRAN_REQUIRE(slots_ > 0, "trace is empty");
  int best = 0;
  for (int s = 1; s < slots_; ++s)
    if (total_gops(s) > total_gops(best)) best = s;
  return best;
}

double DayTrace::sum_of_cell_peaks() const {
  double sum = 0.0;
  for (const auto& c : cells_) {
    double peak = 0.0;
    for (double g : c.gops) peak = std::max(peak, g);
    sum += peak;
  }
  return sum;
}

double DayTrace::peak_of_sum() const {
  double peak = 0.0;
  for (int s = 0; s < slots_; ++s) peak = std::max(peak, total_gops(s));
  return peak;
}

std::string DayTrace::to_csv() const {
  std::vector<CsvRow> rows;
  rows.push_back({"slot", "hour", "cell", "kind", "gops", "utilization"});
  for (const auto& c : cells_) {
    for (int s = 0; s < slots_; ++s) {
      std::ostringstream g, u, h;
      g.precision(17);  // round-trip exact doubles
      u.precision(17);
      h.precision(17);
      g << c.gops[static_cast<std::size_t>(s)];
      u << c.utilization[static_cast<std::size_t>(s)];
      h << hour_of_slot(s);
      rows.push_back({std::to_string(s), h.str(), std::to_string(c.cell_id),
                      site_kind_name(c.kind), g.str(), u.str()});
    }
  }
  return write_csv(rows);
}

DayTrace DayTrace::from_csv(const std::string& csv) {
  const auto rows = parse_csv(csv);
  PRAN_REQUIRE(rows.size() >= 2, "trace CSV has no data rows");
  PRAN_REQUIRE(rows.front().size() == 6, "trace CSV header mismatch");

  std::map<int, CellTrace> by_cell;
  int max_slot = -1;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& r = rows[i];
    PRAN_REQUIRE(r.size() == 6, "trace CSV row width mismatch");
    const int slot = std::stoi(r[0]);
    const int cell = std::stoi(r[2]);
    max_slot = std::max(max_slot, slot);
    auto& ct = by_cell[cell];
    ct.cell_id = cell;
    for (SiteKind k : {SiteKind::kOffice, SiteKind::kResidential,
                       SiteKind::kMixed, SiteKind::kTransport})
      if (r[3] == site_kind_name(k)) ct.kind = k;
    if (static_cast<std::size_t>(slot) >= ct.gops.size()) {
      ct.gops.resize(static_cast<std::size_t>(slot) + 1, 0.0);
      ct.utilization.resize(static_cast<std::size_t>(slot) + 1, 0.0);
    }
    ct.gops[static_cast<std::size_t>(slot)] = std::stod(r[4]);
    ct.utilization[static_cast<std::size_t>(slot)] = std::stod(r[5]);
  }

  DayTrace trace;
  trace.slots_ = max_slot + 1;
  for (auto& [id, ct] : by_cell) {
    PRAN_REQUIRE(static_cast<int>(ct.gops.size()) == trace.slots_,
                 "trace CSV has missing slots for a cell");
    trace.cells_.push_back(std::move(ct));
  }
  return trace;
}

}  // namespace pran::workload
