#pragma once

/// \file traffic.hpp
/// Per-cell traffic model: turns a diurnal profile into concrete per-TTI
/// uplink allocations (UE count, per-UE PRBs and MCS) and into the expected
/// processing load the controller plans against.
///
/// UEs arrive per TTI as a Poisson process whose intensity tracks the
/// diurnal profile; each UE draws a service class (heavy / medium / light,
/// a 25/25/50 mix of rate demands), a random position that fixes its
/// CQI/MCS through the link model, and a decoder-iteration count that grows
/// with the code rate.

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lte/cost_model.hpp"
#include "lte/link.hpp"
#include "workload/diurnal.hpp"

namespace pran::workload {

/// A service class: demanded rate plus mix weight.
struct ServiceClass {
  const char* name;
  units::BitRate rate_bps;
  double weight;
};

/// Default 25/25/50 heavy/medium/light mix (20 / 5 / 1 Mb/s).
const std::vector<ServiceClass>& default_service_mix();

/// Static description of one cell site.
struct CellSite {
  int cell_id = 0;
  lte::CellConfig config;
  SiteKind kind = SiteKind::kMixed;
  double peak_prb_utilization = 0.85;  ///< Fraction of PRBs busy at peak.
  double radius_m = 800.0;             ///< UE placement radius.
  double min_distance_m = 30.0;
};

/// Samples subframes for one cell. Deterministic given the seed.
class TrafficModel {
 public:
  TrafficModel(CellSite site, DiurnalProfile profile, lte::CostModel cost,
               std::uint64_t seed,
               std::vector<ServiceClass> mix = default_service_mix());

  const CellSite& site() const noexcept { return site_; }
  const DiurnalProfile& profile() const noexcept { return profile_; }

  /// Expected fraction of this cell's PRBs in use at `hour`.
  double expected_utilization(double hour) const;

  /// Draws the uplink allocations for one TTI at `hour`. Total PRBs never
  /// exceed the cell's bandwidth (excess arrivals are clipped, as a real
  /// scheduler would defer them).
  std::vector<lte::Allocation> sample_subframe(double hour);

  /// Expected giga-operations of one uplink subframe at `hour`, estimated
  /// by averaging `samples` draws from a throwaway generator (does not
  /// perturb this model's stream).
  double expected_subframe_gops(double hour, int samples = 64) const;

  /// Worst-case (all PRBs at top MCS) subframe cost, for peak provisioning.
  double peak_subframe_gops() const;

 private:
  std::vector<lte::Allocation> sample_subframe_with(double hour,
                                                    Rng& rng) const;

  CellSite site_;
  DiurnalProfile profile_;
  lte::CostModel cost_;
  std::vector<ServiceClass> mix_;
  double mean_prbs_per_ue_ = 0.0;  ///< Calibrated at construction.
  Rng rng_;
};

/// Builds a fleet of heterogeneous cell sites: site kinds are assigned
/// round-robin over {office, residential, mixed, transport} and each cell's
/// profile is jittered so no two cells are identical.
struct Fleet {
  std::vector<TrafficModel> cells;
};
Fleet make_fleet(int num_cells, std::uint64_t seed,
                 lte::CellConfig config = {},
                 double peak_prb_utilization = 0.85,
                 double profile_jitter_sigma = 0.15);

}  // namespace pran::workload
