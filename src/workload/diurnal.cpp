#include "workload/diurnal.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::workload {

const char* site_kind_name(SiteKind kind) noexcept {
  switch (kind) {
    case SiteKind::kOffice:
      return "office";
    case SiteKind::kResidential:
      return "residential";
    case SiteKind::kMixed:
      return "mixed";
    case SiteKind::kTransport:
      return "transport";
  }
  return "?";
}

DiurnalProfile DiurnalProfile::canonical(SiteKind kind) {
  std::array<double, 24> h{};
  switch (kind) {
    case SiteKind::kOffice:
      // Ramp from 7am, peak 10am-4pm, empty at night.
      h = {0.05, 0.04, 0.04, 0.04, 0.05, 0.08, 0.15, 0.35, 0.65, 0.90,
           1.00, 0.95, 0.85, 0.95, 1.00, 0.95, 0.85, 0.60, 0.35, 0.20,
           0.12, 0.08, 0.06, 0.05};
      break;
    case SiteKind::kResidential:
      // Morning bump, evening peak 8-11pm.
      h = {0.30, 0.20, 0.12, 0.08, 0.08, 0.10, 0.20, 0.35, 0.30, 0.25,
           0.25, 0.28, 0.32, 0.30, 0.30, 0.35, 0.45, 0.60, 0.75, 0.90,
           1.00, 0.95, 0.75, 0.50};
      break;
    case SiteKind::kMixed:
      // Superposition of office and residential behaviour.
      h = {0.18, 0.12, 0.08, 0.06, 0.07, 0.09, 0.18, 0.35, 0.48, 0.58,
           0.63, 0.62, 0.59, 0.63, 0.65, 0.65, 0.65, 0.60, 0.55, 0.55,
           0.56, 0.52, 0.40, 0.28};
      break;
    case SiteKind::kTransport:
      // Commute peaks around 8am and 6pm.
      h = {0.08, 0.05, 0.04, 0.04, 0.08, 0.20, 0.55, 0.95, 1.00, 0.60,
           0.40, 0.38, 0.42, 0.40, 0.38, 0.45, 0.70, 0.95, 1.00, 0.70,
           0.40, 0.25, 0.15, 0.10};
      break;
  }
  return DiurnalProfile(h);
}

DiurnalProfile DiurnalProfile::flat(double level) {
  PRAN_REQUIRE(level >= 0.0 && level <= 1.0, "flat level outside [0, 1]");
  std::array<double, 24> h{};
  h.fill(level);
  return DiurnalProfile(h);
}

DiurnalProfile::DiurnalProfile(std::array<double, 24> hourly)
    : hourly_(hourly) {
  for (double v : hourly_)
    PRAN_REQUIRE(v >= 0.0 && v <= 1.0, "hourly load outside [0, 1]");
}

double DiurnalProfile::at(double hour) const {
  PRAN_REQUIRE(std::isfinite(hour), "hour must be finite");
  double h = std::fmod(hour, 24.0);
  if (h < 0.0) h += 24.0;
  const int lo = static_cast<int>(h) % 24;
  const int hi = (lo + 1) % 24;
  const double frac = h - std::floor(h);
  return hourly_[static_cast<std::size_t>(lo)] * (1.0 - frac) +
         hourly_[static_cast<std::size_t>(hi)] * frac;
}

int DiurnalProfile::peak_hour() const noexcept {
  int best = 0;
  for (int i = 1; i < 24; ++i)
    if (hourly_[static_cast<std::size_t>(i)] >
        hourly_[static_cast<std::size_t>(best)])
      best = i;
  return best;
}

double DiurnalProfile::mean() const noexcept {
  double sum = 0.0;
  for (double v : hourly_) sum += v;
  return sum / 24.0;
}

DiurnalProfile DiurnalProfile::jittered(Rng& rng, double sigma) const {
  PRAN_REQUIRE(sigma >= 0.0, "jitter sigma must be non-negative");
  std::array<double, 24> h = hourly_;
  for (auto& v : h) {
    const double factor = std::exp(rng.normal(0.0, sigma));
    v = std::clamp(v * factor, 0.0, 1.0);
  }
  return DiurnalProfile(h);
}

}  // namespace pran::workload
