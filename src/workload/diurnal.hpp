#pragma once

/// \file diurnal.hpp
/// Diurnal load profiles.
///
/// PRAN's pooling argument rests on real operator traces showing that cells
/// peak at different times of day — office cells at midday, residential
/// cells in the evening — so a shared cluster needs far less capacity than
/// the sum of per-cell peaks. We reproduce that structure synthetically:
/// each profile is a 24-point hourly curve in [0, 1], interpolated
/// continuously and optionally jittered per cell.

#include <array>
#include <string>

#include "common/rng.hpp"

namespace pran::workload {

/// Site archetypes with distinct peak hours.
enum class SiteKind { kOffice, kResidential, kMixed, kTransport };

const char* site_kind_name(SiteKind kind) noexcept;

/// Relative load (fraction of this cell's own peak) as a function of the
/// hour of day.
class DiurnalProfile {
 public:
  /// Builds the canonical curve for a site archetype.
  static DiurnalProfile canonical(SiteKind kind);

  /// Flat profile at the given level (used in controlled experiments).
  static DiurnalProfile flat(double level);

  /// Profile from explicit 24 hourly points (each in [0, 1]).
  explicit DiurnalProfile(std::array<double, 24> hourly);

  /// Load at `hour` in [0, 24); piecewise-linear, wrapping at midnight.
  double at(double hour) const;

  /// Hour (0..23 grid) at which the profile peaks.
  int peak_hour() const noexcept;

  /// Mean load across the day.
  double mean() const noexcept;

  /// Returns a copy with each hourly point multiplied by lognormal-ish
  /// noise (sigma in relative terms) and re-clamped to [0, 1]; models
  /// cell-to-cell variation around the archetype.
  DiurnalProfile jittered(Rng& rng, double sigma) const;

  const std::array<double, 24>& hourly() const noexcept { return hourly_; }

 private:
  std::array<double, 24> hourly_{};
};

}  // namespace pran::workload
