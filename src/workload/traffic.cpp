#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pran::workload {

const std::vector<ServiceClass>& default_service_mix() {
  static const std::vector<ServiceClass> mix = {
      {"heavy", units::BitRate{20e6}, 0.25},
      {"medium", units::BitRate{5e6}, 0.25},
      {"light", units::BitRate{1e6}, 0.50},
  };
  return mix;
}

namespace {

/// Decoder iterations grow with code rate: near-capacity blocks take more
/// passes before the CRC checks out.
int sample_turbo_iterations(double code_rate, Rng& rng) {
  const double mean = 3.0 + 4.0 * code_rate;  // 3.3 .. 6.7
  const int draw = static_cast<int>(std::lround(rng.normal(mean, 0.8)));
  return std::clamp(draw, lte::kMinTurboIterations, lte::kMaxTurboIterations);
}

}  // namespace

TrafficModel::TrafficModel(CellSite site, DiurnalProfile profile,
                           lte::CostModel cost, std::uint64_t seed,
                           std::vector<ServiceClass> mix)
    : site_(site),
      profile_(profile),
      cost_(cost),
      mix_(std::move(mix)),
      rng_(seed) {
  PRAN_REQUIRE(!mix_.empty(), "service mix must be non-empty");
  PRAN_REQUIRE(site_.peak_prb_utilization > 0.0 &&
                   site_.peak_prb_utilization <= 1.0,
               "peak utilization outside (0, 1]");
  PRAN_REQUIRE(site_.radius_m > site_.min_distance_m,
               "cell radius must exceed the minimum UE distance");

  // Calibrate mean PRBs per UE by Monte Carlo so that the Poisson arrival
  // intensity can be set to hit the configured peak PRB utilisation.
  Rng calib(seed ^ 0x5ca1ab1eULL);
  double total = 0.0;
  constexpr int kCalibrationDraws = 512;
  for (int i = 0; i < kCalibrationDraws; ++i) {
    const double w_total = [&] {
      double s = 0.0;
      for (const auto& c : mix_) s += c.weight;
      return s;
    }();
    double pick = calib.uniform() * w_total;
    const ServiceClass* chosen = &mix_.back();
    for (const auto& c : mix_) {
      pick -= c.weight;
      if (pick < 0.0) {
        chosen = &c;
        break;
      }
    }
    const double d = std::sqrt(calib.uniform()) * site_.radius_m;
    const double dist = std::max(d, site_.min_distance_m);
    const int mcs = lte::mcs_from_cqi(std::max(1, lte::cqi_at_distance(dist)));
    total += lte::prbs_for_rate(chosen->rate_bps, mcs).count();
  }
  mean_prbs_per_ue_ = total / kCalibrationDraws;
  PRAN_CHECK(mean_prbs_per_ue_ > 0.0, "calibration produced zero PRBs/UE");
}

double TrafficModel::expected_utilization(double hour) const {
  return site_.peak_prb_utilization * profile_.at(hour);
}

std::vector<lte::Allocation> TrafficModel::sample_subframe_with(
    double hour, Rng& rng) const {
  const double target_prbs =
      expected_utilization(hour) * static_cast<double>(site_.config.n_prb);
  const double lambda = target_prbs / mean_prbs_per_ue_;
  const std::uint32_t ue_count = rng.poisson(lambda);

  std::vector<lte::Allocation> allocs;
  allocs.reserve(ue_count);
  int prbs_left = site_.config.n_prb;
  double weight_total = 0.0;
  for (const auto& c : mix_) weight_total += c.weight;

  for (std::uint32_t u = 0; u < ue_count && prbs_left > 0; ++u) {
    double pick = rng.uniform() * weight_total;
    const ServiceClass* chosen = &mix_.back();
    for (const auto& c : mix_) {
      pick -= c.weight;
      if (pick < 0.0) {
        chosen = &c;
        break;
      }
    }
    // Uniform position in the disc (sqrt for area uniformity).
    const double dist = std::max(std::sqrt(rng.uniform()) * site_.radius_m,
                                 site_.min_distance_m);
    const int cqi = lte::cqi_at_distance(dist);
    if (cqi == 0) continue;  // out of coverage this TTI
    const int mcs = lte::mcs_from_cqi(cqi);
    const int prbs =
        std::min(lte::prbs_for_rate(chosen->rate_bps, mcs).count(), prbs_left);
    if (prbs == 0) continue;
    const double rate = lte::mcs(mcs).code_rate;
    allocs.push_back(
        lte::Allocation{prbs, mcs, sample_turbo_iterations(rate, rng)});
    prbs_left -= prbs;
  }
  return allocs;
}

std::vector<lte::Allocation> TrafficModel::sample_subframe(double hour) {
  return sample_subframe_with(hour, rng_);
}

double TrafficModel::expected_subframe_gops(double hour, int samples) const {
  PRAN_REQUIRE(samples >= 1, "need at least one sample");
  Rng scratch(rng_);  // copy: do not disturb the model's own stream
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    const auto allocs = sample_subframe_with(hour, scratch);
    total +=
        cost_.subframe_cost(site_.config, allocs, lte::Direction::kUplink)
            .total();
  }
  return total / static_cast<double>(samples);
}

double TrafficModel::peak_subframe_gops() const {
  return cost_.peak_cost(site_.config, lte::Direction::kUplink).total();
}

Fleet make_fleet(int num_cells, std::uint64_t seed, lte::CellConfig config,
                 double peak_prb_utilization, double profile_jitter_sigma) {
  PRAN_REQUIRE(num_cells >= 1, "fleet needs at least one cell");
  Fleet fleet;
  fleet.cells.reserve(static_cast<std::size_t>(num_cells));
  Rng rng(seed);
  const SiteKind kinds[] = {SiteKind::kOffice, SiteKind::kResidential,
                            SiteKind::kMixed, SiteKind::kTransport};
  for (int c = 0; c < num_cells; ++c) {
    CellSite site;
    site.cell_id = c;
    site.config = config;
    site.kind = kinds[static_cast<std::size_t>(c) % 4];
    site.peak_prb_utilization = peak_prb_utilization;
    DiurnalProfile profile =
        DiurnalProfile::canonical(site.kind).jittered(rng, profile_jitter_sigma);
    fleet.cells.emplace_back(site, profile, lte::CostModel{}, rng.fork()());
  }
  return fleet;
}

}  // namespace pran::workload
