// E12 — Fronthaul congestion vs HARQ deadlines: why compression is a
// systems requirement, not an optimisation.
//
// All cells share one fronthaul fibre; per-TTI sample bursts serialise
// FIFO, so queueing delay eats directly into the 3 ms uplink budget.
// Claims reproduced: (i) below ~80% link utilisation the fronthaul is
// invisible; (ii) past it, queueing delay explodes and deadline misses
// follow; (iii) I/Q compression (E7's codecs) moves the cliff — the same
// fibre carries ~3x the cells.

#include <cstdio>

#include "common/table.hpp"
#include "core/deployment.hpp"

namespace {

struct Point {
  double link_util = 0.0;
  double queue_delay_us = 0.0;
  double miss_ratio = 0.0;
};

Point run(int cells, double rate_gbps, double compression) {
  using namespace pran;
  core::DeploymentConfig config;
  config.num_cells = cells;
  config.num_servers = cells / 2 + 2;
  config.seed = 5;
  config.start_hour = 11.0;
  config.day_compression = 60.0;
  config.shared_fronthaul =
      fronthaul::LinkParams{units::BitRate{rate_gbps * 1e9},
                            25 * sim::kMicrosecond};
  config.fronthaul_compression = compression;
  core::Deployment d(config);
  d.run_for(600 * sim::kMillisecond);

  Point pt;
  pt.link_util = d.fronthaul_link()->utilization(d.now());
  pt.queue_delay_us =
      sim::to_microseconds(d.fronthaul_link()->max_queue_delay());
  pt.miss_ratio = d.kpis().miss_ratio;
  return pt;
}

}  // namespace

int main() {
  using namespace pran;

  std::printf(
      "E12: shared-fronthaul congestion vs deadline misses "
      "(3.69 Mbit per cell-subframe raw, 600 ms runs)\n\n");

  Table table({"cells", "link_gbps", "compression", "link_util",
               "max_queue_us", "miss_ratio"});
  struct Config {
    int cells;
    double gbps;
    double compression;
  };
  const Config configs[] = {
      {4, 25.0, 1.0}, {6, 25.0, 1.0}, {8, 25.0, 1.0},  // raw: cliff at 7
      {2, 10.0, 1.0}, {3, 10.0, 1.0},                   // raw 10G: cliff at 3
      {6, 10.0, 2.0},                                   // 2x: still over
      {6, 10.0, 3.0}, {7, 10.0, 3.0}, {8, 10.0, 3.0},   // 3x: cliff at 8
  };
  for (const auto& c : configs) {
    const auto pt = run(c.cells, c.gbps, c.compression);
    table.row()
        .cell(c.cells)
        .cell(c.gbps, 0)
        .cell(c.compression, 1)
        .cell(pt.link_util, 3)
        .cell(pt.queue_delay_us, 1)
        .cell(pt.miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: misses stay ~0 until link utilisation nears 1, then the "
      "FIFO queue diverges; 3x compression moves a 10G fibre's cliff from "
      "3 cells to 8\n");
  return 0;
}
