// E18 — Fault injection: what failures cost once detection is not free.
//
// Three questions the fault subsystem answers:
//  (a) detection delay: with heartbeat detection instead of an oracle, the
//      controller keeps feeding a dead server until the monitor declares
//      it — blind-window drops grow with the detection timeout;
//  (b) survivable placement: reserving re-pack headroom (N+1 among the
//      hosting servers) eliminates single-failure outage, at a measured
//      extra-servers/energy cost — and is honestly refused when the fleet
//      cannot support it;
//  (c) flap quarantine: exponential-backoff quarantine of a flapping
//      server cuts migration churn and the repeated damage of re-placing
//      onto a server about to die again.
//
// All sweeps are deterministic for a fixed seed and invariant in
// --threads (each grid point owns its RNG substreams and result slot).

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"
#include "core/deployment.hpp"

namespace {

using namespace pran;

core::DeploymentConfig base_config() {
  core::DeploymentConfig config;
  config.num_cells = 6;
  config.num_servers = 4;
  config.seed = 31;
  config.start_hour = 11.0;
  config.day_compression = 60.0;
  return config;
}

// ---------------------------------------------------------------- Table A

struct DetectPoint {
  double mtbf_s;
  sim::Time heartbeat;
  int miss_threshold;
  const char* label;
};

struct DetectResult {
  core::DeploymentKpis kpis;
};

void run_detection_sweep(unsigned threads) {
  std::printf(
      "A: stochastic crashes (mttr 100 ms), detection timeout sweep, 6 "
      "cells / 4 servers, HARQ on, 3 s runs\n\n");

  const std::vector<DetectPoint> grid = {
      {0.5, 0, 0, "oracle"},
      {0.5, 10 * sim::kMillisecond, 3, "hb10ms x3 (30 ms)"},
      {0.5, 10 * sim::kMillisecond, 9, "hb10ms x9 (90 ms)"},
      {2.0, 0, 0, "oracle"},
      {2.0, 10 * sim::kMillisecond, 3, "hb10ms x3 (30 ms)"},
      {2.0, 10 * sim::kMillisecond, 9, "hb10ms x9 (90 ms)"},
  };

  std::vector<DetectResult> results(grid.size());
  parallel_for_each(threads, grid.size(), [&](unsigned, std::size_t i) {
    auto config = base_config();
    config.harq_retransmissions = true;
    config.stochastic_faults.mtbf_seconds = grid[i].mtbf_s;
    config.stochastic_faults.mttr_seconds = 0.1;
    config.heartbeat_period = grid[i].heartbeat;
    config.heartbeat_miss_threshold = grid[i].miss_threshold;
    core::Deployment d(config);
    d.run_for(3 * sim::kSecond);
    results[i].kpis = d.kpis();
  });

  Table table({"mtbf_s", "detection", "faults", "detected", "mean_detect_ms",
               "blind_drops", "dropped", "lost_tbs", "miss_ratio"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& k = results[i].kpis;
    table.row()
        .cell(grid[i].mtbf_s, 1)
        .cell(grid[i].label)
        .cell(k.faults_injected)
        .cell(k.fault_detections)
        .cell(k.mean_detection_latency_ms, 1)
        .cell(static_cast<long long>(k.blind_window_drops))
        .cell(static_cast<long long>(k.dropped))
        .cell(static_cast<long long>(k.lost_transport_blocks))
        .cell(k.miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: every extra heartbeat of detection timeout is a longer "
      "blind window — drops and lost TBs grow with it; the oracle rows "
      "are the E8 idealisation\n\n");
}

// ---------------------------------------------------------------- Table B

void run_survivability_table() {
  std::printf(
      "B: one scripted failure of the busiest server at t=800 ms, 30 "
      "cells, 2.5 s runs\n\n");

  Table table({"servers", "mode", "outage_cells", "outage_cell_ttis",
               "mean_active", "energy_j", "migrations"});
  for (int servers : {4, 5, 6}) {
    for (const bool survivable : {false, true}) {
      auto config = base_config();
      config.num_cells = 30;
      config.num_servers = servers;
      config.controller.survivable = survivable;
      auto& row = table.row();
      row.cell(servers).cell(survivable ? "survivable" : "plain");
      try {
        core::Deployment d(config);
        d.run_for(800 * sim::kMillisecond);
        // Fail the busiest server: the worst single loss.
        int victim = 0;
        double worst = -1.0;
        for (int s = 0; s < servers; ++s) {
          double load = 0.0;
          for (int c = 0; c < config.num_cells; ++c)
            if (d.controller().server_of(c) == s)
              load += d.controller().estimated_demand(c);
          if (load > worst) {
            worst = load;
            victim = s;
          }
        }
        d.fail_server_at(d.now(), victim);
        d.run_for(1700 * sim::kMillisecond);
        const auto k = d.kpis();
        row.cell(k.failover_outage_cells)
            .cell(static_cast<long long>(k.outage_cell_ttis))
            .cell(k.mean_active_servers, 2)
            .cell(k.energy_joules, 1)
            .cell(k.migrations);
      } catch (const pran::ContractViolation&) {
        // Survivable placement is infeasible on this fleet: the placer
        // refuses to run knife-edge instead of pretending.
        row.cell("refused").cell("-").cell("-").cell("-").cell("-");
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: survivable mode spends more active servers/energy, "
      "eliminates single-failure outage, and refuses fleets that cannot "
      "support the guarantee\n\n");
}

// ---------------------------------------------------------------- Table C

void run_quarantine_table() {
  std::printf(
      "C: flapping server (6 fail/restore cycles, 300 ms apart), "
      "non-sticky FFD, 4 s runs\n\n");

  Table table({"quarantine", "migrations", "dropped", "outage_cell_ttis",
               "quarantine_events", "miss_ratio"});
  for (const bool quarantine : {false, true}) {
    auto config = base_config();
    config.num_servers = 3;
    config.placer = core::DeploymentConfig::PlacerKind::kFirstFitNoSticky;
    config.controller.quarantine = quarantine;
    config.controller.flap_threshold = 2;
    config.controller.flap_window = 5 * sim::kSecond;
    config.controller.quarantine_base = sim::kSecond;
    core::Deployment d(config);
    d.run_for(200 * sim::kMillisecond);
    const int victim = d.controller().server_of(0);
    const sim::Time base = d.now() + 50 * sim::kMillisecond;
    for (int i = 0; i < 6; ++i) {
      d.fail_server_at(base + i * 300 * sim::kMillisecond, victim);
      d.restore_server_at(
          base + i * 300 * sim::kMillisecond + 100 * sim::kMillisecond,
          victim);
    }
    d.run_for(3800 * sim::kMillisecond);
    const auto k = d.kpis();
    table.row()
        .cell(quarantine ? "on" : "off")
        .cell(k.migrations)
        .cell(static_cast<long long>(k.dropped))
        .cell(static_cast<long long>(k.outage_cell_ttis))
        .cell(k.quarantine_events)
        .cell(k.miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: without quarantine every flap re-places cells onto a "
      "server about to die again; backoff quarantine holds it out and the "
      "churn stops\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("bench_e18_fault_injection",
              "E18: stochastic faults, detection delay, survivability, "
              "flap quarantine");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the detection sweep");
  flags.add_string("metrics-out", "",
                   "write a telemetry snapshot to this file (.json or .csv)");
  flags.add_string("trace-out", "",
                   "write Chrome trace-event JSON to this file");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  const auto threads = static_cast<unsigned>(flags.get_int("threads"));

  std::printf("E18: fault injection economics\n\n");
  run_detection_sweep(threads);
  run_survivability_table();
  run_quarantine_table();
  if (!flags.get_string("metrics-out").empty())
    pran::telemetry::write_metrics_file(flags.get_string("metrics-out"));
  if (!flags.get_string("trace-out").empty())
    pran::telemetry::write_chrome_trace_file(flags.get_string("trace-out"));
  return 0;
}
