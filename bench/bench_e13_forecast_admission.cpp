// E13 — Two controller extensions under stress: demand forecasting on the
// morning ramp, and admission control under true overload.
//
// (a) Ramp: traffic triples between 5 am and 11 am (heavily compressed, so
//     demand grows ~2x within one control epoch). A reactive controller
//     plans for the load it has seen; a forecasting controller scales each
//     cell's estimate by its profile's expected growth over the epoch and
//     provisions ahead of the ramp.
// (b) Overload: demand exceeds total cluster capacity at the peak. Without
//     admission control the stale plan overloads every server and *all*
//     cells miss deadlines; with shedding, the controller drops the
//     largest cells into planned outage and serves the rest cleanly.

#include <cstdio>

#include "common/table.hpp"
#include "core/deployment.hpp"

namespace {

pran::core::DeploymentKpis run_ramp(double horizon_hours) {
  using namespace pran;
  core::DeploymentConfig config;
  config.num_cells = 6;
  config.num_servers = 4;
  config.server = cluster::ServerSpec{"srv", 4, 150.0};
  config.seed = 13;
  config.start_hour = 5.0;
  config.day_compression = 14400.0;        // 4 diurnal hours per second
  config.epoch = 500 * sim::kMillisecond;  // 2 diurnal hours per epoch
  config.forecast_horizon_hours = horizon_hours;
  config.controller.headroom = 0.9;
  config.controller.demand_safety = 1.0;
  core::Deployment d(config);
  d.run_for(1500 * sim::kMillisecond);  // 5 am -> 11 am
  return d.kpis();
}

pran::core::DeploymentKpis run_overload(bool shed, double forecast_h) {
  using namespace pran;
  core::DeploymentConfig config;
  // Ramps from a feasible 6 am into a 10 am peak that exceeds the whole
  // 2-server cluster — capacity cannot be bought, only rationed.
  config.num_cells = 10;
  config.num_servers = 2;
  config.server = cluster::ServerSpec{"srv", 3, 150.0};
  config.peak_prb_utilization = 1.0;
  config.seed = 21;
  config.start_hour = 6.0;
  config.day_compression = 14400.0;  // 4 diurnal hours per second
  config.epoch = 100 * sim::kMillisecond;
  config.forecast_horizon_hours = forecast_h;
  config.controller.shed_on_infeasible = shed;
  config.controller.headroom = 0.8;
  config.controller.demand_safety = 1.0;
  config.harq_retransmissions = true;  // misses feed back as extra load
  core::Deployment d(config);
  d.run_for(1500 * sim::kMillisecond);  // 6 am -> noon
  return d.kpis();
}

}  // namespace

int main() {
  using namespace pran;

  std::printf(
      "E13a: morning ramp (5->11 am compressed to 1.5 s; demand ~2x per "
      "epoch), reactive vs forecasting controller\n\n");
  Table ramp({"controller", "misses", "miss_ratio", "mean_active_srv",
              "infeasible_epochs"});
  for (double horizon : {0.0, 1.0, 2.0}) {
    const auto kpis = run_ramp(horizon);
    ramp.row()
        .cell(horizon == 0.0 ? "reactive"
                             : ("forecast+" + std::to_string(static_cast<int>(
                                    horizon)) + "h"))
        .cell(static_cast<long long>(kpis.deadline_misses))
        .cell(kpis.miss_ratio, 5)
        .cell(kpis.mean_active_servers, 2)
        .cell(kpis.infeasible_epochs);
  }
  std::printf("%s\n", ramp.render().c_str());

  std::printf(
      "E13b: peak overload (10 full-load cells ramping onto a 2-server "
      "cluster), admission control off vs on\n\n");
  Table over({"admission", "miss_ratio", "shed_cell_epochs",
              "outage_cell_ttis", "infeasible_epochs", "harq_retx",
              "lost_tbs"});
  struct Row { const char* label; bool shed; double forecast; };
  const Row rows[] = {{"off", false, 0.0},
                      {"shed", true, 0.0},
                      {"shed+forecast", true, 1.0}};
  for (const auto& r : rows) {
    const auto kpis = run_overload(r.shed, r.forecast);
    over.row()
        .cell(r.label)
        .cell(kpis.miss_ratio, 5)
        .cell(kpis.shed_cell_epochs)
        .cell(static_cast<long long>(kpis.outage_cell_ttis))
        .cell(kpis.infeasible_epochs)
        .cell(static_cast<long long>(kpis.harq_retransmissions))
        .cell(static_cast<long long>(kpis.lost_transport_blocks));
  }
  std::printf("%s\n", over.render().c_str());
  std::printf(
      "reading: (a) forecasting provisions ahead of the ramp — fewer "
      "misses for more servers; (b) without admission control the HARQ "
      "feedback turns overload into a retransmission storm; shedding "
      "converts it into bounded planned outage with clean service for "
      "the admitted cells\n");
  return 0;
}
