// E4 — Statistical-multiplexing (pooling) gain: servers needed by a pooled
// PRAN cluster vs per-cell peak provisioning, as the fleet grows.
//
// The paper's headline resource result: because office, residential and
// transport cells peak at different hours, the pooled cluster needs far
// fewer servers than the sum of per-cell peaks. Also prints the 24-hour
// series for one fleet — the time-axis "figure".

#include <cstdio>

#include "common/table.hpp"
#include "core/pooling.hpp"

int main() {
  using namespace pran;
  const cluster::ServerSpec server{"srv", 8, 150.0};

  std::printf(
      "E4: pooled vs peak-provisioned servers (server = %d cores x %.0f "
      "GOPS, headroom 0.8, safety 1.25)\n\n",
      server.cores, server.gops_per_core);

  Table table({"cells", "dedicated_bbus", "peak_provisioned", "pooled_peak",
               "saving_vs_peak_pct", "saving_vs_bbu_pct",
               "pooled_busiest_hour"});
  for (int cells : {4, 8, 16, 24, 32, 48, 64}) {
    const auto fleet = workload::make_fleet(cells, 2024);
    const auto trace = workload::DayTrace::from_fleet(fleet, 48, 24);
    const auto summary = core::analyze_pooling(trace, server);
    int busiest = 0;
    for (const auto& pt : summary.series)
      if (pt.pooled_servers >
          summary.series[static_cast<std::size_t>(busiest)].pooled_servers)
        busiest = pt.slot;
    table.row()
        .cell(cells)
        .cell(summary.dedicated_bbus)
        .cell(summary.peak_provisioned_servers)
        .cell(summary.pooled_peak_servers)
        .cell(100.0 * summary.savings(), 1)
        .cell(100.0 * summary.savings_vs_dedicated(), 1)
        .cell(trace.hour_of_slot(busiest), 1);
  }
  std::printf("%s\n", table.render().c_str());

  // Hour-by-hour view for a 24-cell fleet.
  std::printf("24-cell fleet, hour-by-hour pooled server demand:\n\n");
  const auto fleet = workload::make_fleet(24, 2024);
  const auto trace = workload::DayTrace::from_fleet(fleet, 24, 24);
  const auto summary = core::analyze_pooling(trace, server);
  Table hours({"hour", "total_gops_per_tti", "pooled_servers"});
  for (const auto& pt : summary.series)
    hours.row().cell(pt.hour, 0).cell(pt.total_gops.value(), 2).cell(pt.pooled_servers);
  std::printf("%s\n", hours.render().c_str());
  std::printf(
      "pooling saves %.0f%% of servers vs peak provisioning and %.0f%% vs "
      "one dedicated BBU per cell at this fleet size\n",
      100.0 * summary.savings(), 100.0 * summary.savings_vs_dedicated());
  return 0;
}
