// E2 — Subframe processing time vs allocated PRBs at several MCS levels.
//
// Claim reproduced: processing cost is close to linear in the number of
// allocated PRBs (above the fixed FFT floor), so per-subframe load tracks
// the radio scheduler's decisions and can be predicted by the controller.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "lte/cost_model.hpp"

int main() {
  using namespace pran;
  const lte::CellConfig cell;
  const lte::CostModel model;
  const double core_gops = 150.0;

  std::printf("E2: subframe processing time (us) vs allocated PRBs\n\n");

  const int mcs_levels[] = {5, 10, 16, 22, 28};
  std::vector<std::string> header{"prbs"};
  for (int m : mcs_levels) header.push_back("mcs" + std::to_string(m));
  Table table(header);

  for (int prbs = 0; prbs <= 100; prbs += 10) {
    table.row().cell(prbs);
    for (int m : mcs_levels) {
      const std::vector<lte::Allocation> allocs{{prbs, m, 6}};
      const auto cost =
          model.subframe_cost(cell, allocs, lte::Direction::kUplink);
      table.cell(cost.total() / core_gops * 1e6, 1);
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Linearity check: cost(100) vs 2*cost(50) net of the fixed floor.
  const auto fixed = model.fixed_cost(cell, lte::Direction::kUplink).total();
  const auto at = [&](int prbs) {
    const std::vector<lte::Allocation> allocs{{prbs, 22, 6}};
    return model.subframe_cost(cell, allocs, lte::Direction::kUplink).total() -
           fixed;
  };
  std::printf("linearity (mcs 22): cost(100 PRB)/2*cost(50 PRB) = %.3f, "
              "fixed FFT floor = %.1f us\n",
              at(100) / (2.0 * at(50)), fixed / core_gops * 1e6);
  return 0;
}
