// E5 — Exact ILP placement vs the online first-fit heuristic.
//
// Claims reproduced: (i) the heuristic's server count is at or near the ILP
// optimum in practice; (ii) its solve time is orders of magnitude smaller,
// which is what makes per-epoch re-planning viable at line rate. This is
// the "workshop-grade ILP plus heuristic" comparison from the calibration.

#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/placement.hpp"

int main() {
  using namespace pran;
  const int trials = 3;

  std::printf(
      "E5: MILP (exact) vs first-fit-decreasing placement, %d random "
      "instances per size\n\n",
      trials);

  Table table({"cells", "servers", "milp_servers", "ffd_servers",
               "gap_servers", "proven_pct", "milp_ms", "ffd_us", "speedup_x",
               "milp_nodes"});

  for (int cells : {4, 6, 8, 10, 12, 16}) {
    const int servers = cells / 2 + 2;
    RunningStats milp_srv, ffd_srv, gap, milp_time, ffd_time, nodes;
    int proven = 0, compared = 0;
    for (int t = 0; t < trials; ++t) {
      Rng rng(1000 + static_cast<std::uint64_t>(cells) * 17 +
              static_cast<std::uint64_t>(t));
      core::PlacementProblem p;
      p.headroom = 0.85;
      for (int c = 0; c < cells; ++c) {
        const double demand = rng.uniform(0.08, 0.55);
        p.cells.push_back({c, demand, demand * 1.5});
      }
      for (int s = 0; s < servers; ++s)
        p.servers.push_back(cluster::ServerSpec{"s", 1, 1000.0});  // 1.0/TTI

      lp::MilpOptions opts;
      opts.time_limit_s = 5.0;
      const auto exact = core::MilpPlacer{opts}.place(p);
      const auto heur = core::FirstFitPlacer{}.place(p);
      if (!exact.feasible || !heur.feasible) continue;

      milp_srv.add(exact.active_servers());
      ffd_srv.add(heur.active_servers());
      // The optimality gap is only meaningful against a *proven* optimum;
      // at the time limit the MILP incumbent can even trail FFD.
      if (exact.proven_optimal) {
        ++proven;
        gap.add(heur.active_servers() - exact.active_servers());
      }
      ++compared;
      milp_time.add(exact.solve_seconds * 1e3);
      ffd_time.add(heur.solve_seconds * 1e6);
      nodes.add(static_cast<double>(exact.milp_nodes));
    }
    table.row()
        .cell(cells)
        .cell(servers)
        .cell(milp_srv.mean(), 2)
        .cell(ffd_srv.mean(), 2)
        .cell(gap.count() ? gap.mean() : 0.0, 2)
        .cell(compared ? 100.0 * proven / compared : 0.0, 0)
        .cell(milp_time.mean(), 2)
        .cell(ffd_time.mean(), 1)
        .cell(milp_time.mean() * 1e3 / ffd_time.mean(), 0)
        .cell(nodes.mean(), 0);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: gap_servers ~ 0 (heuristic near-optimal); speedup grows "
      "with instance size\n");
  return 0;
}
