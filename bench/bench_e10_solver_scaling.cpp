// E10 — MILP solver scaling and the LP-relaxation bound.
//
// Why PRAN needs the heuristic at all: branch-and-bound cost explodes with
// instance size even on bin-packing-style placements, while the LP
// relaxation (the bound the search prunes against) is loose for activation
// variables. Printed per size: model shape, nodes, pivots, solve time,
// LP bound vs integer optimum.

#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/placement.hpp"
#include "lp/simplex.hpp"

int main() {
  using namespace pran;

  std::printf("E10: branch-and-bound scaling on placement MILPs\n\n");

  Table table({"cells", "servers", "vars", "constraints", "lp_obj",
               "ilp_obj", "lp_gap_pct", "nodes", "lp_pivots", "milp_ms",
               "status"});

  for (int cells : {4, 6, 8, 10, 12, 14, 16}) {
    const int servers = cells / 2 + 2;
    Rng rng(500 + static_cast<std::uint64_t>(cells));
    core::PlacementProblem p;
    p.headroom = 0.85;
    for (int c = 0; c < cells; ++c) {
      const double demand = rng.uniform(0.1, 0.5);
      p.cells.push_back({c, demand, demand * 1.5});
    }
    for (int s = 0; s < servers; ++s)
      p.servers.push_back(cluster::ServerSpec{"s", 1, 1000.0});

    const auto model = core::build_placement_model(p);
    const auto lp = lp::SimplexSolver{}.solve(model);

    lp::MilpOptions opts;
    opts.time_limit_s = 30.0;
    opts.max_nodes = 2000000;
    const auto milp = lp::MilpSolver{opts}.solve(model);

    const char* status = "?";
    switch (milp.status) {
      case lp::MilpStatus::kOptimal:
        status = "optimal";
        break;
      case lp::MilpStatus::kFeasible:
        status = "limit+incumbent";
        break;
      case lp::MilpStatus::kInfeasible:
        status = "infeasible";
        break;
      default:
        status = "limit";
        break;
    }
    const double gap =
        milp.has_solution() && milp.objective != 0.0
            ? 100.0 * (milp.objective - lp.objective) / milp.objective
            : 0.0;
    table.row()
        .cell(cells)
        .cell(servers)
        .cell(model.num_variables())
        .cell(model.num_constraints())
        .cell(lp.objective, 3)
        .cell(milp.has_solution() ? milp.objective : -1.0, 3)
        .cell(gap, 1)
        .cell(static_cast<long long>(milp.nodes))
        .cell(static_cast<long long>(milp.lp_iterations))
        .cell(milp.solve_seconds * 1e3, 2)
        .cell(status);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the LP bound (fractional activations) sits below the "
      "integer optimum, so nodes grow quickly with size — hence the "
      "controller's heuristic\n");
  return 0;
}
