// E14 — Channel-coding ground truth: BLER waterfalls and *measured* decoder
// throughput on this machine.
//
// Two purposes. (1) Reproduce the textbook link curves the PHY model
// assumes: BLER-vs-SNR waterfalls shifting right as the code rate rises —
// the physical reason the MCS table exists. (2) Ground the cost model's
// central premise with real code: the Viterbi decoder (the convolutional
// stand-in for LTE's turbo decoder) is measured with google-benchmark,
// giving actual decoded-Mbps per core and the encode/decode asymmetry the
// GOPS model assumes (decode orders of magnitude more expensive).
//
// The waterfall sweep fans blocks across a thread pool (--threads N,
// default: hardware); per-block RNG substreams make the table identical
// for any thread count. The google-benchmark numbers stay single-threaded:
// they are the per-core kernel times the cost model consumes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "coding/bler.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

namespace {

using namespace pran;
using namespace pran::coding;

void print_waterfalls(ThreadPool& pool) {
  std::printf(
      "E14a: BLER vs Es/N0 (256-bit blocks + CRC-24A, K=7 rate-1/3 mother "
      "code, soft Viterbi, 200 blocks per point, %u threads)\n\n",
      pool.size());
  Table table({"esn0_db", "rate_1/3", "rate_1/2", "rate_2/3", "rate_4/5"});
  const double rates[] = {1.0 / 3.0, 0.5, 2.0 / 3.0, 0.8};
  Rng rng(2025);
  const auto sweep_start = std::chrono::steady_clock::now();
  for (double esn0 = -6.0; esn0 <= 4.01; esn0 += 1.0) {
    table.row().cell(esn0, 1);
    for (double rate : rates) {
      LinkConfig config;
      config.info_bits = 256;
      config.code_rate = rate;
      const auto stats = run_link(config, units::Db{esn0}, 200, rng, &pool);
      table.cell(stats.bler(), 3);
    }
  }
  const double sweep_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - sweep_start)
                             .count();
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: each rate's waterfall sits ~1.5-2.5 dB right of the "
      "previous — the SNR ladder the MCS table walks\n");
  std::printf("sweep wall-clock: %.2f s on %u threads\n\n", sweep_s,
              pool.size());
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.bernoulli(0.5) ? 1 : 0);
  return out;
}

void BM_ConvolutionalEncode(benchmark::State& state) {
  Rng rng(1);
  const auto info = random_bits(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolutional_encode(info));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) / 8);
  state.counters["info_Mbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConvolutionalEncode)->Arg(256)->Arg(1024)->Arg(6144);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(2);
  const auto info = random_bits(static_cast<std::size_t>(state.range(0)), rng);
  const auto coded = convolutional_encode(info);
  const auto llrs = transmit_bpsk(coded, units::Db{3.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viterbi_decode(llrs, info.size()));
  }
  state.counters["info_Mbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ViterbiDecode)->Arg(256)->Arg(1024)->Arg(6144);

void BM_FullLinkRoundTrip(benchmark::State& state) {
  Rng rng(3);
  LinkConfig config;
  config.info_bits = 1024;
  config.code_rate = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_trip_block(config, units::Db{3.0}, rng));
  }
  state.counters["blocks_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullLinkRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // strips --benchmark_* flags

  Flags flags("bench_e14_coding", "E14: coding ground truth");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the BLER waterfall sweep");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  ThreadPool pool(static_cast<unsigned>(flags.get_int("threads")));
  print_waterfalls(pool);
  std::printf(
      "E14b: measured encode/decode throughput (google-benchmark, single "
      "thread)\n\n");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
