// E21 — Compute-aware overload control: the throughput-vs-compute
// frontier and computational outage.
//
// The complexity-rate analysis behind pooled base-band processing says
// decoder effort is a schedulable resource: most turbo blocks converge
// early, so iteration budget — not peak GOPS — is the real currency of
// the pool. This experiment measures what the overload subsystem buys
// when offered PHY work exceeds the pool:
//
//  (a) compute-brownout severity sweep: every server slowed to a factor
//      of nominal speed for a 600 ms window, overload loop off vs on.
//      The off rows ride the backlog into a HARQ-fed deadline-miss
//      storm; the on rows clamp per-TB decode effort (backpressure) and
//      abandon deadline-infeasible subframes as computational outages —
//      a third outcome, distinct from fault drops and deadline misses;
//  (b) the frontier those rows trace: delivered transport-block bits
//      (throughput) against realized turbo iterations (compute spend) —
//      the overload loop moves the deployment along the complexity-rate
//      curve instead of off the deadline cliff;
//  (c) acceptance — the E19 30% fronthaul brownout rerun with the
//      compute rungs (decode-effort caps + MCS cap) and the fast loop
//      armed: deadline misses must stay at or below the compression-only
//      ladder while the computational-outage rate is nonzero and
//      bounded.
//
// All sweeps are deterministic for a fixed seed and invariant in
// --threads (each grid point owns its deployment and result slot).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_guard.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "core/kpi_export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pran;

// --- A/B: compute brownouts on a moderately loaded pool. -------------------

core::DeploymentConfig pool_config(bool overload_on) {
  core::DeploymentConfig config;
  config.num_cells = 4;
  config.num_servers = 2;
  config.seed = 21;
  config.epoch = 500 * sim::kMillisecond;
  config.harq_retransmissions = true;
  config.overload.enabled = overload_on;
  return config;
}

/// Slows every server to `factor` of nominal speed for the window —
/// the compute analogue of a fronthaul brownout.
void schedule_compute_brownout(core::Deployment& d, double factor) {
  if (factor >= 1.0) return;
  faults::FaultEvent slow;
  slow.kind = faults::FaultKind::kDegrade;
  slow.at = 500 * sim::kMillisecond;
  slow.duration = 600 * sim::kMillisecond;
  slow.servers = {0, 1};
  slow.degrade_factor = factor;
  d.injector().schedule(slow);
}

struct GridPoint {
  const char* label;
  double factor;  // server speed multiplier during the brownout window
  bool overload;
};

void run_severity_sweep(unsigned threads, sim::Time duration,
                        std::vector<core::DeploymentKpis>& results,
                        std::vector<GridPoint>& grid) {
  std::printf(
      "A: compute-brownout severity grid, 4 cells / 2 servers, HARQ on, "
      "%.0f ms runs, 600 ms brownout window, overload loop "
      "{onset 0.5, full 2.0 TTIs, effort 8 -> 2}\n\n",
      static_cast<double>(duration) / sim::kMillisecond);

  for (const bool overload : {false, true}) {
    grid.push_back({"healthy", 1.0, overload});
    grid.push_back({"slow 2x", 0.5, overload});
    grid.push_back({"slow 3x", 0.33, overload});
    grid.push_back({"slow 5x", 0.2, overload});
    grid.push_back({"slow 10x", 0.1, overload});
  }

  results.assign(grid.size(), {});
  parallel_for_each(threads, grid.size(), [&](unsigned, std::size_t i) {
    core::Deployment d(pool_config(grid[i].overload));
    schedule_compute_brownout(d, grid[i].factor);
    d.run_for(duration);
    results[i] = d.kpis();
  });

  Table table({"brownout", "overload", "misses", "miss_ratio", "outages",
               "outage_ratio", "capped_tbs", "iters_real/need",
               "peak_press"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& k = results[i];
    const double effort_ratio =
        k.decode_iterations_needed
            ? static_cast<double>(k.decode_iterations_realized) /
                  static_cast<double>(k.decode_iterations_needed)
            : 1.0;
    table.row()
        .cell(grid[i].label)
        .cell(grid[i].overload ? "on" : "off")
        .cell(static_cast<long long>(k.deadline_misses))
        .cell(k.miss_ratio, 5)
        .cell(static_cast<long long>(k.compute_outage_jobs))
        .cell(k.compute_outage_ratio, 5)
        .cell(static_cast<long long>(k.effort_capped_tbs))
        .cell(effort_ratio, 4)
        .cell(k.peak_compute_pressure, 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the off rows queue until the HARQ storm sustains the miss "
      "ratio long past the window; the on rows spend decode effort first "
      "(capped_tbs, iters_real/need < 1) and abandon only the "
      "deadline-infeasible remainder as computational outages, keeping "
      "misses an order of magnitude lower at every depth\n\n");
}

void run_frontier(const std::vector<core::DeploymentKpis>& results,
                  const std::vector<GridPoint>& grid) {
  std::printf(
      "B: throughput-vs-compute frontier traced by the overload rows\n\n");
  Table table({"brownout", "overload", "offered_Mbit", "delivered_Mbit",
               "goodput", "Giter_spent"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& k = results[i];
    table.row()
        .cell(grid[i].label)
        .cell(grid[i].overload ? "on" : "off")
        .cell(k.offered_tb_bits / 1e6, 2)
        .cell(k.delivered_tb_bits / 1e6, 2)
        .cell(k.offered_tb_bits > 0.0
                  ? k.delivered_tb_bits / k.offered_tb_bits
                  : 0.0,
              4)
        .cell(static_cast<double>(k.decode_iterations_realized) / 1e9, 6);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: each on/off pair at one depth is a point pair on the "
      "complexity-rate plane — same offered bits, but the overload rows "
      "convert fewer iterations into more delivered bits, because work "
      "that cannot make its deadline is abandoned before it burns "
      "compute that feasible subframes needed\n\n");
}

// --- C: the E19 acceptance scenario with the compute rungs armed. ----------

core::DeploymentConfig e19_config(bool compute_rungs) {
  // Mirrors bench_e19's base — 5 cells on a shared 25G fibre at 74%
  // utilisation, a 30% brownout pushes offered load to 1.05x capacity —
  // but on a leaner pool: 2 servers with 4 slower (100 GOPS) cores, vs
  // E19's 4x8 at 150. E19's pool had so much compute headroom that a
  // burst delivered arbitrarily late still decoded with milliseconds to
  // spare; on the lean pool a worst-case subframe at full effort flirts
  // with the 3 ms HARQ budget, so the minutes the wire brownout steals
  // from the deadline actually interact with the compute budget — the
  // regime the compute rungs exist for.
  core::DeploymentConfig config;
  config.num_cells = 5;
  config.num_servers = 2;
  config.server.cores = 4;
  config.server.gops_per_core = 100.0;
  config.seed = 19;
  config.harq_retransmissions = true;
  config.epoch = 10 * sim::kMillisecond;
  config.shared_fronthaul =
      fronthaul::LinkParams{units::BitRate{25e9}, 25 * sim::kMicrosecond};
  config.fronthaul_impairments.brownout.mtbb_seconds = 0.3;
  config.fronthaul_impairments.brownout.mean_duration_seconds = 0.4;
  config.fronthaul_impairments.brownout.capacity_factor = 0.55;
  config.degradation.enabled = true;
  config.degradation.compression_ladder = {1.5, 2.0};
  config.degradation.up_epochs = 1;
  config.degradation.down_epochs = 10;
  config.degradation.queue_delay_up_us = 1000.0;
  config.degradation.queue_delay_down_us = 700.0;
  config.degradation.loss_up = 0.2;
  config.degradation.loss_down = 0.05;
  if (compute_rungs) {
    config.degradation.effort_ladder = {6, 4};
    config.degradation.mcs_cap = 20;
    config.overload.enabled = true;
  }
  return config;
}

int run_acceptance(sim::Time duration, const core::TimelineConfig& timeline) {
  std::printf(
      "C: acceptance — E19 30%% fronthaul brownout, compression-only "
      "ladder vs ladder + compute rungs + overload loop\n\n");
  core::DeploymentKpis kpis[2];
  for (const bool compute_rungs : {false, true}) {
    auto config = e19_config(compute_rungs);
    // The timeline rides on the compute-rung run only — the two runs are
    // sequential and share the global registry, and the headline run is
    // the one whose outage budget the SLO engine should be watching.
    if (compute_rungs) config.timeline = timeline;
    core::Deployment d(config);
    d.run_for(duration);
    kpis[compute_rungs ? 1 : 0] = d.kpis();
    // The compute-rung run is the E21 headline: its KPIs (including the
    // kpi.compute_* gauges and per-rung dwell) go into the exported
    // snapshot.
    if (compute_rungs)
      core::export_deployment(d, telemetry::registry());
  }
  const auto& comp = kpis[0];
  const auto& full = kpis[1];
  const bool misses_hold = full.deadline_misses <= comp.deadline_misses;
  const bool outage_bounded = full.compute_outage_ratio > 0.0 &&
                              full.compute_outage_ratio < 0.05;
  Table table({"mode", "misses", "miss_ratio", "outages", "outage_ratio",
               "capped_tbs", "shed", "verdict"});
  table.row()
      .cell("compression-only")
      .cell(static_cast<long long>(comp.deadline_misses))
      .cell(comp.miss_ratio, 5)
      .cell(static_cast<long long>(comp.compute_outage_jobs))
      .cell(comp.compute_outage_ratio, 5)
      .cell(static_cast<long long>(comp.effort_capped_tbs))
      .cell(static_cast<long long>(comp.shed_subframes))
      .cell("E19 baseline");
  table.row()
      .cell("compute rungs")
      .cell(static_cast<long long>(full.deadline_misses))
      .cell(full.miss_ratio, 5)
      .cell(static_cast<long long>(full.compute_outage_jobs))
      .cell(full.compute_outage_ratio, 5)
      .cell(static_cast<long long>(full.effort_capped_tbs))
      .cell(static_cast<long long>(full.shed_subframes))
      .cell(misses_hold && outage_bounded
                ? "holds (misses <= baseline, outage bounded)"
                : "UNEXPECTED");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: same brownout timeline (same seed, own substreams); the "
      "compute rungs change nothing on the wire, but bursts the brownout "
      "delivers late now face the admission test — subframes that cannot "
      "finish inside the HARQ budget become a small, bounded "
      "computational-outage rate instead of queue poison, so deadline "
      "misses stay at or below the compression-only result\n");
  return misses_hold && outage_bounded ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("bench_e21_compute_outage",
              "E21: compute-aware overload control — adaptive decode "
              "effort, computational outage, backpressure");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the severity sweep");
  flags.add_int("duration-ms", 3000, "simulated milliseconds per run");
  flags.add_string("metrics-out", "",
                   "write a telemetry snapshot to this file (.json or .csv)");
  flags.add_string("trace-out", "",
                   "write Chrome trace-event JSON to this file");
  flags.add_string("timeline-out", "",
                   "stream per-window KPI samples from the acceptance "
                   "check's compute-rung run as JSONL to this file");
  flags.add_string("postmortem-dir", "",
                   "directory for flight-recorder dumps from the "
                   "acceptance check's compute-rung run");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  pran::bench::warn_if_not_release();
  const auto threads = static_cast<unsigned>(flags.get_int("threads"));
  const auto duration = flags.get_int("duration-ms") * sim::kMillisecond;

  core::TimelineConfig timeline;
  timeline.timeline_out = flags.get_string("timeline-out");
  timeline.postmortem_dir = flags.get_string("postmortem-dir");
  timeline.enabled =
      !timeline.timeline_out.empty() || !timeline.postmortem_dir.empty();
  timeline.window = 10 * sim::kMillisecond;

  std::printf("E21: compute-aware overload control\n\n");
  std::vector<core::DeploymentKpis> results;
  std::vector<GridPoint> grid;
  run_severity_sweep(threads, duration, results, grid);
  run_frontier(results, grid);
  const int rc = run_acceptance(duration, timeline);
  if (!flags.get_string("metrics-out").empty())
    pran::telemetry::write_metrics_file(flags.get_string("metrics-out"));
  if (!flags.get_string("trace-out").empty())
    pran::telemetry::write_chrome_trace_file(flags.get_string("trace-out"));
  return rc;
}
