// E19 — Fronthaul impairments + the graceful-degradation ladder.
//
// E12 showed the deadline cliff: once serialization on a shared fibre
// eats the ~3 ms HARQ budget, misses go from zero to everything. This
// experiment puts impairments on that fibre — Gilbert–Elliott burst
// loss, bounded jitter, link-rate brownouts — and asks what a
// controller can do about it short of overprovisioning:
//
//  (a) severity sweep: loss-rate and brownout-depth grid, ladder on
//      vs off. A naive deployment rides the queue over the cliff; the
//      ladder spends transport-block quality (compression rungs),
//      then doomed subframes (deadline-aware shedding with honest
//      HARQ settlement), then whole cells (quarantine) to keep the
//      surviving traffic inside the budget;
//  (b) acceptance check: under a 30% brownout the ladder holds the
//      deadline-miss rate under 0.1% while the naive baseline
//      exceeds 1% (E19 acceptance bar);
//  (c) rung economics: what each severity costs at steady state —
//      which rung the ladder settles on, and the quality/shed/
//      quarantine price actually paid.
//
// All sweeps are deterministic for a fixed seed and invariant in
// --threads (each grid point owns its deployment and result slot).

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pran;

// 5 cells * 3.69 Mbit/ms on a 25G shared fibre = 74% utilisation:
// healthy with ~0.6 ms of burst-train queueing, but with no headroom
// to spare — a 30% brownout pushes offered load to 1.05x capacity.
core::DeploymentConfig base_config(bool ladder_on) {
  core::DeploymentConfig config;
  config.num_cells = 5;
  config.num_servers = 4;
  config.seed = 19;
  config.harq_retransmissions = true;
  config.epoch = 10 * sim::kMillisecond;
  config.shared_fronthaul =
      fronthaul::LinkParams{units::BitRate{25e9}, 25 * sim::kMicrosecond};
  config.degradation.enabled = ladder_on;
  config.degradation.compression_ladder = {1.5, 2.0};
  config.degradation.up_epochs = 1;
  config.degradation.down_epochs = 10;
  // Above the ~0.6 ms healthy burst-train steady state, below the
  // point where one more epoch of brownout growth eats the HARQ budget.
  config.degradation.queue_delay_up_us = 1000.0;
  config.degradation.queue_delay_down_us = 700.0;
  // Burst loss is HARQ debt, not congestion — no rung can lower a
  // Gilbert–Elliott loss rate, so the loss trigger is reserved for
  // genuinely failing links. The per-epoch windows are ~50 bursts, so a
  // single Bad-state excursion spikes the windowed rate far above the
  // stationary mean: thresholds must clear the excursion noise, not the
  // mean.
  config.degradation.loss_up = 0.2;
  config.degradation.loss_down = 0.05;
  return config;
}

// Gilbert–Elliott p(good->bad) for a target stationary loss rate, with
// the bench's fixed recovery rate and bad-state loss probability.
double ge_p_g2b(double mean_loss) {
  // mean = loss_bad * p / (p + p_b2g)  =>  p = mean * p_b2g / (loss_bad - mean)
  const double p_b2g = 0.3, loss_bad = 0.5;
  return mean_loss * p_b2g / (loss_bad - mean_loss);
}

struct GridPoint {
  const char* label;
  double mean_loss;      // target GE stationary loss rate (0 = off)
  double brown_factor;   // brownout capacity factor (1 = off)
  bool ladder;
};

void run_severity_sweep(unsigned threads, sim::Time duration) {
  std::printf(
      "A: severity grid, 5 cells / 4 servers on a shared 25G fibre, HARQ "
      "on, %.0f ms runs, ladder {1.5, 2.0} + shed + quarantine\n\n",
      static_cast<double>(duration) / sim::kMillisecond);

  std::vector<GridPoint> grid;
  for (const bool ladder : {false, true}) {
    grid.push_back({"clean", 0.0, 1.0, ladder});
    grid.push_back({"loss 1%", 0.01, 1.0, ladder});
    grid.push_back({"loss 3%", 0.03, 1.0, ladder});
    grid.push_back({"brownout 30%", 0.0, 0.7, ladder});
    grid.push_back({"brownout 50%", 0.0, 0.5, ladder});
    grid.push_back({"loss 1% + brownout 30%", 0.01, 0.7, ladder});
  }

  std::vector<core::DeploymentKpis> results(grid.size());
  parallel_for_each(threads, grid.size(), [&](unsigned, std::size_t i) {
    auto config = base_config(grid[i].ladder);
    if (grid[i].mean_loss > 0.0) {
      config.fronthaul_impairments.loss.p_good_to_bad =
          ge_p_g2b(grid[i].mean_loss);
      config.fronthaul_impairments.loss.p_bad_to_good = 0.3;
      config.fronthaul_impairments.loss.loss_bad = 0.5;
      config.fronthaul_impairments.jitter.max_jitter =
          50 * sim::kMicrosecond;
    }
    if (grid[i].brown_factor < 1.0) {
      config.fronthaul_impairments.brownout.mtbb_seconds = 0.3;
      config.fronthaul_impairments.brownout.mean_duration_seconds = 0.4;
      config.fronthaul_impairments.brownout.capacity_factor =
          grid[i].brown_factor;
    }
    core::Deployment d(config);
    d.run_for(duration);
    results[i] = d.kpis();
  });

  Table table({"impairment", "ladder", "lost", "late", "brownouts", "shed",
               "tb_fail", "quar_ttis", "trans", "rung", "miss_ratio"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& k = results[i];
    table.row()
        .cell(grid[i].label)
        .cell(grid[i].ladder ? "on" : "off")
        .cell(static_cast<long long>(k.fronthaul_lost_bursts))
        .cell(static_cast<long long>(k.fronthaul_late_bursts))
        .cell(static_cast<long long>(k.fronthaul_brownouts))
        .cell(static_cast<long long>(k.shed_subframes))
        .cell(static_cast<long long>(k.compression_tb_failures))
        .cell(static_cast<long long>(k.quarantined_cell_ttis))
        .cell(static_cast<long long>(k.ladder_transitions))
        .cell(k.ladder_rung)
        .cell(k.miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: brownouts are the killer — the naive rows ride the queue "
      "over the E12 cliff (miss_ratio -> 1, sustained by the HARQ "
      "retransmission storm) while the ladder rows trade compression "
      "quality, shed subframes and, at 50%%, a transiently quarantined "
      "cell for a miss ratio 30x lower; burst loss alone costs HARQ debt "
      "but not the deadline budget, and the loss trigger sits above the "
      "windowed excursion noise so it does not escalate for it\n\n");
}

void run_acceptance_check(sim::Time duration,
                          const core::TimelineConfig& timeline) {
  std::printf("B: acceptance — 30%% brownout, ladder vs naive baseline\n\n");
  core::DeploymentKpis kpis[2];
  for (const bool ladder : {false, true}) {
    auto config = base_config(ladder);
    config.fronthaul_impairments.brownout.mtbb_seconds = 0.3;
    config.fronthaul_impairments.brownout.mean_duration_seconds = 0.4;
    config.fronthaul_impairments.brownout.capacity_factor = 0.7;
    // Timeline + SLO burn alerts ride on the ladder run only: these two
    // runs are sequential (they share the global registry), and the
    // ladder run is the one whose brownout response the flight recorder
    // is meant to capture.
    if (ladder) config.timeline = timeline;
    core::Deployment d(config);
    d.run_for(duration);
    kpis[ladder ? 1 : 0] = d.kpis();
  }
  Table table({"mode", "subframes", "misses", "miss_ratio", "verdict"});
  const double naive = kpis[0].miss_ratio, degraded = kpis[1].miss_ratio;
  table.row()
      .cell("naive")
      .cell(static_cast<long long>(kpis[0].subframes_processed))
      .cell(static_cast<long long>(kpis[0].deadline_misses))
      .cell(naive, 5)
      .cell(naive > 0.01 ? "collapses (> 1%)" : "UNEXPECTED: survived");
  table.row()
      .cell("ladder")
      .cell(static_cast<long long>(kpis[1].subframes_processed))
      .cell(static_cast<long long>(kpis[1].deadline_misses))
      .cell(degraded, 5)
      .cell(degraded < 0.001 ? "holds (< 0.1%)" : "UNEXPECTED: misses");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: same brownout timeline (same seed, own RNG substreams); "
      "the ladder's compression rung restores fibre headroom within an "
      "epoch of onset and steps back down after the configured hold\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("bench_e19_fronthaul_degradation",
              "E19: fronthaul impairments and the graceful-degradation "
              "ladder");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the severity sweep");
  flags.add_int("duration-ms", 3000, "simulated milliseconds per run");
  flags.add_string("metrics-out", "",
                   "write a telemetry snapshot to this file (.json or .csv)");
  flags.add_string("trace-out", "",
                   "write Chrome trace-event JSON to this file");
  flags.add_string("timeline-out", "",
                   "stream per-window KPI samples from the acceptance "
                   "check's ladder run as JSONL to this file");
  flags.add_string("postmortem-dir", "",
                   "directory for flight-recorder dumps from the "
                   "acceptance check's ladder run");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  const auto threads = static_cast<unsigned>(flags.get_int("threads"));
  const auto duration = flags.get_int("duration-ms") * sim::kMillisecond;

  pran::core::TimelineConfig timeline;
  timeline.timeline_out = flags.get_string("timeline-out");
  timeline.postmortem_dir = flags.get_string("postmortem-dir");
  timeline.enabled =
      !timeline.timeline_out.empty() || !timeline.postmortem_dir.empty();
  timeline.window = 10 * pran::sim::kMillisecond;

  std::printf("E19: fronthaul impairments + graceful degradation\n\n");
  run_severity_sweep(threads, duration);
  run_acceptance_check(duration, timeline);
  if (!flags.get_string("metrics-out").empty())
    pran::telemetry::write_metrics_file(flags.get_string("metrics-out"));
  if (!flags.get_string("trace-out").empty())
    pran::telemetry::write_chrome_trace_file(flags.get_string("trace-out"));
  return 0;
}
