// E9 — Placement stability ablation: migrations vs consolidation.
//
// Compares the controller's placement policies over a fast-forwarded
// diurnal day: sticky first-fit (hysteresis: cells stay put), plain
// first-fit (re-packs every epoch), exact MILP with migration penalty, and
// static peak provisioning. Claims reproduced: hysteresis eliminates
// placement thrashing at a modest server cost; re-packing every epoch
// buys few servers but migrates constantly.

#include <cstdio>

#include "common/table.hpp"
#include "core/deployment.hpp"

int main() {
  using namespace pran;

  std::printf(
      "E9: migrations vs servers over a compressed day (10 cells, "
      "6 servers, 12 s run = 24 diurnal hours, epoch 250 ms)\n\n");

  struct Policy {
    const char* name;
    core::DeploymentConfig::PlacerKind kind;
  };
  const Policy policies[] = {
      {"ffd-sticky", core::DeploymentConfig::PlacerKind::kFirstFit},
      {"ffd-repack", core::DeploymentConfig::PlacerKind::kFirstFitNoSticky},
      {"milp", core::DeploymentConfig::PlacerKind::kMilp},
      {"static-peak", core::DeploymentConfig::PlacerKind::kStaticPeak},
  };

  Table table({"policy", "migrations", "mig_per_epoch", "mean_active_srv",
               "miss_ratio", "plan_us", "energy_kj"});
  for (const auto& policy : policies) {
    core::DeploymentConfig config;
    config.num_cells = 10;
    config.num_servers = 6;
    config.placer = policy.kind;
    config.seed = 17;
    config.start_hour = 0.0;
    config.day_compression = 7200.0;  // 2 diurnal hours per second
    config.epoch = 250 * sim::kMillisecond;
    config.controller.migration_weight = 0.02;
    core::Deployment d(config);
    d.run_for(12 * sim::kSecond);

    const auto kpis = d.kpis();
    const double epochs =
        static_cast<double>(d.controller().reports().size());
    table.row()
        .cell(policy.name)
        .cell(kpis.migrations)
        .cell(kpis.migrations / epochs, 2)
        .cell(kpis.mean_active_servers, 2)
        .cell(kpis.miss_ratio, 5)
        .cell(kpis.mean_plan_seconds * 1e6, 1)
        .cell(kpis.energy_joules / 1e3, 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: sticky = near-zero migrations; repack = fewest servers but "
      "constant churn; static-peak = most servers, no churn — and ~2x the "
      "energy of the consolidating policies\n");
  return 0;
}
