// E17 — Turbo decoding: the iteration economy behind the cost model.
//
// The PHY cost model charges per decoder iteration and assumes iteration
// counts rise with code rate / fall with SNR margin. This bench grounds
// both halves with the real iterative decoder:
//   (a) BLER vs Es/N0 for iteration budgets 1/2/4/8 — iterations buy dB;
//   (b) iterations-to-converge (genie/CRC-gated early exit) vs SNR — at
//       operating SNR most blocks converge in 1-2 iterations, so
//       early-termination saves most of the worst-case compute;
//   (c) measured per-iteration decode time (google-benchmark).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "coding/awgn.hpp"
#include "coding/turbo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace pran;
using namespace pran::coding;

Bits random_bits(std::size_t n, Rng& rng) {
  Bits out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.bernoulli(0.5) ? 1 : 0);
  return out;
}

void print_tables() {
  const std::size_t k = 512;
  const int trials = 60;
  Rng rng(77);

  std::printf(
      "E17a: turbo BLER vs Es/N0 by iteration budget (K=%zu, rate ~1/3, "
      "%d blocks per point)\n\n",
      k, trials);
  Table bler({"esn0_db", "iter1", "iter2", "iter4", "iter8"});
  for (double esn0 = -6.0; esn0 <= -2.99; esn0 += 0.5) {
    bler.row().cell(esn0, 1);
    for (int iters : {1, 2, 4, 8}) {
      int errors = 0;
      for (int t = 0; t < trials; ++t) {
        const Bits info = random_bits(k, rng);
        const Llrs llrs = transmit_bpsk(turbo_encode(info), esn0, rng);
        if (turbo_decode(llrs, k, iters).info != info) ++errors;
      }
      bler.cell(static_cast<double>(errors) / trials, 3);
    }
  }
  std::printf("%s\n", bler.render().c_str());

  std::printf(
      "E17b: iterations to converge with early termination (budget 8)\n\n");
  Table iters({"esn0_db", "mean_iters", "p90_iters", "converged_pct",
               "compute_saved_pct"});
  for (double esn0 : {-5.0, -4.5, -4.0, -3.0, -2.0, 0.0}) {
    Samples used;
    int converged = 0;
    for (int t = 0; t < trials; ++t) {
      const Bits info = random_bits(k, rng);
      const Llrs llrs = transmit_bpsk(turbo_encode(info), esn0, rng);
      const auto result = turbo_decode(
          llrs, k, 8, [&](const Bits& hard) { return hard == info; });
      used.add(result.iterations);
      if (result.converged) ++converged;
    }
    iters.row()
        .cell(esn0, 1)
        .cell(used.mean(), 2)
        .cell(used.quantile(0.9), 1)
        .cell(100.0 * converged / trials, 1)
        .cell(100.0 * (1.0 - used.mean() / 8.0), 1);
  }
  std::printf("%s\n", iters.render().c_str());
  std::printf(
      "reading: iterations trade directly against SNR margin; above the "
      "cliff early termination recovers >70%% of the worst-case decode "
      "compute — the distribution the traffic model samples from\n\n");
}

void BM_TurboDecodeIteration(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const int iters = static_cast<int>(state.range(1));
  Rng rng(9);
  const Bits info = random_bits(k, rng);
  const Llrs llrs = transmit_bpsk(turbo_encode(info), -3.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(turbo_decode(llrs, k, iters));
  }
  state.counters["info_kbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(k) / 1e3,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TurboDecodeIteration)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({4096, 4});

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  std::printf("E17c: measured turbo decode throughput (google-benchmark)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
