// E17 — Turbo decoding: the iteration economy behind the cost model.
//
// The PHY cost model charges per decoder iteration and assumes iteration
// counts rise with code rate / fall with SNR margin. This bench grounds
// both halves with the real iterative decoder:
//   (a) BLER vs Es/N0 for iteration budgets 1/2/4/8 — iterations buy dB;
//   (b) iterations-to-converge (genie/CRC-gated early exit) vs SNR — at
//       operating SNR most blocks converge in 1-2 iterations, so
//       early-termination saves most of the worst-case compute;
//   (c) measured per-iteration decode time (google-benchmark), plus
//       per-ISA (scalar/avx2/avx512) and per-batch-width variants of the
//       SIMD decode path, registered only for ISAs this CPU supports.
//       Snapshot with --benchmark_out=BENCH_e17_simd.json; the acceptance
//       bar is best-vectorized batched info_kbps >= 2x the scalar baseline
//       at batch width >= 4 (tracked in EXPERIMENTS.md).
//
// The Monte-Carlo sweeps (a)/(b) fan trials across a thread pool
// (--threads N, default: hardware); every trial draws from an
// index-derived RNG substream, so the tables are identical for any thread
// count. (c) stays single-threaded: it is the per-core kernel-time number
// the cost model consumes. Pass --benchmark_out=BENCH_e17.json
// --benchmark_out_format=json to snapshot (c) for trend tracking.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

#include "bench_guard.hpp"
#include "coding/awgn.hpp"
#include "coding/simd/dispatch.hpp"
#include "coding/turbo.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace pran;
using namespace pran::coding;

Bits random_bits(std::size_t n, Rng& rng) {
  Bits out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.bernoulli(0.5) ? 1 : 0);
  return out;
}

/// One self-contained trial: trial_rng drives payload and noise, so the
/// outcome depends only on the substream, not on scheduling.
bool decode_trial(std::size_t k, double esn0, int iters, Rng trial_rng) {
  const Bits info = random_bits(k, trial_rng);
  const Llrs llrs = transmit_bpsk(turbo_encode(info), units::Db{esn0}, trial_rng);
  return turbo_decode(llrs, k, iters).info == info;
}

void print_tables(ThreadPool& pool) {
  const std::size_t k = 512;
  const int trials = 60;
  Rng rng(77);
  const auto sweep_start = std::chrono::steady_clock::now();

  std::printf(
      "E17a: turbo BLER vs Es/N0 by iteration budget (K=%zu, rate ~1/3, "
      "%d blocks per point, %u threads)\n\n",
      k, trials, pool.size());
  Table bler({"esn0_db", "iter1", "iter2", "iter4", "iter8"});
  for (double esn0 = -6.0; esn0 <= -2.99; esn0 += 0.5) {
    bler.row().cell(esn0, 1);
    for (int iters : {1, 2, 4, 8}) {
      const Rng base = rng.fork();
      std::vector<std::uint8_t> failed(trials, 0);
      pool.for_each(static_cast<std::size_t>(trials),
                    [&](unsigned, std::size_t t) {
                      failed[t] = !decode_trial(k, esn0, iters, base.stream(t));
                    });
      int errors = 0;
      for (std::uint8_t f : failed) errors += f;
      bler.cell(static_cast<double>(errors) / trials, 3);
    }
  }
  std::printf("%s\n", bler.render().c_str());

  std::printf(
      "E17b: iterations to converge with early termination (budget 8)\n\n");
  Table iters({"esn0_db", "mean_iters", "p90_iters", "converged_pct",
               "compute_saved_pct"});
  for (double esn0 : {-5.0, -4.5, -4.0, -3.0, -2.0, 0.0}) {
    const Rng base = rng.fork();
    std::vector<int> used_by_trial(trials, 0);
    std::vector<std::uint8_t> converged_by_trial(trials, 0);
    pool.for_each(static_cast<std::size_t>(trials),
                  [&](unsigned, std::size_t t) {
                    Rng trial_rng = base.stream(t);
                    const Bits info = random_bits(k, trial_rng);
                    const Llrs llrs =
                        transmit_bpsk(turbo_encode(info), units::Db{esn0}, trial_rng);
                    const auto result = turbo_decode(
                        llrs, k, 8,
                        [&](const Bits& hard) { return hard == info; });
                    used_by_trial[t] = result.iterations;
                    converged_by_trial[t] = result.converged ? 1 : 0;
                  });
    Samples used;
    int converged = 0;
    for (int t = 0; t < trials; ++t) {
      used.add(used_by_trial[static_cast<std::size_t>(t)]);
      converged += converged_by_trial[static_cast<std::size_t>(t)];
    }
    iters.row()
        .cell(esn0, 1)
        .cell(used.mean(), 2)
        .cell(used.quantile(0.9), 1)
        .cell(100.0 * converged / trials, 1)
        .cell(100.0 * (1.0 - used.mean() / 8.0), 1);
  }
  std::printf("%s\n", iters.render().c_str());
  const double sweep_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - sweep_start)
                             .count();
  std::printf(
      "reading: iterations trade directly against SNR margin; above the "
      "cliff early termination recovers >70%% of the worst-case decode "
      "compute — the distribution the traffic model samples from\n");
  std::printf("sweep wall-clock: %.2f s on %u threads\n\n", sweep_s,
              pool.size());
}

void BM_TurboDecodeIteration(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const int iters = static_cast<int>(state.range(1));
  Rng rng(9);
  const Bits info = random_bits(k, rng);
  const Llrs llrs = transmit_bpsk(turbo_encode(info), units::Db{-3.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(turbo_decode(llrs, k, iters));
  }
  state.counters["info_kbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(k) / 1e3,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TurboDecodeIteration)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({1024, 1})
    ->Args({1024, 8})
    ->Args({4096, 4});

/// RAII pin so a thrown/early-exited benchmark never leaves the process on
/// a forced ISA.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) { simd::force_isa(isa); }
  ~ScopedIsa() { simd::reset_forced_isa(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

/// Single-block decode pinned to one ISA tier — isolates the state-axis
/// (8 trellis states per vector) speedup. Args: {k, iters}.
void BM_TurboDecodeSingle(benchmark::State& state, simd::Isa isa) {
  const ScopedIsa pin(isa);
  const auto k = static_cast<std::size_t>(state.range(0));
  const int iters = static_cast<int>(state.range(1));
  Rng rng(9);
  const Bits info = random_bits(k, rng);
  const Llrs llrs = transmit_bpsk(turbo_encode(info), units::Db{-3.0}, rng);
  TurboDecoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(llrs, k, iters));
  }
  state.counters["info_kbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(k) / 1e3,
      benchmark::Counter::kIsRate);
}

/// Batched decode pinned to one ISA tier — adds the lane axis (`width`
/// same-K codeblocks in lockstep). No early stop: every lane runs the full
/// budget, so info_kbps measures raw kernel throughput and is directly
/// comparable across widths and tiers. Args: {k, iters, width}.
void BM_TurboDecodeBatch(benchmark::State& state, simd::Isa isa) {
  const ScopedIsa pin(isa);
  const auto k = static_cast<std::size_t>(state.range(0));
  const int iters = static_cast<int>(state.range(1));
  const auto width = static_cast<std::size_t>(state.range(2));
  Rng rng(9);
  std::vector<Llrs> llrs;
  llrs.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    Rng block_rng = rng.stream(i);
    const Bits info = random_bits(k, block_rng);
    llrs.push_back(
        transmit_bpsk(turbo_encode(info), units::Db{-3.0}, block_rng));
  }
  std::vector<TurboBatchItem> items(width);
  for (std::size_t i = 0; i < width; ++i) items[i].llrs = &llrs[i];
  TurboDecoder decoder;
  for (auto _ : state) {
    decoder.decode_batch(std::span<TurboBatchItem>(items), k, iters);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.counters["info_kbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(k) *
          static_cast<double>(width) / 1e3,
      benchmark::Counter::kIsRate);
  state.counters["batch"] =
      benchmark::Counter(static_cast<double>(width));
}

/// Registers the per-ISA x per-batch-width variants for every tier this
/// binary + CPU supports. Names embed the ISA so a BENCH_e17_simd.json
/// snapshot is self-describing; the fixed BM_TurboDecodeIteration family
/// above (active-ISA, single block) keeps its name — CI's telemetry
/// overhead guard filters on it.
void register_simd_benchmarks() {
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (!simd::isa_available(isa)) continue;
    const std::string tier = simd::isa_name(isa);
    benchmark::RegisterBenchmark(
        ("BM_TurboDecodeSingle/" + tier).c_str(), BM_TurboDecodeSingle, isa)
        ->Args({512, 8})
        ->Args({4096, 8});
    auto* batch = benchmark::RegisterBenchmark(
        ("BM_TurboDecodeBatch/" + tier).c_str(), BM_TurboDecodeBatch, isa);
    for (long width : {1L, 4L, 8L, 16L, 32L}) batch->Args({512, 8, width});
    batch->Args({4096, 8, 16});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // strips --benchmark_* flags

  Flags flags("bench_e17_turbo", "E17: turbo iteration economy");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the Monte-Carlo sweeps");
  flags.add_string("metrics-out", "",
                   "write a telemetry snapshot to this file (.json or .csv)");
  flags.add_string("trace-out", "",
                   "write Chrome trace-event JSON to this file");
  flags.add_string("timeline-out", "",
                   "stream per-phase telemetry deltas as JSONL to this "
                   "file (one window per bench phase; E17 has no sim "
                   "clock, so window timestamps are phase ordinals; "
                   "each window consumes the span ring, so a combined "
                   "--trace-out covers only post-window spans)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  pran::bench::warn_if_not_release();
  std::unique_ptr<pran::telemetry::TimeSeriesRecorder> recorder;
  if (!flags.get_string("timeline-out").empty()) {
    recorder = std::make_unique<pran::telemetry::TimeSeriesRecorder>(
        pran::telemetry::registry(),
        pran::telemetry::TimeSeriesRecorder::Config{});
    recorder->open_jsonl(flags.get_string("timeline-out"));
  }
  // E17's hot path records only wall-clock spans; the raw registry stays
  // empty until those spans are folded in. Each phase boundary folds the
  // ring into the registry, samples the delta, and clears the ring so the
  // next window digests only its own phase (aggregate_into re-reads every
  // ring record, so folding without clearing would double-count). The
  // folded histograms persist in the registry, so a later --metrics-out
  // still covers the whole run; only --trace-out loses pre-window spans.
  const auto sample_phase = [&recorder](std::int64_t phase) {
    if (!recorder) return;
    pran::telemetry::spans().aggregate_into(pran::telemetry::registry());
    recorder->sample(phase * pran::sim::kMillisecond);
    pran::telemetry::spans().clear();
  };
  ThreadPool pool(static_cast<unsigned>(flags.get_int("threads")));
  print_tables(pool);
  sample_phase(1);
  std::printf("E17c: measured turbo decode throughput (google-benchmark, "
              "single thread)\n");
  std::printf(
      "simd: active ISA %s (override with PRAN_SIMD=scalar|avx2|avx512); "
      "per-ISA variants below cover every tier this CPU supports\n\n",
      pran::coding::simd::isa_name(pran::coding::simd::active_isa()));
  register_simd_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  sample_phase(2);
  pran::bench::warn_if_not_release();
  if (!flags.get_string("metrics-out").empty())
    pran::telemetry::write_metrics_file(flags.get_string("metrics-out"));
  if (!flags.get_string("trace-out").empty())
    pran::telemetry::write_chrome_trace_file(flags.get_string("trace-out"));
  return 0;
}
