// E11 — MAC scheduler study: throughput/fairness trade-off, and what each
// policy does to base-band processing load.
//
// PRAN makes the MAC programmable too: an operator can swap the scheduling
// policy per cell. This bench reproduces the classic scheduler comparison
// (max-C/I maximises cell throughput but starves the edge; round-robin is
// fair but slow; proportional fair sits between) and adds the PRAN angle:
// the chosen policy changes the processing-cost distribution the cluster
// must absorb, because MCS mix and PRB usage differ.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "lte/cost_model.hpp"
#include "mac/cell_mac.hpp"

int main() {
  using namespace pran;
  const int ttis = 4000;
  const int ues = 12;

  std::printf(
      "E11: MAC schedulers over %d TTIs, %d UEs (full buffer, 20 MHz "
      "cell)\n\n",
      ttis, ues);

  Table table({"scheduler", "cell_mbps", "edge_ue_mbps", "jain_fairness",
               "mean_gops_per_sf", "p99_gops_per_sf"});

  const lte::CostModel model;
  for (const char* name : {"max-rate", "proportional-fair", "round-robin"}) {
    mac::CellMacConfig config;
    config.scheduler = name;
    config.num_ues = ues;
    config.seed = 77;
    mac::CellMac cell(config);

    Samples gops;
    for (int tti = 0; tti < ttis; ++tti) {
      const auto allocs = cell.run_tti();
      gops.add(model.subframe_cost(config.cell, allocs,
                                   lte::Direction::kUplink)
                   .total());
    }

    const auto tputs = cell.ue_throughputs_bps();
    double edge = tputs.empty() ? 0.0 : tputs.front();
    for (double t : tputs) edge = std::min(edge, t);

    table.row()
        .cell(name)
        .cell(cell.cell_throughput_bps() / 1e6, 1)
        .cell(edge / 1e6, 3)
        .cell(cell.fairness(), 3)
        .cell(gops.mean(), 4)
        .cell(gops.quantile(0.99), 4);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: max-rate wins cell throughput but starves the edge UE "
      "(fairness!); the policy also shifts the processing-load "
      "distribution the PRAN cluster must provision for\n");
  return 0;
}
