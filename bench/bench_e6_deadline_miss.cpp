// E6 — Deadline-miss ratio vs offered utilisation: EDF vs FIFO on a mixed
// uplink + downlink workload.
//
// Drives the executor directly (no admission control) so the server can be
// pushed past its capacity. Uplink subframes carry a ~3 ms HARQ budget;
// downlink subframes must be encoded before they go on air, a ~1 ms window
// — so deadlines are heterogeneous and the scheduling policy matters.
// Claims reproduced: (i) EDF meets essentially all deadlines until
// utilisation approaches 1; (ii) FIFO lets tight downlink deadlines starve
// behind queued uplink work well before saturation; (iii) past utilisation
// 1 both collapse, which is why the controller places with headroom < 1.

#include <cstdio>

#include "cluster/executor.hpp"
#include "common/table.hpp"
#include "lte/subframe.hpp"
#include "sim/engine.hpp"
#include "workload/traffic.hpp"

namespace {

struct RunResult {
  double offered_utilization = 0.0;
  double miss_ratio = 0.0;         // all jobs
  double dl_miss_ratio = 0.0;      // tight-deadline downlink jobs only
};

RunResult run(double load, pran::cluster::SchedPolicy policy, int ttis) {
  using namespace pran;
  const int num_cells = 4;
  const cluster::ServerSpec server{"srv", 4, 150.0};

  sim::Engine engine;
  cluster::Executor executor(engine, {server}, policy);

  std::vector<workload::TrafficModel> ul_cells;
  std::vector<workload::TrafficModel> dl_cells;
  std::vector<lte::SubframeFactory> factories;
  const lte::CostModel model;
  for (int c = 0; c < num_cells; ++c) {
    workload::CellSite site;
    site.cell_id = c;
    site.peak_prb_utilization = load;
    ul_cells.emplace_back(site, workload::DiurnalProfile::flat(1.0), model,
                          4242 + static_cast<std::uint64_t>(c));
    dl_cells.emplace_back(site, workload::DiurnalProfile::flat(1.0), model,
                          9797 + static_cast<std::uint64_t>(c));
    factories.emplace_back(c, site.config, model, 25 * sim::kMicrosecond);
  }

  double total_gops = 0.0;
  for (std::int64_t tti = 0; tti < ttis; ++tti) {
    for (int c = 0; c < num_cells; ++c) {
      const auto ul =
          ul_cells[static_cast<std::size_t>(c)].sample_subframe(12.0);
      auto job = factories[static_cast<std::size_t>(c)].uplink_job(tti, ul);
      total_gops += job.total_gops();
      executor.submit(0, job);

      const auto dl =
          dl_cells[static_cast<std::size_t>(c)].sample_subframe(12.0);
      auto dl_job =
          factories[static_cast<std::size_t>(c)].downlink_job(tti + 2, dl);
      total_gops += dl_job.total_gops();
      executor.submit(0, dl_job);
    }
  }
  engine.run();

  RunResult result;
  result.offered_utilization =
      total_gops / (static_cast<double>(ttis) * server.gops_per_tti());
  std::uint64_t done = 0, missed = 0, dl_done = 0, dl_missed = 0;
  for (const auto& o : executor.outcomes()) {
    if (o.dropped) continue;
    ++done;
    if (o.missed_deadline()) ++missed;
    if (o.job.direction == lte::Direction::kDownlink) {
      ++dl_done;
      if (o.missed_deadline()) ++dl_missed;
    }
  }
  if (done)
    result.miss_ratio =
        static_cast<double>(missed) / static_cast<double>(done);
  if (dl_done)
    result.dl_miss_ratio =
        static_cast<double>(dl_missed) / static_cast<double>(dl_done);
  return result;
}

}  // namespace

int main() {
  using namespace pran;
  const int ttis = 1200;

  std::printf(
      "E6: deadline-miss ratio vs offered utilisation, mixed UL (3 ms "
      "budget) + DL (1 ms budget), 4 cells on one 4-core server\n\n");

  Table table({"peak_prb_util", "offered_util", "edf_miss", "fifo_miss",
               "edf_dl_miss", "fifo_dl_miss"});
  for (double load : {0.15, 0.25, 0.35, 0.42, 0.50, 0.56, 0.65, 0.80}) {
    const auto edf = run(load, cluster::SchedPolicy::kEdf, ttis);
    const auto fifo = run(load, cluster::SchedPolicy::kFifo, ttis);
    table.row()
        .cell(load, 2)
        .cell(edf.offered_utilization, 3)
        .cell(edf.miss_ratio, 5)
        .cell(fifo.miss_ratio, 5)
        .cell(edf.dl_miss_ratio, 5)
        .cell(fifo.dl_miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: FIFO starves tight downlink deadlines behind uplink "
      "backlog well before utilisation 1; EDF does not\n");
  return 0;
}
