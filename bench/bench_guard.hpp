#pragma once

/// \file bench_guard.hpp
/// Build-context guard for committed benchmark numbers.
///
/// Benchmarks compiled without optimization measure the compiler, not the
/// code; a JSON snapshot captured from such a build silently poisons every
/// later comparison. bench/CMakeLists.txt stamps the configured build type
/// into PRAN_BENCH_BUILD_TYPE; warn_if_not_release() turns anything other
/// than "Release" into an impossible-to-miss banner on stderr. The capture
/// protocol in EXPERIMENTS.md requires this banner to be absent from any
/// committed run.

#include <cstdio>
#include <cstring>

#ifndef PRAN_BENCH_BUILD_TYPE
#define PRAN_BENCH_BUILD_TYPE "unknown"
#endif

namespace pran::bench {

/// Returns true (and prints a loud stderr banner) if this binary was not
/// built with CMAKE_BUILD_TYPE=Release.
inline bool warn_if_not_release() {
  if (std::strcmp(PRAN_BENCH_BUILD_TYPE, "Release") == 0) return false;
  std::fprintf(stderr,
               "\n"
               "*** WARNING ************************************************\n"
               "*** This benchmark binary was built with CMAKE_BUILD_TYPE\n"
               "*** '%s', not 'Release'. Timings below measure the\n"
               "*** compiler, not the code. DO NOT commit these numbers.\n"
               "*** Rebuild with -DCMAKE_BUILD_TYPE=Release first.\n"
               "************************************************************\n"
               "\n",
               PRAN_BENCH_BUILD_TYPE);
  return true;
}

}  // namespace pran::bench
