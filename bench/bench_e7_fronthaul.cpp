// E7 — Fronthaul bandwidth vs compression scheme, with the EVM penalty.
//
// Claims reproduced: raw CPRI for a 4-antenna 20 MHz cell needs ~5 Gbps;
// pruning the guard band plus block-floating-point compression cuts that
// ~3x at an EVM well below what 64-QAM needs (~8%), multiplying how many
// cells one fronthaul fibre can haul into the PRAN cluster.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fronthaul/codec.hpp"
#include "fronthaul/cpri.hpp"
#include "fronthaul/iq.hpp"

int main() {
  using namespace pran;
  using namespace pran::fronthaul;

  Rng rng(7);
  const auto capture = generate_capture(rng, 8);  // 8 OFDM symbols
  const CpriParams cpri;
  const double link_gbps = 10.0;

  std::printf(
      "E7: fronthaul compression (4x20 MHz cell, raw line rate %s, "
      "%zu-sample capture, PAPR %.1f dB)\n\n",
      format_bitrate(line_rate_bps(cpri).value()).c_str(), capture.size(),
      papr_db(capture).value());

  std::vector<std::unique_ptr<Codec>> codecs;
  codecs.push_back(std::make_unique<FixedPointCodec>(12));
  codecs.push_back(std::make_unique<FixedPointCodec>(8));
  codecs.push_back(std::make_unique<BlockFloatCodec>(9, 32));
  codecs.push_back(std::make_unique<BlockFloatCodec>(7, 32));
  codecs.push_back(std::make_unique<MuLawCodec>(8));
  codecs.push_back(
      std::make_unique<PruningCodec>(std::make_unique<FixedPointCodec>(12),
                                     2048, 1536));
  codecs.push_back(
      std::make_unique<PruningCodec>(std::make_unique<BlockFloatCodec>(9, 32),
                                     2048, 1536));
  codecs.push_back(
      std::make_unique<PruningCodec>(std::make_unique<BlockFloatCodec>(7, 32),
                                     2048, 1536));

  Table table({"codec", "ratio", "evm_pct", "sqnr_db", "line_rate",
               "cells_per_10G"});
  table.row()
      .cell("none (CPRI 15b)")
      .cell(1.0, 2)
      .cell(0.0, 3)
      .cell("inf")
      .cell(format_bitrate(line_rate_bps(cpri).value()))
      .cell(cells_per_link(units::BitRate{link_gbps * 1e9},
                           line_rate_bps(cpri)));
  for (const auto& codec : codecs) {
    const auto result = codec->roundtrip(capture);
    const double ratio = Codec::compression_ratio(capture.size(), result.bits);
    const units::BitRate rate = compressed_line_rate_bps(cpri, ratio);
    table.row()
        .cell(codec->name())
        .cell(ratio, 2)
        .cell(100.0 * evm(capture, result.decoded), 3)
        .cell(sqnr_db(capture, result.decoded).value(), 1)
        .cell(format_bitrate(rate.value()))
        .cell(cells_per_link(units::BitRate{link_gbps * 1e9}, rate));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: 64-QAM tolerates ~8%% EVM; prune+bfp9 stays far below that "
      "while tripling cells per fibre\n");
  return 0;
}
