// E1 — Uplink subframe processing time vs MCS, per-stage breakdown.
//
// Reproduces the paper's PHY microbenchmark: per-subframe processing time
// on one commodity core as the modulation-and-coding scheme rises, broken
// down by pipeline stage. The claim being reproduced: turbo decoding
// dominates and total cost grows steeply with MCS (so provisioning for the
// worst case wastes most of the machine most of the time).

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "lte/cost_model.hpp"

int main() {
  using namespace pran;
  const lte::CellConfig cell;       // 20 MHz, 4 antennas, 2 layers
  const lte::CostModel model;
  const double core_gops = 150.0;   // one server core
  const int prbs = 100;             // fully loaded subframe
  const int iters = 6;

  std::printf(
      "E1: uplink subframe processing time vs MCS "
      "(%d PRBs, %d antennas, %d layers, %.0f GOPS core)\n\n",
      prbs, cell.antennas, cell.mimo_layers, core_gops);

  Table table({"mcs", "mod", "fft_us", "chest_us", "eq_us", "demod_us",
               "decode_us", "mac_us", "total_us", "decode_share"});
  for (int mcs = 0; mcs <= 28; mcs += 2) {
    const lte::Allocation alloc{prbs, mcs, iters};
    const std::vector<lte::Allocation> allocs{alloc};
    const auto cost =
        model.subframe_cost(cell, allocs, lte::Direction::kUplink);
    auto us = [&](lte::Stage s) { return cost[s] / core_gops * 1e6; };
    const double total = cost.total() / core_gops * 1e6;
    table.row()
        .cell(mcs)
        .cell(lte::bits_per_symbol(lte::mcs(mcs).mod) == 2
                  ? "QPSK"
                  : (lte::bits_per_symbol(lte::mcs(mcs).mod) == 4 ? "16QAM"
                                                                  : "64QAM"))
        .cell(us(lte::Stage::kFft), 1)
        .cell(us(lte::Stage::kChannelEstimation), 1)
        .cell(us(lte::Stage::kEqualization), 1)
        .cell(us(lte::Stage::kDemodulation), 1)
        .cell(us(lte::Stage::kDecode), 1)
        .cell(us(lte::Stage::kMac), 1)
        .cell(total, 1)
        .cell(cost[lte::Stage::kDecode] / cost.total(), 3);
  }
  std::printf("%s\n", table.render().c_str());

  // Summary line the paper's text would quote.
  const auto low =
      model.subframe_cost(cell, std::vector<lte::Allocation>{{prbs, 0, iters}},
                          lte::Direction::kUplink);
  const auto high =
      model.subframe_cost(cell, std::vector<lte::Allocation>{{prbs, 28, iters}},
                          lte::Direction::kUplink);
  std::printf(
      "MCS 28 costs %.1fx MCS 0; decode share at MCS 28: %.0f%%; "
      "worst case %.0f us vs 3000 us HARQ budget\n",
      high.total() / low.total(),
      100.0 * high[lte::Stage::kDecode] / high.total(),
      high.total() / core_gops * 1e6);
  return 0;
}
