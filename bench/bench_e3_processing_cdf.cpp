// E3 — CDF of per-subframe processing time under realistic random load.
//
// Claim reproduced: the processing-time distribution has a long upper tail
// (bursty allocations, high-MCS users, extra decoder iterations), which is
// why the controller plans with headroom below 100% utilisation.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "lte/cost_model.hpp"
#include "workload/traffic.hpp"

int main() {
  using namespace pran;
  const double core_gops = 150.0;
  const int samples = 20000;

  std::printf(
      "E3: per-subframe processing time CDF at three load levels "
      "(%d samples each, one %.0f GOPS core)\n\n",
      samples, core_gops);

  Table table({"load", "mean_us", "p50_us", "p90_us", "p99_us", "p99.9_us",
               "max_us", "tail_p99/p50"});
  const lte::CostModel model;
  for (double load : {0.3, 0.6, 0.9}) {
    workload::CellSite site;
    site.peak_prb_utilization = load;
    workload::TrafficModel traffic(site, workload::DiurnalProfile::flat(1.0),
                                   model, 1234);
    Samples s;
    for (int i = 0; i < samples; ++i) {
      const auto allocs = traffic.sample_subframe(12.0);
      const auto cost =
          model.subframe_cost(site.config, allocs, lte::Direction::kUplink);
      s.add(cost.total() / core_gops * 1e6);
    }
    table.row()
        .cell(load, 1)
        .cell(s.mean(), 1)
        .cell(s.quantile(0.5), 1)
        .cell(s.quantile(0.9), 1)
        .cell(s.quantile(0.99), 1)
        .cell(s.quantile(0.999), 1)
        .cell(s.max(), 1)
        .cell(s.quantile(0.99) / s.quantile(0.5), 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: p99/p50 >> 1 is the burstiness that headroom absorbs\n");
  return 0;
}
