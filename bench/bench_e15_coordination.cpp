// E15 — What centralisation buys: cross-cell coordination (almost-blank
// subframes) for cell-edge users.
//
// In a distributed RAN, inter-cell coordination needs standardised X2
// signalling; in PRAN both cells' schedulers run in the same cluster, so a
// muting pattern is one line of configuration. This bench quantifies the
// gain: a cell-edge UE's SINR/CQI/throughput with the neighbour (a) always
// transmitting, (b) muting a fraction of subframes (coordination), across
// neighbour load levels. The neighbour pays with capacity on the muted
// subframes; the table shows both sides of the trade.

#include <cstdio>

#include "common/table.hpp"
#include "lte/interference.hpp"

namespace {

using namespace pran;

/// Throughput (Mb/s) of a full-band allocation at the CQI the UE sees.
double full_band_mbps(int cqi) {
  if (cqi == 0) return 0.0;
  const int mcs = lte::mcs_from_cqi(cqi);
  return lte::prb_rate_bps(mcs).value() * 100 / 1e6;  // 100 PRBs
}

}  // namespace

int main() {
  using namespace pran;

  const auto map = lte::InterferenceMap(lte::linear_layout(2, 1000.0));
  // Edge UE served by cell 0, 60 m from the midpoint.
  const double ue_x = 440.0;

  std::printf(
      "E15: cell-edge coordination gain (two cells 1 km apart, edge UE at "
      "x=%.0f m served by cell 0, ABS = almost-blank subframes)\n\n",
      ue_x);

  Table table({"neighbor_load", "edge_cqi_busy", "edge_cqi_muted",
               "edge_mbps_no_coord", "edge_mbps_abs30",
               "edge_gain_x", "neighbor_cost_pct"});
  for (double load : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const int cqi_busy = map.cqi_at(ue_x, 0.0, 0, {0.0, load});
    const int cqi_muted = map.cqi_at(ue_x, 0.0, 0, {0.0, 0.0});

    // Without coordination the edge UE always sees the loaded neighbour.
    const double no_coord = full_band_mbps(cqi_busy);
    // With 30% ABS the neighbour is silent on 30% of subframes, which the
    // coordinated scheduler aligns with the edge UE's grants.
    const double abs_share = 0.30;
    const double with_abs = abs_share * full_band_mbps(cqi_muted) +
                            (1.0 - abs_share) * no_coord;
    // The neighbour loses the muted fraction of its own transmissions.
    const double neighbor_cost = abs_share * load * 100.0;

    table.row()
        .cell(load, 1)
        .cell(cqi_busy)
        .cell(cqi_muted)
        .cell(no_coord, 2)
        .cell(with_abs, 2)
        .cell(no_coord > 0 ? with_abs / no_coord : 99.0, 2)
        .cell(neighbor_cost, 1);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: at high neighbour load the edge UE's CQI collapses; 30%% "
      "ABS multiplies its throughput severalfold for a bounded neighbour "
      "cost — coordination that is one config line in a centralised RAN\n");
  return 0;
}
