// E16 — Code-block parallelism ablation: how slow can a core be?
//
// Real software BBUs meet the 3 ms HARQ budget by fanning each subframe's
// independent turbo code blocks across cores. This bench sweeps per-core
// speed and compares serial execution (one core per subframe) against
// code-block fan-out: with fan-out, much weaker cores still hold the
// deadline, widening the hardware PRAN can run on.

#include <cstdio>

#include "cluster/executor.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "lte/subframe.hpp"
#include "sim/engine.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace pran;

struct Result {
  double miss_ratio = 0.0;
  double p99_latency_ms = 0.0;
};

Result run(double gops_per_core, int max_parallelism, int ttis) {
  const int num_cells = 4;
  cluster::ServerSpec server{"srv", 16, gops_per_core};
  server.max_job_parallelism = max_parallelism;

  sim::Engine engine;
  cluster::Executor executor(engine, {server}, cluster::SchedPolicy::kEdf);

  std::vector<workload::TrafficModel> cells;
  std::vector<lte::SubframeFactory> factories;
  const lte::CostModel model;
  for (int c = 0; c < num_cells; ++c) {
    workload::CellSite site;
    site.cell_id = c;
    site.peak_prb_utilization = 0.7;
    cells.emplace_back(site, workload::DiurnalProfile::flat(1.0), model,
                       31337 + static_cast<std::uint64_t>(c));
    factories.emplace_back(c, site.config, model, 25 * sim::kMicrosecond);
  }
  for (std::int64_t tti = 0; tti < ttis; ++tti)
    for (int c = 0; c < num_cells; ++c)
      executor.submit(0, factories[static_cast<std::size_t>(c)].uplink_job(
                             tti, cells[static_cast<std::size_t>(c)]
                                      .sample_subframe(12.0)));
  engine.run();

  Result result;
  result.miss_ratio = executor.stats().miss_ratio();
  Samples latency;
  for (const auto& o : executor.outcomes())
    if (!o.dropped) latency.add(sim::to_seconds(o.latency()) * 1e3);
  if (!latency.empty()) result.p99_latency_ms = latency.quantile(0.99);
  return result;
}

}  // namespace

int main() {
  using namespace pran;
  const int ttis = 1000;

  std::printf(
      "E16: serial vs code-block-parallel subframe execution "
      "(4 cells on one 16-core server, %d TTIs)\n\n",
      ttis);

  Table table({"gops_per_core", "serial_miss", "parallel_miss",
               "serial_p99_ms", "parallel_p99_ms"});
  for (double gops : {40.0, 60.0, 80.0, 100.0, 150.0}) {
    const auto serial = run(gops, 1, ttis);
    const auto parallel = run(gops, 16, ttis);
    table.row()
        .cell(gops, 0)
        .cell(serial.miss_ratio, 5)
        .cell(parallel.miss_ratio, 5)
        .cell(serial.p99_latency_ms, 2)
        .cell(parallel.p99_latency_ms, 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: serial execution needs ~100+ GOPS cores to hold the 3 ms "
      "budget; code-block fan-out holds it with far weaker cores and "
      "collapses the latency tail\n");
  return 0;
}
