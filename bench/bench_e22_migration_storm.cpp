// E22 — Migration storm: crash-safe two-phase cell handoff vs naive
// instant reassignment, under control-plane impairment.
//
// The paper's repartitioning story treats moving a cell between servers
// as free. It is not: a handoff must move HARQ soft-buffer state over
// the fronthaul and survive a management network that loses, delays and
// reorders PREPARE/COMMIT messages. This experiment measures what the
// two-phase protocol (core/migration.hpp) buys when many cells move at
// once:
//
//  (a) severity grid: a non-sticky placer plus fast diurnal drift forces
//      a repartition storm every epoch; each grid point runs the storm
//      under one control-plane severity (clean, loss, loss + jitter,
//      loss + reorder, crashes mid-transfer), once with the two-phase
//      protocol (make-before-break, lease fencing) and once with naive
//      instant reassignment (flip first, stream state after, eat the
//      blackout);
//  (b) invariants, asserted on every row: zero dual executions (one
//      cell-TTI granted to two servers is a ContractViolation before it
//      is a statistic) and zero orphaned cells (every migration begun
//      more than a deadline + grace ago has resolved — lost COMMITs must
//      die by lease expiry, not deadlock);
//  (c) acceptance: summed over the grid, the two-phase rows must show
//      strictly fewer blackout TTIs and no more air-interface damage
//      (deadline misses + HARQ-lost transport blocks) than the naive
//      rows — the measurable deadline-miss improvement the protocol
//      exists for.
//
// All runs are deterministic for a fixed seed and invariant in
// --threads: each grid point owns its deployment, its control-plane
// channel (own RNG substreams) and its result slot.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_guard.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"
#include "core/kpi_export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pran;

struct Severity {
  const char* label;
  double loss;
  sim::Time jitter;
  double reorder_p;
  sim::Time reorder_delay;
  bool crash;  ///< Crash servers mid-transfer (and restore them later).
};

const Severity kSeverities[] = {
    {"clean", 0.0, 0, 0.0, 0, false},
    {"loss 10%", 0.10, 0, 0.0, 0, false},
    {"loss 30%", 0.30, 0, 0.0, 0, false},
    {"loss 30% + jitter", 0.30, 2 * sim::kMillisecond, 0.0, 0, false},
    {"loss 15% + reorder", 0.15, 500 * sim::kMicrosecond, 0.20,
     3 * sim::kMillisecond, false},
    {"crash mid-transfer", 0.10, 0, 0.0, 0, true},
};

constexpr sim::Time kEpoch = 250 * sim::kMillisecond;

core::DeploymentConfig storm_config(bool two_phase, const Severity& s) {
  core::DeploymentConfig config;
  config.num_cells = 10;
  config.num_servers = 6;
  config.seed = 22;
  config.epoch = kEpoch;
  // Fast diurnal drift from the overnight trough through the morning ramp
  // plus a non-sticky first-fit placer: the active-server count and the
  // demand order both shuffle between epochs, so replans keep moving
  // cells — the storm under test (the E9 repack scenario).
  config.start_hour = 0.0;
  config.day_compression = 7200;
  config.placer = core::DeploymentConfig::PlacerKind::kFirstFitNoSticky;
  config.harq_retransmissions = true;
  // 10 cells of raw CPRI are ~18.4 Gbit/s: a 50G fibre runs at ~74%
  // utilisation, so ambient queueing stays clear of the HARQ budget and
  // the damage the table shows is the *migrations'* damage.
  config.shared_fronthaul =
      fronthaul::LinkParams{units::BitRate{50e9}, 25 * sim::kMicrosecond};

  config.migration.enabled = true;
  config.migration.make_before_break = two_phase;
  config.migration.lease_ttl = 20 * sim::kMillisecond;
  config.migration.transfer_ttis = 8;
  config.migration.transfer_bits = 8.0e6;
  config.migration.deadline = 100 * sim::kMillisecond;
  config.migration.max_retries = 3;
  config.migration.retry_backoff = 4 * sim::kMillisecond;
  config.migration.control_plane.loss_probability = s.loss;
  config.migration.control_plane.max_jitter = s.jitter;
  config.migration.control_plane.reorder_probability = s.reorder_p;
  config.migration.control_plane.reorder_delay = s.reorder_delay;
  return config;
}

/// Crash a server a few TTIs after an epoch boundary — squarely inside
/// the 8-TTI state transfers that replan just started — then restore it.
/// The diurnal ramp makes the controller repack at epochs 8 and 14 (the
/// overnight pile-up on servers 0-1 spreads out as the morning load
/// climbs), so those are the boundaries whose transfers the crash hits.
void schedule_crashes(core::Deployment& d) {
  d.fail_server_at(8 * kEpoch + 4 * sim::kMillisecond, 0);
  d.restore_server_at(8 * kEpoch + 404 * sim::kMillisecond, 0);
  d.fail_server_at(14 * kEpoch + 4 * sim::kMillisecond, 1);
  d.restore_server_at(14 * kEpoch + 404 * sim::kMillisecond, 1);
}

struct RunResult {
  core::DeploymentKpis kpis;
  std::uint64_t orphans = 0;      ///< Unresolved past deadline + grace.
  std::uint64_t msgs_lost = 0;    ///< Control-plane channel drops.
  int unresolved_at_end = 0;      ///< Active or settling when the run ended.
};

/// A migration begun more than deadline + grace ago that never reached a
/// terminal state is an orphaned cell — the protocol's liveness failure.
std::uint64_t count_orphans(const core::MigrationManager& m, sim::Time now,
                            sim::Time deadline) {
  const sim::Time grace = 200 * sim::kMillisecond;
  std::uint64_t n = 0;
  for (const core::MigrationRecord& rec : m.history())
    if (rec.resolved_at < 0 && rec.started_at + deadline + grace < now) ++n;
  return n;
}

/// Air-interface damage a handoff scheme causes: subframes that decoded
/// late, transport blocks lost outright, and HARQ retransmissions (every
/// blackout TTI forces one — spectrum spent re-sending what a live server
/// would have decoded the first time).
std::uint64_t air_damage(const core::DeploymentKpis& k) {
  return k.deadline_misses + k.lost_transport_blocks +
         k.harq_retransmissions;
}

int run_grid(unsigned threads, sim::Time duration) {
  constexpr std::size_t kModes = 2;  // [0] = naive, [1] = two-phase
  const std::size_t num_severities = std::size(kSeverities);
  std::vector<RunResult> results(kModes * num_severities);

  std::printf(
      "A: migration storm, 10 cells / 6 servers, non-sticky placer, epoch "
      "%lld ms, HARQ on, %.0f ms runs — two-phase protocol vs naive "
      "instant reassignment across the control-plane severity grid\n\n",
      static_cast<long long>(kEpoch / sim::kMillisecond),
      static_cast<double>(duration) / sim::kMillisecond);

  parallel_for_each(threads, results.size(), [&](unsigned, std::size_t i) {
    const bool two_phase = i >= num_severities;
    const Severity& s = kSeverities[i % num_severities];
    core::Deployment d(storm_config(two_phase, s));
    if (s.crash) schedule_crashes(d);
    d.run_for(duration);
    RunResult& r = results[i];
    r.kpis = d.kpis();
    const core::MigrationManager* m = d.migration();
    PRAN_CHECK(m != nullptr, "migration manager must be enabled");
    r.orphans = count_orphans(*m, d.now(), d.config().migration.deadline);
    r.msgs_lost = m->channel().messages_lost();
    r.unresolved_at_end = m->unresolved_cells();
  });

  Table table({"severity", "mode", "planned", "started", "committed",
               "aborted", "rolled", "takeover", "retries", "stale",
               "blackout", "handoff_ms", "miss+lost", "dual", "orphans"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool two_phase = i >= num_severities;
    const Severity& s = kSeverities[i % num_severities];
    const auto& k = results[i].kpis;
    table.row()
        .cell(s.label)
        .cell(two_phase ? "two-phase" : "naive")
        .cell(k.migrations)
        .cell(static_cast<long long>(k.migrations_started))
        .cell(static_cast<long long>(k.migrations_committed))
        .cell(static_cast<long long>(k.migrations_aborted))
        .cell(static_cast<long long>(k.migrations_rolled_back))
        .cell(static_cast<long long>(k.migrations_taken_over))
        .cell(static_cast<long long>(k.migration_retries))
        .cell(static_cast<long long>(k.migration_stale_messages))
        .cell(static_cast<long long>(k.migration_blackout_ttis))
        .cell(k.mean_handoff_latency_ms, 2)
        .cell(static_cast<long long>(air_damage(k)))
        .cell(static_cast<long long>(k.migration_dual_executions))
        .cell(static_cast<long long>(results[i].orphans));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the naive rows go dark for the whole 8-TTI transfer on "
      "every move (blackout == 8 x committed), and each dark TTI owes "
      "HARQ debt; the two-phase rows keep the source executing through "
      "the transfer, so blackout only appears when loss actually delays "
      "a COMMIT past the lease fence — and even then the cell resolves "
      "by lease expiry, never by dual ownership\n\n");

  // --- Invariants and acceptance. ------------------------------------------
  bool invariants = true;
  std::uint64_t naive_blackout = 0, two_blackout = 0;
  std::uint64_t naive_damage = 0, two_damage = 0;
  std::uint64_t two_committed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool two_phase = i >= num_severities;
    const auto& k = results[i].kpis;
    if (k.migration_dual_executions != 0 || results[i].orphans != 0) {
      std::printf("INVARIANT VIOLATION at row %zu: dual=%llu orphans=%llu\n",
                  i,
                  static_cast<unsigned long long>(k.migration_dual_executions),
                  static_cast<unsigned long long>(results[i].orphans));
      invariants = false;
    }
    if (two_phase) {
      two_blackout += k.migration_blackout_ttis;
      two_damage += air_damage(k);
      two_committed += k.migrations_committed + k.migrations_taken_over;
    } else {
      naive_blackout += k.migration_blackout_ttis;
      naive_damage += air_damage(k);
    }
  }
  const bool storms_happened = two_committed > 0;
  const bool blackout_wins = two_blackout < naive_blackout;
  const bool damage_holds = two_damage <= naive_damage;

  Table verdict({"check", "naive", "two-phase", "verdict"});
  verdict.row()
      .cell("dual executions + orphans")
      .cell("0 required")
      .cell("0 required")
      .cell(invariants ? "zero everywhere" : "VIOLATED");
  verdict.row()
      .cell("blackout TTIs (grid total)")
      .cell(static_cast<long long>(naive_blackout))
      .cell(static_cast<long long>(two_blackout))
      .cell(blackout_wins ? "two-phase strictly lower" : "UNEXPECTED");
  verdict.row()
      .cell("misses + lost TBs (grid total)")
      .cell(static_cast<long long>(naive_damage))
      .cell(static_cast<long long>(two_damage))
      .cell(damage_holds ? "two-phase no worse" : "UNEXPECTED");
  std::printf("%s\n", verdict.render().c_str());
  return invariants && storms_happened && blackout_wins && damage_holds ? 0
                                                                        : 1;
}

// --- B: headline run for the exported snapshot. ----------------------------

void run_headline(sim::Time duration, const core::TimelineConfig& timeline) {
  std::printf(
      "B: headline — two-phase protocol under loss 10%% with crashes "
      "mid-transfer; migration.* counters and kpi.migration_* gauges go "
      "into the exported snapshot\n\n");
  auto config = storm_config(true, kSeverities[5]);
  config.timeline = timeline;
  core::Deployment d(config);
  schedule_crashes(d);
  d.run_for(duration);
  const auto k = d.kpis();
  Table table({"started", "committed", "aborted", "rolled", "takeover",
               "deferred", "blackout", "handoff_ms", "dual"});
  table.row()
      .cell(static_cast<long long>(k.migrations_started))
      .cell(static_cast<long long>(k.migrations_committed))
      .cell(static_cast<long long>(k.migrations_aborted))
      .cell(static_cast<long long>(k.migrations_rolled_back))
      .cell(static_cast<long long>(k.migrations_taken_over))
      .cell(static_cast<long long>(k.migrations_deferred))
      .cell(static_cast<long long>(k.migration_blackout_ttis))
      .cell(k.mean_handoff_latency_ms, 2)
      .cell(static_cast<long long>(k.migration_dual_executions));
  std::printf("%s\n", table.render().c_str());
  core::export_deployment(d, telemetry::registry());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("bench_e22_migration_storm",
              "E22: crash-safe cell migration — two-phase handoff with "
              "lease fencing vs naive instant reassignment, under "
              "control-plane impairment");
  flags.add_int("threads", static_cast<long>(ThreadPool::default_threads()),
                "worker threads for the severity grid");
  flags.add_int("duration-ms", 4000, "simulated milliseconds per run");
  flags.add_string("metrics-out", "",
                   "write a telemetry snapshot to this file (.json or .csv)");
  flags.add_string("trace-out", "",
                   "write Chrome trace-event JSON to this file");
  flags.add_string("timeline-out", "",
                   "stream per-window KPI samples from the headline run "
                   "as JSONL to this file");
  flags.add_string("postmortem-dir", "",
                   "directory for flight-recorder dumps from the headline "
                   "run");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }
  pran::bench::warn_if_not_release();
  const auto threads = static_cast<unsigned>(flags.get_int("threads"));
  const auto duration = flags.get_int("duration-ms") * sim::kMillisecond;

  core::TimelineConfig timeline;
  timeline.timeline_out = flags.get_string("timeline-out");
  timeline.postmortem_dir = flags.get_string("postmortem-dir");
  timeline.enabled =
      !timeline.timeline_out.empty() || !timeline.postmortem_dir.empty();
  timeline.window = 10 * sim::kMillisecond;

  std::printf("E22: migration storm under control-plane impairment\n\n");
  const int rc = run_grid(threads, duration);
  run_headline(duration, timeline);
  if (!flags.get_string("metrics-out").empty())
    pran::telemetry::write_metrics_file(flags.get_string("metrics-out"));
  if (!flags.get_string("trace-out").empty())
    pran::telemetry::write_chrome_trace_file(flags.get_string("trace-out"));
  return rc;
}
