// E8 — Failover: what one server failure costs, as a function of spare
// capacity.
//
// Claims reproduced: with spare headroom in the cluster the controller
// re-places the victim's cells immediately — the damage is bounded to the
// in-flight subframes (a few per cell) — while an under-provisioned
// cluster leaves cells in outage until capacity returns.

#include <cstdio>

#include "common/table.hpp"
#include "core/deployment.hpp"

int main() {
  using namespace pran;

  std::printf(
      "E8: server failure at t=500 ms, 8 cells, varying cluster size "
      "(2 s runs)\n\n");

  Table table({"servers", "outage_cells", "dropped_jobs", "misses",
               "recovered_within_ms", "miss_ratio_overall"});

  for (int servers : {2, 3, 4, 5}) {
    core::DeploymentConfig config;
    config.num_cells = 8;
    config.num_servers = servers;
    config.seed = 31;
    config.start_hour = 11.0;
    config.day_compression = 60.0;
    core::Deployment d(config);

    d.run_for(500 * sim::kMillisecond);
    const int victim = d.controller().server_of(0);
    const sim::Time fail_at = d.now();
    d.fail_server_at(fail_at, victim);
    d.run_for(1500 * sim::kMillisecond);

    // Recovery latency: last deadline miss / drop of any cell that lived
    // on the victim, relative to the failure instant.
    sim::Time last_disruption = fail_at;
    for (const auto& o : d.executor().outcomes()) {
      const bool disrupted = o.dropped || o.missed_deadline();
      if (!disrupted) continue;
      const sim::Time at = o.dropped ? o.job.deadline : o.finish;
      if (at >= fail_at) last_disruption = std::max(last_disruption, at);
    }
    const auto kpis = d.kpis();
    table.row()
        .cell(servers)
        .cell(kpis.failover_outage_cells)
        .cell(static_cast<long long>(kpis.dropped))
        .cell(static_cast<long long>(kpis.deadline_misses))
        .cell(sim::to_seconds(last_disruption - fail_at) * 1e3, 1)
        .cell(kpis.miss_ratio, 5);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: with spare capacity, disruption is limited to in-flight "
      "subframes; a 2-server cluster cannot absorb the loss\n");
  return 0;
}
