// Quickstart: stand up a small PRAN deployment — 8 cells on 4 commodity
// servers — run two simulated seconds through a compressed diurnal cycle,
// and print the headline KPIs.
//
//   $ ./quickstart
//
// What to look for: zero (or near-zero) deadline misses while the mean
// number of *active* servers tracks the load, i.e. the controller powers
// servers up and down as the day progresses.

#include <cstdio>

#include "common/strings.hpp"
#include "core/deployment.hpp"

int main() {
  using namespace pran;

  core::DeploymentConfig config;
  config.num_cells = 8;
  config.num_servers = 4;
  config.policy = cluster::SchedPolicy::kEdf;
  config.placer = core::DeploymentConfig::PlacerKind::kFirstFit;
  config.start_hour = 8.0;        // morning ramp-up
  config.day_compression = 3600;  // 1 simulated second = 1 diurnal hour
  config.seed = 7;

  std::printf("PRAN quickstart: %d cells, %d servers (%d cores x %.0f GOPS)\n",
              config.num_cells, config.num_servers, config.server.cores,
              config.server.gops_per_core);

  core::Deployment deployment(config);

  // Run 2 simulated seconds (= 2 diurnal hours, 2000 TTIs per cell).
  for (int step = 1; step <= 4; ++step) {
    deployment.run_for(500 * sim::kMillisecond);
    const auto kpis = deployment.kpis();
    std::printf(
        "t=%.1fs (hour %04.1f): %llu subframes, miss ratio %.5f, "
        "active servers %.2f, migrations %d\n",
        sim::to_seconds(deployment.now()),
        deployment.hour_at(deployment.now()),
        static_cast<unsigned long long>(kpis.subframes_processed),
        kpis.miss_ratio, kpis.mean_active_servers, kpis.migrations);
  }

  const auto kpis = deployment.kpis();
  std::printf("\nfinal: %llu subframes processed, %llu misses, %llu dropped\n",
              static_cast<unsigned long long>(kpis.subframes_processed),
              static_cast<unsigned long long>(kpis.deadline_misses),
              static_cast<unsigned long long>(kpis.dropped));
  std::printf("controller: %d migrations, mean plan time %s\n",
              kpis.migrations,
              format_duration(kpis.mean_plan_seconds).c_str());
  return kpis.deadline_misses == 0 ? 0 : 1;
}
