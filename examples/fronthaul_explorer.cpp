// Fronthaul explorer: sweep I/Q codecs against an EVM budget.
//
//   $ ./fronthaul_explorer [evm_budget_pct]
//
// LTE's modulation orders tolerate bounded error-vector magnitude
// (TS 36.104: ~17.5% QPSK, ~12.5% 16-QAM, ~8% 64-QAM). This tool sweeps
// the codec design space on a synthetic OFDM capture and reports, per
// codec family and width, the compression ratio, the EVM, and whether it
// fits the budget — then names the densest admissible option.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "fronthaul/codec.hpp"
#include "fronthaul/cpri.hpp"
#include "fronthaul/iq.hpp"

int main(int argc, char** argv) {
  using namespace pran;
  using namespace pran::fronthaul;
  const double evm_budget = (argc > 1 ? std::atof(argv[1]) : 8.0) / 100.0;
  if (evm_budget <= 0.0) {
    std::fprintf(stderr, "usage: %s [evm_budget_pct]\n", argv[0]);
    return 2;
  }

  Rng rng(99);
  const auto capture = generate_capture(rng, 8);
  const CpriParams cpri;

  std::printf(
      "fronthaul explorer: EVM budget %.1f%%, raw cell rate %s\n\n",
      evm_budget * 100.0, format_bitrate(line_rate_bps(cpri).value()).c_str());

  struct Entry {
    std::string name;
    double ratio;
    double evm_value;
  };
  std::vector<Entry> admissible;

  Table table({"codec", "ratio", "evm_pct", "fits", "line_rate"});
  auto evaluate = [&](std::unique_ptr<Codec> codec) {
    const auto result = codec->roundtrip(capture);
    const double ratio = Codec::compression_ratio(capture.size(), result.bits);
    const double e = evm(capture, result.decoded);
    const bool fits = e <= evm_budget;
    table.row()
        .cell(codec->name())
        .cell(ratio, 2)
        .cell(e * 100.0, 3)
        .cell(fits ? "yes" : "no")
        .cell(format_bitrate(compressed_line_rate_bps(cpri, ratio).value()));
    if (fits) admissible.push_back({codec->name(), ratio, e});
  };

  for (int bits = 4; bits <= 12; bits += 2)
    evaluate(std::make_unique<FixedPointCodec>(bits));
  for (int bits = 4; bits <= 12; bits += 2)
    evaluate(std::make_unique<BlockFloatCodec>(bits, 32));
  for (int bits = 4; bits <= 12; bits += 2)
    evaluate(std::make_unique<MuLawCodec>(bits));
  for (int bits = 4; bits <= 12; bits += 2)
    evaluate(std::make_unique<PruningCodec>(
        std::make_unique<BlockFloatCodec>(bits, 32), 2048, 1536));
  std::printf("%s\n", table.render().c_str());

  if (admissible.empty()) {
    std::printf("no codec fits a %.1f%% EVM budget\n", evm_budget * 100.0);
    return 1;
  }
  const Entry* best = &admissible.front();
  for (const auto& e : admissible)
    if (e.ratio > best->ratio) best = &e;
  std::printf(
      "densest admissible codec: %s (%.2fx, EVM %.2f%%) -> %zu cells per "
      "10G link instead of %zu\n",
      best->name.c_str(), best->ratio, best->evm_value * 100.0,
      cells_per_link(units::BitRate{10e9},
                     compressed_line_rate_bps(cpri, best->ratio)),
      cells_per_link(units::BitRate{10e9}, line_rate_bps(cpri)));
  return 0;
}
