// Daily operations: a full compressed day of a PRAN cluster, with an
// hour-by-hour operations report and one unplanned server failure.
//
//   $ ./daily_operations [cells] [servers]
//
// Watch the controller follow the diurnal tide: two servers overnight,
// scale-out through the morning ramp, a failure absorbed at midday, and
// consolidation again after the evening peak — with deadline misses held
// at zero throughout and the energy meter running.

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/deployment.hpp"

int main(int argc, char** argv) {
  using namespace pran;
  const int cells = argc > 1 ? std::atoi(argv[1]) : 10;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 6;
  if (cells < 1 || servers < 1) {
    std::fprintf(stderr, "usage: %s [cells] [servers]\n", argv[0]);
    return 2;
  }

  core::DeploymentConfig config;
  config.num_cells = cells;
  config.num_servers = servers;
  config.seed = 365;
  config.start_hour = 0.0;
  config.day_compression = 7200.0;  // 2 diurnal hours per simulated second
  config.epoch = 250 * sim::kMillisecond;
  config.forecast_horizon_hours = 0.5;
  config.harq_retransmissions = true;

  std::printf(
      "daily operations: %d cells on %d servers, one compressed day "
      "(12 s), failure at noon\n\n",
      cells, servers);

  core::Deployment d(config);
  // Unplanned failure at 12:00, repair crew done by 14:00.
  d.fail_server_at(6 * sim::kSecond, 0);
  d.restore_server_at(7 * sim::kSecond, 0);

  Table ops({"hour", "active_srv_now", "subframes", "misses", "migrations",
             "energy_kj"});
  std::uint64_t prev_subframes = 0;
  std::uint64_t prev_misses = 0;
  int prev_migrations = 0;
  for (int half_day_step = 1; half_day_step <= 12; ++half_day_step) {
    d.run_for(sim::kSecond);  // 2 diurnal hours
    const auto kpis = d.kpis();
    const auto& reports = d.controller().reports();
    const int active_now =
        reports.empty() ? 0 : reports.back().active_servers;
    ops.row()
        .cell(d.hour_at(d.now()), 0)
        .cell(active_now)
        .cell(static_cast<long long>(kpis.subframes_processed -
                                     prev_subframes))
        .cell(static_cast<long long>(kpis.deadline_misses - prev_misses))
        .cell(kpis.migrations - prev_migrations)
        .cell(kpis.energy_joules / 1e3, 2);
    prev_subframes = kpis.subframes_processed;
    prev_misses = kpis.deadline_misses;
    prev_migrations = kpis.migrations;
  }
  std::printf("%s\n", ops.render().c_str());

  const auto kpis = d.kpis();
  std::printf("day total: %llu subframes, %llu misses (%.5f), %llu dropped "
              "in the failure, %d migrations\n",
              static_cast<unsigned long long>(kpis.subframes_processed),
              static_cast<unsigned long long>(kpis.deadline_misses),
              kpis.miss_ratio,
              static_cast<unsigned long long>(kpis.dropped),
              kpis.migrations);
  std::printf("energy: %.1f kJ (mean %.0f W); HARQ retransmissions: %llu\n",
              kpis.energy_joules / 1e3,
              kpis.energy_joules / sim::to_seconds(d.now()),
              static_cast<unsigned long long>(kpis.harq_retransmissions));
  std::printf("outage cells during failover: %d\n",
              kpis.failover_outage_cells);
  return kpis.failover_outage_cells == 0 ? 0 : 1;
}
