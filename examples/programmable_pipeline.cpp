// Programmability demo: edit a cell's processing pipeline at run time and
// watch the controller re-size the deployment.
//
// PRAN's pitch is that the RAN data plane becomes software: an operator can
// insert an interference-cancellation pass, CoMP combining, or wideband
// sounding the way an SDN operator installs a flow rule. Because placement
// plans against the *programmed* pipeline cost, extra stages translate
// directly into extra servers — visible here.

#include <cstdio>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/deployment.hpp"

namespace {

pran::core::DeploymentKpis run_with(const pran::core::Pipeline& pipeline,
                                    const char* label) {
  using namespace pran;
  core::DeploymentConfig config;
  config.num_cells = 10;
  config.num_servers = 6;
  config.seed = 11;
  config.start_hour = 10.0;  // busy hour
  config.day_compression = 60.0;
  config.pipeline = pipeline;
  core::Deployment d(config);
  d.run_for(2 * sim::kSecond);
  const auto kpis = d.kpis();
  std::printf("  %-28s misses=%llu active_servers=%.2f\n", label,
              static_cast<unsigned long long>(kpis.deadline_misses),
              kpis.mean_active_servers);
  return kpis;
}

}  // namespace

int main() {
  using namespace pran;
  const lte::CellConfig cell;
  const std::vector<lte::Allocation> busy{{60, 24, 6}, {40, 12, 5}};

  // 1. Pipelines are data: inspect and edit them.
  auto standard = core::Pipeline::standard_uplink();
  auto enhanced = standard;
  enhanced.insert_after("equalize", core::stages::interference_cancellation());
  enhanced.append(core::stages::wideband_sounding());
  auto comp = standard;
  comp.append(core::stages::comp_combining(3));

  Table table({"pipeline", "stages", "busy_subframe_gops", "us_on_150gops"});
  const std::vector<std::pair<const char*, const core::Pipeline*>> pipelines{
      {"standard", &standard}, {"ic+sounding", &enhanced}, {"comp-3", &comp}};
  for (const auto& [name, p] : pipelines) {
    const double gops = p->subframe_gops(cell, busy);
    table.row()
        .cell(name)
        .cell(p->size())
        .cell(gops, 4)
        .cell(gops / 150.0 * 1e6, 1);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("stage order of ic+sounding:");
  for (const auto& n : enhanced.stage_names()) std::printf(" %s", n.c_str());
  std::printf("\n\n");

  // 2. The controller prices the programmed pipeline into placement.
  std::printf("2-second deployments (10 cells, 6 servers):\n");
  const auto base = run_with(standard, "standard");
  const auto heavy = run_with(enhanced, "ic+sounding");
  std::printf(
      "\nprogrammed-in stages raised mean active servers by %.2f while "
      "deadline misses stayed %s\n",
      heavy.mean_active_servers - base.mean_active_servers,
      heavy.deadline_misses == 0 ? "at zero" : "bounded");
  return 0;
}
