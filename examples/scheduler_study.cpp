// Scheduler study: swap the MAC scheduling policy of a cell (PRAN's
// programmable MAC) and watch throughput, per-UE fairness, and the
// processing load the cluster must absorb.
//
//   $ ./scheduler_study [num_ues] [ttis]

#include <cstdio>
#include <cstdlib>

#include "common/histogram.hpp"
#include "common/table.hpp"
#include "lte/cost_model.hpp"
#include "mac/cell_mac.hpp"

int main(int argc, char** argv) {
  using namespace pran;
  const int num_ues = argc > 1 ? std::atoi(argv[1]) : 16;
  const int ttis = argc > 2 ? std::atoi(argv[2]) : 5000;
  if (num_ues < 1 || ttis < 1) {
    std::fprintf(stderr, "usage: %s [num_ues] [ttis]\n", argv[0]);
    return 2;
  }

  std::printf("scheduler study: %d UEs, %d TTIs, full-buffer traffic\n\n",
              num_ues, ttis);

  const lte::CostModel model;
  Table table({"scheduler", "cell_mbps", "p5_ue_mbps", "p95_ue_mbps",
               "jain", "mean_sf_us_on_150gops"});
  for (const char* name : {"max-rate", "proportional-fair", "round-robin"}) {
    mac::CellMacConfig config;
    config.scheduler = name;
    config.num_ues = num_ues;
    config.seed = 4242;
    mac::CellMac cell(config);

    double total_gops = 0.0;
    for (int t = 0; t < ttis; ++t) {
      const auto allocs = cell.run_tti();
      total_gops += model
                        .subframe_cost(config.cell, allocs,
                                       lte::Direction::kUplink)
                        .total();
    }

    Samples tput(cell.ue_throughputs_bps());
    table.row()
        .cell(name)
        .cell(cell.cell_throughput_bps() / 1e6, 1)
        .cell(tput.quantile(0.05) / 1e6, 2)
        .cell(tput.quantile(0.95) / 1e6, 2)
        .cell(cell.fairness(), 3)
        .cell(total_gops / ttis / 150.0 * 1e6, 1);
  }
  std::printf("%s\n", table.render().c_str());

  // Drill into PF: the per-UE throughput spread.
  mac::CellMacConfig config;
  config.scheduler = "proportional-fair";
  config.num_ues = num_ues;
  config.seed = 4242;
  mac::CellMac pf(config);
  for (int t = 0; t < ttis; ++t) pf.run_tti();
  std::printf("proportional-fair per-UE throughput distribution (Mbps):\n");
  Histogram hist(0.0, 12.0, 12);
  for (double t : pf.ue_throughputs_bps()) hist.add(t / 1e6);
  std::printf("%s", hist.render(40).c_str());
  return 0;
}
