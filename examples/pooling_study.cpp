// Pooling study: how many servers does a day of RAN traffic really need?
//
// Builds a mixed fleet (office / residential / mixed / transport cells),
// materialises its 24-hour demand trace, and compares three provisioning
// strategies: one dedicated BBU per cell (classic RAN), a shared cluster
// sized for each cell's peak, and PRAN's pooled cluster that re-packs
// cells as load moves. Optionally writes the trace as CSV for plotting:
//
//   $ ./pooling_study [num_cells] [trace.csv]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/table.hpp"
#include "core/pooling.hpp"

int main(int argc, char** argv) {
  using namespace pran;
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 24;
  if (num_cells < 1) {
    std::fprintf(stderr, "usage: %s [num_cells] [trace.csv]\n", argv[0]);
    return 2;
  }

  const cluster::ServerSpec server{"srv", 8, 150.0};
  std::printf("pooling study: %d cells, server = %d cores x %.0f GOPS\n\n",
              num_cells, server.cores, server.gops_per_core);

  const auto fleet = workload::make_fleet(num_cells, 2024);
  Table mix({"cell", "kind", "peak_hour", "mean_load"});
  for (const auto& cell : fleet.cells) {
    mix.row()
        .cell(cell.site().cell_id)
        .cell(workload::site_kind_name(cell.site().kind))
        .cell(cell.profile().peak_hour())
        .cell(cell.profile().mean(), 2);
  }
  std::printf("%s\n", mix.render().c_str());

  const auto trace = workload::DayTrace::from_fleet(fleet, 48, 24);
  const auto summary = core::analyze_pooling(trace, server);

  Table hourly({"hour", "fleet_gops_per_tti", "pooled_servers"});
  for (std::size_t i = 0; i < summary.series.size(); i += 2) {
    const auto& pt = summary.series[i];
    hourly.row().cell(pt.hour, 1).cell(pt.total_gops.value(), 2).cell(
        pt.pooled_servers);
  }
  std::printf("%s\n", hourly.render().c_str());

  std::printf("dedicated BBUs (one per cell): %d\n", summary.dedicated_bbus);
  std::printf("shared cluster, per-cell peak sizing: %d servers\n",
              summary.peak_provisioned_servers);
  std::printf("PRAN pooled cluster (worst slot): %d servers\n",
              summary.pooled_peak_servers);
  std::printf("savings: %.0f%% vs peak sizing, %.0f%% vs dedicated BBUs\n",
              100.0 * summary.savings(),
              100.0 * summary.savings_vs_dedicated());

  if (argc > 2) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[2]);
      return 1;
    }
    out << trace.to_csv();
    std::printf("trace written to %s\n", argv[2]);
  }
  return 0;
}
