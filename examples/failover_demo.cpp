// Failover demo: kill a server mid-run and watch the controller re-home
// its cells within milliseconds.
//
//   $ ./failover_demo
//
// Prints a timeline of the failure, which cells moved where, the jobs lost
// in flight, and the post-recovery steady state.

#include <cstdio>

#include "common/table.hpp"
#include "core/deployment.hpp"

int main() {
  using namespace pran;

  core::DeploymentConfig config;
  config.num_cells = 8;
  config.num_servers = 4;
  config.seed = 31;
  config.start_hour = 11.0;
  config.day_compression = 60.0;
  core::Deployment d(config);

  d.run_for(400 * sim::kMillisecond);

  auto print_placement = [&](const char* when) {
    std::printf("%s:\n", when);
    for (int c = 0; c < config.num_cells; ++c)
      std::printf("  cell %d -> server %d\n", c, d.controller().server_of(c));
  };
  print_placement("placement before failure");

  const int victim = d.controller().server_of(0);
  std::printf("\n>>> failing server %d at t=%.3fs <<<\n\n", victim,
              sim::to_seconds(d.now()));
  const auto before = d.kpis();
  d.fail_server_at(d.now(), victim);
  d.run_for(100 * sim::kMillisecond);

  print_placement("placement 100 ms after failure");
  const auto after = d.kpis();
  std::printf("\njobs lost in flight: %llu, outage cells: %d\n",
              static_cast<unsigned long long>(after.dropped - before.dropped),
              after.failover_outage_cells);

  std::printf("\nrestoring server %d; continuing one second\n", victim);
  d.restore_server_at(d.now(), victim);
  d.run_for(sim::kSecond);

  const auto final_kpis = d.kpis();
  Table kpis({"metric", "value"});
  kpis.row().cell("subframes processed").cell(
      static_cast<long long>(final_kpis.subframes_processed));
  kpis.row().cell("deadline misses").cell(
      static_cast<long long>(final_kpis.deadline_misses));
  kpis.row().cell("jobs dropped").cell(
      static_cast<long long>(final_kpis.dropped));
  kpis.row().cell("miss ratio").cell(final_kpis.miss_ratio, 6);
  kpis.row().cell("migrations").cell(final_kpis.migrations);
  std::printf("\n%s\n", kpis.render().c_str());

  std::printf("event trace:\n%s", d.trace().render().c_str());
  return final_kpis.failover_outage_cells == 0 ? 0 : 1;
}
