// Coding lab: poke the bit-level channel-coding stack interactively.
//
//   $ ./coding_lab [esn0_db] [block_bits]
//
// Sends one CRC-protected block through each code (uncoded, convolutional
// rate 1/2, turbo rate ~1/3) at the chosen Es/N0, shows what survives, and
// prints a mini waterfall around the chosen point.

#include <cstdio>
#include <cstdlib>

#include "coding/bler.hpp"
#include "coding/turbo.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace pran;
  using namespace pran::coding;
  const double esn0 = argc > 1 ? std::atof(argv[1]) : -2.0;
  const std::size_t k = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2]))
                                 : 256;
  if (!turbo_block_size_ok(k)) {
    std::fprintf(stderr, "block_bits must be a power of two in [64, 8192]\n");
    return 2;
  }

  Rng rng(12345);
  Bits info;
  for (std::size_t i = 0; i < k; ++i)
    info.push_back(rng.bernoulli(0.5) ? 1 : 0);

  std::printf("coding lab: %zu info bits at Es/N0 = %.1f dB\n\n", k, esn0);

  // Uncoded BPSK.
  const auto raw_llrs = transmit_bpsk(info, units::Db{esn0}, rng);
  const auto raw_hard = hard_decisions(raw_llrs);
  std::size_t raw_errors = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (raw_hard[i] != info[i]) ++raw_errors;

  // Convolutional rate 1/2 with CRC.
  const Bits framed = attach_crc(info);
  const Bits conv = convolutional_encode(framed);
  const Bits matched = rate_match(conv, output_bits_for_rate(framed.size(), 0.5));
  const auto conv_llrs = transmit_bpsk(matched, units::Db{esn0}, rng);
  const auto conv_decoded =
      viterbi_decode(rate_dematch(conv_llrs, conv.size()), framed.size());
  const bool conv_ok = check_crc(conv_decoded.info);

  // Turbo rate ~1/3 with CRC-gated early exit.
  const Bits turbo = turbo_encode(info);
  const auto turbo_llrs = transmit_bpsk(turbo, units::Db{esn0}, rng);
  const auto turbo_result = turbo_decode(
      turbo_llrs, k, 8, [&](const Bits& hard) { return hard == info; });

  Table table({"scheme", "rate", "result"});
  table.row().cell("uncoded BPSK").cell(1.0, 2).cell(
      std::to_string(raw_errors) + " bit errors");
  table.row().cell("conv K=7 + Viterbi").cell(0.5, 2).cell(
      conv_ok ? "CRC ok" : "CRC FAILED");
  table.row()
      .cell("turbo, early exit")
      .cell(static_cast<double>(k) /
                static_cast<double>(turbo_encoded_length(k)),
            2)
      .cell(turbo_result.converged
                ? ("clean after " + std::to_string(turbo_result.iterations) +
                   " iteration(s)")
                : "NOT decoded in 8 iterations");
  std::printf("%s\n", table.render().c_str());

  // Mini waterfall around the operating point.
  std::printf("mini waterfall (30 blocks per point, conv rate 1/2):\n\n");
  Table wf({"esn0_db", "conv_bler", "turbo_bler"});
  for (double snr = esn0 - 2.0; snr <= esn0 + 2.01; snr += 1.0) {
    LinkConfig link;
    link.info_bits = k;
    link.code_rate = 0.5;
    const auto conv_stats = run_link(link, units::Db{snr}, 30, rng);
    int turbo_errors = 0;
    for (int t = 0; t < 30; ++t) {
      Bits payload;
      for (std::size_t i = 0; i < k; ++i)
        payload.push_back(rng.bernoulli(0.5) ? 1 : 0);
      const auto llrs = transmit_bpsk(turbo_encode(payload), units::Db{snr}, rng);
      if (turbo_decode(llrs, k, 6).info != payload) ++turbo_errors;
    }
    wf.row()
        .cell(snr, 1)
        .cell(conv_stats.bler(), 3)
        .cell(turbo_errors / 30.0, 3);
  }
  std::printf("%s", wf.render().c_str());
  return 0;
}
