file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_fronthaul.dir/bench_e7_fronthaul.cpp.o"
  "CMakeFiles/bench_e7_fronthaul.dir/bench_e7_fronthaul.cpp.o.d"
  "bench_e7_fronthaul"
  "bench_e7_fronthaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_fronthaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
