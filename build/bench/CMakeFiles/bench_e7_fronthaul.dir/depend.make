# Empty dependencies file for bench_e7_fronthaul.
# This may be replaced when dependencies are built.
