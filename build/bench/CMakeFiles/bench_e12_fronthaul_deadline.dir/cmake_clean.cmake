file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_fronthaul_deadline.dir/bench_e12_fronthaul_deadline.cpp.o"
  "CMakeFiles/bench_e12_fronthaul_deadline.dir/bench_e12_fronthaul_deadline.cpp.o.d"
  "bench_e12_fronthaul_deadline"
  "bench_e12_fronthaul_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_fronthaul_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
