# Empty dependencies file for bench_e12_fronthaul_deadline.
# This may be replaced when dependencies are built.
