file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_mac_schedulers.dir/bench_e11_mac_schedulers.cpp.o"
  "CMakeFiles/bench_e11_mac_schedulers.dir/bench_e11_mac_schedulers.cpp.o.d"
  "bench_e11_mac_schedulers"
  "bench_e11_mac_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_mac_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
