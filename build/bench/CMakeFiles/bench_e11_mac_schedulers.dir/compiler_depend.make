# Empty compiler generated dependencies file for bench_e11_mac_schedulers.
# This may be replaced when dependencies are built.
