# Empty compiler generated dependencies file for bench_e1_processing_vs_mcs.
# This may be replaced when dependencies are built.
