file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_processing_vs_mcs.dir/bench_e1_processing_vs_mcs.cpp.o"
  "CMakeFiles/bench_e1_processing_vs_mcs.dir/bench_e1_processing_vs_mcs.cpp.o.d"
  "bench_e1_processing_vs_mcs"
  "bench_e1_processing_vs_mcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_processing_vs_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
