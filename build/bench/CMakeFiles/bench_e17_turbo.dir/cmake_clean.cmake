file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_turbo.dir/bench_e17_turbo.cpp.o"
  "CMakeFiles/bench_e17_turbo.dir/bench_e17_turbo.cpp.o.d"
  "bench_e17_turbo"
  "bench_e17_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
