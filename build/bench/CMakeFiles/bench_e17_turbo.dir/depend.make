# Empty dependencies file for bench_e17_turbo.
# This may be replaced when dependencies are built.
