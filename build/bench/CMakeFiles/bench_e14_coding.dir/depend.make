# Empty dependencies file for bench_e14_coding.
# This may be replaced when dependencies are built.
