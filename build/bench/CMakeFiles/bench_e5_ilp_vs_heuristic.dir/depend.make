# Empty dependencies file for bench_e5_ilp_vs_heuristic.
# This may be replaced when dependencies are built.
