# Empty compiler generated dependencies file for bench_e2_processing_vs_prb.
# This may be replaced when dependencies are built.
