file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_processing_vs_prb.dir/bench_e2_processing_vs_prb.cpp.o"
  "CMakeFiles/bench_e2_processing_vs_prb.dir/bench_e2_processing_vs_prb.cpp.o.d"
  "bench_e2_processing_vs_prb"
  "bench_e2_processing_vs_prb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_processing_vs_prb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
