# Empty dependencies file for bench_e9_migrations.
# This may be replaced when dependencies are built.
