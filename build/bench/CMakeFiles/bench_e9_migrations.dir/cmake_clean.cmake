file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_migrations.dir/bench_e9_migrations.cpp.o"
  "CMakeFiles/bench_e9_migrations.dir/bench_e9_migrations.cpp.o.d"
  "bench_e9_migrations"
  "bench_e9_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
