file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_failover.dir/bench_e8_failover.cpp.o"
  "CMakeFiles/bench_e8_failover.dir/bench_e8_failover.cpp.o.d"
  "bench_e8_failover"
  "bench_e8_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
