file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_parallel_decode.dir/bench_e16_parallel_decode.cpp.o"
  "CMakeFiles/bench_e16_parallel_decode.dir/bench_e16_parallel_decode.cpp.o.d"
  "bench_e16_parallel_decode"
  "bench_e16_parallel_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_parallel_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
