file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_deadline_miss.dir/bench_e6_deadline_miss.cpp.o"
  "CMakeFiles/bench_e6_deadline_miss.dir/bench_e6_deadline_miss.cpp.o.d"
  "bench_e6_deadline_miss"
  "bench_e6_deadline_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_deadline_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
