# Empty compiler generated dependencies file for bench_e6_deadline_miss.
# This may be replaced when dependencies are built.
