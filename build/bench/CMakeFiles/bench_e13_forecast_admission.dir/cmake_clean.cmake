file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_forecast_admission.dir/bench_e13_forecast_admission.cpp.o"
  "CMakeFiles/bench_e13_forecast_admission.dir/bench_e13_forecast_admission.cpp.o.d"
  "bench_e13_forecast_admission"
  "bench_e13_forecast_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_forecast_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
