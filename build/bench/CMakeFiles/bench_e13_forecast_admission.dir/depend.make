# Empty dependencies file for bench_e13_forecast_admission.
# This may be replaced when dependencies are built.
