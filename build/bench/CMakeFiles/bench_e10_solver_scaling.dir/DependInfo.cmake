
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e10_solver_scaling.cpp" "bench/CMakeFiles/bench_e10_solver_scaling.dir/bench_e10_solver_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_e10_solver_scaling.dir/bench_e10_solver_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/pran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/pran_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/pran_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/fronthaul/CMakeFiles/pran_fronthaul.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/pran_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pran_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pran_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pran_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
