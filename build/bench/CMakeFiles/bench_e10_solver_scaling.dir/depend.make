# Empty dependencies file for bench_e10_solver_scaling.
# This may be replaced when dependencies are built.
