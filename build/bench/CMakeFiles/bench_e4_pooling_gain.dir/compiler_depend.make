# Empty compiler generated dependencies file for bench_e4_pooling_gain.
# This may be replaced when dependencies are built.
