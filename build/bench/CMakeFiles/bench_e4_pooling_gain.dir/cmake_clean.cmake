file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_pooling_gain.dir/bench_e4_pooling_gain.cpp.o"
  "CMakeFiles/bench_e4_pooling_gain.dir/bench_e4_pooling_gain.cpp.o.d"
  "bench_e4_pooling_gain"
  "bench_e4_pooling_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_pooling_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
