file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_coordination.dir/bench_e15_coordination.cpp.o"
  "CMakeFiles/bench_e15_coordination.dir/bench_e15_coordination.cpp.o.d"
  "bench_e15_coordination"
  "bench_e15_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
