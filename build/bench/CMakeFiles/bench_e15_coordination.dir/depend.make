# Empty dependencies file for bench_e15_coordination.
# This may be replaced when dependencies are built.
