file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_processing_cdf.dir/bench_e3_processing_cdf.cpp.o"
  "CMakeFiles/bench_e3_processing_cdf.dir/bench_e3_processing_cdf.cpp.o.d"
  "bench_e3_processing_cdf"
  "bench_e3_processing_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_processing_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
