# Empty dependencies file for bench_e3_processing_cdf.
# This may be replaced when dependencies are built.
