file(REMOVE_RECURSE
  "CMakeFiles/pran-placement.dir/pran_placement.cpp.o"
  "CMakeFiles/pran-placement.dir/pran_placement.cpp.o.d"
  "pran-placement"
  "pran-placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran-placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
