# Empty compiler generated dependencies file for pran-placement.
# This may be replaced when dependencies are built.
