file(REMOVE_RECURSE
  "CMakeFiles/pran-trace.dir/pran_trace.cpp.o"
  "CMakeFiles/pran-trace.dir/pran_trace.cpp.o.d"
  "pran-trace"
  "pran-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
