# Empty dependencies file for pran-trace.
# This may be replaced when dependencies are built.
