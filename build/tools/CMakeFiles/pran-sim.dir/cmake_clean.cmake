file(REMOVE_RECURSE
  "CMakeFiles/pran-sim.dir/pran_sim.cpp.o"
  "CMakeFiles/pran-sim.dir/pran_sim.cpp.o.d"
  "pran-sim"
  "pran-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
