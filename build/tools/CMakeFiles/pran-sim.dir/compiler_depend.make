# Empty compiler generated dependencies file for pran-sim.
# This may be replaced when dependencies are built.
