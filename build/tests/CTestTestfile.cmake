# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lte_test[1]_include.cmake")
include("/root/repo/build/tests/fronthaul_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
