file(REMOVE_RECURSE
  "CMakeFiles/lte_test.dir/lte_cost_model_test.cpp.o"
  "CMakeFiles/lte_test.dir/lte_cost_model_test.cpp.o.d"
  "CMakeFiles/lte_test.dir/lte_interference_test.cpp.o"
  "CMakeFiles/lte_test.dir/lte_interference_test.cpp.o.d"
  "CMakeFiles/lte_test.dir/lte_link_test.cpp.o"
  "CMakeFiles/lte_test.dir/lte_link_test.cpp.o.d"
  "CMakeFiles/lte_test.dir/lte_mcs_test.cpp.o"
  "CMakeFiles/lte_test.dir/lte_mcs_test.cpp.o.d"
  "CMakeFiles/lte_test.dir/lte_subframe_test.cpp.o"
  "CMakeFiles/lte_test.dir/lte_subframe_test.cpp.o.d"
  "lte_test"
  "lte_test.pdb"
  "lte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
