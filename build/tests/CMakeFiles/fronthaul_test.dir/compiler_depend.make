# Empty compiler generated dependencies file for fronthaul_test.
# This may be replaced when dependencies are built.
