file(REMOVE_RECURSE
  "CMakeFiles/fronthaul_test.dir/fronthaul_codec_test.cpp.o"
  "CMakeFiles/fronthaul_test.dir/fronthaul_codec_test.cpp.o.d"
  "CMakeFiles/fronthaul_test.dir/fronthaul_cpri_test.cpp.o"
  "CMakeFiles/fronthaul_test.dir/fronthaul_cpri_test.cpp.o.d"
  "CMakeFiles/fronthaul_test.dir/fronthaul_dsp_test.cpp.o"
  "CMakeFiles/fronthaul_test.dir/fronthaul_dsp_test.cpp.o.d"
  "CMakeFiles/fronthaul_test.dir/fronthaul_link_test.cpp.o"
  "CMakeFiles/fronthaul_test.dir/fronthaul_link_test.cpp.o.d"
  "fronthaul_test"
  "fronthaul_test.pdb"
  "fronthaul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fronthaul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
