file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core_admission_test.cpp.o"
  "CMakeFiles/core_test.dir/core_admission_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_controller_test.cpp.o"
  "CMakeFiles/core_test.dir/core_controller_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_deployment_test.cpp.o"
  "CMakeFiles/core_test.dir/core_deployment_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_energy_harq_test.cpp.o"
  "CMakeFiles/core_test.dir/core_energy_harq_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_full_stack_test.cpp.o"
  "CMakeFiles/core_test.dir/core_full_stack_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_mac_deployment_test.cpp.o"
  "CMakeFiles/core_test.dir/core_mac_deployment_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_pipeline_test.cpp.o"
  "CMakeFiles/core_test.dir/core_pipeline_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core_placement_test.cpp.o"
  "CMakeFiles/core_test.dir/core_placement_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
