
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fronthaul/codec.cpp" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/codec.cpp.o" "gcc" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/codec.cpp.o.d"
  "/root/repo/src/fronthaul/cpri.cpp" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/cpri.cpp.o" "gcc" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/cpri.cpp.o.d"
  "/root/repo/src/fronthaul/dsp.cpp" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/dsp.cpp.o" "gcc" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/dsp.cpp.o.d"
  "/root/repo/src/fronthaul/iq.cpp" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/iq.cpp.o" "gcc" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/iq.cpp.o.d"
  "/root/repo/src/fronthaul/link.cpp" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/link.cpp.o" "gcc" "src/fronthaul/CMakeFiles/pran_fronthaul.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pran_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
