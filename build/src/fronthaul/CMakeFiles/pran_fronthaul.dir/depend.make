# Empty dependencies file for pran_fronthaul.
# This may be replaced when dependencies are built.
