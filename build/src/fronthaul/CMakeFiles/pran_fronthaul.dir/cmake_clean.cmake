file(REMOVE_RECURSE
  "CMakeFiles/pran_fronthaul.dir/codec.cpp.o"
  "CMakeFiles/pran_fronthaul.dir/codec.cpp.o.d"
  "CMakeFiles/pran_fronthaul.dir/cpri.cpp.o"
  "CMakeFiles/pran_fronthaul.dir/cpri.cpp.o.d"
  "CMakeFiles/pran_fronthaul.dir/dsp.cpp.o"
  "CMakeFiles/pran_fronthaul.dir/dsp.cpp.o.d"
  "CMakeFiles/pran_fronthaul.dir/iq.cpp.o"
  "CMakeFiles/pran_fronthaul.dir/iq.cpp.o.d"
  "CMakeFiles/pran_fronthaul.dir/link.cpp.o"
  "CMakeFiles/pran_fronthaul.dir/link.cpp.o.d"
  "libpran_fronthaul.a"
  "libpran_fronthaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_fronthaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
