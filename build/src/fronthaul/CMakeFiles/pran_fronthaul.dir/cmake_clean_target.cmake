file(REMOVE_RECURSE
  "libpran_fronthaul.a"
)
