file(REMOVE_RECURSE
  "CMakeFiles/pran_coding.dir/awgn.cpp.o"
  "CMakeFiles/pran_coding.dir/awgn.cpp.o.d"
  "CMakeFiles/pran_coding.dir/bler.cpp.o"
  "CMakeFiles/pran_coding.dir/bler.cpp.o.d"
  "CMakeFiles/pran_coding.dir/convolutional.cpp.o"
  "CMakeFiles/pran_coding.dir/convolutional.cpp.o.d"
  "CMakeFiles/pran_coding.dir/crc.cpp.o"
  "CMakeFiles/pran_coding.dir/crc.cpp.o.d"
  "CMakeFiles/pran_coding.dir/rate_match.cpp.o"
  "CMakeFiles/pran_coding.dir/rate_match.cpp.o.d"
  "CMakeFiles/pran_coding.dir/turbo.cpp.o"
  "CMakeFiles/pran_coding.dir/turbo.cpp.o.d"
  "CMakeFiles/pran_coding.dir/viterbi.cpp.o"
  "CMakeFiles/pran_coding.dir/viterbi.cpp.o.d"
  "libpran_coding.a"
  "libpran_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
