# Empty compiler generated dependencies file for pran_coding.
# This may be replaced when dependencies are built.
