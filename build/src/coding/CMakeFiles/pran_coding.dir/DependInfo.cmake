
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/awgn.cpp" "src/coding/CMakeFiles/pran_coding.dir/awgn.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/awgn.cpp.o.d"
  "/root/repo/src/coding/bler.cpp" "src/coding/CMakeFiles/pran_coding.dir/bler.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/bler.cpp.o.d"
  "/root/repo/src/coding/convolutional.cpp" "src/coding/CMakeFiles/pran_coding.dir/convolutional.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/convolutional.cpp.o.d"
  "/root/repo/src/coding/crc.cpp" "src/coding/CMakeFiles/pran_coding.dir/crc.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/crc.cpp.o.d"
  "/root/repo/src/coding/rate_match.cpp" "src/coding/CMakeFiles/pran_coding.dir/rate_match.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/rate_match.cpp.o.d"
  "/root/repo/src/coding/turbo.cpp" "src/coding/CMakeFiles/pran_coding.dir/turbo.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/turbo.cpp.o.d"
  "/root/repo/src/coding/viterbi.cpp" "src/coding/CMakeFiles/pran_coding.dir/viterbi.cpp.o" "gcc" "src/coding/CMakeFiles/pran_coding.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pran_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
