file(REMOVE_RECURSE
  "libpran_coding.a"
)
