file(REMOVE_RECURSE
  "libpran_common.a"
)
