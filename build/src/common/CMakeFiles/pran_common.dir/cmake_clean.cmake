file(REMOVE_RECURSE
  "CMakeFiles/pran_common.dir/csv.cpp.o"
  "CMakeFiles/pran_common.dir/csv.cpp.o.d"
  "CMakeFiles/pran_common.dir/flags.cpp.o"
  "CMakeFiles/pran_common.dir/flags.cpp.o.d"
  "CMakeFiles/pran_common.dir/histogram.cpp.o"
  "CMakeFiles/pran_common.dir/histogram.cpp.o.d"
  "CMakeFiles/pran_common.dir/rng.cpp.o"
  "CMakeFiles/pran_common.dir/rng.cpp.o.d"
  "CMakeFiles/pran_common.dir/stats.cpp.o"
  "CMakeFiles/pran_common.dir/stats.cpp.o.d"
  "CMakeFiles/pran_common.dir/strings.cpp.o"
  "CMakeFiles/pran_common.dir/strings.cpp.o.d"
  "CMakeFiles/pran_common.dir/table.cpp.o"
  "CMakeFiles/pran_common.dir/table.cpp.o.d"
  "libpran_common.a"
  "libpran_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
