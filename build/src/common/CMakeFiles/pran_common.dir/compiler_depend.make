# Empty compiler generated dependencies file for pran_common.
# This may be replaced when dependencies are built.
