file(REMOVE_RECURSE
  "libpran_sim.a"
)
