# Empty compiler generated dependencies file for pran_sim.
# This may be replaced when dependencies are built.
