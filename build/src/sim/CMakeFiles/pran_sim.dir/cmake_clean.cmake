file(REMOVE_RECURSE
  "CMakeFiles/pran_sim.dir/engine.cpp.o"
  "CMakeFiles/pran_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pran_sim.dir/trace.cpp.o"
  "CMakeFiles/pran_sim.dir/trace.cpp.o.d"
  "libpran_sim.a"
  "libpran_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
