# Empty dependencies file for pran_lp.
# This may be replaced when dependencies are built.
