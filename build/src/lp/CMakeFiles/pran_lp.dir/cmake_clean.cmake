file(REMOVE_RECURSE
  "CMakeFiles/pran_lp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/pran_lp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/pran_lp.dir/lp_format.cpp.o"
  "CMakeFiles/pran_lp.dir/lp_format.cpp.o.d"
  "CMakeFiles/pran_lp.dir/model.cpp.o"
  "CMakeFiles/pran_lp.dir/model.cpp.o.d"
  "CMakeFiles/pran_lp.dir/presolve.cpp.o"
  "CMakeFiles/pran_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/pran_lp.dir/simplex.cpp.o"
  "CMakeFiles/pran_lp.dir/simplex.cpp.o.d"
  "libpran_lp.a"
  "libpran_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
