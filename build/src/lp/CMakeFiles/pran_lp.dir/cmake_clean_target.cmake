file(REMOVE_RECURSE
  "libpran_lp.a"
)
