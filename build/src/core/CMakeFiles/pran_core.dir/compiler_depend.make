# Empty compiler generated dependencies file for pran_core.
# This may be replaced when dependencies are built.
