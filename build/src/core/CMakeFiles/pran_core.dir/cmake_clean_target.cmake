file(REMOVE_RECURSE
  "libpran_core.a"
)
