file(REMOVE_RECURSE
  "CMakeFiles/pran_core.dir/controller.cpp.o"
  "CMakeFiles/pran_core.dir/controller.cpp.o.d"
  "CMakeFiles/pran_core.dir/deployment.cpp.o"
  "CMakeFiles/pran_core.dir/deployment.cpp.o.d"
  "CMakeFiles/pran_core.dir/pipeline.cpp.o"
  "CMakeFiles/pran_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pran_core.dir/placement.cpp.o"
  "CMakeFiles/pran_core.dir/placement.cpp.o.d"
  "CMakeFiles/pran_core.dir/pooling.cpp.o"
  "CMakeFiles/pran_core.dir/pooling.cpp.o.d"
  "libpran_core.a"
  "libpran_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
