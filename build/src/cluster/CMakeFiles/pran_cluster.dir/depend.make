# Empty dependencies file for pran_cluster.
# This may be replaced when dependencies are built.
