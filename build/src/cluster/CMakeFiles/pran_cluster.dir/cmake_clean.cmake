file(REMOVE_RECURSE
  "CMakeFiles/pran_cluster.dir/executor.cpp.o"
  "CMakeFiles/pran_cluster.dir/executor.cpp.o.d"
  "libpran_cluster.a"
  "libpran_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
