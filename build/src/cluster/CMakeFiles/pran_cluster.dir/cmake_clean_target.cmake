file(REMOVE_RECURSE
  "libpran_cluster.a"
)
