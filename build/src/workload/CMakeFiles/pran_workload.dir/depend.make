# Empty dependencies file for pran_workload.
# This may be replaced when dependencies are built.
