file(REMOVE_RECURSE
  "CMakeFiles/pran_workload.dir/diurnal.cpp.o"
  "CMakeFiles/pran_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/pran_workload.dir/trace.cpp.o"
  "CMakeFiles/pran_workload.dir/trace.cpp.o.d"
  "CMakeFiles/pran_workload.dir/traffic.cpp.o"
  "CMakeFiles/pran_workload.dir/traffic.cpp.o.d"
  "libpran_workload.a"
  "libpran_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
