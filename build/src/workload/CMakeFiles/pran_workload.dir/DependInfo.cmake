
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/pran_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/pran_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/pran_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/pran_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/pran_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/pran_workload.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/pran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pran_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
