file(REMOVE_RECURSE
  "libpran_workload.a"
)
