file(REMOVE_RECURSE
  "CMakeFiles/pran_mac.dir/cell_mac.cpp.o"
  "CMakeFiles/pran_mac.dir/cell_mac.cpp.o.d"
  "CMakeFiles/pran_mac.dir/scheduler.cpp.o"
  "CMakeFiles/pran_mac.dir/scheduler.cpp.o.d"
  "CMakeFiles/pran_mac.dir/ue.cpp.o"
  "CMakeFiles/pran_mac.dir/ue.cpp.o.d"
  "libpran_mac.a"
  "libpran_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
