# Empty compiler generated dependencies file for pran_mac.
# This may be replaced when dependencies are built.
