file(REMOVE_RECURSE
  "libpran_mac.a"
)
