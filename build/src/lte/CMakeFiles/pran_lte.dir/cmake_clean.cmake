file(REMOVE_RECURSE
  "CMakeFiles/pran_lte.dir/cost_model.cpp.o"
  "CMakeFiles/pran_lte.dir/cost_model.cpp.o.d"
  "CMakeFiles/pran_lte.dir/interference.cpp.o"
  "CMakeFiles/pran_lte.dir/interference.cpp.o.d"
  "CMakeFiles/pran_lte.dir/link.cpp.o"
  "CMakeFiles/pran_lte.dir/link.cpp.o.d"
  "CMakeFiles/pran_lte.dir/mcs.cpp.o"
  "CMakeFiles/pran_lte.dir/mcs.cpp.o.d"
  "CMakeFiles/pran_lte.dir/subframe.cpp.o"
  "CMakeFiles/pran_lte.dir/subframe.cpp.o.d"
  "libpran_lte.a"
  "libpran_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pran_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
