
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/cost_model.cpp" "src/lte/CMakeFiles/pran_lte.dir/cost_model.cpp.o" "gcc" "src/lte/CMakeFiles/pran_lte.dir/cost_model.cpp.o.d"
  "/root/repo/src/lte/interference.cpp" "src/lte/CMakeFiles/pran_lte.dir/interference.cpp.o" "gcc" "src/lte/CMakeFiles/pran_lte.dir/interference.cpp.o.d"
  "/root/repo/src/lte/link.cpp" "src/lte/CMakeFiles/pran_lte.dir/link.cpp.o" "gcc" "src/lte/CMakeFiles/pran_lte.dir/link.cpp.o.d"
  "/root/repo/src/lte/mcs.cpp" "src/lte/CMakeFiles/pran_lte.dir/mcs.cpp.o" "gcc" "src/lte/CMakeFiles/pran_lte.dir/mcs.cpp.o.d"
  "/root/repo/src/lte/subframe.cpp" "src/lte/CMakeFiles/pran_lte.dir/subframe.cpp.o" "gcc" "src/lte/CMakeFiles/pran_lte.dir/subframe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pran_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
