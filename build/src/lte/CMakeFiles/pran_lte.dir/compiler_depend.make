# Empty compiler generated dependencies file for pran_lte.
# This may be replaced when dependencies are built.
