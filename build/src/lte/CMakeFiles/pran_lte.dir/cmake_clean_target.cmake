file(REMOVE_RECURSE
  "libpran_lte.a"
)
