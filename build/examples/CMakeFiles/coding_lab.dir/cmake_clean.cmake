file(REMOVE_RECURSE
  "CMakeFiles/coding_lab.dir/coding_lab.cpp.o"
  "CMakeFiles/coding_lab.dir/coding_lab.cpp.o.d"
  "coding_lab"
  "coding_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
