# Empty compiler generated dependencies file for coding_lab.
# This may be replaced when dependencies are built.
