# Empty dependencies file for fronthaul_explorer.
# This may be replaced when dependencies are built.
