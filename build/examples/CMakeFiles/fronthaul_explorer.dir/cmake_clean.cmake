file(REMOVE_RECURSE
  "CMakeFiles/fronthaul_explorer.dir/fronthaul_explorer.cpp.o"
  "CMakeFiles/fronthaul_explorer.dir/fronthaul_explorer.cpp.o.d"
  "fronthaul_explorer"
  "fronthaul_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fronthaul_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
