# Empty dependencies file for programmable_pipeline.
# This may be replaced when dependencies are built.
