file(REMOVE_RECURSE
  "CMakeFiles/programmable_pipeline.dir/programmable_pipeline.cpp.o"
  "CMakeFiles/programmable_pipeline.dir/programmable_pipeline.cpp.o.d"
  "programmable_pipeline"
  "programmable_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programmable_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
