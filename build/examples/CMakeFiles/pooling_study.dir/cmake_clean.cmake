file(REMOVE_RECURSE
  "CMakeFiles/pooling_study.dir/pooling_study.cpp.o"
  "CMakeFiles/pooling_study.dir/pooling_study.cpp.o.d"
  "pooling_study"
  "pooling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pooling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
