# Empty dependencies file for pooling_study.
# This may be replaced when dependencies are built.
