// Tests for the fault-injection subsystem: injector delivery semantics,
// health-monitor detection, controller flap quarantine, survivable
// placement, and the deployment-level fault KPIs.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "common/check.hpp"
#include "core/deployment.hpp"
#include "faults/health.hpp"
#include "faults/injector.hpp"

namespace pran {
namespace {

using core::Deployment;
using core::DeploymentConfig;

cluster::ServerSpec test_spec(int cores = 2) {
  cluster::ServerSpec spec;
  spec.name = "s";
  spec.cores = cores;
  spec.gops_per_core = 100.0;
  return spec;
}

lte::SubframeJob job_with(double gops, sim::Time release, sim::Time deadline,
                          int cell = 0, std::int64_t tti = 0) {
  lte::SubframeJob job;
  job.cell_id = cell;
  job.tti = tti;
  job.extra_gops = gops;
  job.release = release;
  job.deadline = deadline;
  return job;
}

struct Rig {
  sim::Engine engine;
  sim::Trace trace;
  cluster::Executor executor;
  faults::FaultInjector injector;

  explicit Rig(int servers, std::uint64_t seed = 7)
      : executor(engine,
                 std::vector<cluster::ServerSpec>(
                     static_cast<std::size_t>(servers), test_spec()),
                 cluster::SchedPolicy::kEdf),
        injector(engine, executor, &trace, seed) {}
};

TEST(FaultInjector, ScriptedCrashRoundTrip) {
  Rig rig(2);
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCrash;
  ev.at = 10 * sim::kMillisecond;
  ev.duration = 20 * sim::kMillisecond;
  ev.servers = {1};
  rig.injector.schedule(ev);

  rig.engine.run_until(15 * sim::kMillisecond);
  EXPECT_TRUE(rig.injector.is_down(1));
  EXPECT_TRUE(rig.executor.is_failed(1));
  EXPECT_FALSE(rig.injector.is_down(0));

  rig.engine.run_until(40 * sim::kMillisecond);
  EXPECT_FALSE(rig.injector.is_down(1));
  EXPECT_FALSE(rig.executor.is_failed(1));
  ASSERT_EQ(rig.injector.log().size(), 1u);
  EXPECT_EQ(rig.injector.log()[0].server_id, 1);
  EXPECT_EQ(rig.injector.log()[0].at, 10 * sim::kMillisecond);
  EXPECT_EQ(rig.injector.log()[0].recovered_at, 30 * sim::kMillisecond);
  EXPECT_EQ(rig.injector.faults_delivered(), 1);
  EXPECT_EQ(rig.injector.crash_faults(), 1);
}

TEST(FaultInjector, DoubleCrashAndDoubleRestoreAreTracedNoOps) {
  Rig rig(2);
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCrash;
  ev.at = sim::kMillisecond;
  ev.servers = {0};
  rig.injector.schedule(ev);
  ev.at = 2 * sim::kMillisecond;  // second crash on an already-down server
  rig.injector.schedule(ev);
  rig.injector.schedule_restore(3 * sim::kMillisecond, 0);
  rig.injector.schedule_restore(4 * sim::kMillisecond, 0);  // already healthy
  rig.engine.run_until(5 * sim::kMillisecond);

  EXPECT_EQ(rig.injector.faults_delivered(), 1);
  EXPECT_FALSE(rig.executor.is_failed(0));
  // delivered fault + ignored fault + restore + ignored restore
  EXPECT_EQ(rig.trace.count("fault"), 4u);
}

TEST(FaultInjector, CallbackFiresBeforeExecutorStateChanges) {
  Rig rig(1);
  bool was_failed_at_callback = true;
  rig.injector.set_fault_callback([&](int server, faults::FaultKind) {
    was_failed_at_callback = rig.executor.is_failed(server);
  });
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCrash;
  ev.at = sim::kMillisecond;
  ev.servers = {0};
  rig.injector.schedule(ev);
  rig.engine.run_until(2 * sim::kMillisecond);
  EXPECT_FALSE(was_failed_at_callback);
  EXPECT_TRUE(rig.executor.is_failed(0));
}

TEST(FaultInjector, DegradeSlowsNewJobsOnly) {
  Rig rig(1);
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kDegrade;
  ev.at = 10 * sim::kMillisecond;
  ev.duration = 40 * sim::kMillisecond;
  ev.degrade_factor = 0.5;
  ev.servers = {0};
  rig.injector.schedule(ev);

  // 0.1 Gops on a 100 Gops/s core = 1 ms nominal, 2 ms at half speed.
  rig.executor.submit(0, job_with(0.1, 0, 5 * sim::kMillisecond, 0, 0));
  rig.executor.submit(0, job_with(0.1, 20 * sim::kMillisecond,
                                  40 * sim::kMillisecond, 0, 1));
  rig.executor.submit(0, job_with(0.1, 60 * sim::kMillisecond,
                                  90 * sim::kMillisecond, 0, 2));
  rig.engine.run_until(100 * sim::kMillisecond);

  const auto& outs = rig.executor.outcomes();
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0].finish - outs[0].start, sim::kMillisecond);
  EXPECT_EQ(outs[1].finish - outs[1].start, 2 * sim::kMillisecond);
  EXPECT_EQ(outs[2].finish - outs[2].start, sim::kMillisecond);
  EXPECT_EQ(rig.injector.degrade_faults(), 1);
}

TEST(FaultInjector, CrashSupersedesDegrade) {
  Rig rig(1);
  faults::FaultEvent degrade;
  degrade.kind = faults::FaultKind::kDegrade;
  degrade.at = sim::kMillisecond;
  degrade.degrade_factor = 0.5;
  degrade.servers = {0};
  rig.injector.schedule(degrade);
  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kCrash;
  crash.at = 2 * sim::kMillisecond;
  crash.servers = {0};
  rig.injector.schedule(crash);
  rig.injector.schedule_restore(3 * sim::kMillisecond, 0);
  rig.engine.run_until(4 * sim::kMillisecond);

  // The degrade record was closed by the crash; the restore ends the
  // crash and returns the server at full speed.
  EXPECT_FALSE(rig.executor.is_failed(0));
  EXPECT_FALSE(rig.executor.is_degraded(0));
  ASSERT_EQ(rig.injector.log().size(), 2u);
  EXPECT_GE(rig.injector.log()[0].recovered_at, 0);
  EXPECT_GE(rig.injector.log()[1].recovered_at, 0);
}

TEST(FaultInjector, CorrelatedEventTakesDownTheGroup) {
  Rig rig(4);
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCorrelated;
  ev.at = sim::kMillisecond;
  ev.servers = {0, 1};
  rig.injector.schedule(ev);
  rig.engine.run_until(2 * sim::kMillisecond);
  EXPECT_TRUE(rig.injector.is_down(0));
  EXPECT_TRUE(rig.injector.is_down(1));
  EXPECT_FALSE(rig.injector.is_down(2));
  EXPECT_EQ(rig.injector.correlated_faults(), 2);
}

TEST(FaultInjector, StochasticTimelineIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rig rig(4, seed);
    faults::StochasticFaultConfig cfg;
    cfg.mtbf_seconds = 0.2;
    cfg.mttr_seconds = 0.05;
    cfg.degrade_probability = 0.3;
    cfg.group_size = 2;
    cfg.correlated_probability = 0.2;
    rig.injector.arm_stochastic(cfg);
    rig.engine.run_until(5 * sim::kSecond);
    std::vector<std::tuple<int, int, sim::Time, sim::Time>> log;
    for (const auto& r : rig.injector.log())
      log.emplace_back(static_cast<int>(r.kind), r.server_id, r.at,
                       r.recovered_at);
    return log;
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(HealthMonitor, DetectionLatencyIsBounded) {
  Rig rig(2);
  faults::HealthMonitorConfig mc;
  mc.heartbeat_period = 10 * sim::kMillisecond;
  mc.miss_threshold = 3;
  faults::HealthMonitor monitor(rig.engine, rig.executor, mc, &rig.trace);
  sim::Time declared_down = -1, declared_up = -1;
  monitor.set_down_callback([&](int, sim::Time at) { declared_down = at; });
  monitor.set_up_callback([&](int, sim::Time at) { declared_up = at; });

  const sim::Time fault_at = 25 * sim::kMillisecond;
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCrash;
  ev.at = fault_at;
  ev.duration = 100 * sim::kMillisecond;
  ev.servers = {1};
  rig.injector.schedule(ev);
  rig.engine.run_until(300 * sim::kMillisecond);

  ASSERT_GE(declared_down, 0);
  const sim::Time latency = declared_down - fault_at;
  EXPECT_GT(latency, 0);
  EXPECT_LE(latency, (mc.miss_threshold + 1) * mc.heartbeat_period);
  EXPECT_EQ(monitor.detections(), 1);
  ASSERT_GE(declared_up, 0);
  EXPECT_GE(declared_up, 125 * sim::kMillisecond);
  EXPECT_EQ(monitor.recoveries_observed(), 1);
  EXPECT_FALSE(monitor.believes_down(1));
}

TEST(HealthMonitor, FlapShorterThanThresholdGoesUnnoticed) {
  Rig rig(1);
  faults::HealthMonitorConfig mc;
  mc.heartbeat_period = 10 * sim::kMillisecond;
  mc.miss_threshold = 3;
  faults::HealthMonitor monitor(rig.engine, rig.executor, mc, nullptr);
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kCrash;
  ev.at = 11 * sim::kMillisecond;
  ev.duration = 15 * sim::kMillisecond;  // back up after <2 beats
  ev.servers = {0};
  rig.injector.schedule(ev);
  rig.engine.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(monitor.detections(), 0);
}

// --- Controller flap quarantine ------------------------------------------

cluster::ServerSpec budget_server(double gops_per_tti_budget) {
  return cluster::ServerSpec{"s", 1, gops_per_tti_budget * 1e3};
}

std::vector<core::CellDemand> demands(std::initializer_list<double> values) {
  std::vector<core::CellDemand> out;
  int id = 0;
  for (double v : values) out.push_back({id++, v, v * 2.0});
  return out;
}

core::ControllerConfig quarantine_config() {
  core::ControllerConfig config;
  config.headroom = 1.0;
  config.demand_safety = 1.0;
  config.quarantine = true;
  config.flap_threshold = 3;
  config.flap_window = 10 * sim::kSecond;
  config.quarantine_base = 2 * sim::kSecond;
  config.quarantine_multiplier = 2.0;
  return config;
}

TEST(Controller, FlapQuarantineWithExponentialBackoff) {
  core::Controller ctrl(quarantine_config(),
                        std::make_unique<core::FirstFitPlacer>(),
                        {budget_server(1.0), budget_server(1.0)},
                        demands({0.4, 0.4}));
  ASSERT_TRUE(ctrl.replan().feasible);

  // Two fail/recover cycles inside the window: both recoveries accepted.
  ctrl.handle_failure(1, 1 * sim::kSecond);
  EXPECT_TRUE(ctrl.handle_recovery(1, 1 * sim::kSecond + 100).accepted);
  ctrl.handle_failure(1, 2 * sim::kSecond);
  EXPECT_TRUE(ctrl.handle_recovery(1, 2 * sim::kSecond + 100).accepted);

  // Third failure within the 10 s window: recovery refused, backoff 2 s.
  ctrl.handle_failure(1, 3 * sim::kSecond);
  const auto d3 = ctrl.handle_recovery(1, 3 * sim::kSecond);
  EXPECT_FALSE(d3.accepted);
  EXPECT_EQ(d3.quarantined_until, 5 * sim::kSecond);
  EXPECT_TRUE(ctrl.server_quarantined(1));
  EXPECT_FALSE(ctrl.server_available(1));
  EXPECT_EQ(ctrl.quarantine_events(), 1);

  // Not released before the backoff expires; released after.
  EXPECT_EQ(ctrl.release_quarantines(4 * sim::kSecond), 0);
  EXPECT_EQ(ctrl.release_quarantines(5 * sim::kSecond), 1);
  EXPECT_TRUE(ctrl.server_available(1));
  EXPECT_FALSE(ctrl.server_quarantined(1));

  // Still flapping: next refusal doubles the backoff to 4 s.
  ctrl.handle_failure(1, 6 * sim::kSecond);
  const auto d4 = ctrl.handle_recovery(1, 6 * sim::kSecond);
  EXPECT_FALSE(d4.accepted);
  EXPECT_EQ(d4.quarantined_until, 10 * sim::kSecond);
  EXPECT_EQ(ctrl.quarantine_events(), 2);
}

TEST(Controller, AcceptedRecoveryOutsideWindowResetsBackoff) {
  core::Controller ctrl(quarantine_config(),
                        std::make_unique<core::FirstFitPlacer>(),
                        {budget_server(1.0), budget_server(1.0)},
                        demands({0.4}));
  ASSERT_TRUE(ctrl.replan().feasible);
  for (int round = 0; round < 3; ++round) {
    // Failures 100 s apart: the flap window never accumulates 3 entries.
    const sim::Time t = (1 + 100 * round) * sim::kSecond;
    ctrl.handle_failure(1, t);
    EXPECT_TRUE(ctrl.handle_recovery(1, t + sim::kSecond).accepted);
  }
  EXPECT_EQ(ctrl.quarantine_events(), 0);
}

TEST(Controller, FailureWhileQuarantinedIsHandled) {
  core::Controller ctrl(quarantine_config(),
                        std::make_unique<core::FirstFitPlacer>(),
                        {budget_server(1.0), budget_server(1.0)},
                        demands({0.4}));
  ASSERT_TRUE(ctrl.replan().feasible);
  for (sim::Time t = sim::kSecond; t <= 3 * sim::kSecond; t += sim::kSecond)
    ctrl.handle_failure(1, t), ctrl.handle_recovery(1, t);
  ASSERT_TRUE(ctrl.server_quarantined(1));

  // The quarantined server dies again: no cells to rescue, no throw.
  EXPECT_EQ(ctrl.handle_failure(1, 4 * sim::kSecond), 0);
  EXPECT_FALSE(ctrl.server_quarantined(1));
  EXPECT_FALSE(ctrl.server_available(1));
  // Its eventual recovery goes through the flap logic again.
  EXPECT_FALSE(ctrl.handle_recovery(1, 4 * sim::kSecond + 1).accepted);
}

// --- Survivable placement -------------------------------------------------

TEST(Placement, SurvivableFirstFitSurvivesAnySingleFailure) {
  core::PlacementProblem problem;
  problem.headroom = 1.0;
  problem.cells = demands({0.5, 0.5, 0.5, 0.5});
  for (int s = 0; s < 4; ++s) problem.servers.push_back(budget_server(1.0));

  core::FirstFitPlacer placer;
  const auto plain = placer.place(problem);
  ASSERT_TRUE(plain.feasible);
  // Plain FFD packs two full servers: losing either strands its cells.
  EXPECT_EQ(plain.active_servers(), 2);
  EXPECT_FALSE(core::placement_survives_any_single_failure(
      problem, plain.server_of_cell));

  problem.survivable = true;
  const auto safe = placer.place(problem);
  ASSERT_TRUE(safe.feasible);
  EXPECT_TRUE(core::placement_survives_any_single_failure(
      problem, safe.server_of_cell));
  EXPECT_GT(safe.active_servers(), plain.active_servers());
}

TEST(Placement, SurvivableMilpReservesSpareCapacity) {
  core::PlacementProblem problem;
  problem.headroom = 1.0;
  problem.cells = demands({0.3, 0.3, 0.3, 0.3, 0.3, 0.3});
  for (int s = 0; s < 4; ++s) problem.servers.push_back(budget_server(1.0));

  core::MilpPlacer placer;
  const auto plain = placer.place(problem);
  ASSERT_TRUE(plain.feasible);
  EXPECT_EQ(plain.active_servers(), 2);

  problem.survivable = true;
  const auto safe = placer.place(problem);
  ASSERT_TRUE(safe.feasible);
  EXPECT_GE(safe.active_servers(), 3);
  EXPECT_TRUE(core::placement_survives_any_single_failure(
      problem, safe.server_of_cell));
}

TEST(Placement, SurvivableNeedsAtLeastTwoServers) {
  core::PlacementProblem problem;
  problem.headroom = 1.0;
  problem.survivable = true;
  problem.cells = demands({0.3});
  problem.servers.push_back(budget_server(1.0));
  core::MilpPlacer milp;
  EXPECT_FALSE(milp.place(problem).feasible);
  core::FirstFitPlacer ffd;
  EXPECT_FALSE(ffd.place(problem).feasible);
}

// --- Deployment integration ----------------------------------------------

DeploymentConfig small_config() {
  DeploymentConfig config;
  config.num_cells = 4;
  config.num_servers = 3;
  config.seed = 5;
  config.start_hour = 12.0;
  config.epoch = 200 * sim::kMillisecond;
  return config;
}

TEST(DeploymentFaults, OracleModeSeesNoBlindWindow) {
  auto config = small_config();
  config.num_servers = 4;
  Deployment d(config);
  d.run_for(200 * sim::kMillisecond);
  const int victim = d.controller().server_of(0);
  d.fail_server_at(d.now() + 10 * sim::kMillisecond, victim);
  d.run_for(300 * sim::kMillisecond);
  const auto kpis = d.kpis();
  EXPECT_EQ(kpis.blind_window_drops, 0u);
  EXPECT_EQ(kpis.faults_injected, 1);
  EXPECT_EQ(kpis.fault_detections, 1);
  EXPECT_DOUBLE_EQ(kpis.mean_detection_latency_ms, 0.0);
  EXPECT_EQ(kpis.failover_outage_cells, 0);
}

TEST(DeploymentFaults, DelayedDetectionCostsBlindWindowDrops) {
  auto config = small_config();
  config.num_servers = 4;
  config.heartbeat_period = 20 * sim::kMillisecond;
  config.heartbeat_miss_threshold = 3;
  Deployment d(config);
  d.run_for(200 * sim::kMillisecond);
  const int victim = d.controller().server_of(0);
  ASSERT_GE(victim, 0);
  d.fail_server_at(d.now() + 10 * sim::kMillisecond, victim);
  d.run_for(500 * sim::kMillisecond);
  const auto kpis = d.kpis();
  // Subframes kept flowing to the corpse until the monitor declared it.
  EXPECT_GT(kpis.blind_window_drops, 0u);
  EXPECT_EQ(kpis.fault_detections, 1);
  EXPECT_GT(kpis.mean_detection_latency_ms, 0.0);
  EXPECT_LE(kpis.mean_detection_latency_ms, 80.0);
  // After detection the cells live elsewhere.
  EXPECT_NE(d.controller().server_of(0), victim);
}

TEST(DeploymentFaults, ScriptedFaultApiValidatesAtCallTime) {
  Deployment d(small_config());
  d.run_for(50 * sim::kMillisecond);
  EXPECT_THROW(d.fail_server_at(d.now(), 99), pran::ContractViolation);
  EXPECT_THROW(d.fail_server_at(d.now(), -1), pran::ContractViolation);
  EXPECT_THROW(d.fail_server_at(d.now() - sim::kMillisecond, 0),
               pran::ContractViolation);
  EXPECT_THROW(d.restore_server_at(d.now(), 99), pran::ContractViolation);
  EXPECT_THROW(d.restore_server_at(d.now() - sim::kMillisecond, 0),
               pran::ContractViolation);

  // Double-fail and restore-of-healthy are traced no-ops, not crashes.
  const int victim = d.controller().server_of(0);
  d.fail_server_at(d.now() + sim::kMillisecond, victim);
  d.fail_server_at(d.now() + 2 * sim::kMillisecond, victim);
  d.restore_server_at(d.now() + 3 * sim::kMillisecond, victim);
  d.restore_server_at(d.now() + 4 * sim::kMillisecond, victim);
  d.run_for(10 * sim::kMillisecond);
  EXPECT_EQ(d.kpis().faults_injected, 1);
  EXPECT_FALSE(d.executor().is_failed(victim));
}

TEST(DeploymentFaults, DroppedJobsSettleTheirHarqDebt) {
  // Kill every server: the drops cannot be resubmitted anywhere, so with
  // HARQ modelling on they must surface as retx/lost transport blocks
  // instead of silently vanishing (the old completion-callback bypass).
  auto config = small_config();
  config.num_servers = 2;
  config.harq_retransmissions = true;
  Deployment d(config);
  d.run_for(200 * sim::kMillisecond);
  d.fail_server_at(d.now() + sim::kMillisecond, 0);
  d.fail_server_at(d.now() + sim::kMillisecond, 1);
  d.run_for(200 * sim::kMillisecond);
  const auto kpis = d.kpis();
  EXPECT_GT(kpis.dropped, 0u);
  EXPECT_GT(kpis.lost_transport_blocks, 0u);
}

TEST(DeploymentFaults, DropResubmissionPreservesSubframes) {
  // Oracle failover with a live target: every in-flight drop whose
  // deadline has not passed is resubmitted and completes exactly once.
  auto config = small_config();
  config.num_servers = 4;
  config.harq_retransmissions = true;
  Deployment d(config);
  d.run_for(200 * sim::kMillisecond);
  const int victim = d.controller().server_of(0);
  d.fail_server_at(d.now() + 10 * sim::kMillisecond, victim);
  d.run_for(300 * sim::kMillisecond);

  std::set<std::tuple<int, std::int64_t, int>> completed;
  std::uint64_t dropped = 0, duplicate = 0, rescued = 0;
  for (const auto& o : d.executor().outcomes()) {
    if (o.dropped) {
      ++dropped;
      continue;
    }
    const auto key =
        std::make_tuple(o.job.cell_id, o.job.tti, o.job.harq_retx);
    if (!completed.insert(key).second) ++duplicate;
  }
  for (const auto& o : d.executor().outcomes())
    if (o.dropped &&
        completed.count(
            std::make_tuple(o.job.cell_id, o.job.tti, o.job.harq_retx)))
      ++rescued;
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(duplicate, 0u);  // each (cell, tti, retx) runs at most once
  EXPECT_EQ(rescued, dropped);  // all in-flight drops were re-dispatched
}

TEST(DeploymentFaults, ExpiredDropsAreNotResubmitted) {
  // Degrade the victim so hard that queued jobs outlive their deadlines,
  // then crash it: expired drops must go to the HARQ path, not back into
  // the cluster.
  auto config = small_config();
  config.num_servers = 4;
  config.harq_retransmissions = true;
  Deployment d(config);
  d.run_for(100 * sim::kMillisecond);
  const int victim = d.controller().server_of(0);
  faults::FaultEvent degrade;
  degrade.kind = faults::FaultKind::kDegrade;
  degrade.at = d.now() + sim::kMillisecond;
  degrade.degrade_factor = 0.02;  // 50x slowdown: the queue backs up
  degrade.servers = {victim};
  d.injector().schedule(degrade);
  d.fail_server_at(d.now() + 60 * sim::kMillisecond, victim);
  d.run_for(400 * sim::kMillisecond);

  const auto kpis = d.kpis();
  EXPECT_GT(kpis.dropped, 0u);
  // The expired transport blocks owe retransmissions (or are lost).
  EXPECT_GT(kpis.harq_retransmissions + kpis.lost_transport_blocks, 0u);
  std::set<std::tuple<int, std::int64_t, int>> completed;
  for (const auto& o : d.executor().outcomes()) {
    if (o.dropped) continue;
    EXPECT_TRUE(
        completed
            .insert(std::make_tuple(o.job.cell_id, o.job.tti, o.job.harq_retx))
            .second);
  }
}

TEST(DeploymentFaults, StochasticFaultsAreDeterministicAtDeploymentLevel) {
  auto run = [] {
    auto config = small_config();
    config.num_servers = 4;
    config.stochastic_faults.mtbf_seconds = 0.3;
    config.stochastic_faults.mttr_seconds = 0.05;
    config.heartbeat_period = 10 * sim::kMillisecond;
    Deployment d(config);
    d.run_for(2 * sim::kSecond);
    return d.kpis();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.faults_injected, 0);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.subframes_processed, b.subframes_processed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.blind_window_drops, b.blind_window_drops);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.mean_detection_latency_ms, b.mean_detection_latency_ms);
}

TEST(DeploymentFaults, SurvivablePlacementEliminatesSingleFailureOutage) {
  auto config = small_config();
  config.num_servers = 4;
  config.controller.survivable = true;
  for (int victim = 0; victim < config.num_servers; ++victim) {
    Deployment d(config);
    d.run_for(200 * sim::kMillisecond);
    d.fail_server_at(d.now() + 10 * sim::kMillisecond, victim);
    d.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(d.kpis().failover_outage_cells, 0) << "victim " << victim;
  }
}

TEST(DeploymentFaults, QuarantineSuppressesFlapChurn) {
  auto flapping = [](bool quarantine) {
    auto config = small_config();
    config.num_servers = 3;
    // Non-sticky FFD re-packs from scratch every epoch, so availability
    // flaps translate directly into migration churn.
    config.placer = DeploymentConfig::PlacerKind::kFirstFitNoSticky;
    config.controller.quarantine = quarantine;
    config.controller.flap_threshold = 2;
    config.controller.flap_window = 5 * sim::kSecond;
    config.controller.quarantine_base = sim::kSecond;
    Deployment d(config);
    // Six fail/restore cycles on the server hosting cell 0.
    d.run_for(100 * sim::kMillisecond);
    const int victim = d.controller().server_of(0);
    for (int i = 0; i < 6; ++i) {
      const sim::Time base = d.now() + 50 * sim::kMillisecond;
      d.fail_server_at(base + i * 300 * sim::kMillisecond, victim);
      d.restore_server_at(base + i * 300 * sim::kMillisecond +
                              100 * sim::kMillisecond,
                          victim);
    }
    d.run_for(3 * sim::kSecond);
    return d.kpis();
  };
  const auto churny = flapping(false);
  const auto calm = flapping(true);
  EXPECT_EQ(churny.quarantine_events, 0);
  EXPECT_GT(calm.quarantine_events, 0);
  EXPECT_LT(calm.migrations, churny.migrations);
}

}  // namespace
}  // namespace pran
