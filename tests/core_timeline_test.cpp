// Integration tests for the deployment KPI timeline: a small Deployment
// with config.timeline enabled must sample windows on the sim-time
// cadence, carry the per-cell labelled series, export SLO gauges into the
// registry, stream JSONL, and dump a parseable flight-recorder post-mortem
// on demand.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "core/deployment.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeseries.hpp"

namespace pran::core {
namespace {

DeploymentConfig timeline_config() {
  DeploymentConfig config;
  config.num_cells = 4;
  config.num_servers = 3;
  config.seed = 5;
  config.start_hour = 12.0;
  config.epoch = 200 * sim::kMillisecond;
  config.timeline.enabled = true;
  config.timeline.window = 10 * sim::kMillisecond;
  return config;
}

TEST(DeploymentTimeline, SamplesWindowsWithPerCellSeries) {
  if (!telemetry::enabled()) GTEST_SKIP() << "telemetry compiled out";
  Deployment d(timeline_config());
  d.run_for(300 * sim::kMillisecond);

  const telemetry::TimeSeriesRecorder* rec = d.timeline_recorder();
  ASSERT_NE(rec, nullptr);
  // 10 ms cadence over 300 ms: first window closes at t=10ms.
  EXPECT_GE(rec->windows_sampled(), 29u);
  ASSERT_FALSE(rec->windows().empty());

  // A steady-state window carries the scalar and the per-cell labelled
  // subframe counters: 4 cells x ~10 TTIs per 10 ms window.
  const telemetry::WindowSample& w = rec->windows().back();
  EXPECT_GT(w.counter_delta("deployment.subframes"), 0u);
  std::uint64_t per_cell_total = 0;
  for (int cell = 0; cell < 4; ++cell)
    per_cell_total += w.counter_delta("deployment.cell_subframes{cell=" +
                                      std::to_string(cell) + "}");
  EXPECT_EQ(per_cell_total, w.counter_delta("deployment.subframes"));
}

TEST(DeploymentTimeline, ExportsSloGaugesIntoTheRegistry) {
  if (!telemetry::enabled()) GTEST_SKIP() << "telemetry compiled out";
  Deployment d(timeline_config());
  d.run_for(100 * sim::kMillisecond);
  ASSERT_NE(d.slo_engine(), nullptr);
  EXPECT_NE(d.slo_engine()->find("deadline_miss_rate"), nullptr);

  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  bool objective_seen = false;
  bool burn_seen = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "slo.deadline_miss_rate.objective") {
      objective_seen = true;
      EXPECT_DOUBLE_EQ(g.value, 1e-3);
    }
    if (g.name == "slo.deadline_miss_rate.burn_short") burn_seen = true;
  }
  EXPECT_TRUE(objective_seen);
  EXPECT_TRUE(burn_seen);
  // A healthy small deployment misses nothing: no trips.
  EXPECT_EQ(d.slo_engine()->find("deadline_miss_rate")->trips, 0u);
}

TEST(DeploymentTimeline, StreamsJsonlAndDumpsPostmortemOnDemand) {
  if (!telemetry::enabled()) GTEST_SKIP() << "telemetry compiled out";
  const std::string dir = testing::TempDir();
  const std::string jsonl = dir + "/pran_core_timeline_test.jsonl";
  DeploymentConfig config = timeline_config();
  config.timeline.timeline_out = jsonl;
  config.timeline.postmortem_dir = dir;
  Deployment d(config);
  d.run_for(100 * sim::kMillisecond);

  const std::string dump = d.trigger_postmortem("abort", "test harness");
  ASSERT_FALSE(dump.empty());
  std::ifstream pm(dump);
  ASSERT_TRUE(pm.is_open());
  std::stringstream ss;
  ss << pm.rdbuf();
  const json::Value doc = json::Value::parse(ss.str());
  EXPECT_EQ(doc.at("kind").as_string(), "pran_postmortem");
  EXPECT_EQ(doc.at("reason").as_string(), "abort");
  EXPECT_FALSE(doc.at("windows").items().empty());

  std::ifstream in(jsonl);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const json::Value w = json::Value::parse(line);
    EXPECT_DOUBLE_EQ(w.at("window").as_number(), static_cast<double>(lines));
    ++lines;
  }
  EXPECT_GE(lines, 9u);
  std::remove(dump.c_str());
  std::remove(jsonl.c_str());
}

TEST(DeploymentTimeline, OffByDefaultCostsNothing) {
  DeploymentConfig config = timeline_config();
  config.timeline.enabled = false;
  Deployment d(config);
  d.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(d.timeline_recorder(), nullptr);
  EXPECT_EQ(d.slo_engine(), nullptr);
  EXPECT_EQ(d.flight_recorder(), nullptr);
  EXPECT_EQ(d.trigger_postmortem("abort", "x"), "");
}

}  // namespace
}  // namespace pran::core
