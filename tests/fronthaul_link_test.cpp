// Tests for the shared fronthaul link model.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/deployment.hpp"
#include "fronthaul/link.hpp"

namespace pran::fronthaul {
namespace {

TEST(FronthaulLink, IdleLinkDeliversAfterTxPlusPropagation) {
  FronthaulLink link({units::BitRate{1e9}, 10 * sim::kMicrosecond});
  // 1 Mbit at 1 Gbps = 1 ms serialisation.
  const sim::Time arrival = link.enqueue(0, units::Bits{1'000'000});
  EXPECT_EQ(arrival, sim::kMillisecond + 10 * sim::kMicrosecond);
  EXPECT_EQ(link.busy_time(), sim::kMillisecond);
  EXPECT_EQ(link.max_queue_delay(), 0);
  EXPECT_EQ(link.bursts(), 1u);
}

TEST(FronthaulLink, FifoQueueingDelaysSecondBurst) {
  FronthaulLink link({units::BitRate{1e9}, 0});
  (void)link.enqueue(0, units::Bits{1'000'000});               // busy until 1 ms
  const sim::Time arrival = link.enqueue(0, units::Bits{1'000'000});
  EXPECT_EQ(arrival, 2 * sim::kMillisecond);
  EXPECT_EQ(link.max_queue_delay(), sim::kMillisecond);
}

TEST(FronthaulLink, GapsLeaveLinkIdle) {
  FronthaulLink link({units::BitRate{1e9}, 0});
  (void)link.enqueue(0, units::Bits{100'000});  // 100 us
  const sim::Time arrival = link.enqueue(sim::kMillisecond, units::Bits{100'000});
  EXPECT_EQ(arrival, sim::kMillisecond + 100 * sim::kMicrosecond);
  EXPECT_EQ(link.max_queue_delay(), 0);
}

TEST(FronthaulLink, UtilizationAndCarriedBits) {
  FronthaulLink link({units::BitRate{1e9}, 0});
  (void)link.enqueue(0, units::Bits{500'000});  // 0.5 ms busy
  EXPECT_NEAR(link.utilization(sim::kMillisecond), 0.5, 1e-9);
  EXPECT_EQ(link.bits_carried(), units::Bits{500'000});
}

TEST(FronthaulLink, RejectsOutOfOrderIngressAndBadParams) {
  FronthaulLink link({units::BitRate{1e9}, 0});
  (void)link.enqueue(sim::kMillisecond, units::Bits{1});
  EXPECT_THROW(link.enqueue(0, units::Bits{1}), pran::ContractViolation);
  EXPECT_THROW(FronthaulLink({units::BitRate{0.0}, 0}),
               pran::ContractViolation);
  EXPECT_THROW(link.enqueue(sim::kMillisecond, units::Bits{-1}),
               pran::ContractViolation);
}

TEST(SubframeBits, MatchesCpriArithmetic) {
  // 30.72 Msps * 1 ms * 2 * 15 * 4 antennas = 3.6864 Mbit per subframe.
  EXPECT_EQ(subframe_bits(units::Hertz{30.72e6}, 15, 4, 1.0),
            units::Bits{3'686'400});
  EXPECT_EQ(subframe_bits(units::Hertz{30.72e6}, 15, 4, 3.0),
            units::Bits{1'228'800});
  EXPECT_THROW(subframe_bits(units::Hertz{30.72e6}, 15, 4, 0.0),
               pran::ContractViolation);
}

TEST(SharedFronthaul, DeploymentCarriesTrafficOnTheLink) {
  core::DeploymentConfig config;
  config.num_cells = 4;
  config.num_servers = 3;
  config.seed = 5;
  // 25G link: 4 cells * 3.69 Mbit/ms = 14.7 Mbit/ms -> ~59% utilisation.
  config.shared_fronthaul =
      LinkParams{units::BitRate{25e9}, 25 * sim::kMicrosecond};
  core::Deployment d(config);
  d.run_for(500 * sim::kMillisecond);

  ASSERT_NE(d.fronthaul_link(), nullptr);
  EXPECT_GT(d.fronthaul_link()->bits_carried(), units::Bits{0});
  EXPECT_NEAR(d.fronthaul_link()->utilization(d.now()), 0.59, 0.05);
  // Plenty of capacity: deadlines still met.
  EXPECT_EQ(d.kpis().deadline_misses, 0u);
}

TEST(SharedFronthaul, CongestedLinkCausesMisses) {
  auto run = [](units::BitRate rate, double compression) {
    core::DeploymentConfig config;
    config.num_cells = 6;
    config.num_servers = 4;
    config.seed = 5;
    config.shared_fronthaul = LinkParams{rate, 25 * sim::kMicrosecond};
    config.fronthaul_compression = compression;
    core::Deployment d(config);
    d.run_for(500 * sim::kMillisecond);
    return d.kpis();
  };
  // 6 cells * 3.69 Mbit/ms = 22 Mbit/ms. On a 10G link that is 2.2x the
  // capacity: queueing grows without bound and deadlines collapse.
  const auto congested = run(units::BitRate{10e9}, 1.0);
  EXPECT_GT(congested.miss_ratio, 0.5);
  // 3x compression brings it to 0.73x capacity: healthy again.
  const auto compressed = run(units::BitRate{10e9}, 3.0);
  EXPECT_EQ(compressed.deadline_misses, 0u);
}

}  // namespace
}  // namespace pran::fronthaul
