// Control-plane impairment determinism: the channel's contract is that
// the fate of message n is a pure function of (seed, n). The migration
// protocol's reproducibility — and the E22 sweep's thread-count
// invariance — rests on these properties, so they are pinned here:
// substream isolation (retuning jitter cannot change which messages are
// lost), unconditional draws, scripted drops on top of the stochastic
// process, and reorder delay accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "faults/control_plane.hpp"

namespace pran {
namespace {

using faults::ControlDelivery;
using faults::ControlPlaneChannel;
using faults::ControlPlaneImpairmentConfig;

constexpr std::uint64_t kSeed = 77;

std::vector<bool> loss_pattern(const ControlPlaneImpairmentConfig& config,
                               int n) {
  ControlPlaneChannel channel(config, kSeed);
  std::vector<bool> lost;
  for (int i = 0; i < n; ++i) lost.push_back(channel.send(0).lost);
  return lost;
}

TEST(ControlPlane, CleanChannelDeliversAtBaseDelay) {
  ControlPlaneImpairmentConfig config;
  config.base_delay = 50 * sim::kMicrosecond;
  ControlPlaneChannel channel(config, kSeed);
  EXPECT_FALSE(config.impaired());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const ControlDelivery d = channel.send(sim::Time(1000) * sim::Time(i));
    EXPECT_EQ(d.seq, i);
    EXPECT_FALSE(d.lost);
    EXPECT_FALSE(d.reordered);
    EXPECT_EQ(d.deliver_at, sim::Time(1000) * sim::Time(i) + config.base_delay);
  }
  EXPECT_EQ(channel.messages_sent(), 10u);
  EXPECT_EQ(channel.messages_lost(), 0u);
  EXPECT_EQ(channel.log().size(), 10u);
}

TEST(ControlPlane, LossSequenceInvariantUnderJitterAndReorderRetune) {
  ControlPlaneImpairmentConfig base;
  base.loss_probability = 0.3;
  auto retuned = base;
  retuned.max_jitter = 2 * sim::kMillisecond;
  retuned.reorder_probability = 0.5;
  retuned.reorder_delay = 3 * sim::kMillisecond;
  // Substream isolation: turning jitter and reordering on must not shift
  // the loss draws — the exact point of Rng::stream() substreams.
  EXPECT_EQ(loss_pattern(base, 200), loss_pattern(retuned, 200));
}

TEST(ControlPlane, SameSeedSameFateDifferentSeedDiverges) {
  ControlPlaneImpairmentConfig config;
  config.loss_probability = 0.3;
  config.max_jitter = 1 * sim::kMillisecond;
  ControlPlaneChannel a(config, kSeed), b(config, kSeed), c(config, kSeed + 1);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto da = a.send(0);
    const auto db = b.send(0);
    const auto dc = c.send(0);
    EXPECT_EQ(da.lost, db.lost);
    EXPECT_EQ(da.deliver_at, db.deliver_at);
    if (da.lost != dc.lost || da.deliver_at != dc.deliver_at) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ControlPlane, ScriptedDropsKillExactSequenceNumbers) {
  ControlPlaneImpairmentConfig config;
  config.scripted_drops = {0, 2};
  EXPECT_TRUE(config.impaired());
  ControlPlaneChannel channel(config, kSeed);
  EXPECT_TRUE(channel.send(0).lost);
  EXPECT_FALSE(channel.send(0).lost);
  EXPECT_TRUE(channel.send(0).lost);
  EXPECT_FALSE(channel.send(0).lost);
  EXPECT_EQ(channel.messages_lost(), 2u);
}

TEST(ControlPlane, ReorderAddsExactlyReorderDelay) {
  ControlPlaneImpairmentConfig config;
  config.base_delay = 50 * sim::kMicrosecond;
  config.reorder_probability = 1.0;
  config.reorder_delay = 3 * sim::kMillisecond;
  ControlPlaneChannel channel(config, kSeed);
  for (int i = 0; i < 5; ++i) {
    const ControlDelivery d = channel.send(0);
    EXPECT_TRUE(d.reordered);
    EXPECT_EQ(d.deliver_at, config.base_delay + config.reorder_delay);
  }
  EXPECT_EQ(channel.messages_reordered(), 5u);
}

TEST(ControlPlane, LogMirrorsEverySendInOrder) {
  ControlPlaneImpairmentConfig config;
  config.loss_probability = 0.5;
  ControlPlaneChannel channel(config, kSeed);
  for (int i = 0; i < 50; ++i) channel.send(sim::Time(i));
  ASSERT_EQ(channel.log().size(), 50u);
  std::uint64_t lost = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(channel.log()[i].seq, i);
    if (channel.log()[i].lost) ++lost;
  }
  EXPECT_EQ(lost, channel.messages_lost());
}

TEST(ControlPlane, RejectsMalformedConfig) {
  ControlPlaneImpairmentConfig bad_loss;
  bad_loss.loss_probability = 1.5;
  EXPECT_THROW(ControlPlaneChannel(bad_loss, kSeed), ContractViolation);

  ControlPlaneImpairmentConfig bad_reorder;
  bad_reorder.reorder_probability = 0.2;  // without a reorder_delay
  EXPECT_THROW(ControlPlaneChannel(bad_reorder, kSeed), ContractViolation);

  ControlPlaneImpairmentConfig bad_delay;
  bad_delay.base_delay = -1;
  EXPECT_THROW(ControlPlaneChannel(bad_delay, kSeed), ContractViolation);
}

}  // namespace
}  // namespace pran
