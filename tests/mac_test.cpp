// Tests for the MAC substrate: UEs, schedulers, and the per-cell MAC loop.

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "mac/cell_mac.hpp"

namespace pran::mac {
namespace {

UeConfig near_ue(int id) {
  UeConfig c;
  c.ue_id = id;
  c.distance_m = 60.0;
  return c;
}

UeConfig far_ue(int id) {
  UeConfig c;
  c.ue_id = id;
  c.distance_m = 950.0;
  return c;
}

TEST(Ue, CqiTracksDistance) {
  Ue near(near_ue(0), 1);
  Ue far(far_ue(1), 2);
  double near_sum = 0.0, far_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    near.advance_channel();
    far.advance_channel();
    near_sum += near.current_cqi();
    far_sum += far.current_cqi();
  }
  EXPECT_GT(near_sum / 200.0, far_sum / 200.0 + 3.0);
}

TEST(Ue, FullBufferAlwaysHasData) {
  Ue ue(near_ue(0), 1);
  EXPECT_TRUE(ue.has_data());
  EXPECT_DOUBLE_EQ(ue.drain(1000.0), 1000.0);
  EXPECT_TRUE(ue.has_data());
}

TEST(Ue, PoissonTrafficAccumulatesAtOfferedRate) {
  UeConfig c = near_ue(0);
  c.traffic = TrafficKind::kPoisson;
  c.mean_arrival_bps = 8e6;
  Ue ue(c, 7);
  double arrived = 0.0;
  const int ttis = 20000;
  for (int i = 0; i < ttis; ++i) {
    const double before = ue.backlog_bytes();
    ue.advance_traffic();
    arrived += ue.backlog_bytes() - before;
  }
  const double offered_bps = arrived * 8.0 / (ttis * 1e-3);
  EXPECT_NEAR(offered_bps / 8e6, 1.0, 0.1);
}

TEST(Ue, DrainRemovesBacklog) {
  UeConfig c = near_ue(0);
  c.traffic = TrafficKind::kPoisson;
  Ue ue(c, 7);
  while (!ue.has_data()) ue.advance_traffic();
  const double backlog = ue.backlog_bytes();
  const double taken = ue.drain(backlog + 100.0);
  EXPECT_DOUBLE_EQ(taken, backlog);
  EXPECT_FALSE(ue.has_data());
  EXPECT_THROW(ue.drain(-1.0), ContractViolation);
}

TEST(Ue, AverageThroughputConverges) {
  Ue ue(near_ue(0), 3);
  for (int i = 0; i < 2000; ++i) ue.update_average(1000.0, 100.0);
  // 1000 bits per TTI = 1 Mbps.
  EXPECT_NEAR(ue.average_throughput_bps(), 1e6, 1e4);
  EXPECT_DOUBLE_EQ(ue.total_served_bits(), 2000.0 * 1000.0);
}

std::vector<Ue> mixed_population() {
  std::vector<Ue> ues;
  ues.emplace_back(near_ue(0), 11);
  ues.emplace_back(near_ue(1), 12);
  ues.emplace_back(far_ue(2), 13);
  ues.emplace_back(far_ue(3), 14);
  return ues;
}

TEST(Schedulers, NeverExceedPrbBudget) {
  for (const char* name : {"round-robin", "max-rate", "proportional-fair"}) {
    auto sched = make_scheduler(name);
    auto ues = mixed_population();
    for (int tti = 0; tti < 50; ++tti) {
      for (auto& ue : ues) ue.advance_channel();
      const auto grants = sched->schedule(ues, units::PrbCount{100});
      int total = 0;
      std::set<int> seen;
      for (const auto& g : grants) {
        EXPECT_GT(g.allocation.n_prb, 0);
        EXPECT_TRUE(seen.insert(g.ue_id).second) << "duplicate grant";
        total += g.allocation.n_prb;
      }
      EXPECT_LE(total, 100) << name;
    }
  }
}

TEST(Schedulers, GrantMcsMatchesUeCqi) {
  auto sched = make_scheduler("max-rate");
  auto ues = mixed_population();
  for (auto& ue : ues) ue.advance_channel();
  const auto grants = sched->schedule(ues, units::PrbCount{100});
  ASSERT_FALSE(grants.empty());
  for (const auto& g : grants) {
    const auto& ue = ues[static_cast<std::size_t>(g.ue_id)];
    EXPECT_EQ(g.allocation.mcs, lte::mcs_from_cqi(ue.current_cqi()));
  }
}

TEST(Schedulers, MaxRatePicksBestChannelFirst) {
  auto sched = make_scheduler("max-rate");
  auto ues = mixed_population();
  for (auto& ue : ues) ue.advance_channel();
  const auto grants = sched->schedule(ues, units::PrbCount{100});
  ASSERT_FALSE(grants.empty());
  // Full-buffer: the single grant goes to the highest-CQI UE.
  int best = 0;
  for (std::size_t i = 1; i < ues.size(); ++i)
    if (ues[i].current_cqi() > ues[static_cast<std::size_t>(best)].current_cqi())
      best = static_cast<int>(i);
  EXPECT_EQ(grants[0].ue_id, best);
}

TEST(Schedulers, RoundRobinSharesAmongActiveUes) {
  auto sched = make_scheduler("round-robin");
  auto ues = mixed_population();
  std::set<int> served;
  for (int tti = 0; tti < 8; ++tti) {
    for (auto& ue : ues) ue.advance_channel();
    for (const auto& g : sched->schedule(ues, units::PrbCount{100})) served.insert(g.ue_id);
  }
  // Every UE (even cell edge) gets service within a few TTIs.
  EXPECT_EQ(served.size(), ues.size());
}

TEST(Schedulers, UnknownNameThrows) {
  EXPECT_THROW(make_scheduler("wfq"), ContractViolation);
}

CellMacConfig cell_config(const char* scheduler, std::uint64_t seed = 5) {
  CellMacConfig c;
  c.scheduler = scheduler;
  c.num_ues = 10;
  c.seed = seed;
  return c;
}

TEST(CellMac, ThroughputOrdering) {
  // Classic result: max-rate >= PF >= round-robin on cell throughput...
  CellMac maxrate(cell_config("max-rate"));
  CellMac pf(cell_config("proportional-fair"));
  CellMac rr(cell_config("round-robin"));
  for (int tti = 0; tti < 3000; ++tti) {
    maxrate.run_tti();
    pf.run_tti();
    rr.run_tti();
  }
  EXPECT_GE(maxrate.cell_throughput_bps(), pf.cell_throughput_bps() * 0.98);
  EXPECT_GE(pf.cell_throughput_bps(), rr.cell_throughput_bps() * 0.98);
}

TEST(CellMac, FairnessOrdering) {
  // ...and round-robin/PF are far fairer than max-rate.
  CellMac maxrate(cell_config("max-rate"));
  CellMac pf(cell_config("proportional-fair"));
  for (int tti = 0; tti < 3000; ++tti) {
    maxrate.run_tti();
    pf.run_tti();
  }
  EXPECT_GT(pf.fairness(), maxrate.fairness() + 0.1);
}

TEST(CellMac, AllocationsFeedTheCostModel) {
  CellMac mac(cell_config("proportional-fair"));
  const lte::CostModel model;
  for (int tti = 0; tti < 20; ++tti) {
    const auto allocs = mac.run_tti();
    // Must be consumable by the cost model without violating PRB limits.
    const auto cost = model.subframe_cost(mac.config().cell, allocs,
                                          lte::Direction::kUplink);
    EXPECT_GE(cost.total(), 0.0);
  }
  EXPECT_EQ(mac.ttis_run(), 20);
}

TEST(CellMac, PoissonModeServesOfferedLoad) {
  CellMacConfig c = cell_config("proportional-fair");
  c.traffic = TrafficKind::kPoisson;
  c.num_ues = 6;
  c.mean_arrival_bps = 2e6;  // 12 Mbps aggregate: well within capacity
  CellMac mac(c);
  for (int tti = 0; tti < 5000; ++tti) mac.run_tti();
  // Served throughput tracks the offered load (not the full-buffer max).
  EXPECT_NEAR(mac.cell_throughput_bps() / (6 * 2e6), 1.0, 0.15);
}

TEST(CellMac, DeterministicForSeed) {
  CellMac a(cell_config("round-robin", 42));
  CellMac b(cell_config("round-robin", 42));
  for (int tti = 0; tti < 100; ++tti) {
    a.run_tti();
    b.run_tti();
  }
  EXPECT_DOUBLE_EQ(a.cell_throughput_bps(), b.cell_throughput_bps());
}

TEST(CellMac, RejectsBadConfig) {
  CellMacConfig c = cell_config("round-robin");
  c.num_ues = 0;
  EXPECT_THROW(CellMac{c}, ContractViolation);
}

}  // namespace
}  // namespace pran::mac
