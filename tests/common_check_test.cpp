#include "common/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace pran {
namespace {

// The diagnostic quality of ContractViolation is a contract of its own:
// pran-lint insists every PRAN_REQUIRE / PRAN_CHECK carries a message, and
// these tests pin down that the message — plus the failed expression and the
// source location — actually survives into what().

TEST(CheckTest, RequirePassesWhenConditionHolds) {
  EXPECT_NO_THROW(PRAN_REQUIRE(1 + 1 == 2, "arithmetic still works"));
  EXPECT_NO_THROW(PRAN_CHECK(true, "trivially true"));
}

TEST(CheckTest, RequireThrowsContractViolation) {
  EXPECT_THROW(PRAN_REQUIRE(false, "must not be reached"), ContractViolation);
  // ContractViolation derives from std::logic_error so callers can catch
  // broadly without knowing about PRAN internals.
  EXPECT_THROW(PRAN_REQUIRE(false, "must not be reached"), std::logic_error);
}

TEST(CheckTest, RequireMessageEmbedsExpressionAndLocation) {
  std::string what;
  const int prbs = -3;
  try {
    PRAN_REQUIRE(prbs >= 0, "PRB count cannot be negative");
    FAIL() << "PRAN_REQUIRE(false, ...) did not throw";
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("precondition"), std::string::npos) << what;
  EXPECT_NE(what.find("prbs >= 0"), std::string::npos) << what;
  EXPECT_NE(what.find("common_check_test.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find("PRB count cannot be negative"), std::string::npos)
      << what;
}

TEST(CheckTest, CheckMessageEmbedsExpressionAndLocation) {
  std::string what;
  const double scale = -1.0;
  try {
    PRAN_CHECK(scale > 0.0, "scale factor went non-positive");
    FAIL() << "PRAN_CHECK(false, ...) did not throw";
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("invariant"), std::string::npos) << what;
  EXPECT_NE(what.find("scale > 0.0"), std::string::npos) << what;
  EXPECT_NE(what.find("common_check_test.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find("scale factor went non-positive"), std::string::npos)
      << what;
}

TEST(CheckTest, LocationLineMatchesFailingCheck) {
  std::string what;
  const int expected_line = __LINE__ + 2;
  try {
    PRAN_REQUIRE(false, "line capture probe");
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  const std::string needle = ":" + std::to_string(expected_line);
  EXPECT_NE(what.find(needle), std::string::npos) << what;
}

TEST(CheckTest, MessageExpressionIsEvaluated) {
  // The msg argument may be a runtime expression; it must be evaluated and
  // embedded, not stringified.
  const int id = 42;
  std::string what;
  try {
    PRAN_CHECK(false, "bad cell id " + std::to_string(id));
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("bad cell id 42"), std::string::npos) << what;
}

}  // namespace
}  // namespace pran
