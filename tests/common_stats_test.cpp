// Tests for statistics accumulators, histograms and fairness.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace pran {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, QuantilesInterpolate) {
  Samples s({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
}

TEST(Samples, SingleSample) {
  Samples s({7.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(Samples, RejectsEmptyQuantile) {
  Samples s;
  EXPECT_THROW(s.quantile(0.5), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Samples, RejectsOutOfRangeQuantile) {
  Samples s({1.0});
  EXPECT_THROW(s.quantile(1.5), ContractViolation);
}

TEST(Samples, CiShrinksWithSampleSize) {
  Rng rng(5);
  Samples small, large;
  for (int i = 0; i < 20; ++i) small.add(rng.normal());
  for (int i = 0; i < 2000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci_half_width(0.95), large.ci_half_width(0.95));
}

TEST(Samples, CiWidensWithLevel) {
  Rng rng(5);
  Samples s;
  for (int i = 0; i < 100; ++i) s.add(rng.normal());
  EXPECT_LT(s.ci_half_width(0.90), s.ci_half_width(0.95));
  EXPECT_LT(s.ci_half_width(0.95), s.ci_half_width(0.99));
}

TEST(Samples, VectorConstructorAndValues) {
  Samples s({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  // values() reflects insertion order until a quantile query sorts.
  EXPECT_EQ(s.values().size(), 3u);
  s.add(4.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Samples, StddevOfConstantIsZero) {
  Samples s({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(JainFairness, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, WorstCaseIsOneOverN) {
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.0);
  h.add(9.99);
  h.add(-1.0);   // underflow
  h.add(10.0);   // overflow (hi is exclusive)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CdfReachesOne) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9}) h.add(x);
  const auto cdf = h.cdf();
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 3.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add_n(0.5, 10);
  h.add(1.5);
  const std::string out = h.render(20);
  EXPECT_NE(out.find("####"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

}  // namespace
}  // namespace pran
