// Tests for the structured trace sink.

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace pran::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  Trace t;
  t.emit(10, "a", "first");
  t.emit(20, "b", "second");
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].message, "first");
  EXPECT_EQ(t.records()[1].at, 20);
}

TEST(Trace, FilterByCategory) {
  Trace t;
  t.emit(1, "ctrl", "x");
  t.emit(2, "fail", "y");
  t.emit(3, "ctrl", "z");
  EXPECT_EQ(t.count("ctrl"), 2u);
  EXPECT_EQ(t.count("fail"), 1u);
  EXPECT_EQ(t.count("none"), 0u);
  const auto ctrl = t.filter("ctrl");
  ASSERT_EQ(ctrl.size(), 2u);
  EXPECT_EQ(ctrl[1].message, "z");
}

TEST(Trace, EnabledCategoriesGate) {
  Trace t;
  t.set_enabled_categories({"keep"});
  t.emit(1, "keep", "yes");
  t.emit(2, "drop", "no");
  EXPECT_EQ(t.records().size(), 1u);
  t.set_enabled_categories({});
  t.emit(3, "drop", "now kept");
  EXPECT_EQ(t.records().size(), 2u);
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.emit(1, "a", "x");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RenderMentionsCategoryAndTime) {
  Trace t;
  t.emit(2 * kMillisecond, "controller", "replan done");
  const std::string s = t.render();
  EXPECT_NE(s.find("[controller]"), std::string::npos);
  EXPECT_NE(s.find("replan done"), std::string::npos);
  EXPECT_NE(s.find("2.00 ms"), std::string::npos);
}

}  // namespace
}  // namespace pran::sim
