// Tests for the deterministic RNG and its distributions.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace pran {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SeedZeroIsWellMixed) {
  Rng r(0);
  // splitmix64 seeding should not produce degenerate zero streams.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(r());
  EXPECT_EQ(values.size(), 16u);
  EXPECT_EQ(values.count(0), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  Rng parent2(9);
  (void)parent2.fork();
  // Parent advances when forking.
  EXPECT_NE(parent(), Rng(9)());
  // Child differs from parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng r(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesWithParameters) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng r(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng r(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng r(1);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(37);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace pran
