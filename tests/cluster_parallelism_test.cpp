// Tests for intra-job (code-block) parallelism in the executor.

#include <gtest/gtest.h>

#include "cluster/executor.hpp"
#include "lte/subframe.hpp"

namespace pran::cluster {
namespace {

lte::SubframeJob job_with(double gops, int parallelism, sim::Time deadline) {
  lte::SubframeJob job;
  job.cost[lte::Stage::kDecode] = gops;
  job.parallelism = parallelism;
  job.release = 0;
  job.deadline = deadline;
  return job;
}

ServerSpec wide_server(int cores, int max_par) {
  ServerSpec spec{"s", cores, 100.0};
  spec.max_job_parallelism = max_par;
  return spec;
}

TEST(Parallelism, JobFansOutAcrossFreeCores) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(4, 8)}, SchedPolicy::kEdf);
  // 0.4 Gop at 100 GOPS = 4 ms serial; on 4 cores = 1 ms.
  ex.submit(0, job_with(0.4, 16, 100 * sim::kMillisecond));
  engine.run();
  ASSERT_EQ(ex.outcomes().size(), 1u);
  EXPECT_EQ(ex.outcomes()[0].finish, sim::kMillisecond);
  EXPECT_EQ(ex.outcomes()[0].cores_used, 4);
}

TEST(Parallelism, WidthCappedByJobParallelism) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(8, 8)}, SchedPolicy::kEdf);
  ex.submit(0, job_with(0.4, 2, 100 * sim::kMillisecond));
  engine.run();
  EXPECT_EQ(ex.outcomes()[0].cores_used, 2);
  EXPECT_EQ(ex.outcomes()[0].finish, 2 * sim::kMillisecond);
}

TEST(Parallelism, WidthCappedByServerPolicy) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(8, 1)}, SchedPolicy::kEdf);
  ex.submit(0, job_with(0.4, 16, 100 * sim::kMillisecond));
  engine.run();
  EXPECT_EQ(ex.outcomes()[0].cores_used, 1);
  EXPECT_EQ(ex.outcomes()[0].finish, 4 * sim::kMillisecond);
}

TEST(Parallelism, ConcurrentJobsShareCores) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(4, 4)}, SchedPolicy::kEdf);
  // First job grabs all 4 cores; second queues, then gets all 4.
  ex.submit(0, job_with(0.4, 8, 100 * sim::kMillisecond));
  ex.submit(0, job_with(0.4, 8, 100 * sim::kMillisecond));
  engine.run();
  ASSERT_EQ(ex.outcomes().size(), 2u);
  EXPECT_EQ(ex.outcomes()[0].finish, sim::kMillisecond);
  EXPECT_EQ(ex.outcomes()[1].finish, 2 * sim::kMillisecond);
}

TEST(Parallelism, PartialWidthWhenCoresBusy) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(4, 4)}, SchedPolicy::kEdf);
  // Long serial job occupies 1 core (parallelism 1)...
  ex.submit(0, job_with(0.5, 1, 100 * sim::kMillisecond));  // 5 ms on 1 core
  // ...second job can only fan out over the remaining 3.
  ex.submit(0, job_with(0.3, 8, 100 * sim::kMillisecond));  // 1 ms on 3
  engine.run();
  ASSERT_EQ(ex.outcomes().size(), 2u);
  EXPECT_EQ(ex.outcomes()[0].cores_used, 3);
  EXPECT_EQ(ex.outcomes()[0].finish, sim::kMillisecond);
  EXPECT_EQ(ex.outcomes()[1].cores_used, 1);
}

TEST(Parallelism, BusyAccountingScalesWithWidth) {
  sim::Engine engine;
  Executor ex(engine, {wide_server(4, 4)}, SchedPolicy::kEdf);
  ex.submit(0, job_with(0.4, 8, 100 * sim::kMillisecond));  // 1 ms x 4 cores
  engine.run();
  EXPECT_NEAR(ex.stats().total_busy_seconds, 4e-3, 1e-12);
  EXPECT_NEAR(ex.utilization(0, 2 * sim::kMillisecond), 0.5, 1e-9);
}

TEST(Parallelism, MakesDeadlinesFeasibleThatSerialMisses) {
  // A 0.3 Gop subframe on a 100 GOPS core takes 3 ms — exactly the HARQ
  // budget, so any queueing at all causes a miss serially. With fan-out it
  // completes in a fraction of the budget.
  for (int max_par : {1, 8}) {
    sim::Engine engine;
    Executor ex(engine, {wide_server(8, max_par)}, SchedPolicy::kEdf);
    for (int i = 0; i < 3; ++i) {
      auto job = job_with(0.3, 12, 3 * sim::kMillisecond);
      job.release = 0;
      ex.submit(0, job);
    }
    engine.run();
    if (max_par == 1) {
      EXPECT_EQ(ex.stats().missed, 0u);  // 3 cores run 3 jobs at 3 ms sharp
    } else {
      EXPECT_EQ(ex.stats().missed, 0u);
      // With fan-out the worst finish time is far inside the budget.
      for (const auto& o : ex.outcomes())
        EXPECT_LE(o.finish, 2 * sim::kMillisecond);
    }
  }
}

TEST(SubframeFactoryParallelism, CodeBlockCountSetsParallelism) {
  lte::SubframeFactory factory(0, lte::CellConfig{}, lte::CostModel{}, 0);
  // 100 PRB at MCS 28: ~77.7 kbit per layer -> 13 code blocks x 2 layers.
  const std::vector<lte::Allocation> full{{100, 28, 6}};
  const auto big = factory.uplink_job(0, full);
  EXPECT_GE(big.parallelism, 20);
  // Small allocation: single code block per layer.
  const std::vector<lte::Allocation> small{{4, 5, 4}};
  const auto little = factory.uplink_job(0, small);
  EXPECT_LE(little.parallelism, 2);
  // Empty subframe still has parallelism 1.
  EXPECT_EQ(factory.uplink_job(0, {}).parallelism, 1);
}

}  // namespace
}  // namespace pran::cluster
