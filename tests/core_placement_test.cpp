// Tests for the placement problem, MILP formulation and placers.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/placement.hpp"

namespace pran::core {
namespace {

cluster::ServerSpec server(double gops_per_tti_budget) {
  // One core whose per-TTI budget equals the requested value.
  return cluster::ServerSpec{"s", 1, gops_per_tti_budget * 1e3};
}

PlacementProblem small_problem() {
  PlacementProblem p;
  p.headroom = 1.0;
  p.cells = {{0, 0.6, 1.0}, {1, 0.5, 1.0}, {2, 0.4, 1.0}, {3, 0.3, 1.0}};
  p.servers = {server(1.0), server(1.0), server(1.0), server(1.0)};
  return p;
}

TEST(PlacementProblem, LoadsAndFit) {
  const auto p = small_problem();
  const std::vector<int> ok{0, 1, 1, 0};     // 0.9 and 0.9
  const std::vector<int> bad{0, 0, 1, 1};    // 1.1 on server 0
  EXPECT_TRUE(placement_fits(p, ok));
  EXPECT_FALSE(placement_fits(p, bad));
  const auto loads = server_loads(p, ok);
  EXPECT_NEAR(loads[0], 0.9, 1e-12);
  EXPECT_NEAR(loads[1], 0.9, 1e-12);
  EXPECT_NEAR(loads[2], 0.0, 1e-12);
}

TEST(PlacementResult, ActiveServersAndMigrations) {
  PlacementResult r;
  r.server_of_cell = {0, 1, 1, 0};
  EXPECT_EQ(r.active_servers(), 2);
  EXPECT_EQ(r.migrations_from({0, 1, 0, 0}), 1);
  // Cells previously in outage (-1) do not count as migrations.
  EXPECT_EQ(r.migrations_from({-1, 1, 1, 0}), 0);
}

TEST(MilpPlacer, PacksMinimally) {
  const auto p = small_problem();  // total 1.8 -> 2 servers suffice
  MilpPlacer placer;
  const auto r = placer.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.active_servers(), 2);
  EXPECT_TRUE(placement_fits(p, r.server_of_cell));
}

TEST(MilpPlacer, RespectsHeadroom) {
  auto p = small_problem();
  p.headroom = 0.7;  // budget 0.7 per server: 0.6+anything > 0.7
  const auto r = MilpPlacer{}.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.active_servers(), 3);  // {0.6},{0.5},{0.4+0.3}
}

TEST(MilpPlacer, ReportsInfeasible) {
  PlacementProblem p;
  p.cells = {{0, 2.0, 2.0}};
  p.servers = {server(1.0)};
  const auto r = MilpPlacer{}.place(p);
  EXPECT_FALSE(r.feasible);
}

TEST(MilpPlacer, MigrationWeightPrefersStability) {
  auto p = small_problem();
  // Previous placement uses 2 servers in a specific pattern; an unweighted
  // optimum could permute servers freely. With migration cost, it must
  // keep the previous assignment (which is already optimal).
  p.previous = std::vector<int>{0, 1, 1, 0};
  p.migration_weight = 0.01;
  const auto r = MilpPlacer{}.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.migrations_from(*p.previous), 0);
  EXPECT_EQ(r.active_servers(), 2);
}

TEST(MilpPlacer, MigrationWeightDoesNotSacrificeServers) {
  // Previous placement wastes servers; migration weight is small enough
  // that consolidation still wins.
  auto p = small_problem();
  p.previous = std::vector<int>{0, 1, 2, 3};
  p.migration_weight = 0.01;
  const auto r = MilpPlacer{}.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.active_servers(), 2);
}

TEST(FirstFitPlacer, ProducesFeasiblePacking) {
  const auto p = small_problem();
  FirstFitPlacer placer;
  const auto r = placer.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(placement_fits(p, r.server_of_cell));
  EXPECT_FALSE(r.proven_optimal);
  // FFD on this instance is actually optimal.
  EXPECT_EQ(r.active_servers(), 2);
}

TEST(FirstFitPlacer, StickyKeepsPreviousHomes) {
  auto p = small_problem();
  p.previous = std::vector<int>{3, 2, 1, 0};  // spread out but feasible
  const auto sticky = FirstFitPlacer(true).place(p);
  ASSERT_TRUE(sticky.feasible);
  EXPECT_EQ(sticky.migrations_from(*p.previous), 0);

  const auto fresh = FirstFitPlacer(false).place(p);
  ASSERT_TRUE(fresh.feasible);
  // Non-sticky re-packs into fewer servers, migrating cells.
  EXPECT_LT(fresh.active_servers(), 4);
}

TEST(FirstFitPlacer, ReportsInfeasibleWhenOverloaded) {
  PlacementProblem p;
  p.cells = {{0, 0.9, 1.0}, {1, 0.9, 1.0}, {2, 0.9, 1.0}};
  p.servers = {server(1.0), server(1.0)};
  const auto r = FirstFitPlacer{}.place(p);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.server_of_cell.empty());
}

TEST(FirstFitPlacer, OpensSmallestFittingServer) {
  PlacementProblem p;
  p.headroom = 1.0;
  p.cells = {{0, 0.4, 0.5}};
  p.servers = {server(2.0), server(0.5)};  // big first, small second
  const auto r = FirstFitPlacer{}.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.server_of_cell[0], 1);  // picks the small one
}

TEST(StaticPeakPlacer, BudgetsAtPeak) {
  PlacementProblem p;
  p.headroom = 1.0;
  // Sustained 0.3 each but peak 0.9: peak sizing fits one per server.
  p.cells = {{0, 0.3, 0.9}, {1, 0.3, 0.9}, {2, 0.3, 0.9}};
  p.servers = {server(1.0), server(1.0), server(1.0)};
  const auto r = StaticPeakPlacer{}.place(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.active_servers(), 3);  // no pooling under peak provisioning

  // The pooled optimum uses one server — the gap is PRAN's pooling gain.
  const auto pooled = MilpPlacer{}.place(p);
  ASSERT_TRUE(pooled.feasible);
  EXPECT_EQ(pooled.active_servers(), 1);
}

TEST(StaticPeakPlacer, RejectsPeakBelowSustained) {
  PlacementProblem p;
  p.cells = {{0, 0.5, 0.2}};
  p.servers = {server(1.0)};
  EXPECT_THROW(StaticPeakPlacer{}.place(p), pran::ContractViolation);
}

TEST(BuildModel, ShapesMatchFormulation) {
  const auto p = small_problem();
  const auto model = build_placement_model(p);
  // 4 cells * 4 servers + 4 activations.
  EXPECT_EQ(model.num_variables(), 20);
  // 4 assignment + 4 capacity + 3 symmetry rows.
  EXPECT_EQ(model.num_constraints(), 11);
  EXPECT_EQ(model.num_integer_variables(), 20);
}

TEST(BuildModel, ValidatesInput) {
  PlacementProblem p;
  EXPECT_THROW(build_placement_model(p), pran::ContractViolation);
  p = small_problem();
  p.headroom = 0.0;
  EXPECT_THROW(build_placement_model(p), pran::ContractViolation);
  p = small_problem();
  p.previous = std::vector<int>{0};
  EXPECT_THROW(build_placement_model(p), pran::ContractViolation);
}

/// Property: on random instances, FFD is feasible whenever the MILP is, and
/// never uses fewer servers than the proven optimum.
class PlacerComparison : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacerComparison, HeuristicDominatedByOptimum) {
  Rng rng(GetParam() * 2654435761ULL + 1);
  PlacementProblem p;
  p.headroom = 0.9;
  const int cells = 4 + static_cast<int>(rng.uniform_int(0, 6));
  const int servers = 3 + static_cast<int>(rng.uniform_int(0, 3));
  for (int c = 0; c < cells; ++c) {
    const double demand = rng.uniform(0.05, 0.5);
    p.cells.push_back({c, demand, demand * rng.uniform(1.0, 2.0)});
  }
  for (int s = 0; s < servers; ++s) p.servers.push_back(server(1.0));

  const auto exact = MilpPlacer{}.place(p);
  const auto heur = FirstFitPlacer{}.place(p);

  if (exact.feasible) {
    ASSERT_TRUE(exact.proven_optimal) << "seed " << GetParam();
    if (heur.feasible) {
      EXPECT_GE(heur.active_servers(), exact.active_servers());
      EXPECT_TRUE(placement_fits(p, heur.server_of_cell));
      // FFD's classical guarantee (11/9 OPT + 1) with slack.
      EXPECT_LE(heur.active_servers(),
                (11 * exact.active_servers()) / 9 + 1);
    }
  } else {
    EXPECT_FALSE(heur.feasible) << "heuristic found a packing MILP missed";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerComparison,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace pran::core
